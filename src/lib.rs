//! Facade crate for the NUPEA reproduction workspace. See the `nupea`
//! crate for the pipeline API and DESIGN.md for the system inventory.
#![forbid(unsafe_code)]

pub use nupea::*;

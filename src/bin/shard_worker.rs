//! One worker process of a sharded chaos-test run (see
//! `tests/shard_chaos.rs` and DESIGN.md §11).
//!
//!     shard_worker faults <dir> <shards> <worker-id> [ttl_ms] [heartbeat_ms]
//!     shard_worker dse    <dir> <shards> <worker-id> [ttl_ms] [heartbeat_ms]
//!
//! Every worker of a run hardcodes the same small campaign / search
//! configuration (the sharded protocols require all workers to agree on
//! the work-item space), claims shards through the coordination journal
//! in `<dir>`, and exits 0 once every shard is done — including shards
//! finished by other workers. On success it prints one JSON stats line:
//!
//!     {"claimed":3,"completed":3,"stolen":1,"fenced":0}
//!
//! The chaos test SIGKILLs workers at random points and asserts that the
//! survivors steal the dead workers' shards, that a resumed worker
//! claims nothing, and that the merged reports are byte-identical to the
//! single-process run.

use nupea::campaign::{CampaignConfig, FaultCampaign};
use nupea::shard::{ShardOptions, WorkerStats};
use nupea::Scale;
use nupea_dse::{DseConfig, SearchSpace};
use nupea_kernels::workloads::workload_by_name;
use std::path::Path;
use std::process::ExitCode;

/// The chaos campaign: the smoke preset narrowed to two workloads × two
/// injections. Must match `tests/shard_chaos.rs`.
fn chaos_campaign() -> FaultCampaign {
    let mut cfg = CampaignConfig::smoke();
    cfg.injections = 2;
    cfg.threads = 2;
    let mut campaign = FaultCampaign::new(cfg);
    for name in ["spmv", "spmspv"] {
        campaign.workload(workload_by_name(name).unwrap().build_default(Scale::Test));
    }
    campaign
}

/// The chaos search space: six candidates over one workload. Must match
/// `tests/shard_chaos.rs`.
fn chaos_space() -> SearchSpace {
    SearchSpace {
        domain_cols: vec![3],
        d0_cols: vec![2, 3],
        cache_words: vec![64 * 1024],
        effort: 32,
        ..SearchSpace::default()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(mode), Some(dir), Some(shards), Some(worker)) =
        (args.first(), args.get(1), args.get(2), args.get(3))
    else {
        eprintln!(
            "usage: shard_worker <faults|dse> <dir> <shards> <worker-id> [ttl_ms] [heartbeat_ms]"
        );
        return ExitCode::FAILURE;
    };
    let Ok(shards) = shards.parse::<u32>() else {
        eprintln!("shard_worker: bad shard count {shards:?}");
        return ExitCode::FAILURE;
    };
    let num = |i: usize, default: u64| args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default);
    let opts = ShardOptions {
        shards,
        worker: worker.clone(),
        ttl_ms: num(4, 1_500),
        heartbeat_ms: num(5, 150),
        ..ShardOptions::default()
    };
    let dir = Path::new(dir);
    let stats: Result<WorkerStats, String> = match mode.as_str() {
        "faults" => chaos_campaign()
            .run_shard_worker(dir, &opts)
            .map_err(|e| e.to_string()),
        "dse" => {
            let spmspv = workload_by_name("spmspv")
                .expect("spmspv exists")
                .build_default(Scale::Test);
            nupea_dse::run_shard_worker(
                &chaos_space(),
                &DseConfig::default(),
                &[spmspv],
                dir,
                &opts,
            )
            .map_err(|e| e.to_string())
        }
        m => {
            eprintln!("shard_worker: unknown mode {m:?}");
            return ExitCode::FAILURE;
        }
    };
    match stats {
        Ok(s) => {
            println!(
                "{{\"claimed\":{},\"completed\":{},\"stolen\":{},\"fenced\":{}}}",
                s.claimed, s.completed, s.stolen, s.fenced
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("shard_worker[{}]: {e}", opts.worker);
            ExitCode::FAILURE
        }
    }
}

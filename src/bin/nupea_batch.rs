//! Run one simulation point from a serve-API config and print its
//! record — the byte-identity reference for `nupea-serve`'s
//! `POST /simulate` endpoint.
//!
//!     cargo run --release --bin nupea_batch -- '{"workload":"spmv"}'
//!     echo '{"workload":"spmv"}' | cargo run --release --bin nupea_batch
//!
//! The config is parsed by the same [`nupea_serve::api::ConfigRequest`]
//! the server uses, compiled through the same [`nupea::ArtifactCache`]
//! entry point, and exported with the same deterministic
//! [`nupea::runner::records_to_json`] — so for any config, this
//! program's stdout and the served `/simulate` response body are
//! byte-identical by construction (the CI `serve-smoke` job diffs
//! them).

use nupea::runner::{records_to_json, run_compiled};
use nupea::{ArtifactCache, RetryPolicy};
use nupea_serve::api::ConfigRequest;
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let body = match std::env::args().nth(1) {
        Some(arg) => arg,
        None => {
            let mut buf = String::new();
            if std::io::stdin().read_to_string(&mut buf).is_err() || buf.trim().is_empty() {
                eprintln!("usage: nupea_batch 'CONFIG_JSON'   (or pipe the config on stdin)");
                return ExitCode::FAILURE;
            }
            buf
        }
    };
    let cfg = match ConfigRequest::parse(&body) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("bad config: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (workload, sys) = match cfg.build() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bad config: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cache = ArtifactCache::new(1);
    let hash = nupea::config_hash(&workload, &sys, cfg.heuristic);
    let (result, _cached) = cache.get_or_compile(hash, &workload, &sys, cfg.heuristic);
    let compiled = match result {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let retry = match cfg.retry_factor {
        None | Some(0 | 1) => RetryPolicy::None,
        Some(factor) => RetryPolicy::OneShot { factor },
    };
    let (record, _trace) = run_compiled(&compiled, cfg.model, cfg.cycle_budget, retry, false);
    println!("{}", records_to_json(&[record], false));
    ExitCode::SUCCESS
}

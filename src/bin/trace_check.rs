//! Validate Chrome trace-event JSON emitted by the simulator's trace
//! exporter (CI gate for the release smoke job).
//!
//!     cargo run --release --bin trace_check -- FILE [FILE...]
//!
//! Each file is parsed with the same dependency-free JSON reader the
//! workspace uses elsewhere and checked against the Trace Event Format
//! rules Perfetto relies on (required `ph`/`ts`/`pid` fields, balanced
//! async begin/end pairs, numeric counter args). Exits non-zero on the
//! first malformed file.

use std::process::ExitCode;

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: trace_check FILE [FILE...]");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for f in &files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{f}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match nupea_sim::validate_chrome_trace(&text) {
            Ok(summary) => println!(
                "{f}: ok ({} events: {} complete, {} counters, {} instants, {} async, {} metadata)",
                summary.events,
                summary.complete,
                summary.counters,
                summary.instants,
                summary.asyncs,
                summary.metadata
            ),
            Err(e) => {
                eprintln!("{f}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! The NUPEA simulation service.
//!
//!     cargo run --release --bin nupea-serve -- --addr 127.0.0.1:8080
//!
//! Serves the compile/simulate/trace/campaign API described in
//! [`nupea_serve`] until a `POST /shutdown` arrives, then prints the
//! final `/stats` report (cache counters plus per-endpoint latency
//! percentiles) and exits. With `--addr 127.0.0.1:0` the kernel picks a
//! free port; the chosen address is always announced on stdout as
//! `listening on ADDR` so harnesses can discover it.

use nupea_serve::{ServeOptions, Server};
use std::process::ExitCode;

const USAGE: &str = "usage: nupea-serve [--addr HOST:PORT] [--http-workers N] \
    [--sim-threads N] [--queue-cap N] [--batch-max N] [--batch-wait-ms MS] [--cache-cap N] \
    [--read-timeout-ms MS] [--write-timeout-ms MS] [--drain-ms MS] [--chaos-hooks]";

fn parse_args(opts: &mut ServeOptions) -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => opts.addr = take("--addr")?,
            "--http-workers" => opts.http_workers = parse(&take("--http-workers")?)?,
            "--sim-threads" => opts.sim_threads = parse(&take("--sim-threads")?)?,
            "--queue-cap" => opts.queue_cap = parse(&take("--queue-cap")?)?,
            "--batch-max" => opts.batch_max = parse(&take("--batch-max")?)?,
            "--batch-wait-ms" => opts.batch_wait_ms = parse(&take("--batch-wait-ms")?)?,
            "--cache-cap" => opts.cache_cap = parse(&take("--cache-cap")?)?,
            "--read-timeout-ms" => opts.read_timeout_ms = parse(&take("--read-timeout-ms")?)?,
            "--write-timeout-ms" => opts.write_timeout_ms = parse(&take("--write-timeout-ms")?)?,
            "--drain-ms" => opts.drain_ms = parse(&take("--drain-ms")?)?,
            // Test-only: honor x_chaos panic/sleep request hooks
            // (refused 403 without this flag).
            "--chaos-hooks" => opts.chaos_hooks = true,
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(())
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad numeric value: {s}"))
}

fn main() -> ExitCode {
    let mut opts = ServeOptions::default();
    if let Err(e) = parse_args(&mut opts) {
        eprintln!("{e}\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let server = match Server::start(&opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    let final_stats = server.wait();
    println!("{final_stats}");
    ExitCode::SUCCESS
}

//! Property-based differential testing: randomized structured programs are
//! lowered through the kernel builder and executed on (a) the untimed
//! reference interpreter and (b) the timed cycle-level engine under several
//! memory models and buffering configurations. Final memory, sink streams,
//! and token balance must agree exactly.
//!
//! This is the deepest correctness net in the repository: it exercises the
//! steer/carry/invariant lowering, backpressure, reordering in the memory
//! system, and in-order response delivery all at once.

use nupea_fabric::Fabric;
use nupea_ir::interp::Interp;
use nupea_kernels::builder::{Ctx, Kernel, Val};
use nupea_kernels::workloads::Workload;
use nupea_pnr::{place::place, Heuristic, Netlist, PlaceConfig};
use nupea_rng::Xoshiro256;
use nupea_sim::{Engine, MemParams, MemoryModel, SimConfig, SimMemory};
use std::cell::Cell;

/// A randomized structured program over a read-only input region and
/// per-statement disjoint output blocks (no cross-node races, so timed and
/// untimed execution must agree bit-for-bit).
#[derive(Debug, Clone)]
enum Stmt {
    /// acc = op(acc, load(input + (acc & 63)))
    LoadMix(u8),
    /// acc = op(acc, k)
    Arith(u8, i8),
    /// store(out_block(id) + (acc & 63), acc)
    Store,
    /// for i in 0..trips { body }, acc carried
    Loop(u8, Vec<Stmt>),
    /// if acc & 1 { then } else { else }, acc carried through both
    Branch(Vec<Stmt>, Vec<Stmt>),
}

/// Generate one random statement with bounded nesting, mirroring the old
/// proptest strategy: leaves are load-mix / arith / store; interior nodes
/// are short loops and branches.
fn random_stmt(rng: &mut Xoshiro256, depth: u32) -> Stmt {
    let interior = depth > 0 && rng.chance(0.4);
    if !interior {
        return match rng.index(3) {
            0 => Stmt::LoadMix(rng.next_u64() as u8),
            1 => Stmt::Arith(rng.next_u64() as u8, rng.next_u64() as i8),
            _ => Stmt::Store,
        };
    }
    if rng.next_bool() {
        let trips = rng.range_i64(1, 4) as u8;
        let body = random_stmts(rng, depth - 1, 1, 3);
        Stmt::Loop(trips, body)
    } else {
        let then = random_stmts(rng, depth - 1, 1, 2);
        let els = random_stmts(rng, depth - 1, 0, 2);
        Stmt::Branch(then, els)
    }
}

fn random_stmts(rng: &mut Xoshiro256, depth: u32, min: usize, max: usize) -> Vec<Stmt> {
    let n = rng.range_usize(min, max);
    (0..n).map(|_| random_stmt(rng, depth)).collect()
}

/// Emit a statement list; returns the new accumulator. `store_id` hands
/// each Store statement a disjoint 64-word output block.
fn emit(
    c: &mut Ctx,
    stmts: &[Stmt],
    mut acc: Val,
    input: i64,
    out: i64,
    store_id: &Cell<i64>,
) -> Val {
    for s in stmts {
        match s {
            Stmt::LoadMix(op) => {
                let masked = c.and(acc, 63);
                let addr = c.add(masked, input);
                let v = c.load(addr);
                acc = mix(c, *op, acc, v);
            }
            Stmt::Arith(op, k) => {
                let kv = c.imm(i64::from(*k));
                acc = mix(c, *op, acc, kv);
            }
            Stmt::Store => {
                let block = out + store_id.get() * 64;
                store_id.set(store_id.get() + 1);
                let masked = c.and(acc, 63);
                let addr = c.add(masked, block);
                c.store(addr, acc);
            }
            Stmt::Loop(trips, body) => {
                let exits = c.for_range(0, i64::from(*trips), 1, &[acc], &[], |c, i, vars, _| {
                    let a = c.add(vars[0], i);
                    vec![emit_boxed(c, body, a, input, out, store_id)]
                });
                acc = exits[0];
            }
            Stmt::Branch(t, e) => {
                let odd = c.and(acc, 1);
                let cnd = c.ne(odd, 0);
                let merged = c.if_else(
                    cnd,
                    &[acc],
                    |c, ins| vec![emit_boxed(c, t, ins[0], input, out, store_id)],
                    |c, ins| vec![emit_boxed(c, e, ins[0], input, out, store_id)],
                );
                acc = merged[0];
            }
        }
    }
    acc
}

/// Indirection so the recursive closure types stay finite.
fn emit_boxed(
    c: &mut Ctx,
    stmts: &[Stmt],
    acc: Val,
    input: i64,
    out: i64,
    store_id: &Cell<i64>,
) -> Val {
    emit(c, stmts, acc, input, out, store_id)
}

fn mix(c: &mut Ctx, op: u8, a: Val, b: Val) -> Val {
    match op % 6 {
        0 => c.add(a, b),
        1 => c.sub(a, b),
        2 => c.xor(a, b),
        3 => {
            let m = c.mul(a, b);
            c.and(m, 0xFFFF)
        }
        4 => c.min(a, b),
        _ => {
            let s = c.add(a, b);
            c.shr(s, 1)
        }
    }
}

/// Count Store statements so the output region can be sized.
fn count_stores(stmts: &[Stmt]) -> i64 {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Store => 1,
            Stmt::Loop(_, b) => count_stores(b),
            Stmt::Branch(t, e) => count_stores(t) + count_stores(e),
            _ => 0,
        })
        .sum()
}

fn build_program(stmts: &[Stmt]) -> (Workload, i64) {
    let params = MemParams::tiny();
    let mut mem = SimMemory::new(&params);
    let input_data: Vec<i64> = (0..64)
        .map(|i| (i * 2654435761u64 as i64) % 997 - 498)
        .collect();
    let input = mem.alloc_init(&input_data);
    let nstores = count_stores(stmts).max(1);
    let out = mem.alloc((nstores * 64) as usize);
    let stmts = stmts.to_vec();
    let kernel = Kernel::build("prop", move |c| {
        let acc0 = c.stream_const(7);
        let store_id = Cell::new(0i64);
        let acc = emit(c, &stmts, acc0, input, out, &store_id);
        c.sink(acc, "acc");
    });
    let w = Workload {
        name: "prop",
        kernel,
        mem,
        checks: vec![],
        par: 1,
    };
    (w, out)
}

#[test]
fn timed_engine_matches_interpreter() {
    let mut rng = Xoshiro256::seed_from_u64(0xD1FF);
    for _case in 0..48 {
        let stmts = random_stmts(&mut rng, 3, 1, 4);
        let fifo_depth = rng.range_usize(1, 5);
        let max_outstanding = rng.range_usize(1, 3);
        let model_pick = rng.index(4) as u8;
        // Vary the placement too: random heuristic and annealing seed, so
        // correctness is checked across genuinely different layouts.
        let heuristic = match rng.index(3) {
            0 => Heuristic::DomainUnaware,
            1 => Heuristic::OnlyDomainAware,
            _ => Heuristic::CriticalityAware,
        };
        let place_seed = rng.next_u64();

        let (w, _out) = build_program(&stmts);
        // Reference: untimed interpreter.
        let mut ref_mem = w.fresh_mem();
        let mut it = Interp::new(w.kernel.dfg());
        for (pid, v) in w.kernel.bindings(&[]) {
            it.bind(pid, v);
        }
        let ref_result = it.run(ref_mem.words_mut()).expect("interp runs");
        assert!(ref_result.is_balanced(), "lowering must be token-balanced");

        // Timed engine under a random configuration.
        let model = match model_pick {
            0 => MemoryModel::Nupea,
            1 => MemoryModel::Upea(0),
            2 => MemoryModel::Upea(3),
            _ => MemoryModel::NumaUpea(2),
        };
        let fabric = Fabric::monaco(12, 12, 3).expect("fabric");
        let netlist = Netlist::from_dfg(w.kernel.dfg());
        let place_cfg = PlaceConfig {
            heuristic,
            seed: place_seed,
            effort: 64,
            ..PlaceConfig::default()
        };
        let pe_of = place(&fabric, &netlist, &place_cfg)
            .expect("random programs fit the 12x12 fabric")
            .pe_of;
        let mut cfg = SimConfig::default();
        cfg.model = model;
        cfg.mem = MemParams::tiny();
        cfg.divider = 2;
        cfg.fifo_depth = fifo_depth;
        cfg.max_outstanding = max_outstanding;
        cfg.numa_seed = 11;
        cfg.max_cycles = 50_000_000;
        let mut mem = w.fresh_mem();
        let mut engine = Engine::new(w.kernel.dfg(), &fabric, &pe_of, cfg);
        for (pid, v) in w.kernel.bindings(&[]) {
            engine.bind(pid, v);
        }
        let stats = engine.run(&mut mem).expect("engine runs");
        assert_eq!(stats.residual_tokens, 0, "timed run must drain");
        assert_eq!(&stats.sinks, &ref_result.sinks, "sink streams must agree");
        assert_eq!(
            mem.words(),
            ref_mem.words(),
            "final memory must agree (model {model}, fifo {fifo_depth}, outstanding {max_outstanding})"
        );
    }
}

#[test]
fn differential_regression_fixed_programs() {
    // A few hand-picked shapes that stressed past bugs: zero-trip loops,
    // branch-in-loop, store bursts.
    let programs: Vec<Vec<Stmt>> = vec![
        vec![Stmt::Loop(4, vec![Stmt::LoadMix(0), Stmt::Store])],
        vec![Stmt::Loop(
            3,
            vec![Stmt::Branch(
                vec![Stmt::Store, Stmt::Arith(1, 5)],
                vec![Stmt::LoadMix(2)],
            )],
        )],
        vec![
            Stmt::Arith(0, 63),
            Stmt::Loop(2, vec![Stmt::Loop(3, vec![Stmt::LoadMix(3), Stmt::Store])]),
            Stmt::Store,
        ],
        vec![Stmt::Branch(vec![], vec![Stmt::Loop(2, vec![Stmt::Store])])],
    ];
    for (i, p) in programs.iter().enumerate() {
        let (w, _) = build_program(p);
        let mut ref_mem = w.fresh_mem();
        let mut it = Interp::new(w.kernel.dfg());
        for (pid, v) in w.kernel.bindings(&[]) {
            it.bind(pid, v);
        }
        let r = it.run(ref_mem.words_mut()).unwrap();
        assert!(r.is_balanced(), "program {i}");

        let fabric = Fabric::monaco(8, 8, 3).unwrap();
        let netlist = Netlist::from_dfg(w.kernel.dfg());
        let pe_of = place(&fabric, &netlist, &PlaceConfig::default())
            .unwrap()
            .pe_of;
        let mut mem = w.fresh_mem();
        let mut cfg = SimConfig::default();
        cfg.mem = MemParams::tiny();
        cfg.fifo_depth = 2;
        cfg.max_outstanding = 1;
        let mut e = Engine::new(w.kernel.dfg(), &fabric, &pe_of, cfg);
        for (pid, v) in w.kernel.bindings(&[]) {
            e.bind(pid, v);
        }
        let stats = e.run(&mut mem).unwrap();
        assert_eq!(stats.sinks, r.sinks, "program {i}");
        assert_eq!(mem.words(), ref_mem.words(), "program {i}");
    }
}

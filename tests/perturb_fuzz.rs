//! Latency-perturbation fuzzing (schedule fuzzing): every workload must
//! produce bit-identical sinks and final memory when seeded random extra
//! latency is injected into NoC deliveries and memory completions.
//!
//! The timed engine's correctness must come from its dataflow ordering
//! rules (operand FIFOs, credit backpressure, in-issue-order memory
//! responses), never from incidental timing coincidences. Jitter shakes
//! the schedule hard; only cycle counts may move.

use nupea::Scale;
use nupea_fabric::Fabric;
use nupea_kernels::workloads::{all_workloads, Workload};
use nupea_pnr::{place::place, Netlist, PlaceConfig};
use nupea_sim::{Engine, MemoryModel, PerturbConfig, RunStats, SimConfig, SimMemory};

/// Place a workload kernel through the real PnR placer (criticality-aware,
/// default seed) — the one placement code path shared with `nupea::compile`.
fn placed(w: &Workload, fabric: &Fabric) -> Vec<nupea_fabric::PeId> {
    let netlist = Netlist::from_dfg(w.kernel.dfg());
    place(fabric, &netlist, &PlaceConfig::default())
        .unwrap_or_else(|e| panic!("{}: placement failed: {e}", w.name))
        .pe_of
}

fn run_once(
    w: &Workload,
    fabric: &Fabric,
    pe_of: &[nupea_fabric::PeId],
    model: MemoryModel,
    perturb: PerturbConfig,
) -> (RunStats, SimMemory) {
    let mut cfg = SimConfig::default();
    cfg.model = model;
    cfg.perturb = perturb;
    let mut mem = w.fresh_mem();
    let mut engine = Engine::new(w.kernel.dfg(), fabric, pe_of, cfg);
    for (pid, v) in w.kernel.bindings(&[]) {
        engine.bind(pid, v);
    }
    let stats = engine
        .run(&mut mem)
        .unwrap_or_else(|e| panic!("{} (seed {}): {e}", w.name, perturb.seed));
    (stats, mem)
}

/// All workloads, all perturbation seeds: identical results, only timing
/// moves. Release CI runs the full seed set; debug keeps the suite fast.
#[test]
fn all_workloads_are_schedule_invariant_under_perturbation() {
    let fabric = Fabric::monaco(12, 12, 3).expect("monaco fabric");
    let seeds: &[u64] = if cfg!(debug_assertions) {
        &[0xA11CE, 0xB0B]
    } else {
        &[0xA11CE, 0xB0B, 0xC0FFEE, 0x5EED]
    };
    // One deliberately heavy configuration beyond the default jitter caps.
    let heavy = PerturbConfig {
        seed: 0xFEED,
        max_noc_jitter: 9,
        max_mem_jitter: 23,
    };

    for spec in all_workloads() {
        let w = spec.build_default(Scale::Test);
        let pe_of = placed(&w, &fabric);
        let (base, base_mem) =
            run_once(&w, &fabric, &pe_of, MemoryModel::Nupea, PerturbConfig::OFF);
        w.validate(&base_mem, &base.sinks)
            .unwrap_or_else(|e| panic!("{}: baseline invalid: {e}", w.name));

        let configs = seeds
            .iter()
            .map(|&s| PerturbConfig::with_seed(s))
            .chain(std::iter::once(heavy));
        for p in configs {
            let (stats, mem) = run_once(&w, &fabric, &pe_of, MemoryModel::Nupea, p);
            assert_eq!(
                stats.sinks, base.sinks,
                "{}: sinks diverged under perturbation seed {}",
                w.name, p.seed
            );
            assert_eq!(
                mem.words(),
                base_mem.words(),
                "{}: final memory diverged under perturbation seed {}",
                w.name,
                p.seed
            );
            assert_eq!(
                stats.residual_tokens, base.residual_tokens,
                "{}: token balance changed under perturbation seed {}",
                w.name, p.seed
            );
        }
    }
}

/// Perturbation is deterministic in its seed: the same seed reproduces
/// the exact same cycle count, so fuzz failures can be replayed.
#[test]
fn perturbed_runs_replay_deterministically() {
    let fabric = Fabric::monaco(12, 12, 3).expect("monaco fabric");
    let spec = all_workloads()
        .into_iter()
        .find(|s| s.name == "spmv")
        .expect("spmv registered");
    let w = spec.build_default(Scale::Test);
    let pe_of = placed(&w, &fabric);
    let p = PerturbConfig::with_seed(0xA11CE);
    let (a, _) = run_once(&w, &fabric, &pe_of, MemoryModel::Nupea, p);
    let (b, _) = run_once(&w, &fabric, &pe_of, MemoryModel::Nupea, p);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.firings, b.firings);
}

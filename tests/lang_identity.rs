//! Identity proof for the eDSL port of `spmspv`: the `kernel!`-authored
//! program in `wave2::spmspv_lang` must lower to a dataflow graph
//! **node-for-node identical** to the hand-written builder version in
//! `sparse::spmspv`, and therefore compile, place, and simulate to the
//! exact same cycle count. This pins the lowering's fidelity: the eDSL
//! is a front end, not a different compiler.

use nupea::{Heuristic, MemoryModel, Scale, SystemConfig};
use nupea_kernels::workloads::{sparse, wave2};

#[test]
fn spmspv_lang_graph_is_identical_to_handwritten() {
    for par in [1usize, 4] {
        let hand = sparse::spmspv(Scale::Test, par);
        let lang = wave2::spmspv_lang(Scale::Test, par);
        assert_eq!(
            hand.kernel.dfg().dump(),
            lang.kernel.dfg().dump(),
            "par={par}: graphs differ"
        );
        // Same inputs too: the memory images must match word-for-word.
        assert_eq!(hand.mem.words(), lang.mem.words(), "par={par}: memory");
    }
}

#[test]
fn spmspv_lang_simulates_cycle_identical() {
    for (scale, par) in [(Scale::Test, 1usize), (Scale::Test, 4), (Scale::Bench, 4)] {
        let hand = sparse::spmspv(scale, par);
        let lang = wave2::spmspv_lang(scale, par);
        let sys = SystemConfig::monaco_12x12();
        let run = |w: &nupea::Workload| {
            let c = sys
                .compile(w, Heuristic::CriticalityAware)
                .expect("compiles");
            c.simulate(MemoryModel::Nupea).expect("simulates").cycles
        };
        assert_eq!(
            run(&hand),
            run(&lang),
            "{scale:?} par={par}: cycle counts diverge"
        );
    }
}

//! End-to-end smoke test of the `nupea-serve` binary (the CI
//! `serve-smoke` job): boots the real server process, checks health,
//! exercises the compile cache across requests, diffs a served
//! `/simulate` response against the `nupea_batch` CLI's bytes for the
//! same config, inspects `/stats` percentiles, and shuts down cleanly.

use nupea_serve::client::{post, request};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

const CONFIG: &str = "{\"workload\":\"spmv\",\"effort\":0,\"seed\":3}";

/// Guard that kills the server if the test panics before shutdown.
struct ServerProc(Child);

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn start_server() -> (ServerProc, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_nupea-serve"))
        .args(["--addr", "127.0.0.1:0", "--batch-wait-ms", "0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn nupea-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server announces its address")
        .expect("read banner");
    let addr: SocketAddr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .parse()
        .expect("parse announced address");
    // Keep draining stdout in the background so the server never blocks
    // on a full pipe; the final stats line is checked via /stats instead.
    std::thread::spawn(move || for _ in lines {});
    (ServerProc(child), addr)
}

#[test]
fn serve_smoke() {
    let (mut server, addr) = start_server();

    // Health.
    let health = request(addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(health.status, 200, "{health:?}");
    assert!(health.body_str().contains("\"ok\":true"), "{health:?}");

    // One compile, then two identical simulates: the first simulate
    // reuses the /compile artifact, the second hits it again.
    let compiled = post(addr, "/compile", CONFIG).expect("compile");
    assert_eq!(compiled.status, 200, "{compiled:?}");
    assert!(
        compiled.body_str().contains("\"compile_cached\":false"),
        "first compile is a miss: {compiled:?}"
    );

    let first = post(addr, "/simulate", CONFIG).expect("simulate 1");
    assert_eq!(first.status, 200, "{first:?}");
    assert!(
        first.body_str().contains("\"compile_cached\":true"),
        "simulate after compile rides the cache: {first:?}"
    );

    let second = post(addr, "/simulate", CONFIG).expect("simulate 2");
    assert_eq!(second.status, 200, "{second:?}");
    assert_eq!(
        first.body, second.body,
        "identical configs produce identical records"
    );

    // Byte-identity against the batch CLI: same config, same record
    // bytes — except the cache disposition, which the CLI (cold, single
    // run) reports as false and the warmed server as true.
    let batch = Command::new(env!("CARGO_BIN_EXE_nupea_batch"))
        .arg(CONFIG)
        .output()
        .expect("run nupea_batch");
    assert!(batch.status.success(), "{batch:?}");
    let batch_body = String::from_utf8(batch.stdout).expect("utf-8 record");
    assert_eq!(
        first
            .body_str()
            .replace("\"compile_cached\":true", "\"compile_cached\":false"),
        batch_body.trim_end_matches('\n'),
        "served record must be byte-identical to the batch CLI's"
    );

    // Stats: the cache saw 1 compile, 2 hits (the simulates), and the
    // latency histograms carry real counts and percentiles.
    let stats = request(addr, "GET", "/stats", "").expect("stats");
    let s = stats.body_str();
    assert!(s.contains("\"compiles\":1"), "{s}");
    assert!(s.contains("\"hits\":2"), "{s}");
    assert!(s.contains("\"misses\":1"), "{s}");
    assert!(s.contains("\"simulate\":{\"count\":2"), "{s}");
    assert!(s.contains("\"p50_us\":"), "{s}");
    assert!(s.contains("\"p99_us\":"), "{s}");

    // Clean shutdown: the endpoint answers, then the process exits 0.
    let bye = post(addr, "/shutdown", "").expect("shutdown");
    assert_eq!(bye.status, 200, "{bye:?}");
    let status = server.0.wait().expect("server exit status");
    assert!(status.success(), "clean exit, got {status:?}");
}

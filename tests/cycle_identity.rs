//! Golden cycle-count identity: every workload in the registry, compiled
//! with its standard heuristic and simulated under every primary memory
//! model, must reproduce the committed cycle counts, sink streams, and
//! `RunStats` aggregates exactly.
//!
//! This file is the safety net for engine rewrites: any change to firing
//! order, event scheduling, memory arbitration, or energy accounting shows
//! up as a byte-level diff against `tests/golden_cycles.json`. The golden
//! file was generated with the pre-rewrite hybrid-tick engine, so passing
//! this test means the event-driven kernel is bit-identical to it.
//!
//! Regenerate (only when an intentional timing change lands) with:
//!
//! ```text
//! NUPEA_REGEN_GOLDEN=1 cargo test --release --test cycle_identity
//! ```

use nupea::experiments::{heuristic_for, primary_models};
use nupea::{Scale, SystemConfig};
use nupea_kernels::workloads::all_workloads;
use std::fmt::Write as _;

const GOLDEN_PATH: &str = "tests/golden_cycles.json";

/// FNV-1a over the sink streams (stream boundaries included), so the full
/// output data is locked without committing megabytes of values.
fn sink_hash(sinks: &[Vec<i64>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for stream in sinks {
        mix(&(stream.len() as u64).to_le_bytes());
        for &v in stream {
            mix(&v.to_le_bytes());
        }
    }
    h
}

/// One JSON object per (workload, model), every field exact.
fn golden_text() -> String {
    let sys = SystemConfig::monaco_12x12();
    let mut out = String::from("[\n");
    let mut first = true;
    for spec in all_workloads() {
        let w = spec.build_default(Scale::Test);
        for model in primary_models() {
            let compiled = sys
                .compile(&w, heuristic_for(model))
                .unwrap_or_else(|e| panic!("{}: pnr failed: {e}", spec.name));
            let s = compiled
                .simulate(model)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", spec.name, model.label()));
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let lat: Vec<String> = s
                .load_latency_by_domain
                .iter()
                .map(|d| format!("[{},{}]", d.total_latency, d.count))
                .collect();
            let sink_values: usize = s.sinks.iter().map(Vec::len).sum();
            let _ = write!(
                out,
                "{{\"workload\":\"{}\",\"model\":\"{}\",\
                 \"cycles\":{},\"fabric_cycles\":{},\"divider\":{},\
                 \"firings\":{},\"active_pes\":{},\
                 \"sink_streams\":{},\"sink_values\":{},\"sink_hash\":\"{:016x}\",\
                 \"residual_tokens\":{},\
                 \"mem_requests\":{},\"arbiter_forwards\":{},\"bank_wait_cycles\":{},\
                 \"cache_hits\":{},\"cache_misses\":{},\
                 \"load_latency\":[{}],\
                 \"energy_alu\":{},\"energy_control\":{},\"energy_noc\":{},\
                 \"energy_mem_issue\":{},\"energy_fmnoc\":{},\"energy_memory\":{}}}",
                spec.name,
                model.label(),
                s.cycles,
                s.fabric_cycles,
                s.divider,
                s.firings,
                s.active_pes(),
                s.sinks.len(),
                sink_values,
                sink_hash(&s.sinks),
                s.residual_tokens,
                s.mem.requests,
                s.mem.arbiter_forwards,
                s.mem.bank_wait_cycles,
                s.mem.cache_hits,
                s.mem.cache_misses,
                lat.join(","),
                s.energy.alu,
                s.energy.control,
                s.energy.noc,
                s.energy.mem_issue,
                s.energy.fmnoc,
                s.energy.memory,
            );
        }
    }
    out.push_str("\n]\n");
    out
}

#[test]
fn all_workloads_match_golden_cycle_counts() {
    let current = golden_text();
    if std::env::var_os("NUPEA_REGEN_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &current).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("tests/golden_cycles.json missing — regenerate with NUPEA_REGEN_GOLDEN=1");
    if golden != current {
        // Line-level diff so the failing (workload, model, field) is
        // readable without external tooling.
        for (g, c) in golden.lines().zip(current.lines()) {
            if g != c {
                panic!(
                    "cycle identity diverged from golden:\n  golden:  {g}\n  current: {c}\n\
                     (regenerate only for intentional timing changes: \
                     NUPEA_REGEN_GOLDEN=1 cargo test --test cycle_identity)"
                );
            }
        }
        panic!("cycle identity diverged from golden (line count changed)");
    }
}

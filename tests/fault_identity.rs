//! Fault-injection acceptance (DESIGN.md §9):
//!
//! 1. **Zero overhead when disabled** — a build with the fault hooks but
//!    `FaultConfig::OFF` is bit-identical, cycle counts included, to one
//!    without them, for every workload in the registry (the
//!    `trace_identity.rs`-style differential).
//! 2. **Recovery end-to-end** — a hard PE failure is detected, the
//!    avoid-set re-place succeeds, and the recovered run's sinks and
//!    final memory are bit-identical to the fault-free golden run.
//! 3. **Campaign determinism** — the same seed and plan produce a
//!    byte-identical resilience report across two runs.

use nupea::{
    CampaignConfig, FaultCampaign, Heuristic, OutcomeClass, PeId, RecoveryOutcome, SimOptions,
    SystemConfig,
};
use nupea::{FaultConfig, FaultKind, MemoryModel, Scale};
use nupea_fabric::Fabric;
use nupea_kernels::workloads::{all_workloads, workload_by_name, Workload};
use nupea_pnr::{place::place, Netlist, PlaceConfig};
use nupea_sim::{Engine, RunStats, SimConfig, SimMemory};

fn run_once(
    w: &Workload,
    fabric: &Fabric,
    pe_of: &[PeId],
    fault: FaultConfig,
) -> (RunStats, SimMemory) {
    let mut cfg = SimConfig::default();
    cfg.model = MemoryModel::Nupea;
    cfg.fault = fault;
    let mut mem = w.fresh_mem();
    let mut engine = Engine::new(w.kernel.dfg(), fabric, pe_of, cfg);
    for (pid, v) in w.kernel.bindings(&[]) {
        engine.bind(pid, v);
    }
    let stats = engine
        .run(&mut mem)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    (stats, mem)
}

/// All 13 workloads: a run with `FaultConfig::OFF` is identical in every
/// architectural observable — cycles, firings, sinks, final memory,
/// per-domain latency, per-PE firings, link traffic — to the default
/// configuration (which predates the fault hooks).
#[test]
fn disabled_fault_hooks_are_invisible_to_every_workload() {
    let fabric = Fabric::monaco(12, 12, 3).expect("monaco fabric");
    for spec in all_workloads() {
        let w = spec.build_default(Scale::Test);
        let netlist = Netlist::from_dfg(w.kernel.dfg());
        let pe_of = place(&fabric, &netlist, &PlaceConfig::default())
            .unwrap_or_else(|e| panic!("{}: placement failed: {e}", w.name))
            .pe_of;
        let (base, base_mem) = {
            let mut cfg = SimConfig::default();
            cfg.model = MemoryModel::Nupea;
            assert!(!cfg.fault.enabled(), "fault hooks must default off");
            let mut mem = w.fresh_mem();
            let mut engine = Engine::new(w.kernel.dfg(), &fabric, &pe_of, cfg);
            for (pid, v) in w.kernel.bindings(&[]) {
                engine.bind(pid, v);
            }
            let stats = engine
                .run(&mut mem)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            (stats, mem)
        };
        let (off, off_mem) = run_once(&w, &fabric, &pe_of, FaultConfig::OFF);

        assert_eq!(off.cycles, base.cycles, "{}: cycles moved", w.name);
        assert_eq!(off.fabric_cycles, base.fabric_cycles, "{}", w.name);
        assert_eq!(off.firings, base.firings, "{}: firings moved", w.name);
        assert_eq!(off.sinks, base.sinks, "{}: sinks moved", w.name);
        assert_eq!(
            off_mem.words(),
            base_mem.words(),
            "{}: memory moved",
            w.name
        );
        assert_eq!(
            off.load_latency_by_domain, base.load_latency_by_domain,
            "{}: latency stats moved",
            w.name
        );
        assert_eq!(off.firings_per_pe, base.firings_per_pe, "{}", w.name);
        assert_eq!(off.link_traffic, base.link_traffic, "{}", w.name);
    }
}

/// The tentpole scenario end-to-end, without the campaign wrapper: kill a
/// PE the golden placement uses, watch the run fail, re-place around the
/// avoid-set, and get golden-identical outputs back at a measurable
/// degraded-mode cost.
#[test]
fn pe_failure_recovers_via_avoid_set_replace() {
    let spec = workload_by_name("spmv").expect("spmv registered");
    let w = spec.build_default(Scale::Test);
    let sys = SystemConfig::monaco_12x12();
    let golden_compiled = sys
        .compile(&w, Heuristic::CriticalityAware)
        .expect("golden");
    let golden_out = golden_compiled
        .simulate_with(
            &SimOptions::new(MemoryModel::Nupea)
                .no_validate()
                .keep_memory(),
        )
        .expect("golden runs");
    let (golden, golden_mem) = (
        golden_out.stats,
        golden_out.memory.expect("memory was requested"),
    );

    // Fail the busiest PE of the golden placement from reset — spmv
    // cannot complete without it.
    let dead = golden
        .firings_per_pe
        .iter()
        .enumerate()
        .max_by_key(|(_, &f)| f)
        .map(|(pe, _)| pe as u32)
        .expect("some PE fired");
    let kind = FaultKind::PeFail { pe: dead, at: 0 };

    let budget = golden.cycles * 4 + 20_000;
    let injected = golden_compiled.simulate_with(
        &SimOptions::new(MemoryModel::Nupea)
            .fault(FaultConfig::inject(kind))
            .stall_window(20_000)
            .max_cycles(budget)
            .no_validate()
            .keep_memory(),
    );
    let detected = match injected {
        Err(_) => true,
        Ok(ref out) => {
            out.stats.sinks != golden.sinks
                || out.memory.as_ref().expect("memory was requested").words() != golden_mem.words()
        }
    };
    assert!(detected, "killing the busiest PE must be detectable");

    // Recovery: avoid the failed PE and re-place.
    let mut rec_sys = sys.clone();
    rec_sys.avoid = vec![PeId(dead)];
    let recovered_compiled = rec_sys
        .compile(&w, Heuristic::CriticalityAware)
        .expect("the 12x12 fabric has spare PEs for spmv");
    assert!(
        !recovered_compiled.placed.pe_of.contains(&PeId(dead)),
        "re-place must not use the failed PE"
    );
    let recovered_out = recovered_compiled
        .simulate_with(
            &SimOptions::new(MemoryModel::Nupea)
                .no_validate()
                .keep_memory(),
        )
        .expect("recovered run completes");
    let (recovered, recovered_mem) = (
        recovered_out.stats,
        recovered_out.memory.expect("memory was requested"),
    );
    assert_eq!(
        recovered.sinks, golden.sinks,
        "recovered sinks must be bit-identical to golden"
    );
    assert_eq!(
        recovered_mem.words(),
        golden_mem.words(),
        "recovered memory must be bit-identical to golden"
    );
    assert!(recovered.cycles > 0);
}

/// Same seed + same plan → byte-identical resilience report (JSON and
/// CSV), across two fresh campaign runs over several workloads.
#[test]
fn campaign_reports_are_byte_identical_across_runs() {
    let run = || {
        let mut cfg = CampaignConfig::smoke();
        cfg.injections = 2;
        let mut campaign = FaultCampaign::new(cfg);
        for name in ["spmv", "dmv"] {
            let spec = workload_by_name(name).unwrap();
            campaign.workload(spec.build_default(Scale::Test));
        }
        campaign.run().expect("campaign runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.to_json(), b.to_json(), "JSON reports must be identical");
    assert_eq!(a.to_csv(), b.to_csv(), "CSV reports must be identical");
    assert_eq!(a.records.len(), 4);
    assert_eq!(a.count(OutcomeClass::Sdc), 0, "PE failures are never SDCs");
    for r in &a.records {
        if r.outcome == OutcomeClass::Hang {
            assert_eq!(
                r.recovery,
                RecoveryOutcome::Unplaceable,
                "{}#{}: a PE-failure hang is only acceptable on exhausted capacity",
                r.workload,
                r.index
            );
        }
    }
}

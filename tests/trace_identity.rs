//! Tracing must be an observer, never a participant: a run with the
//! event recorder on must be cycle-for-cycle identical to a run with it
//! off, for every workload in the registry. And the trace must be a
//! faithful log — aggregating its memory-delivery events reproduces the
//! engine's own per-domain latency statistics exactly.

use nupea::Scale;
use nupea_fabric::Fabric;
use nupea_kernels::workloads::{all_workloads, Workload};
use nupea_pnr::{place::place, Netlist, PlaceConfig};
use nupea_sim::{Engine, MemoryModel, RunStats, SimConfig, SimMemory, TraceBuffer, TraceConfig};

fn run_once(
    w: &Workload,
    fabric: &Fabric,
    pe_of: &[nupea_fabric::PeId],
    model: MemoryModel,
    trace: TraceConfig,
) -> (RunStats, SimMemory, Option<TraceBuffer>) {
    let mut cfg = SimConfig::default();
    cfg.model = model;
    cfg.trace = trace;
    let mut mem = w.fresh_mem();
    let mut engine = Engine::new(w.kernel.dfg(), fabric, pe_of, cfg);
    for (pid, v) in w.kernel.bindings(&[]) {
        engine.bind(pid, v);
    }
    let stats = engine
        .run(&mut mem)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let trace = engine.take_trace();
    (stats, mem, trace)
}

/// All 13 workloads: trace-on and trace-off runs are identical in every
/// architectural observable — cycles, firings, sinks, final memory,
/// per-domain latency — and the recorded trace agrees with the stats.
#[test]
fn tracing_is_invisible_to_every_workload() {
    let fabric = Fabric::monaco(12, 12, 3).expect("monaco fabric");
    for spec in all_workloads() {
        let w = spec.build_default(Scale::Test);
        let netlist = Netlist::from_dfg(w.kernel.dfg());
        let pe_of = place(&fabric, &netlist, &PlaceConfig::default())
            .unwrap_or_else(|e| panic!("{}: placement failed: {e}", w.name))
            .pe_of;
        let (off, off_mem, no_trace) =
            run_once(&w, &fabric, &pe_of, MemoryModel::Nupea, TraceConfig::OFF);
        assert!(
            no_trace.is_none(),
            "{}: trace-off must record nothing",
            w.name
        );
        let (on, on_mem, trace) =
            run_once(&w, &fabric, &pe_of, MemoryModel::Nupea, TraceConfig::on());
        let trace = trace.unwrap_or_else(|| panic!("{}: trace-on must record", w.name));

        assert_eq!(on.cycles, off.cycles, "{}: cycles moved", w.name);
        assert_eq!(on.fabric_cycles, off.fabric_cycles, "{}", w.name);
        assert_eq!(on.firings, off.firings, "{}: firings moved", w.name);
        assert_eq!(on.sinks, off.sinks, "{}: sinks moved", w.name);
        assert_eq!(on_mem.words(), off_mem.words(), "{}: memory moved", w.name);
        assert_eq!(
            on.load_latency_by_domain, off.load_latency_by_domain,
            "{}: latency stats moved",
            w.name
        );
        assert_eq!(on.firings_per_pe, off.firings_per_pe, "{}", w.name);
        assert_eq!(on.link_traffic, off.link_traffic, "{}", w.name);

        // Faithfulness: nothing dropped at Test scale, and the trace's
        // own aggregation equals the engine's.
        assert_eq!(
            trace.dropped, 0,
            "{}: ring overflowed at Test scale",
            w.name
        );
        assert_eq!(
            trace.load_latency_by_domain(),
            on.load_latency_by_domain,
            "{}: trace aggregation diverged from RunStats",
            w.name
        );
    }
}

/// The acceptance scenario: spmspv compiled and simulated through the
/// full pipeline under NUPEA vs UPEA-2. Both traces must validate as
/// Chrome trace JSON and reproduce `RunStats::load_latency_by_domain`
/// exactly; NUPEA must beat UPEA-2 on mean critical-path load latency.
#[test]
fn spmspv_nupea_vs_upea_traces_match_stats_exactly() {
    use nupea::{Heuristic, SystemConfig};
    let spec = all_workloads()
        .into_iter()
        .find(|s| s.name == "spmspv")
        .expect("spmspv registered");
    let w = spec.build_default(Scale::Test);
    let sys = SystemConfig::monaco_12x12();

    let mean = |model, heuristic| {
        let compiled = sys.compile(&w, heuristic).expect("spmspv compiles");
        let out = compiled
            .simulate_with(&nupea::SimOptions::new(model).trace())
            .expect("spmspv runs");
        let (stats, trace) = (out.stats, out.trace.expect("trace was requested"));
        assert_eq!(trace.dropped, 0);
        assert_eq!(
            trace.load_latency_by_domain(),
            stats.load_latency_by_domain,
            "{model}: trace aggregation must equal RunStats exactly"
        );
        let json = trace.to_chrome_json();
        let summary = nupea_sim::validate_chrome_trace(&json)
            .unwrap_or_else(|e| panic!("{model}: invalid Chrome trace: {e}"));
        assert!(summary.complete > 0, "{model}: no fire slices");
        let (total, count) = stats
            .load_latency_by_domain
            .iter()
            .fold((0u64, 0u64), |(t, c), d| (t + d.total_latency, c + d.count));
        assert!(count > 0, "{model}: no loads completed");
        total as f64 / count as f64
    };

    let nupea = mean(MemoryModel::Nupea, Heuristic::CriticalityAware);
    let upea = mean(MemoryModel::Upea(2), Heuristic::DomainUnaware);
    assert!(
        nupea < upea,
        "NUPEA mean load latency ({nupea:.2}) should beat UPEA-2 ({upea:.2})"
    );
}

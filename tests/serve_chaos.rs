//! Chaos and overload tests of the `nupea-serve` binary and library
//! (the CI `serve-chaos` job): a seeded hostile-client storm
//! (slow-loris, mid-body disconnects, injected panics, deadline storms)
//! must leave the server alive and answering byte-identical results;
//! overload must shed strictly by tier; shutdown must drain gracefully.

use nupea_serve::chaos::{self, ChaosConfig};
use nupea_serve::client::{post, request};
use nupea_serve::{ServeOptions, Server};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const CONFIG: &str = "{\"workload\":\"spmv\",\"effort\":0,\"seed\":3}";

/// Guard that kills the server if the test panics before shutdown.
struct ServerProc(Child);

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn start_server(extra: &[&str]) -> (ServerProc, SocketAddr) {
    // --chaos-hooks: the storm's injected panics ride the x_chaos
    // request hook, which the server refuses (403) unless opted in.
    let mut child = Command::new(env!("CARGO_BIN_EXE_nupea-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--batch-wait-ms",
            "0",
            "--chaos-hooks",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn nupea-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server announces its address")
        .expect("read banner");
    let addr: SocketAddr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .parse()
        .expect("parse announced address");
    std::thread::spawn(move || for _ in lines {});
    (ServerProc(child), addr)
}

/// Poll `/stats` until its body satisfies `pred` (or time out).
fn wait_for_stats(addr: SocketAddr, pred: impl Fn(&str) -> bool, what: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let body = request(addr, "GET", "/stats", "")
            .expect("stats")
            .body_str();
        if pred(&body) {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The full seeded storm against the real binary: every attack shape is
/// contained, the server stays alive, and a post-chaos `/simulate` is
/// byte-identical to the `nupea_batch` CLI.
#[test]
fn chaos_storm_is_contained_and_results_stay_byte_identical() {
    // A short read deadline so slow-loris connections are cut quickly.
    let (mut server, addr) = start_server(&["--read-timeout-ms", "300"]);

    let mut cfg = ChaosConfig::default();
    cfg.seed = 42;
    cfg.slow_loris = 2;
    cfg.disconnects = 2;
    cfg.panics = 2;
    cfg.deadline_storm = 3;
    cfg.trickle_ms = 40;
    cfg.trickle_bytes = 12; // 480ms of trickle against a 300ms deadline
    let report = chaos::run(addr, &cfg);
    assert!(report.alive_after, "server dead after chaos: {report:?}");
    assert!(report.contained(), "chaos leaked: {report:?}");

    // The storm's panics degraded nothing permanent: health is 200 and
    // not draining.
    let health = request(addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(health.status, 200, "{health:?}");
    assert!(!health.body_str().contains("draining"), "{health:?}");

    // Byte-identity survives the storm: a served record equals the
    // batch CLI's, modulo the cache-disposition flag.
    let served = post(addr, "/simulate", CONFIG).expect("post-chaos simulate");
    assert_eq!(served.status, 200, "{served:?}");
    let batch = Command::new(env!("CARGO_BIN_EXE_nupea_batch"))
        .arg(CONFIG)
        .output()
        .expect("run nupea_batch");
    assert!(batch.status.success(), "{batch:?}");
    let normalize = |s: &str| s.replace("\"compile_cached\":true", "\"compile_cached\":false");
    assert_eq!(
        normalize(&served.body_str()),
        normalize(
            String::from_utf8(batch.stdout)
                .expect("utf-8")
                .trim_end_matches('\n')
        ),
        "post-chaos served record must be byte-identical to the batch CLI's"
    );

    // Clean, graceful exit.
    let bye = post(addr, "/shutdown", "").expect("shutdown");
    assert_eq!(bye.status, 200, "{bye:?}");
    let status = server.0.wait().expect("server exit status");
    assert!(status.success(), "clean exit, got {status:?}");
}

/// Overload with a full queue sheds strictly by tier: every batch-tier
/// request is evicted with a tier-tagged 429 (valid `Retry-After`),
/// every critical request completes.
#[test]
fn overload_sheds_batch_tier_first_and_criticals_all_succeed() {
    let mut opts = ServeOptions::default();
    opts.http_workers = 16;
    opts.sim_threads = 1;
    opts.queue_cap = 4;
    opts.batch_max = 1;
    opts.batch_wait_ms = 0;
    opts.chaos_hooks = true;
    // Chaos sleeps are clamped to the read timeout; admit the long
    // stall below.
    opts.read_timeout_ms = 8_000;
    let server = Server::start(&opts).expect("bind");
    let addr = server.addr();

    // Stall the single-threaded executor with one slow job, so queue
    // admission decisions below are deterministic. The stall must
    // outlast every fill/evict step below even on a slow, loaded CI
    // runner — if it ended early the executor would drain the batch
    // tier and the shed assertions would race — so it is generous:
    // the window only ever holds a handful of loopback requests.
    let stall = std::thread::spawn(move || {
        post(
            addr,
            "/simulate",
            "{\"workload\":\"spmv\",\"effort\":0,\"x_chaos\":\"sleep:6000\"}",
        )
    });
    wait_for_stats(
        addr,
        |s| s.contains("\"executed\":1"),
        "stall job in flight",
    );

    // Fill the queue with batch-tier jobs.
    let batch_body = "{\"workload\":\"spmv\",\"effort\":0,\"priority\":\"batch\"}";
    let batch_clients: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || post(addr, "/simulate", batch_body)))
        .collect();
    wait_for_stats(
        addr,
        |s| s.contains("\"batch\":{\"depth\":4"),
        "batch tier queued",
    );

    // Critical arrivals evict them, one for one.
    let crit_body = "{\"workload\":\"spmv\",\"effort\":0,\"priority\":\"critical\"}";
    let crit_clients: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || post(addr, "/simulate", crit_body)))
        .collect();

    for c in batch_clients {
        let resp = c.join().unwrap().expect("shed batch response");
        assert_eq!(resp.status, 429, "{resp:?}");
        let body = resp.body_str();
        assert!(body.contains("\"tier\":\"batch\""), "{body}");
        assert!(body.contains("\"shed\":true"), "{body}");
        let retry = resp
            .headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("retry-after"))
            .map(|(_, v)| v.clone())
            .expect("429 carries Retry-After");
        assert!(
            retry.parse::<u64>().is_ok_and(|s| s >= 1),
            "Retry-After must be a positive integer, got {retry:?}"
        );
    }
    for c in crit_clients {
        let resp = c.join().unwrap().expect("critical response");
        assert_eq!(
            resp.status, 200,
            "criticals must survive overload: {resp:?}"
        );
    }
    assert_eq!(stall.join().unwrap().expect("stall response").status, 200);

    let stats = wait_for_stats(addr, |s| s.contains("\"shed\":4"), "shed counters");
    assert!(stats.contains("\"critical\":{\"depth\":0"), "{stats}");

    server.shutdown();
    server.wait();
}

/// Deadline storms never occupy simulation slots, and shutdown with a
/// zero drain budget finishes in-flight work but 503s the backlog.
#[test]
fn deadline_storm_spares_sim_slots_and_drain_is_graceful() {
    let mut opts = ServeOptions::default();
    opts.http_workers = 8;
    opts.sim_threads = 1;
    opts.queue_cap = 8;
    opts.batch_max = 1;
    opts.batch_wait_ms = 0;
    opts.drain_ms = 0;
    opts.chaos_hooks = true;
    let server = Server::start(&opts).expect("bind");
    let addr = server.addr();

    // Storm: every request expired on arrival. All 504, none executed.
    let storm_body = "{\"workload\":\"spmv\",\"effort\":0,\"deadline_ms\":0}";
    for _ in 0..5 {
        let resp = post(addr, "/simulate", storm_body).expect("storm response");
        assert_eq!(resp.status, 504, "{resp:?}");
        assert!(resp.body_str().contains("\"stage\":\"queue\""), "{resp:?}");
    }
    let stats = wait_for_stats(addr, |s| s.contains("\"expired\":5"), "expired counters");
    assert!(
        stats.contains(
            "\"normal\":{\"depth\":0,\"shed\":0,\"refused\":0,\"expired\":5,\"executed\":0"
        ),
        "storm must not consume executor slots: {stats}"
    );

    // Graceful drain: one slow job in flight, one queued behind it.
    // The stall must outlast the queued POST and the stats poll below
    // even on a slow runner, or the queued job would execute (200)
    // instead of being abandoned at the drain deadline (503).
    let inflight = std::thread::spawn(move || {
        post(
            addr,
            "/simulate",
            "{\"workload\":\"spmv\",\"effort\":0,\"x_chaos\":\"sleep:3000\"}",
        )
    });
    wait_for_stats(addr, |s| s.contains("\"executed\":1"), "slow job in flight");
    let queued = std::thread::spawn(move || post(addr, "/simulate", CONFIG));
    wait_for_stats(
        addr,
        |s| s.contains("\"normal\":{\"depth\":1"),
        "one job queued",
    );

    let bye = post(addr, "/shutdown", "").expect("shutdown");
    assert_eq!(bye.status, 200, "{bye:?}");
    assert!(bye.body_str().contains("\"stopping\":true"), "{bye:?}");

    let inflight = inflight.join().unwrap().expect("in-flight response");
    assert_eq!(
        inflight.status, 200,
        "in-flight work completes: {inflight:?}"
    );
    let queued = queued.join().unwrap().expect("queued response");
    assert_eq!(
        queued.status, 503,
        "backlog 503s at the drain deadline: {queued:?}"
    );

    server.wait(); // must return, not hang
}

//! Cross-crate integration tests: every workload, compiled with every
//! heuristic, simulated under every memory model, validated end to end
//! against its reference implementation in the *timed* simulator.

use nupea::experiments::{heuristic_for, primary_models};
use nupea::runner::ExperimentRunner;
use nupea::{auto_parallelize, Heuristic, MemoryModel, Scale, SystemConfig};
use nupea_kernels::workloads::{all_workloads, workload_by_name};

#[test]
fn all_workloads_validate_on_all_primary_models_test_scale() {
    let mut runner = ExperimentRunner::new();
    let sys = runner.system(SystemConfig::monaco_12x12());
    for spec in all_workloads() {
        let w = runner.workload(spec.build_default(Scale::Test));
        runner.model_sweep(w, sys, &primary_models());
    }
    let report = runner.run();
    assert_eq!(report.records.len(), all_workloads().len() * 4);
    for r in &report.records {
        assert!(
            r.error.is_none(),
            "{}/{}: {:?}",
            r.workload,
            r.model.label(),
            r.error
        );
        assert!(r.cycles > 0, "{}/{}", r.workload, r.model.label());
    }
    // One compile per (workload, heuristic): effcc for NUPEA plus one
    // shared domain-unaware compile for the three uniform baselines.
    assert_eq!(report.pnr_compiles, all_workloads().len() * 2);
    assert_eq!(report.cache_hits, all_workloads().len() * 2);
}

#[test]
fn all_workloads_validate_at_bench_scale_on_monaco() {
    let sys = SystemConfig::monaco_12x12();
    for spec in all_workloads() {
        let w = spec.build_default(Scale::Bench);
        let compiled = sys
            .compile(&w, Heuristic::CriticalityAware)
            .unwrap_or_else(|e| panic!("{}: pnr failed: {e}", spec.name));
        let stats = compiled
            .simulate(MemoryModel::Nupea)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(stats.residual_tokens, 0, "{}: unbalanced", spec.name);
    }
}

#[test]
fn all_heuristics_produce_correct_results() {
    let sys = SystemConfig::monaco_12x12();
    for name in ["spmspv", "dmv", "fft"] {
        let w = workload_by_name(name).unwrap().build_default(Scale::Test);
        for h in [
            Heuristic::DomainUnaware,
            Heuristic::OnlyDomainAware,
            Heuristic::CriticalityAware,
        ] {
            let c = sys.compile(&w, h).unwrap();
            c.simulate(MemoryModel::Nupea)
                .unwrap_or_else(|e| panic!("{name}/{h}: {e}"));
        }
    }
}

#[test]
fn upea_and_numa_sweeps_are_monotone_on_geomean() {
    // The headline scalability claim (Figs. 14/15): more uniform latency,
    // more time — on average across a few representative workloads.
    let sys = SystemConfig::monaco_12x12();
    for mk in [
        MemoryModel::Upea as fn(u32) -> MemoryModel,
        MemoryModel::NumaUpea as fn(u32) -> MemoryModel,
    ] {
        let mut prev = 0.0f64;
        for lat in [0u32, 2, 4] {
            let mut product = 1.0f64;
            let mut count = 0u32;
            for name in ["spmspv", "spadd", "tc"] {
                let w = workload_by_name(name).unwrap().build_default(Scale::Test);
                let c = sys.compile(&w, heuristic_for(mk(lat))).unwrap();
                let stats = c.simulate(mk(lat)).unwrap();
                product *= stats.cycles as f64;
                count += 1;
            }
            let geo = product.powf(1.0 / f64::from(count));
            assert!(
                geo >= prev,
                "latency {lat}: geomean {geo} regressed below {prev}"
            );
            prev = geo;
        }
    }
}

#[test]
fn monaco_beats_upea2_on_the_sparse_flagships() {
    // The paper's core result, at test scale, end to end.
    let sys = SystemConfig::monaco_12x12();
    for name in ["spmspv", "spmspm"] {
        let w = workload_by_name(name).unwrap().build_default(Scale::Bench);
        let monaco = sys.compile(&w, Heuristic::CriticalityAware).unwrap();
        let baseline = sys.compile(&w, Heuristic::DomainUnaware).unwrap();
        let nupea = monaco.simulate(MemoryModel::Nupea).unwrap();
        let upea2 = baseline.simulate(MemoryModel::Upea(2)).unwrap();
        assert!(
            (upea2.cycles as f64) > (nupea.cycles as f64) * 1.1,
            "{name}: NUPEA {} vs UPEA2 {} — expected >10% gap",
            nupea.cycles,
            upea2.cycles
        );
    }
}

#[test]
fn auto_parallelize_picks_a_performant_fit() {
    let spec = workload_by_name("spmv").unwrap();
    let sys = SystemConfig::monaco_12x12();
    let (w, c) = auto_parallelize(&spec, Scale::Test, &sys, Heuristic::CriticalityAware).unwrap();
    assert!(w.par >= 1);
    let chosen = c.simulate(MemoryModel::Nupea).unwrap();
    // The chosen degree must not lose to the trivial par=1 design (the
    // auto-parallelizer selects by simulated performance, §6).
    let base = (spec.build)(Scale::Test, 1);
    let base_c = sys.compile(&base, Heuristic::CriticalityAware).unwrap();
    let base_stats = base_c.simulate(MemoryModel::Nupea).unwrap();
    assert!(
        chosen.cycles <= base_stats.cycles,
        "auto-par chose {} ({} cyc) but par 1 runs in {} cyc",
        w.par,
        chosen.cycles,
        base_stats.cycles
    );
}

#[test]
fn determinism_same_seed_same_cycles() {
    let sys = SystemConfig::monaco_12x12();
    let w = workload_by_name("tc").unwrap().build_default(Scale::Test);
    let run = || {
        let c = sys.compile(&w, Heuristic::CriticalityAware).unwrap();
        c.simulate(MemoryModel::Nupea).unwrap().cycles
    };
    assert_eq!(run(), run(), "same seed must reproduce exactly");
}

#[test]
fn critical_loads_reach_fast_domains_across_workloads() {
    use nupea_ir::graph::Criticality;
    let sys = SystemConfig::monaco_12x12();
    for name in ["spmspv", "spmspm", "tc"] {
        let w = workload_by_name(name).unwrap().build_default(Scale::Bench);
        let c = sys.compile(&w, Heuristic::CriticalityAware).unwrap();
        let hist =
            c.placed
                .domain_histogram_for(w.kernel.dfg(), &sys.fabric, Criticality::Critical);
        let total: usize = hist.iter().sum();
        if total == 0 {
            continue;
        }
        assert!(
            hist[0] * 2 >= total,
            "{name}: most critical loads should sit in D0, got {hist:?}"
        );
    }
}

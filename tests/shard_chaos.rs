//! Chaos test for crash-tolerant distributed campaign execution (the
//! sharding PR's acceptance gate): spawn real worker subprocesses,
//! SIGKILL several at seeded-random points mid-run, and assert that
//!
//! 1. the survivors steal the dead workers' shards and finish the run,
//! 2. a resumed worker performs **zero** work (all shards done — no
//!    re-simulation of completed shards), and
//! 3. the merged resilience report / Pareto frontier is **byte-identical**
//!    to the single-process (`shards = 1`) output for the same seed.
//!
//! The worker binary is `src/bin/shard_worker.rs`; its campaign/search
//! configurations are duplicated here and must stay in sync.

use nupea::campaign::{CampaignConfig, FaultCampaign};
use nupea::shard::ShardOptions;
use nupea::{jsonl, Scale};
use nupea_dse::{DseConfig, SearchSpace};
use nupea_kernels::workloads::workload_by_name;
use nupea_rng::Xoshiro256;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_shard_worker");
const TTL_MS: u64 = 1_500;
const HEARTBEAT_MS: u64 = 150;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nupea-chaos-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Must match `shard_worker`'s `chaos_campaign`.
fn chaos_campaign() -> FaultCampaign {
    let mut cfg = CampaignConfig::smoke();
    cfg.injections = 2;
    cfg.threads = 2;
    let mut campaign = FaultCampaign::new(cfg);
    for name in ["spmv", "spmspv"] {
        campaign.workload(workload_by_name(name).unwrap().build_default(Scale::Test));
    }
    campaign
}

/// Must match `shard_worker`'s `chaos_space`.
fn chaos_space() -> SearchSpace {
    SearchSpace {
        domain_cols: vec![3],
        d0_cols: vec![2, 3],
        cache_words: vec![64 * 1024],
        effort: 32,
        ..SearchSpace::default()
    }
}

fn spawn_worker(mode: &str, dir: &Path, shards: u32, id: &str) -> Child {
    Command::new(WORKER_BIN)
        .args([
            mode,
            dir.to_str().unwrap(),
            &shards.to_string(),
            id,
            &TTL_MS.to_string(),
            &HEARTBEAT_MS.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn shard_worker")
}

/// Run one worker to completion and return its printed stats line.
fn run_worker_to_completion(mode: &str, dir: &Path, shards: u32, id: &str) -> String {
    let out = spawn_worker(mode, dir, shards, id)
        .wait_with_output()
        .expect("wait worker");
    assert!(out.status.success(), "worker {id} failed");
    String::from_utf8(out.stdout).expect("stats are utf-8")
}

/// The chaos schedule: spawn `workers`, SIGKILL `kills` of them at
/// seeded-random points mid-run (each after `delay.0 + below(delay.1)`
/// milliseconds), let the survivors finish, and return how many victims
/// were killed while still running.
fn run_chaos(
    mode: &str,
    dir: &Path,
    shards: u32,
    workers: u32,
    kills: usize,
    delay: (u64, u64),
    seed: u64,
) -> usize {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut children: Vec<(String, Child)> = (0..workers)
        .map(|i| {
            let id = format!("{mode}-w{i}");
            (id.clone(), spawn_worker(mode, dir, shards, &id))
        })
        .collect();
    // Pick distinct victims up front; kill each after its own random
    // delay, long enough for claims to land and work to be in flight.
    let mut victims: Vec<usize> = (0..children.len()).collect();
    rng.shuffle(&mut victims);
    victims.truncate(kills);
    let mut killed_live = 0;
    for &v in &victims {
        std::thread::sleep(Duration::from_millis(delay.0 + rng.below(delay.1)));
        let (id, child) = &mut children[v];
        match child.try_wait().expect("try_wait") {
            Some(_) => {} // finished before the bullet landed
            None => {
                child.kill().expect("SIGKILL victim");
                killed_live += 1;
                eprintln!("chaos: killed {id} mid-run");
            }
        }
    }
    for (i, (id, child)) in children.into_iter().enumerate() {
        let out = child.wait_with_output().expect("wait child");
        if victims.contains(&i) {
            continue; // killed (or raced to success) — either is fine
        }
        assert!(out.status.success(), "survivor {id} must finish the queue");
    }
    killed_live
}

#[test]
fn killed_fault_campaign_workers_are_stolen_and_merge_is_byte_identical() {
    let single = chaos_campaign().run().unwrap().to_json();

    let dir = scratch("faults");
    let shards = 6;
    let killed = run_chaos("faults", &dir, shards, 4, 2, (120, 300), 0xC7A0_5001);
    eprintln!("chaos: {killed} of 2 victims were killed while live");
    assert!(
        killed >= 1,
        "no victim was killed mid-run: chaos exercised nothing"
    );

    // Any surviving worker drains the whole queue, so the run is complete
    // here. A resumed worker must find nothing: zero claims, hence zero
    // re-simulation of completed shards.
    let stats = run_worker_to_completion("faults", &dir, shards, "resume");
    assert_eq!(
        jsonl::u64_field(&stats, "claimed"),
        Some(0),
        "resumed worker re-ran work: {stats}"
    );

    // The merged resilience report is byte-identical to shards=1.
    let merged = chaos_campaign().merge_sharded(&dir, shards).unwrap();
    assert_eq!(merged.to_json(), single);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_dse_workers_are_stolen_and_frontier_is_byte_identical() {
    let spmspv = || {
        workload_by_name("spmspv")
            .unwrap()
            .build_default(Scale::Test)
    };
    let single_dir = scratch("dse-single");
    let single = nupea_dse::run_sharded(
        &chaos_space(),
        &DseConfig::default(),
        &[spmspv()],
        &single_dir,
        &ShardOptions::with_shards(1),
    )
    .unwrap()
    .to_json();
    std::fs::remove_dir_all(&single_dir).ok();

    let dir = scratch("dse");
    let shards = 5;
    let killed = run_chaos("dse", &dir, shards, 3, 1, (15, 80), 0xC7A0_5002);
    eprintln!("chaos: {killed} of 1 victims were killed while live");

    let stats = run_worker_to_completion("dse", &dir, shards, "resume");
    assert_eq!(
        jsonl::u64_field(&stats, "claimed"),
        Some(0),
        "resumed worker re-ran work: {stats}"
    );

    let merged = nupea_dse::merge_sharded(
        &chaos_space(),
        &DseConfig::default(),
        &[spmspv()],
        &dir,
        shards,
    )
    .unwrap();
    assert_eq!(
        merged.to_json(),
        single,
        "merged Pareto frontier == shards=1"
    );
    std::fs::remove_dir_all(&dir).ok();
}

//! Three-way differential suite for the `nupea-lang` eDSL (the tentpole
//! acceptance gate): every program is executed under
//!
//! 1. the **scalar reference interpreter** on the AST
//!    ([`nupea_lang::Program::interpret`]),
//! 2. the **untimed IR interpreter** on the lowered dataflow graph
//!    ([`nupea_ir::interp::Interp`]), and
//! 3. the **timed cycle-level engine** on a placed-and-routed fabric,
//!
//! over ≥ 8 seeds per program with randomized memory images and engine
//! configurations. Sink streams and final memory must be byte-identical
//! across all three, and every lowering must be token-balanced.

use nupea_fabric::Fabric;
use nupea_ir::interp::Interp;
use nupea_lang::{kernel, Program};
use nupea_pnr::{place::place, Heuristic, Netlist, PlaceConfig};
use nupea_rng::Xoshiro256;
use nupea_sim::{Engine, MemParams, MemoryModel, SimConfig, SimMemory};

const SEEDS_PER_PROGRAM: u64 = 8;

/// Run the lowered kernel on the timed engine under a seed-derived
/// random configuration (model, buffering, heuristic, placement seed).
fn run_engine(
    p: &Program,
    mem: &mut SimMemory,
    params: &[(&str, i64)],
    rng: &mut Xoshiro256,
) -> Vec<Vec<i64>> {
    let k = p.lower().expect("lowers");
    let model = match rng.index(4) {
        0 => MemoryModel::Nupea,
        1 => MemoryModel::Upea(0),
        2 => MemoryModel::Upea(3),
        _ => MemoryModel::NumaUpea(2),
    };
    let heuristic = match rng.index(3) {
        0 => Heuristic::DomainUnaware,
        1 => Heuristic::OnlyDomainAware,
        _ => Heuristic::CriticalityAware,
    };
    let fabric = Fabric::monaco(12, 12, 3).expect("fabric");
    let netlist = Netlist::from_dfg(k.dfg());
    let place_cfg = PlaceConfig {
        heuristic,
        seed: rng.next_u64(),
        effort: 64,
        ..PlaceConfig::default()
    };
    let pe_of = place(&fabric, &netlist, &place_cfg)
        .expect("programs fit the 12x12 fabric")
        .pe_of;
    let mut cfg = SimConfig::default();
    cfg.model = model;
    cfg.mem = MemParams::tiny();
    cfg.divider = 2;
    cfg.fifo_depth = rng.range_usize(1, 5);
    cfg.max_outstanding = rng.range_usize(1, 3);
    cfg.numa_seed = 11;
    cfg.max_cycles = 50_000_000;
    let mut engine = Engine::new(k.dfg(), &fabric, &pe_of, cfg);
    for (pid, v) in k.bindings(params) {
        engine.bind(pid, v);
    }
    let stats = engine.run(mem).expect("engine runs");
    assert_eq!(
        stats.residual_tokens,
        0,
        "{}: timed run must drain",
        p.name()
    );
    stats.sinks
}

/// Assert the three executions agree on sinks and final memory.
fn three_way(p: &Program, mem0: &SimMemory, params: &[(&str, i64)], rng: &mut Xoshiro256) {
    // Leg 1: scalar AST interpreter (ground truth).
    let mut m_scalar = mem0.clone();
    let scalar = p
        .interpret(m_scalar.words_mut(), params)
        .unwrap_or_else(|e| panic!("{}: scalar interp failed: {e}", p.name()));

    // Leg 2: untimed IR interpreter on the lowered graph.
    let k = p.lower().expect("lowers");
    let mut m_ir = mem0.clone();
    let mut it = Interp::new(k.dfg());
    for (pid, v) in k.bindings(params) {
        it.bind(pid, v);
    }
    let ir = it.run(m_ir.words_mut()).expect("ir interp runs");
    assert!(ir.is_balanced(), "{}: not token-balanced", p.name());

    // Leg 3: timed engine on a placed fabric.
    let mut m_engine = mem0.clone();
    let engine_sinks = run_engine(p, &mut m_engine, params, rng);

    assert_eq!(scalar.sinks, ir.sinks, "{}: scalar vs ir sinks", p.name());
    assert_eq!(
        scalar.sinks,
        engine_sinks,
        "{}: scalar vs engine sinks",
        p.name()
    );
    assert_eq!(
        m_scalar.words(),
        m_ir.words(),
        "{}: scalar vs ir memory",
        p.name()
    );
    assert_eq!(
        m_scalar.words(),
        m_engine.words(),
        "{}: scalar vs engine memory",
        p.name()
    );
}

/// Fresh memory with a seeded data region at `base..base+len`, values in
/// `lo..=hi` (pass bounds that keep derived addresses in range).
fn seeded_mem(seed: u64, len: usize, lo: i64, hi: i64) -> (SimMemory, i64) {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let data: Vec<i64> = (0..len).map(|_| rng.range_i64(lo, hi)).collect();
    let mut mem = SimMemory::new(&MemParams::tiny());
    let base = mem.alloc_init(&data);
    (mem, base)
}

#[test]
fn gather_scale_three_way() {
    for seed in 0..SEEDS_PER_PROGRAM {
        let mut rng = Xoshiro256::seed_from_u64(0xA001 + seed);
        let (mut mem, x) = seeded_mem(0x100 + seed, 32, -40, 40);
        let y = mem.alloc_init(&vec![3i64; 32]);
        let out = mem.alloc(32);
        let p = kernel! {
            name: "axpy";
            param n;
            for i in range(0, n) {
                st(out + i, ld(x + i) * 7 + ld(y + i));
            }
        }
        .expect("valid");
        three_way(&p, &mem, &[("n", 32)], &mut rng);
    }
}

#[test]
fn conditional_accumulate_three_way() {
    for seed in 0..SEEDS_PER_PROGRAM {
        let mut rng = Xoshiro256::seed_from_u64(0xA002 + seed);
        let (mem, d) = seeded_mem(0x200 + seed, 48, -25, 25);
        let p = kernel! {
            name: "cond-acc";
            param n;
            let mut pos = stream(0);
            let mut neg = stream(0);
            for i in range(0, n) {
                let v = ld(d + i);
                if (v.ge(0)) {
                    pos = pos + v;
                } else {
                    neg = neg - v;
                }
            }
            sink "pos" = pos;
            sink "neg" = neg;
        }
        .expect("valid");
        three_way(&p, &mem, &[("n", 48)], &mut rng);
    }
}

#[test]
fn seq_histogram_three_way() {
    for seed in 0..SEEDS_PER_PROGRAM {
        let mut rng = Xoshiro256::seed_from_u64(0xA003 + seed);
        let (mut mem, d) = seeded_mem(0x300 + seed, 24, 0, 7);
        let bins = mem.alloc(8);
        let p = kernel! {
            name: "seq-hist";
            param n;
            for i in range(0, n) seq {
                let b = ld(d + i) + bins;
                st(b, ld_crit(b) + 1);
            }
        }
        .expect("valid");
        three_way(&p, &mem, &[("n", 24)], &mut rng);
    }
}

#[test]
fn chained_seq_loops_three_way() {
    for seed in 0..SEEDS_PER_PROGRAM {
        let mut rng = Xoshiro256::seed_from_u64(0xA004 + seed);
        let (mut mem, d) = seeded_mem(0x400 + seed, 16, -99, 99);
        let mid = mem.alloc(16);
        let p = kernel! {
            name: "build-probe";
            for i in range(0, 16) seq {
                st(mid + i, ld(d + i) * 2 + 1);
            }
            let mut total = stream(0);
            for i in range(0, 16) seq {
                total = total + ld(mid + i);
            }
            sink "total" = total;
        }
        .expect("valid");
        three_way(&p, &mem, &[], &mut rng);
    }
}

#[test]
fn while_pointer_chase_three_way() {
    for seed in 0..SEEDS_PER_PROGRAM {
        let mut rng = Xoshiro256::seed_from_u64(0xA005 + seed);
        // A random permutation cycle: next[i] is a shuffle of 0..16.
        let mut next: Vec<i64> = (0..16).collect();
        let mut shuffler = Xoshiro256::seed_from_u64(0x500 + seed);
        shuffler.shuffle(&mut next);
        let mut mem = SimMemory::new(&MemParams::tiny());
        let nb = mem.alloc_init(&next);
        let p = kernel! {
            name: "chase";
            param hops;
            let mut cur = stream(0);
            let mut seen = stream(0);
            let mut k = stream(0);
            while (k.lt(hops)) {
                seen = seen + cur;
                cur = ld_crit(cur + nb);
                k = k + 1;
            }
            sink "seen" = seen;
        }
        .expect("valid");
        three_way(&p, &mem, &[("hops", 12)], &mut rng);
    }
}

#[test]
fn par_replication_three_way() {
    for seed in 0..SEEDS_PER_PROGRAM {
        let mut rng = Xoshiro256::seed_from_u64(0xA006 + seed);
        let (mut mem, d) = seeded_mem(0x600 + seed, 24, -50, 50);
        let out = mem.alloc(24);
        let p = kernel! {
            name: "par-scale";
            for i in range(0, 24) par(4) {
                st(out + i, ld(d + i) * 5 - 1);
            }
        }
        .expect("valid");
        three_way(&p, &mem, &[], &mut rng);
    }
}

#[test]
fn nested_reduction_three_way() {
    for seed in 0..SEEDS_PER_PROGRAM {
        let mut rng = Xoshiro256::seed_from_u64(0xA007 + seed);
        let (mut mem, a) = seeded_mem(0x700 + seed, 36, -9, 9);
        let out = mem.alloc(6);
        // Row sums of a 6x6 matrix: nested counted loops with an inner
        // accumulator, the canonical dense-kernel shape.
        let p = kernel! {
            name: "rowsum";
            for r in range(0, 6) {
                let mut s = stream(0);
                for c in range(0, 6) {
                    s = s + ld(a + r * 6 + c);
                }
                st(out + r, s);
            }
        }
        .expect("valid");
        three_way(&p, &mem, &[], &mut rng);
    }
}

#[test]
fn select_and_shifts_three_way() {
    for seed in 0..SEEDS_PER_PROGRAM {
        let mut rng = Xoshiro256::seed_from_u64(0xA008 + seed);
        let (mem, d) = seeded_mem(0x800 + seed, 32, -64, 63);
        let p = kernel! {
            name: "bits";
            param n;
            let mut acc = stream(0);
            for i in range(0, n) {
                let v = ld(d + i);
                let abs = select(v.lt(0), 0 - v, v);
                acc = acc + ((abs << 1) ^ (abs >> 2)) % 257;
            }
            sink "acc" = acc;
        }
        .expect("valid");
        three_way(&p, &mem, &[("n", 32)], &mut rng);
    }
}

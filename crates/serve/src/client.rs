//! A minimal blocking HTTP client for the serve API, shared by the
//! crate's end-to-end tests, the `serve-smoke` integration test, and
//! the `bench serve-load` generator — one connection per request
//! (`Connection: close`), which keeps the client stateless and measures
//! the server's full accept-to-close path.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers (lowercased names).
    pub headers: Vec<(String, String)>,
    /// Raw response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy — serve bodies are always UTF-8 JSON).
    #[must_use]
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The first header with this (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Issue one request and read the full response.
///
/// # Errors
///
/// Connection or protocol failures as `io::Error` (`InvalidData` for a
/// malformed status line or headers).
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\
             Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);

    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line: {status_line:?}"),
            )
        })?;

    let mut headers = Vec::new();
    let mut content_length = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad header: {line:?}"))
        })?;
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse::<usize>().ok();
        }
        headers.push((name, value));
    }

    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            // Connection: close — read to EOF.
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// `POST` a JSON body.
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: SocketAddr, path: &str, body: &str) -> io::Result<ClientResponse> {
    request(addr, "POST", path, body)
}

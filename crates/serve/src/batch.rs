//! Epoch-batched request execution with criticality-tiered admission
//! control, deadlines, and bounded-queue backpressure.
//!
//! Simulation requests are not run on the HTTP worker that parsed them:
//! they are enqueued, gathered for a short window (the epoch, in the
//! timely-dataflow sense — admit everything that arrived, then close
//! the frontier), and the whole batch is fanned out across
//! [`nupea::runner::parallel_map`]'s scoped thread pool at once. A
//! burst of N requests therefore costs one pool spin-up and shares the
//! machine fairly, instead of N requests each spawning threads and
//! oversubscribing the cores the simulator is counting on.
//!
//! The queue applies the paper's non-uniform treatment of critical
//! loads one layer up (DESIGN.md §14):
//!
//! - **Per-tier queues, dequeued critical-first.** Jobs carry a
//!   [`Priority`] tier; each epoch drains the critical queue before the
//!   normal queue before the batch queue.
//! - **Shed-lowest-first admission.** When the bound is hit, a new
//!   arrival evicts a *strictly lower-tier* queued job (newest first)
//!   rather than being refused: the victim's waiter receives a
//!   tier-tagged `429` + `Retry-After`, and the arrival takes its
//!   place. Only when nothing lower-tier is queued is the arrival
//!   itself refused.
//! - **Deadlines checked at dequeue.** A job whose `deadline` passed
//!   while queued is answered `504` immediately and never occupies a
//!   simulation slot.
//! - **Worker isolation.** Each job runs under `catch_unwind`; a
//!   panicking job becomes that job's `500` and the pool survives.
//! - **Graceful drain.** [`Batcher::stop`] refuses new work and keeps
//!   executing queued jobs until the drain deadline, after which the
//!   remaining jobs are answered `503` and the executor exits.

use crate::api::Priority;
use crate::http::Response;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A unit of queued work: the closure producing the response, plus the
/// slot the submitting HTTP worker is blocked on.
struct Job {
    run: Box<dyn FnOnce() -> Response + Send>,
    done: Arc<DoneSlot>,
    deadline: Option<Instant>,
    tier: Priority,
}

/// One job's completion slot.
#[derive(Default)]
struct DoneSlot {
    response: Mutex<Option<Response>>,
    ready: Condvar,
}

impl DoneSlot {
    fn fill(&self, response: Response) {
        *self.response.lock().expect("job slot poisoned") = Some(response);
        self.ready.notify_all();
    }
}

/// Per-tier admission/shed counters, snapshot at `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct TierCounters {
    /// Jobs evicted from the queue by a higher-tier arrival (answered
    /// a tier-tagged 429).
    pub shed: u64,
    /// Submissions refused at the door (queue full, nothing lower-tier
    /// to shed).
    pub refused: u64,
    /// Jobs whose deadline expired in the queue (answered 504 without
    /// consuming a simulation slot).
    pub expired: u64,
    /// Jobs admitted and handed to the executor.
    pub executed: u64,
}

#[derive(Default)]
struct State {
    queues: [VecDeque<Job>; Priority::COUNT],
    counters: [TierCounters; Priority::COUNT],
    stopping: bool,
    drain_deadline: Option<Instant>,
}

impl State {
    fn depth(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// The bounded tiered batch queue. See the [module docs](self).
pub struct Batcher {
    state: Mutex<State>,
    arrived: Condvar,
    queue_cap: usize,
    batch_max: usize,
    gather: Duration,
    sim_threads: usize,
}

impl std::fmt::Debug for Batcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher")
            .field("queue_cap", &self.queue_cap)
            .field("batch_max", &self.batch_max)
            .field("gather", &self.gather)
            .field("sim_threads", &self.sim_threads)
            .finish_non_exhaustive()
    }
}

/// Why [`Batcher::submit`] refused a job without queueing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The queue is at capacity and held nothing lower-tier to shed.
    /// Carries the suggested `Retry-After` seconds.
    Full(u64),
    /// The server is draining ([`Batcher::stop`] was called).
    Draining,
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

impl Batcher {
    /// A batcher admitting at most `queue_cap` waiting jobs, executing
    /// up to `batch_max` per epoch after a `gather_ms` admission window,
    /// across `sim_threads` pool threads (0 = available parallelism).
    #[must_use]
    pub fn new(queue_cap: usize, batch_max: usize, gather_ms: u64, sim_threads: usize) -> Self {
        Batcher {
            state: Mutex::new(State::default()),
            arrived: Condvar::new(),
            queue_cap,
            batch_max: batch_max.max(1),
            gather: Duration::from_millis(gather_ms),
            sim_threads: if sim_threads == 0 {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            } else {
                sim_threads
            },
        }
    }

    /// Jobs currently waiting across all tiers (for `/stats`).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state.lock().expect("batcher poisoned").depth()
    }

    /// Jobs currently waiting in each tier, critical first.
    #[must_use]
    pub fn depth_by_tier(&self) -> [usize; Priority::COUNT] {
        let state = self.state.lock().expect("batcher poisoned");
        std::array::from_fn(|i| state.queues[i].len())
    }

    /// A snapshot of the per-tier counters, critical first.
    #[must_use]
    pub fn tier_counters(&self) -> [TierCounters; Priority::COUNT] {
        self.state.lock().expect("batcher poisoned").counters
    }

    /// The `Retry-After` hint for a refusal right now: scaled by how
    /// many epochs the current backlog represents, never below 1.
    fn retry_after(&self, depth: usize) -> u64 {
        1 + (depth / self.batch_max.max(1)) as u64
    }

    /// Enqueue `run` at `tier` and block until its batch executes,
    /// returning the response. A full queue sheds the newest strictly
    /// lower-tier queued job to make room (its waiter gets a tier-tagged
    /// 429); the shed victim's response — or this job's own shed/504 —
    /// also arrives through the returned `Ok`.
    ///
    /// # Errors
    ///
    /// [`Rejected::Full`] when the queue is at capacity and holds
    /// nothing lower-tier; [`Rejected::Draining`] after
    /// [`Batcher::stop`]. Neither blocks.
    pub fn submit(
        &self,
        run: Box<dyn FnOnce() -> Response + Send>,
        tier: Priority,
        deadline: Option<Instant>,
    ) -> Result<Response, Rejected> {
        let done = Arc::new(DoneSlot::default());
        {
            let mut state = self.state.lock().expect("batcher poisoned");
            if state.stopping {
                return Err(Rejected::Draining);
            }
            if state.depth() >= self.queue_cap {
                // Shed-lowest-first: evict the newest job of the lowest
                // tier strictly below this one.
                let victim_tier = (tier.index() + 1..Priority::COUNT)
                    .rev()
                    .find(|&t| !state.queues[t].is_empty());
                match victim_tier {
                    Some(t) => {
                        let victim = state.queues[t].pop_back().expect("non-empty checked");
                        state.counters[t].shed += 1;
                        let retry = self.retry_after(state.depth());
                        victim.done.fill(Response::tier_busy(
                            Priority::from_index(t).name(),
                            true,
                            retry,
                        ));
                    }
                    None => {
                        state.counters[tier.index()].refused += 1;
                        return Err(Rejected::Full(self.retry_after(state.depth())));
                    }
                }
            }
            state.queues[tier.index()].push_back(Job {
                run,
                done: Arc::clone(&done),
                deadline,
                tier,
            });
            self.arrived.notify_all();
        }
        let mut slot = done.response.lock().expect("job slot poisoned");
        while slot.is_none() {
            slot = done.ready.wait(slot).expect("job slot poisoned");
        }
        Ok(slot.take().expect("checked above"))
    }

    /// The executor loop: run on a dedicated thread until
    /// [`Batcher::stop`]. Gathers an epoch, fans it out, repeats. While
    /// draining it keeps executing queued jobs until the drain deadline,
    /// then answers whatever is left `503` so no submitter is left
    /// blocked.
    pub fn run_executor(&self) {
        loop {
            let batch = {
                let mut state = self.state.lock().expect("batcher poisoned");
                while state.depth() == 0 && !state.stopping {
                    state = self.arrived.wait(state).expect("batcher poisoned");
                }
                if state.depth() == 0 {
                    return; // stopping and fully drained
                }
                let past_drain = state.drain_deadline.is_some_and(|d| Instant::now() >= d);
                if state.stopping && past_drain {
                    // Drain deadline passed: abandon the backlog.
                    for t in 0..Priority::COUNT {
                        while let Some(job) = state.queues[t].pop_front() {
                            job.done.fill(Response::draining());
                        }
                    }
                    return;
                }
                let stopping = state.stopping;
                drop(state);
                // Admission window: let the rest of a burst arrive so it
                // executes as one epoch (skipped when draining — finish
                // fast — or when nothing would gain).
                if !self.gather.is_zero() && !stopping {
                    std::thread::sleep(self.gather);
                }
                let mut state = self.state.lock().expect("batcher poisoned");
                // Dequeue critical-first. Deadline-expired jobs are
                // answered 504 here — without consuming a batch slot or
                // a simulation thread.
                let now = Instant::now();
                let mut batch: Vec<Job> = Vec::new();
                'fill: for t in 0..Priority::COUNT {
                    while let Some(job) = state.queues[t].pop_front() {
                        if job.deadline.is_some_and(|d| now >= d) {
                            state.counters[t].expired += 1;
                            job.done.fill(Response::deadline_exceeded("queue"));
                            continue;
                        }
                        state.counters[t].executed += 1;
                        batch.push(job);
                        if batch.len() >= self.batch_max {
                            break 'fill;
                        }
                    }
                }
                batch
            };
            if batch.is_empty() {
                continue; // every dequeued job had expired
            }
            let slots: Vec<Mutex<Option<Job>>> =
                batch.into_iter().map(|j| Mutex::new(Some(j))).collect();
            nupea::runner::parallel_map(self.sim_threads, slots.len(), |i| {
                let job = slots[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("each slot taken once");
                // Worker isolation: a panicking job yields that job's
                // 500; the pool thread and every other job survive.
                let tier = job.tier;
                let response = catch_unwind(AssertUnwindSafe(job.run)).unwrap_or_else(|payload| {
                    Response::error(
                        500,
                        &format!(
                            "worker panicked ({} tier job isolated): {}",
                            tier.name(),
                            panic_message(payload.as_ref())
                        ),
                    )
                });
                job.done.fill(response);
            });
        }
    }

    /// Stop the executor: new submissions are refused immediately
    /// ([`Rejected::Draining`]), queued jobs keep executing until
    /// `drain` has elapsed, and whatever is still queued after that is
    /// answered `503`.
    pub fn stop(&self, drain: Duration) {
        let mut state = self.state.lock().expect("batcher poisoned");
        state.stopping = true;
        if state.drain_deadline.is_none() {
            state.drain_deadline = Some(Instant::now() + drain);
        }
        self.arrived.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn respond(n: u64) -> Box<dyn FnOnce() -> Response + Send> {
        Box::new(move || Response::json(n.to_string().into_bytes()))
    }

    fn slow(n: u64, ms: u64) -> Box<dyn FnOnce() -> Response + Send> {
        Box::new(move || {
            std::thread::sleep(Duration::from_millis(ms));
            Response::json(n.to_string().into_bytes())
        })
    }

    #[test]
    fn burst_executes_as_batches_and_responses_route_back() {
        let batcher = Arc::new(Batcher::new(64, 4, 2, 2));
        let exec = {
            let b = Arc::clone(&batcher);
            std::thread::spawn(move || b.run_executor())
        };
        std::thread::scope(|sc| {
            for n in 0..16u64 {
                let b = Arc::clone(&batcher);
                sc.spawn(move || {
                    let resp = b
                        .submit(respond(n), Priority::Normal, None)
                        .expect("queue has room");
                    assert_eq!(resp.body, n.to_string().into_bytes(), "own response");
                });
            }
        });
        batcher.stop(Duration::from_secs(5));
        exec.join().unwrap();
        assert_eq!(batcher.depth(), 0);
        let executed: u64 = batcher.tier_counters().iter().map(|c| c.executed).sum();
        assert_eq!(executed, 16);
    }

    #[test]
    fn zero_capacity_queue_refuses_immediately() {
        let batcher = Batcher::new(0, 4, 0, 1);
        assert_eq!(
            batcher
                .submit(respond(1), Priority::Normal, None)
                .unwrap_err(),
            Rejected::Full(1)
        );
        assert_eq!(batcher.tier_counters()[Priority::Normal.index()].refused, 1);
    }

    #[test]
    fn full_queue_sheds_lowest_tier_first() {
        // No executor: jobs stay queued, so admission decisions are
        // fully deterministic. Fill the queue with batch-tier jobs,
        // then submit critical ones — each must evict a batch job.
        let batcher = Arc::new(Batcher::new(2, 4, 0, 1));
        let mut batch_waiters = Vec::new();
        for n in 0..2u64 {
            let b = Arc::clone(&batcher);
            batch_waiters.push(std::thread::spawn(move || {
                b.submit(respond(n), Priority::Batch, None)
            }));
        }
        while batcher.depth() < 2 {
            std::thread::yield_now();
        }
        // Queue full of batch jobs. A batch arrival cannot shed its own
        // tier: refused at the door.
        assert!(matches!(
            batcher
                .submit(respond(9), Priority::Batch, None)
                .unwrap_err(),
            Rejected::Full(_)
        ));
        // Critical arrivals evict the queued batch jobs (newest first).
        let crit_waiters: Vec<_> = (0..2u64)
            .map(|n| {
                let b = Arc::clone(&batcher);
                std::thread::spawn(move || b.submit(respond(100 + n), Priority::Critical, None))
            })
            .collect();
        // Both batch waiters must come back with tier-tagged 429s.
        for w in batch_waiters {
            let resp = w.join().unwrap().expect("shed jobs get a response");
            assert_eq!(resp.status, 429, "shed batch job answered 429");
            let body = String::from_utf8(resp.body).unwrap();
            assert!(body.contains("\"tier\":\"batch\""), "{body}");
            assert!(body.contains("\"shed\":true"), "{body}");
            assert!(
                resp.headers
                    .iter()
                    .any(|(n, v)| n.eq_ignore_ascii_case("retry-after")
                        && v.parse::<u64>().is_ok_and(|s| s >= 1)),
                "shed 429 carries a valid Retry-After"
            );
        }
        let counters = batcher.tier_counters();
        assert_eq!(counters[Priority::Batch.index()].shed, 2);
        assert_eq!(counters[Priority::Batch.index()].refused, 1);
        assert_eq!(
            batcher.depth_by_tier(),
            [2, 0, 0],
            "criticals hold the queue"
        );
        // A critical arrival with the queue full of criticals is
        // refused — nothing lower-tier to shed.
        assert!(matches!(
            batcher
                .submit(respond(8), Priority::Critical, None)
                .unwrap_err(),
            Rejected::Full(_)
        ));
        // Drain: the executor answers the queued criticals.
        let exec = {
            let b = Arc::clone(&batcher);
            std::thread::spawn(move || b.run_executor())
        };
        for w in crit_waiters {
            assert_eq!(w.join().unwrap().unwrap().status, 200);
        }
        batcher.stop(Duration::from_secs(5));
        exec.join().unwrap();
    }

    #[test]
    fn expired_deadlines_answer_504_without_executing() {
        let batcher = Arc::new(Batcher::new(8, 8, 0, 1));
        let already_past = Instant::now() - Duration::from_millis(1);
        let waiter = {
            let b = Arc::clone(&batcher);
            std::thread::spawn(move || {
                b.submit(
                    Box::new(|| panic!("an expired job must never run")),
                    Priority::Normal,
                    Some(already_past),
                )
            })
        };
        while batcher.depth() == 0 {
            std::thread::yield_now();
        }
        batcher.stop(Duration::from_secs(5));
        batcher.run_executor(); // inline; drains and returns
        let resp = waiter.join().unwrap().unwrap();
        assert_eq!(resp.status, 504);
        assert!(String::from_utf8(resp.body)
            .unwrap()
            .contains("\"stage\":\"queue\""));
        let counters = batcher.tier_counters();
        assert_eq!(counters[Priority::Normal.index()].expired, 1);
        assert_eq!(counters[Priority::Normal.index()].executed, 0);
    }

    #[test]
    fn panicking_job_becomes_500_and_pool_survives() {
        let batcher = Arc::new(Batcher::new(8, 8, 0, 1));
        let exec = {
            let b = Arc::clone(&batcher);
            std::thread::spawn(move || b.run_executor())
        };
        let panicker = {
            let b = Arc::clone(&batcher);
            std::thread::spawn(move || {
                b.submit(
                    Box::new(|| panic!("chaos injection")),
                    Priority::Normal,
                    None,
                )
            })
        };
        let resp = panicker.join().unwrap().unwrap();
        assert_eq!(resp.status, 500);
        assert!(String::from_utf8(resp.body).unwrap().contains("isolated"));
        // The executor survived: a later job still completes.
        let ok = batcher.submit(respond(5), Priority::Normal, None).unwrap();
        assert_eq!(ok.body, b"5".to_vec());
        batcher.stop(Duration::from_secs(5));
        exec.join().unwrap();
    }

    #[test]
    fn stopping_refuses_new_work_but_drains_old() {
        let batcher = Arc::new(Batcher::new(8, 8, 0, 1));
        // Enqueue before the executor exists, then stop: the executor
        // must still drain the residue on its way out.
        let waiter = {
            let b = Arc::clone(&batcher);
            std::thread::spawn(move || b.submit(respond(7), Priority::Normal, None))
        };
        while batcher.depth() == 0 {
            std::thread::yield_now();
        }
        batcher.stop(Duration::from_secs(5));
        assert_eq!(
            batcher
                .submit(respond(8), Priority::Normal, None)
                .unwrap_err(),
            Rejected::Draining
        );
        batcher.run_executor(); // runs inline; returns once drained
        assert_eq!(waiter.join().unwrap().unwrap().body, b"7".to_vec());
    }

    #[test]
    fn drain_deadline_abandons_the_backlog_with_503() {
        let batcher = Arc::new(Batcher::new(8, 1, 0, 1));
        let exec = {
            let b = Arc::clone(&batcher);
            std::thread::spawn(move || b.run_executor())
        };
        // One slow in-flight job, then queued fast jobs behind it.
        let inflight = {
            let b = Arc::clone(&batcher);
            std::thread::spawn(move || b.submit(slow(1, 300), Priority::Normal, None))
        };
        // Wait until the slow job is actually in flight (dequeued).
        while batcher.tier_counters()[Priority::Normal.index()].executed == 0 {
            std::thread::yield_now();
        }
        let queued: Vec<_> = (0..3u64)
            .map(|n| {
                let b = Arc::clone(&batcher);
                std::thread::spawn(move || b.submit(respond(n), Priority::Batch, None))
            })
            .collect();
        while batcher.depth() < 3 {
            std::thread::yield_now();
        }
        // Zero drain budget: the executor must abandon the backlog as
        // soon as it finishes the in-flight epoch.
        batcher.stop(Duration::from_millis(0));
        let resp = inflight.join().unwrap().unwrap();
        assert_eq!(resp.status, 200, "in-flight work completes");
        for q in queued {
            let resp = q.join().unwrap().unwrap();
            assert_eq!(resp.status, 503, "backlog abandoned at drain deadline");
        }
        exec.join().unwrap();
    }
}

//! Epoch-batched request execution with bounded-queue backpressure.
//!
//! Simulation requests are not run on the HTTP worker that parsed them:
//! they are enqueued, gathered for a short window (the epoch, in the
//! timely-dataflow sense — admit everything that arrived, then close
//! the frontier), and the whole batch is fanned out across
//! [`nupea::runner::parallel_map`]'s scoped thread pool at once. A
//! burst of N requests therefore costs one pool spin-up and shares the
//! machine fairly, instead of N requests each spawning threads and
//! oversubscribing the cores the simulator is counting on.
//!
//! Backpressure is a hard bound: when `queue_cap` jobs are already
//! waiting, [`Batcher::submit`] refuses immediately and the HTTP layer
//! answers `429` with `Retry-After` — the load-shedding contract a
//! front-of-fleet proxy can act on. Completed jobs hand their response
//! back through a per-job slot + condvar.

use crate::http::Response;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A unit of queued work: the closure producing the response, plus the
/// slot the submitting HTTP worker is blocked on.
struct Job {
    run: Box<dyn FnOnce() -> Response + Send>,
    done: Arc<DoneSlot>,
}

/// One job's completion slot.
#[derive(Default)]
struct DoneSlot {
    response: Mutex<Option<Response>>,
    ready: Condvar,
}

#[derive(Default)]
struct State {
    queue: VecDeque<Job>,
    stopping: bool,
}

/// The bounded batch queue. See the [module docs](self).
pub struct Batcher {
    state: Mutex<State>,
    arrived: Condvar,
    queue_cap: usize,
    batch_max: usize,
    gather: Duration,
    sim_threads: usize,
}

impl std::fmt::Debug for Batcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher")
            .field("queue_cap", &self.queue_cap)
            .field("batch_max", &self.batch_max)
            .field("gather", &self.gather)
            .field("sim_threads", &self.sim_threads)
            .finish_non_exhaustive()
    }
}

/// [`Batcher::submit`] refused a job: the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl Batcher {
    /// A batcher admitting at most `queue_cap` waiting jobs, executing
    /// up to `batch_max` per epoch after a `gather_ms` admission window,
    /// across `sim_threads` pool threads (0 = available parallelism).
    #[must_use]
    pub fn new(queue_cap: usize, batch_max: usize, gather_ms: u64, sim_threads: usize) -> Self {
        Batcher {
            state: Mutex::new(State::default()),
            arrived: Condvar::new(),
            queue_cap,
            batch_max: batch_max.max(1),
            gather: Duration::from_millis(gather_ms),
            sim_threads: if sim_threads == 0 {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            } else {
                sim_threads
            },
        }
    }

    /// Jobs currently waiting (for `/stats`).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state.lock().expect("batcher poisoned").queue.len()
    }

    /// Enqueue `run` and block until its batch executes, returning the
    /// response.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when `queue_cap` jobs are already waiting — the
    /// caller answers 429 without blocking.
    pub fn submit(&self, run: Box<dyn FnOnce() -> Response + Send>) -> Result<Response, QueueFull> {
        let done = Arc::new(DoneSlot::default());
        {
            let mut state = self.state.lock().expect("batcher poisoned");
            if state.stopping || state.queue.len() >= self.queue_cap {
                return Err(QueueFull);
            }
            state.queue.push_back(Job {
                run,
                done: Arc::clone(&done),
            });
            self.arrived.notify_all();
        }
        let mut slot = done.response.lock().expect("job slot poisoned");
        while slot.is_none() {
            slot = done.ready.wait(slot).expect("job slot poisoned");
        }
        Ok(slot.take().expect("checked above"))
    }

    /// The executor loop: run on a dedicated thread until
    /// [`Batcher::stop`]. Gathers an epoch, fans it out, repeats;
    /// drains the residual queue before exiting so no submitter is left
    /// blocked.
    pub fn run_executor(&self) {
        loop {
            let batch = {
                let mut state = self.state.lock().expect("batcher poisoned");
                while state.queue.is_empty() && !state.stopping {
                    state = self.arrived.wait(state).expect("batcher poisoned");
                }
                if state.queue.is_empty() {
                    return; // stopping and fully drained
                }
                drop(state);
                // Admission window: let the rest of a burst arrive so it
                // executes as one epoch (skipped when nothing would gain).
                if !self.gather.is_zero() {
                    std::thread::sleep(self.gather);
                }
                let mut state = self.state.lock().expect("batcher poisoned");
                let n = state.queue.len().min(self.batch_max);
                state.queue.drain(..n).collect::<Vec<Job>>()
            };
            let slots: Vec<Mutex<Option<Job>>> =
                batch.into_iter().map(|j| Mutex::new(Some(j))).collect();
            nupea::runner::parallel_map(self.sim_threads, slots.len(), |i| {
                let job = slots[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("each slot taken once");
                let response = (job.run)();
                *job.done.response.lock().expect("job slot poisoned") = Some(response);
                job.done.ready.notify_all();
            });
        }
    }

    /// Stop the executor after it drains the queue. New submissions are
    /// refused immediately.
    pub fn stop(&self) {
        self.state.lock().expect("batcher poisoned").stopping = true;
        self.arrived.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn respond(n: u64) -> Box<dyn FnOnce() -> Response + Send> {
        Box::new(move || Response::json(n.to_string().into_bytes()))
    }

    #[test]
    fn burst_executes_as_batches_and_responses_route_back() {
        let batcher = Arc::new(Batcher::new(64, 4, 2, 2));
        let exec = {
            let b = Arc::clone(&batcher);
            std::thread::spawn(move || b.run_executor())
        };
        std::thread::scope(|sc| {
            for n in 0..16u64 {
                let b = Arc::clone(&batcher);
                sc.spawn(move || {
                    let resp = b.submit(respond(n)).expect("queue has room");
                    assert_eq!(resp.body, n.to_string().into_bytes(), "own response");
                });
            }
        });
        batcher.stop();
        exec.join().unwrap();
        assert_eq!(batcher.depth(), 0);
    }

    #[test]
    fn zero_capacity_queue_refuses_immediately() {
        let batcher = Batcher::new(0, 4, 0, 1);
        assert_eq!(batcher.submit(respond(1)).unwrap_err(), QueueFull);
    }

    #[test]
    fn stopping_refuses_new_work_but_drains_old() {
        let batcher = Arc::new(Batcher::new(8, 8, 0, 1));
        // Enqueue before the executor exists, then stop: the executor
        // must still drain the residue on its way out.
        let waiter = {
            let b = Arc::clone(&batcher);
            std::thread::spawn(move || b.submit(respond(7)))
        };
        while batcher.depth() == 0 {
            std::thread::yield_now();
        }
        batcher.stop();
        assert_eq!(batcher.submit(respond(8)).unwrap_err(), QueueFull);
        batcher.run_executor(); // runs inline; returns once drained
        assert_eq!(waiter.join().unwrap().unwrap().body, b"7".to_vec());
    }
}

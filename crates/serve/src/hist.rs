//! Hand-rolled hdrhist-style latency histogram.
//!
//! Values (request latencies in microseconds) are bucketed
//! logarithmically: exact below 16, then 16 linear sub-buckets per
//! power-of-two octave, bounding the relative quantization error of any
//! reported percentile at 1/16 ≈ 6.25% — the classic HdrHistogram
//! trade-off at significant-figures 1.2, in ~1000 `u64` counters with
//! O(1) recording and no allocation after construction. The timely
//! dataflow exemplars this repo's serve frontend is modeled on report
//! throughput/latency the same way.

/// Values below this are their own bucket (exact).
const LINEAR: u64 = 16;
/// Sub-buckets per octave above the linear region.
const SUB: usize = 16;
/// log2 of `LINEAR`.
const LINEAR_BITS: u32 = 4;
/// Buckets: 16 exact + 16 per octave for octaves 4..=63.
const BUCKETS: usize = LINEAR as usize + (64 - LINEAR_BITS as usize) * SUB;

/// A fixed-size log-bucketed histogram of `u64` samples.
#[derive(Debug)]
pub struct Hist {
    counts: Vec<u64>,
    count: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

/// The bucket index of sample `v`.
fn index_of(v: u64) -> usize {
    if v < LINEAR {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= LINEAR_BITS
    let shift = msb - LINEAR_BITS;
    let sub = ((v >> shift) as usize) & (SUB - 1);
    LINEAR as usize + shift as usize * SUB + sub
}

/// The largest sample value bucket `idx` can hold (the value percentiles
/// report, so quantization always rounds up — a conservative latency).
fn upper_of(idx: usize) -> u64 {
    if idx < LINEAR as usize {
        return idx as u64;
    }
    let shift = ((idx - LINEAR as usize) / SUB) as u32;
    let sub = ((idx - LINEAR as usize) % SUB) as u64;
    let lower = (1u64 << (shift + LINEAR_BITS)) + (sub << shift);
    // Saturate: the top bucket's upper bound is exactly `u64::MAX`, and
    // `lower + 2^shift` alone would wrap before the `- 1` brings it
    // back in range.
    lower.saturating_add((1u64 << shift) - 1)
}

impl Hist {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Hist {
            counts: vec![0; BUCKETS],
            count: 0,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[index_of(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The largest recorded sample (exact, not quantized).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at percentile `p` (0–100): an upper bound on the sample
    /// at that rank, within 6.25% relative error, clamped to the exact
    /// max. Returns 0 on an empty histogram.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return upper_of(idx).min(self.max);
            }
        }
        self.max
    }

    /// The standard percentile report as a JSON object fragment:
    /// `{"count":N,"p50_us":..,"p90_us":..,"p99_us":..,"max_us":..}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            self.count,
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        let mut h = Hist::new();
        for v in 0..16 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.percentile(100.0), 15);
        assert_eq!(h.percentile(50.0), 7);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every value maps into a bucket whose upper bound is >= it, and
        // bucket indices never decrease with the value.
        let mut prev_idx = 0;
        for v in (0..10_000u64).chain([u64::MAX / 2, u64::MAX - 1, u64::MAX]) {
            let idx = index_of(v);
            assert!(idx >= prev_idx || v < 10_000, "monotone at {v}");
            assert!(idx < BUCKETS, "{v} in range");
            assert!(upper_of(idx) >= v, "upper({idx}) covers {v}");
            prev_idx = idx;
        }
    }

    #[test]
    fn percentiles_bound_relative_error() {
        let mut h = Hist::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (p, exact) in [(50.0, 50_000u64), (90.0, 90_000), (99.0, 99_000)] {
            let got = h.percentile(p);
            assert!(got >= exact, "p{p} lower-bounded: {got} vs {exact}");
            let err = (got - exact) as f64 / exact as f64;
            assert!(err <= 1.0 / 16.0 + 1e-9, "p{p} err {err}");
        }
        assert_eq!(h.percentile(100.0), 100_000);
        assert_eq!(h.max(), 100_000);
    }

    #[test]
    fn max_bucket_saturates_instead_of_overflowing() {
        // The top bucket's upper bound is exactly u64::MAX; recording
        // and reporting extreme samples must not wrap (this was a debug
        // overflow in `upper_of` before the saturating add).
        assert_eq!(upper_of(index_of(u64::MAX)), u64::MAX);
        let mut h = Hist::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        // Percentiles stay clamped to the exact max, never wrapped.
        assert_eq!(h.percentile(100.0), u64::MAX);
        assert!(h.percentile(1.0) >= u64::MAX / 2);
        let json = h.to_json();
        assert!(json.contains(&format!("\"max_us\":{}", u64::MAX)), "{json}");
    }

    #[test]
    fn zero_sample_histogram_reports_zeros() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 0, "p{p} on empty");
        }
        assert_eq!(
            h.to_json(),
            "{\"count\":0,\"p50_us\":0,\"p90_us\":0,\"p99_us\":0,\"max_us\":0}"
        );
    }

    #[test]
    fn empty_and_singleton() {
        let mut h = Hist::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.count(), 0);
        h.record(1234);
        assert_eq!(h.count(), 1);
        // A single sample is every percentile, clamped to exact max.
        assert_eq!(h.percentile(1.0), 1234);
        assert_eq!(h.percentile(99.0), 1234);
        let json = h.to_json();
        assert!(json.contains("\"count\":1"), "{json}");
        assert!(json.contains("\"max_us\":1234"), "{json}");
    }
}

//! The serve API's request schema: one flat JSON object describing a
//! `(workload, system, heuristic, model)` point, shared by every POST
//! endpoint and by the `nupea_batch` CLI — one parser, so a served
//! `simulate` response and the batch CLI's record for the same config
//! are byte-identical by construction.
//!
//! ```json
//! {"workload":"spmv","par":2,"scale":"test","heuristic":"effcc",
//!  "model":"nupea","seed":7,"effort":100,"cycle_budget":1000000}
//! ```
//!
//! Parsing uses the repo's own [`nupea::jsonl`] field helpers (flat
//! objects, string and integer values), keeping the workspace
//! dependency-free. Unknown fields are ignored; unknown *values* for
//! known fields are errors.

use nupea::jsonl;
use nupea::{Heuristic, MemoryModel, Scale, SystemConfig, Workload};
use nupea_kernels::workloads::workload_by_name;
use std::sync::Arc;

/// Request criticality tier — the serving-layer analogue of the
/// paper's critical-load classification. Under overload the bounded
/// queue sheds the lowest tier first, so latency-critical requests
/// keep flowing while bulk work absorbs the 429s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Latency-critical: shed last, dequeued first.
    Critical,
    /// The default tier for interactive requests.
    #[default]
    Normal,
    /// Bulk/best-effort: first to be shed under pressure.
    Batch,
}

impl Priority {
    /// Number of tiers (array dimension for per-tier accounting).
    pub const COUNT: usize = 3;

    /// Tier index: 0 = critical (highest) … 2 = batch (lowest).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Priority::Critical => 0,
            Priority::Normal => 1,
            Priority::Batch => 2,
        }
    }

    /// The tier at `index` (inverse of [`Priority::index`]).
    #[must_use]
    pub fn from_index(i: usize) -> Priority {
        match i {
            0 => Priority::Critical,
            1 => Priority::Normal,
            _ => Priority::Batch,
        }
    }

    /// The wire name (`critical`, `normal`, `batch`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Priority::Critical => "critical",
            Priority::Normal => "normal",
            Priority::Batch => "batch",
        }
    }

    /// Parse a wire name (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Priority> {
        match s.to_ascii_lowercase().as_str() {
            "critical" => Some(Priority::Critical),
            "normal" => Some(Priority::Normal),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }
}

/// A parsed request config with every field optional except the
/// workload; [`ConfigRequest::build`] resolves the defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigRequest {
    /// Workload name (Table 1), e.g. `"spmv"`.
    pub workload: String,
    /// Parallelism degree (default: 1 at test scale, the workload's
    /// hand-optimized degree at bench scale).
    pub par: Option<usize>,
    /// Input scale (default test).
    pub scale: Scale,
    /// Placement heuristic (default effcc / criticality-aware).
    pub heuristic: Heuristic,
    /// Memory model (default NUPEA).
    pub model: MemoryModel,
    /// PnR seed override.
    pub seed: Option<u64>,
    /// Annealing effort override.
    pub effort: Option<u32>,
    /// Token FIFO depth override.
    pub fifo_depth: Option<usize>,
    /// Max outstanding loads override.
    pub max_outstanding: Option<usize>,
    /// Per-request cycle budget (replaces the 2G runaway cap).
    pub cycle_budget: Option<u64>,
    /// Retry cap multiplier for budget-limited runs (default: no retry).
    pub retry_factor: Option<u64>,
    /// Fault injections for `/campaign` (default: the smoke preset's).
    pub injections: Option<u32>,
    /// End-to-end deadline in milliseconds, measured from request
    /// parse. Expired requests are answered `504` at batch-dequeue time
    /// without consuming a simulation slot, and the remaining deadline
    /// bounds `SimOptions::max_cycles` via the server's calibrated
    /// cycles-per-ms estimate.
    pub deadline_ms: Option<u64>,
    /// Criticality tier for admission control (default normal).
    pub priority: Priority,
    /// Chaos-testing hook (`"panic"` panics the worker job, proving
    /// `catch_unwind` isolation; `"sleep:MS"` stalls the job). Parsed by
    /// every consumer of the schema but only honored by the server's
    /// simulate path — and only when the server opted in
    /// (`ServeOptions::chaos_hooks` / `--chaos-hooks`; `403` otherwise);
    /// `nupea_batch` ignores it.
    pub x_chaos: Option<String>,
}

/// Parse a memory-model name: `nupea`, `ideal`, `upea<n>`,
/// `numa-upea<n>` (case-insensitive, matching [`MemoryModel::label`]).
#[must_use]
pub fn parse_model(s: &str) -> Option<MemoryModel> {
    let s = s.to_ascii_lowercase();
    if s == "nupea" {
        return Some(MemoryModel::Nupea);
    }
    if s == "ideal" {
        return Some(MemoryModel::IDEAL);
    }
    if let Some(n) = s.strip_prefix("numa-upea") {
        return n.parse().ok().map(MemoryModel::NumaUpea);
    }
    if let Some(n) = s.strip_prefix("upea") {
        return n.parse().ok().map(MemoryModel::Upea);
    }
    None
}

/// Parse a heuristic name as rendered by its `Display` impl:
/// `domain-unaware`, `only-domain-aware`, `effcc`.
#[must_use]
pub fn parse_heuristic(s: &str) -> Option<Heuristic> {
    match s.to_ascii_lowercase().as_str() {
        "domain-unaware" => Some(Heuristic::DomainUnaware),
        "only-domain-aware" => Some(Heuristic::OnlyDomainAware),
        "effcc" | "criticality-aware" => Some(Heuristic::CriticalityAware),
        _ => None,
    }
}

/// Drop all whitespace outside string literals, turning arbitrarily
/// formatted JSON into the compact single-line form the [`jsonl`] field
/// scanners expect. String contents (including escaped quotes) pass
/// through untouched.
fn compact(body: &str) -> String {
    let mut out = String::with_capacity(body.len());
    let mut in_str = false;
    let mut escaped = false;
    for c in body.chars() {
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
            out.push(c);
        } else if !c.is_whitespace() {
            out.push(c);
        }
    }
    out
}

impl ConfigRequest {
    /// Parse a request body.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the missing or invalid field.
    pub fn parse(body: &str) -> Result<Self, String> {
        // The jsonl helpers expect compact one-line objects; strip
        // whitespace outside string values so pretty-printed client
        // JSON still parses.
        let line = compact(body);
        let workload =
            jsonl::string_field(&line, "workload").ok_or("missing required field: workload")?;
        let scale = match jsonl::string_field(&line, "scale").as_deref() {
            None | Some("test") => Scale::Test,
            Some("bench") => Scale::Bench,
            Some(other) => return Err(format!("unknown scale: {other}")),
        };
        let heuristic = match jsonl::string_field(&line, "heuristic") {
            None => Heuristic::CriticalityAware,
            Some(h) => parse_heuristic(&h).ok_or_else(|| format!("unknown heuristic: {h}"))?,
        };
        let model = match jsonl::string_field(&line, "model") {
            None => MemoryModel::Nupea,
            Some(m) => parse_model(&m).ok_or_else(|| format!("unknown model: {m}"))?,
        };
        let priority = match jsonl::string_field(&line, "priority") {
            None => Priority::Normal,
            Some(p) => Priority::parse(&p).ok_or_else(|| format!("unknown priority: {p}"))?,
        };
        let usize_field = |key: &str| -> Option<usize> {
            jsonl::u64_field(&line, key).and_then(|v| usize::try_from(v).ok())
        };
        Ok(ConfigRequest {
            workload,
            par: usize_field("par"),
            scale,
            heuristic,
            model,
            seed: jsonl::u64_field(&line, "seed"),
            effort: jsonl::u64_field(&line, "effort").and_then(|v| u32::try_from(v).ok()),
            fifo_depth: usize_field("fifo_depth"),
            max_outstanding: usize_field("max_outstanding"),
            cycle_budget: jsonl::u64_field(&line, "cycle_budget"),
            retry_factor: jsonl::u64_field(&line, "retry_factor"),
            injections: jsonl::u64_field(&line, "injections").and_then(|v| u32::try_from(v).ok()),
            deadline_ms: jsonl::u64_field(&line, "deadline_ms"),
            priority,
            x_chaos: jsonl::string_field(&line, "x_chaos"),
        })
    }

    /// Resolve the config into a concrete workload and system.
    ///
    /// # Errors
    ///
    /// A message naming an unknown workload.
    pub fn build(&self) -> Result<(Arc<Workload>, Arc<SystemConfig>), String> {
        let spec = workload_by_name(&self.workload).ok_or_else(|| {
            let known: Vec<&str> = nupea_kernels::workloads::all_workloads()
                .iter()
                .map(|w| w.name)
                .collect();
            format!(
                "unknown workload: {} (known: {})",
                self.workload,
                known.join(", ")
            )
        })?;
        let workload = match self.par {
            Some(par) => (spec.build)(self.scale, par),
            None => spec.build_default(self.scale),
        };
        let mut sys = SystemConfig::monaco_12x12();
        if let Some(seed) = self.seed {
            sys.seed = seed;
        }
        if let Some(effort) = self.effort {
            sys.effort = effort;
        }
        if let Some(depth) = self.fifo_depth {
            sys.fifo_depth = depth;
        }
        if let Some(n) = self.max_outstanding {
            sys.max_outstanding = n;
        }
        Ok((Arc::new(workload), Arc::new(sys)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_and_minimal_bodies() {
        let full = ConfigRequest::parse(
            "{\"workload\":\"spmv\",\"par\":2,\"scale\":\"bench\",\
             \"heuristic\":\"domain-unaware\",\"model\":\"upea2\",\"seed\":7,\
             \"effort\":50,\"fifo_depth\":8,\"max_outstanding\":4,\
             \"cycle_budget\":1000,\"retry_factor\":64,\"injections\":3}",
        )
        .unwrap();
        assert_eq!(full.workload, "spmv");
        assert_eq!(full.par, Some(2));
        assert_eq!(full.scale, Scale::Bench);
        assert_eq!(full.heuristic, Heuristic::DomainUnaware);
        assert_eq!(full.model, MemoryModel::Upea(2));
        assert_eq!(full.seed, Some(7));
        assert_eq!(full.effort, Some(50));
        assert_eq!(full.fifo_depth, Some(8));
        assert_eq!(full.max_outstanding, Some(4));
        assert_eq!(full.cycle_budget, Some(1000));
        assert_eq!(full.retry_factor, Some(64));
        assert_eq!(full.injections, Some(3));

        let minimal = ConfigRequest::parse("{\"workload\":\"spmspv\"}").unwrap();
        assert_eq!(minimal.workload, "spmspv");
        assert_eq!(minimal.par, None);
        assert_eq!(minimal.scale, Scale::Test);
        assert_eq!(minimal.heuristic, Heuristic::CriticalityAware);
        assert_eq!(minimal.model, MemoryModel::Nupea);

        // Pretty-printed JSON still parses (fields flattened onto one line).
        let pretty = ConfigRequest::parse("{\n  \"workload\": \"spmv\",\n  \"par\": 4\n}").unwrap();
        assert_eq!(pretty.workload, "spmv");
        assert_eq!(pretty.par, Some(4));
    }

    #[test]
    fn rejects_missing_and_unknown_values() {
        assert!(ConfigRequest::parse("{}").unwrap_err().contains("workload"));
        assert!(
            ConfigRequest::parse("{\"workload\":\"spmv\",\"scale\":\"huge\"}")
                .unwrap_err()
                .contains("scale")
        );
        assert!(
            ConfigRequest::parse("{\"workload\":\"spmv\",\"heuristic\":\"magic\"}")
                .unwrap_err()
                .contains("heuristic")
        );
        assert!(
            ConfigRequest::parse("{\"workload\":\"spmv\",\"model\":\"dram\"}")
                .unwrap_err()
                .contains("model")
        );
        let unknown = ConfigRequest::parse("{\"workload\":\"not-a-workload\"}").unwrap();
        assert!(unknown.build().unwrap_err().contains("unknown workload"));
    }

    #[test]
    fn priority_deadline_and_chaos_fields_parse() {
        let cfg = ConfigRequest::parse(
            "{\"workload\":\"spmv\",\"priority\":\"critical\",\"deadline_ms\":250,\
             \"x_chaos\":\"panic\"}",
        )
        .unwrap();
        assert_eq!(cfg.priority, Priority::Critical);
        assert_eq!(cfg.deadline_ms, Some(250));
        assert_eq!(cfg.x_chaos.as_deref(), Some("panic"));

        let plain = ConfigRequest::parse("{\"workload\":\"spmv\"}").unwrap();
        assert_eq!(plain.priority, Priority::Normal, "default tier is normal");
        assert_eq!(plain.deadline_ms, None);
        assert_eq!(plain.x_chaos, None);

        assert!(
            ConfigRequest::parse("{\"workload\":\"spmv\",\"priority\":\"vip\"}")
                .unwrap_err()
                .contains("priority")
        );

        // Tier names, indices, and ordering round-trip; critical orders
        // before batch (shed-lowest-first relies on this).
        for i in 0..Priority::COUNT {
            let p = Priority::from_index(i);
            assert_eq!(p.index(), i);
            assert_eq!(Priority::parse(p.name()), Some(p));
        }
        assert!(Priority::Critical < Priority::Normal);
        assert!(Priority::Normal < Priority::Batch);
    }

    #[test]
    fn model_and_heuristic_labels_round_trip() {
        for model in [
            MemoryModel::Nupea,
            MemoryModel::IDEAL,
            MemoryModel::Upea(2),
            MemoryModel::Upea(7),
            MemoryModel::NumaUpea(4),
        ] {
            assert_eq!(
                parse_model(&model.label()),
                Some(model),
                "label {} parses back",
                model.label()
            );
        }
        for h in [
            Heuristic::DomainUnaware,
            Heuristic::OnlyDomainAware,
            Heuristic::CriticalityAware,
        ] {
            assert_eq!(parse_heuristic(&h.to_string()), Some(h));
        }
        assert_eq!(parse_model("dram"), None);
        assert_eq!(parse_heuristic("random"), None);
    }

    #[test]
    fn build_applies_system_overrides() {
        let cfg = ConfigRequest::parse(
            "{\"workload\":\"spmv\",\"seed\":99,\"effort\":33,\"fifo_depth\":6}",
        )
        .unwrap();
        let (w, sys) = cfg.build().unwrap();
        assert_eq!(w.name, "spmv");
        assert_eq!(w.par, 1, "test scale defaults par to 1");
        assert_eq!(sys.seed, 99);
        assert_eq!(sys.effort, 33);
        assert_eq!(sys.fifo_depth, 6);
        let defaults = SystemConfig::monaco_12x12();
        assert_eq!(sys.max_outstanding, defaults.max_outstanding);
    }
}

//! # nupea-serve — simulation-as-a-service over the NUPEA pipeline
//!
//! A long-running, dependency-free HTTP/JSON frontend (blocking
//! HTTP/1.1 on [`std::net::TcpListener`], worker pool) exposing the
//! compile-and-simulate pipeline to many concurrent clients:
//!
//! | endpoint          | body                      | response |
//! |-------------------|---------------------------|----------|
//! | `GET /healthz`    | —                         | `{"ok":true,...}` |
//! | `GET /stats`      | —                         | cache + queue + per-endpoint latency percentiles |
//! | `POST /compile`   | config ([`api`])          | artifact hash + cache disposition |
//! | `POST /simulate`  | config                    | the run's [`RunRecord`] JSON — byte-identical to the batch CLI |
//! | `POST /trace`     | config                    | Chrome trace-event JSON of the run |
//! | `POST /campaign`  | config (+`injections`)    | fault-campaign report JSON |
//! | `POST /shutdown`  | —                         | `{"ok":true}`, then a clean exit |
//!
//! Three mechanisms carry the load (DESIGN.md §12):
//!
//! 1. **Shared artifact cache** ([`nupea::cache`]): compiles are
//!    content-addressed by the FNV-1a config hash, single-flighted, and
//!    LRU-capped, so repeated or concurrent identical requests cost one
//!    PnR.
//! 2. **Epoch batching with backpressure** ([`batch`]): simulate/trace
//!    requests gather into batches executed on the runner's scoped
//!    pool; a full queue answers `429` + `Retry-After` instead of
//!    melting down.
//! 3. **hdrhist-style latency histograms** ([`hist`]): every endpoint's
//!    latency is log-bucketed and reported as p50/p90/p99/max at
//!    `GET /stats` and on shutdown.
//!
//! [`RunRecord`]: nupea::RunRecord

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod batch;
pub mod client;
pub mod hist;
pub mod http;

use api::ConfigRequest;
use batch::Batcher;
use hist::Hist;
use http::{read_request, write_response, Request, Response};
use nupea::runner::{records_to_json, run_compiled};
use nupea::{ArtifactCache, CampaignConfig, FaultCampaign, RetryPolicy};
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Server construction knobs; [`ServeOptions::default`] suits tests and
/// small deployments.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeOptions {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// HTTP connection-handling threads.
    pub http_workers: usize,
    /// Simulation pool threads per batch (0 = available parallelism).
    pub sim_threads: usize,
    /// Max queued simulate/trace jobs before `429` (backpressure bound).
    pub queue_cap: usize,
    /// Max jobs executed per batch epoch.
    pub batch_max: usize,
    /// Batch admission window in milliseconds.
    pub batch_wait_ms: u64,
    /// Compile-artifact cache capacity (artifacts, LRU past it).
    pub cache_cap: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            http_workers: 4,
            sim_threads: 0,
            queue_cap: 64,
            batch_max: 16,
            batch_wait_ms: 2,
            cache_cap: 32,
        }
    }
}

/// The latency-tracked endpoints, indexing [`App::hists`].
const ENDPOINTS: [&str; 6] = [
    "healthz", "stats", "compile", "simulate", "trace", "campaign",
];

/// Shared server state.
struct App {
    cache: Arc<ArtifactCache>,
    batcher: Batcher,
    hists: [Mutex<Hist>; 6],
    start: Instant,
    addr: SocketAddr,
    stop: AtomicBool,
    conns: Mutex<VecDeque<TcpStream>>,
    conn_ready: Condvar,
}

impl App {
    /// Flip the stop flag and unblock every parked thread: the batch
    /// executor (drain-and-exit), the HTTP workers (condvar), and the
    /// accept loop (a wake-up connection, since `accept` only observes
    /// the flag after returning).
    fn begin_shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return; // already stopping
        }
        self.batcher.stop();
        self.conn_ready.notify_all();
        let addr = self.addr;
        std::thread::spawn(move || drop(TcpStream::connect(addr)));
    }
}

/// A running server: accept loop, HTTP worker pool, and batch executor.
/// Stop it with a `POST /shutdown` or [`Server::shutdown`], then join
/// with [`Server::wait`].
pub struct Server {
    app: Arc<App>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.app.addr)
            .finish()
    }
}

impl Server {
    /// Bind and start serving.
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener.
    pub fn start(opts: &ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let app = Arc::new(App {
            cache: Arc::new(ArtifactCache::new(opts.cache_cap)),
            batcher: Batcher::new(
                opts.queue_cap,
                opts.batch_max,
                opts.batch_wait_ms,
                opts.sim_threads,
            ),
            hists: std::array::from_fn(|_| Mutex::new(Hist::new())),
            start: Instant::now(),
            addr,
            stop: AtomicBool::new(false),
            conns: Mutex::new(VecDeque::new()),
            conn_ready: Condvar::new(),
        });
        let mut threads = Vec::new();
        // Batch executor.
        {
            let app = Arc::clone(&app);
            threads.push(std::thread::spawn(move || app.batcher.run_executor()));
        }
        // HTTP workers.
        for _ in 0..opts.http_workers.max(1) {
            let app = Arc::clone(&app);
            threads.push(std::thread::spawn(move || worker_loop(&app)));
        }
        // Accept loop.
        {
            let app = Arc::clone(&app);
            threads.push(std::thread::spawn(move || accept_loop(&listener, &app)));
        }
        Ok(Server { app, threads })
    }

    /// The bound address (with the real port when `:0` was requested).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.app.addr
    }

    /// The current `/stats` JSON (also what shutdown reports print).
    #[must_use]
    pub fn stats_json(&self) -> String {
        stats_json(&self.app)
    }

    /// Trigger the same clean stop a `POST /shutdown` performs.
    pub fn shutdown(&self) {
        self.app.begin_shutdown();
    }

    /// Block until the server has fully stopped (after [`Server::shutdown`]
    /// or a `POST /shutdown`), join every thread, and return the final
    /// `/stats` report.
    pub fn wait(self) -> String {
        for t in self.threads {
            let _ = t.join();
        }
        stats_json(&self.app)
    }
}

fn accept_loop(listener: &TcpListener, app: &App) {
    for conn in listener.incoming() {
        if app.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let mut conns = app.conns.lock().expect("conn queue poisoned");
        conns.push_back(stream);
        app.conn_ready.notify_one();
    }
}

fn worker_loop(app: &App) {
    loop {
        let stream = {
            let mut conns = app.conns.lock().expect("conn queue poisoned");
            loop {
                if let Some(s) = conns.pop_front() {
                    break s;
                }
                if app.stop.load(Ordering::SeqCst) {
                    return;
                }
                conns = app.conn_ready.wait(conns).expect("conn queue poisoned");
            }
        };
        handle_connection(app, stream);
    }
}

/// Serve one connection: keep-alive loop until close, EOF, protocol
/// error, or server shutdown.
fn handle_connection(app: &App, stream: TcpStream) {
    let Ok(peer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(peer);
    let mut out = stream;
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let _ = write_response(&mut out, &Response::error(400, &e.to_string()), false);
                return;
            }
            Err(_) => return,
        };
        let t0 = Instant::now();
        let (endpoint, resp) = handle_request(app, &req);
        if let Some(i) = ENDPOINTS.iter().position(|&e| e == endpoint) {
            let micros = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
            app.hists[i].lock().expect("hist poisoned").record(micros);
        }
        // A stop may have raced in (possibly flipped by this very
        // request): close after this response so the worker can exit.
        let keep_alive = req.keep_alive && !app.stop.load(Ordering::SeqCst);
        if write_response(&mut out, &resp, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Route one request. Returns the latency-histogram endpoint name (""
/// for untracked routes) and the response.
fn handle_request(app: &App, req: &Request) -> (&'static str, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (
            "healthz",
            Response::json(format!(
                "{{\"ok\":true,\"uptime_ms\":{}}}",
                app.start.elapsed().as_millis()
            )),
        ),
        ("GET", "/stats") => ("stats", Response::json(stats_json(app))),
        ("POST", "/compile") => ("compile", compile_endpoint(app, &req.body)),
        ("POST", "/simulate") => ("simulate", sim_endpoint(app, &req.body, false)),
        ("POST", "/trace") => ("trace", sim_endpoint(app, &req.body, true)),
        ("POST", "/campaign") => ("campaign", campaign_endpoint(&req.body)),
        ("POST", "/shutdown") => {
            app.begin_shutdown();
            (
                "",
                Response::json("{\"ok\":true,\"stopping\":true}".as_bytes().to_vec()),
            )
        }
        ("GET" | "POST", _) => ("", Response::error(404, "no such endpoint")),
        _ => ("", Response::error(405, "method not allowed")),
    }
}

fn stats_json(app: &App) -> String {
    let c = app.cache.stats();
    let mut out = format!(
        "{{\"uptime_ms\":{},\"queue_depth\":{},\"cache\":{{\"hits\":{},\"misses\":{},\
         \"compiles\":{},\"evictions\":{},\"entries\":{}}},\"endpoints\":{{",
        app.start.elapsed().as_millis(),
        app.batcher.depth(),
        c.hits,
        c.misses,
        c.compiles,
        c.evictions,
        c.entries,
    );
    for (i, name) in ENDPOINTS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let hist = app.hists[i].lock().expect("hist poisoned");
        out.push_str(&format!("\"{name}\":{}", hist.to_json()));
    }
    out.push_str("}}");
    out
}

/// `POST /compile`: resolve the config, compile (or hit the cache), and
/// report the artifact's address and cache disposition. Compiles run
/// inline on the HTTP worker — the cache's single-flight dedup is the
/// concurrency control.
fn compile_endpoint(app: &App, body: &str) -> Response {
    let (cfg, workload, sys) = match resolve(body) {
        Ok(t) => t,
        Err(resp) => return *resp,
    };
    let hash = nupea::config_hash(&workload, &sys, cfg.heuristic);
    let t0 = Instant::now();
    let (result, cached) = app
        .cache
        .get_or_compile(hash, &workload, &sys, cfg.heuristic);
    match result {
        Ok(compiled) => Response::json(format!(
            "{{\"config_hash\":\"{hash:016x}\",\"compile_cached\":{cached},\
             \"workload\":\"{}\",\"heuristic\":\"{}\",\"divider\":{},\
             \"compile_micros\":{}}}",
            nupea::jsonl::escape(workload.name),
            compiled.heuristic,
            compiled.placed.timing.divider,
            t0.elapsed().as_micros()
        )),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

/// `POST /simulate` and `POST /trace`: enqueue into the batch executor
/// (backpressure applies), compile via the shared cache, simulate with
/// the runner's record machinery. The simulate response body is exactly
/// [`records_to_json`] of the one record — byte-identical to the batch
/// CLI for the same config.
fn sim_endpoint(app: &App, body: &str, want_trace: bool) -> Response {
    let (cfg, workload, sys) = match resolve(body) {
        Ok(t) => t,
        Err(resp) => return *resp,
    };
    let hash = nupea::config_hash(&workload, &sys, cfg.heuristic);
    let retry = match cfg.retry_factor {
        None | Some(0 | 1) => RetryPolicy::None,
        Some(factor) => RetryPolicy::OneShot { factor },
    };
    let budget = cfg.cycle_budget;
    let heuristic = cfg.heuristic;
    let model = cfg.model;
    let cache = Arc::clone(&app.cache);
    let job = Box::new(move || -> Response {
        let (result, cached) = cache.get_or_compile(hash, &workload, &sys, heuristic);
        let compiled = match result {
            Ok(c) => c,
            Err(e) => return Response::error(500, &e.to_string()),
        };
        let (mut record, trace) = run_compiled(&compiled, model, budget, retry, want_trace);
        record.compile_cached = cached;
        if want_trace {
            match trace {
                Some(t) => Response::json(t.to_chrome_json()),
                None => Response::error(
                    500,
                    record.error.as_deref().unwrap_or("run produced no trace"),
                ),
            }
        } else {
            Response::json(records_to_json(&[record], false))
        }
    });
    match app.batcher.submit(job) {
        Ok(resp) => resp,
        Err(batch::QueueFull) => Response::too_busy(1),
    }
}

/// `POST /campaign`: a small synchronous fault campaign over the
/// requested workload (smoke preset; seed/injections overridable).
fn campaign_endpoint(body: &str) -> Response {
    let (cfg, workload, _sys) = match resolve(body) {
        Ok(t) => t,
        Err(resp) => return *resp,
    };
    let mut ccfg = CampaignConfig::smoke();
    ccfg.scale = cfg.scale;
    ccfg.heuristic = cfg.heuristic;
    ccfg.model = cfg.model;
    if let Some(seed) = cfg.seed {
        ccfg.seed = seed;
    }
    if let Some(injections) = cfg.injections {
        ccfg.injections = injections;
    }
    let mut campaign = FaultCampaign::new(ccfg);
    campaign.workload((*workload).clone());
    match campaign.run() {
        Ok(report) => Response::json(report.to_json()),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

/// Parse + build one request config, mapping failures to a 400.
#[allow(clippy::type_complexity)]
fn resolve(
    body: &str,
) -> Result<
    (
        ConfigRequest,
        Arc<nupea::Workload>,
        Arc<nupea::SystemConfig>,
    ),
    Box<Response>,
> {
    let cfg = ConfigRequest::parse(body).map_err(|e| Box::new(Response::error(400, &e)))?;
    let (workload, sys) = cfg
        .build()
        .map_err(|e| Box::new(Response::error(400, &e)))?;
    Ok((cfg, workload, sys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use client::{post, request, ClientResponse};

    fn test_server(opts: &ServeOptions) -> Server {
        Server::start(opts).expect("bind 127.0.0.1:0")
    }

    #[test]
    fn healthz_compile_cache_and_stats_end_to_end() {
        let server = test_server(&ServeOptions::default());
        let addr = server.addr();

        let health = request(addr, "GET", "/healthz", "").unwrap();
        assert_eq!(health.status, 200);
        assert!(health.body_str().contains("\"ok\":true"), "{health:?}");

        // First compile is a miss, second identical one a hit; both name
        // the same artifact hash.
        let body = "{\"workload\":\"spmv\",\"effort\":0}";
        let first = post(addr, "/compile", body).unwrap();
        assert_eq!(first.status, 200, "{first:?}");
        assert!(
            first.body_str().contains("\"compile_cached\":false"),
            "{first:?}"
        );
        let second = post(addr, "/compile", body).unwrap();
        assert!(
            second.body_str().contains("\"compile_cached\":true"),
            "{second:?}"
        );
        let hash_of = |r: &ClientResponse| {
            let b = r.body_str();
            let i = b.find("\"config_hash\":\"").unwrap() + 15;
            b[i..i + 16].to_string()
        };
        assert_eq!(hash_of(&first), hash_of(&second));

        let stats = request(addr, "GET", "/stats", "").unwrap();
        let s = stats.body_str();
        assert!(s.contains("\"hits\":1"), "{s}");
        assert!(s.contains("\"misses\":1"), "{s}");
        assert!(s.contains("\"compiles\":1"), "{s}");
        assert!(s.contains("\"compile\":{\"count\":2"), "{s}");

        server.shutdown();
        server.wait();
    }

    #[test]
    fn simulate_is_byte_identical_to_the_direct_runner_record() {
        let server = test_server(&ServeOptions::default());
        let addr = server.addr();

        let body = "{\"workload\":\"spmv\",\"effort\":0,\"model\":\"upea4\"}";
        let resp = post(addr, "/simulate", body).unwrap();
        assert_eq!(resp.status, 200, "{resp:?}");

        // Recompute the same record directly against the library.
        let cfg = ConfigRequest::parse(body).unwrap();
        let (workload, sys) = cfg.build().unwrap();
        let cache = ArtifactCache::new(4);
        let hash = nupea::config_hash(&workload, &sys, cfg.heuristic);
        let (compiled, _) = cache.get_or_compile(hash, &workload, &sys, cfg.heuristic);
        let (record, _) = run_compiled(
            &compiled.unwrap(),
            cfg.model,
            None,
            RetryPolicy::None,
            false,
        );
        assert_eq!(
            resp.body_str(),
            records_to_json(&[record], false),
            "served record must be byte-identical to the direct one"
        );

        // A second identical simulate rides the cache.
        let again = post(addr, "/simulate", body).unwrap();
        assert!(
            again.body_str().contains("\"compile_cached\":true"),
            "{}",
            again.body_str()
        );

        // Bad configs are 400s, not 500s.
        let bad = post(addr, "/simulate", "{\"workload\":\"nope\"}").unwrap();
        assert_eq!(bad.status, 400, "{bad:?}");
        let worse = post(addr, "/simulate", "{}").unwrap();
        assert_eq!(worse.status, 400, "{worse:?}");

        server.shutdown();
        server.wait();
    }

    #[test]
    fn full_queue_answers_429_with_retry_after() {
        let opts = ServeOptions {
            queue_cap: 0, // every simulate submission is refused
            ..ServeOptions::default()
        };
        let server = test_server(&opts);
        let addr = server.addr();

        let resp = post(addr, "/simulate", "{\"workload\":\"spmv\",\"effort\":0}").unwrap();
        assert_eq!(resp.status, 429, "{resp:?}");
        assert!(
            resp.headers
                .iter()
                .any(|(n, v)| n.eq_ignore_ascii_case("retry-after") && v == "1"),
            "{:?}",
            resp.headers
        );
        // Health and compile still work — only the sim queue is bounded.
        assert_eq!(request(addr, "GET", "/healthz", "").unwrap().status, 200);

        server.shutdown();
        server.wait();
    }

    #[test]
    fn shutdown_endpoint_stops_the_server() {
        let server = test_server(&ServeOptions::default());
        let addr = server.addr();
        let resp = post(addr, "/shutdown", "").unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body_str().contains("\"stopping\":true"));
        server.wait(); // must return, not hang

        // Unknown paths and methods get structured errors while up.
        let server = test_server(&ServeOptions::default());
        let addr = server.addr();
        assert_eq!(request(addr, "GET", "/nope", "").unwrap().status, 404);
        assert_eq!(request(addr, "PUT", "/healthz", "").unwrap().status, 405);
        server.shutdown();
        server.wait();
    }
}

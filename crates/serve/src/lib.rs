//! # nupea-serve — simulation-as-a-service over the NUPEA pipeline
//!
//! A long-running, dependency-free HTTP/JSON frontend (blocking
//! HTTP/1.1 on [`std::net::TcpListener`], worker pool) exposing the
//! compile-and-simulate pipeline to many concurrent clients:
//!
//! | endpoint          | body                      | response |
//! |-------------------|---------------------------|----------|
//! | `GET /healthz`    | —                         | `{"ok":true,...}` |
//! | `GET /stats`      | —                         | cache + queue + per-endpoint latency percentiles |
//! | `POST /compile`   | config ([`api`])          | artifact hash + cache disposition |
//! | `POST /simulate`  | config                    | the run's [`RunRecord`] JSON — byte-identical to the batch CLI |
//! | `POST /trace`     | config                    | Chrome trace-event JSON of the run |
//! | `POST /campaign`  | config (+`injections`)    | fault-campaign report JSON |
//! | `POST /shutdown`  | —                         | `{"ok":true}`, then a clean exit |
//!
//! Three mechanisms carry the load (DESIGN.md §12):
//!
//! 1. **Shared artifact cache** ([`nupea::cache`]): compiles are
//!    content-addressed by the FNV-1a config hash, single-flighted, and
//!    LRU-capped, so repeated or concurrent identical requests cost one
//!    PnR.
//! 2. **Epoch batching with backpressure** ([`batch`]): simulate/trace
//!    requests gather into batches executed on the runner's scoped
//!    pool; a full queue answers `429` + `Retry-After` instead of
//!    melting down.
//! 3. **hdrhist-style latency histograms** ([`hist`]): every endpoint's
//!    latency is log-bucketed and reported as p50/p90/p99/max at
//!    `GET /stats` and on shutdown.
//!
//! On top of that rides the overload-protection and fault-survival
//! layer (DESIGN.md §14):
//!
//! - **Deadlines end-to-end**: per-request `deadline_ms` is enforced as
//!   a request-head read deadline ([`http::DeadlineReader`]), checked at
//!   batch-dequeue time (expired → `504` without simulating), and
//!   propagated into `SimOptions::max_cycles` through a calibrated
//!   cycles-per-ms estimate so a deadline bounds engine time too.
//! - **Criticality tiers** ([`api::Priority`]): per-tier queues with
//!   shed-lowest-first admission, tier-tagged `429`s, and per-tier
//!   latency histograms — the paper's non-uniform treatment of critical
//!   loads applied to the serving layer.
//! - **Failure containment**: the artifact cache's circuit breaker
//!   fast-fails repeat-offender configs (`422`), panicking jobs are
//!   isolated to a `500` by `catch_unwind`, `/healthz` reports
//!   `ok|degraded|draining`, and `/shutdown` drains gracefully up to a
//!   drain deadline.
//! - **Chaos harness** ([`chaos`]): seeded hostile clients (slow-loris,
//!   mid-body disconnects, worker panics, deadline storms) for the
//!   load-test harness and CI. The in-band `x_chaos` request hooks are
//!   opt-in ([`ServeOptions::chaos_hooks`], off by default; `403`
//!   otherwise) so production clients cannot invoke them.
//!
//! [`RunRecord`]: nupea::RunRecord

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod batch;
pub mod chaos;
pub mod client;
pub mod hist;
pub mod http;

use api::{ConfigRequest, Priority};
use batch::{Batcher, Rejected};
use hist::Hist;
use http::{read_request, write_response, DeadlineReader, Request, Response};
use nupea::runner::{records_to_json, run_compiled, RunErrorKind};
use nupea::{ArtifactCache, CampaignConfig, FaultCampaign, PipelineError, RetryPolicy};
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server construction knobs; [`ServeOptions::default`] suits tests and
/// small deployments.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeOptions {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// HTTP connection-handling threads.
    pub http_workers: usize,
    /// Simulation pool threads per batch (0 = available parallelism).
    pub sim_threads: usize,
    /// Max queued simulate/trace jobs before `429` (backpressure bound).
    pub queue_cap: usize,
    /// Max jobs executed per batch epoch.
    pub batch_max: usize,
    /// Batch admission window in milliseconds.
    pub batch_wait_ms: u64,
    /// Compile-artifact cache capacity (artifacts, LRU past it).
    pub cache_cap: usize,
    /// Bound on reading one request head/body, and the idle keep-alive
    /// timeout between requests. Enforced both as a per-read socket
    /// timeout and as a whole-head wall-clock deadline
    /// ([`http::DeadlineReader`]), so slow-loris clients trickling
    /// bytes cannot pin an HTTP worker.
    pub read_timeout_ms: u64,
    /// Socket write timeout: a client that stops reading its response
    /// cannot pin a worker either.
    pub write_timeout_ms: u64,
    /// Graceful-drain budget after `/shutdown`: queued jobs keep
    /// executing this long, then the backlog is answered `503`.
    pub drain_ms: u64,
    /// Honor the test-only `x_chaos` request hooks (injected worker
    /// panics and sleeps). Off by default: a production server must not
    /// let unauthenticated clients panic workers or pin executor slots.
    /// Requests carrying `x_chaos` are answered `403` while disabled;
    /// even when enabled, chaos sleeps are clamped to the read timeout
    /// and to the request's remaining deadline.
    pub chaos_hooks: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            http_workers: 4,
            sim_threads: 0,
            queue_cap: 64,
            batch_max: 16,
            batch_wait_ms: 2,
            cache_cap: 32,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            drain_ms: 5_000,
            chaos_hooks: false,
        }
    }
}

/// The serving layer's cycles-per-millisecond estimate, calibrated from
/// completed runs, used to translate a request's remaining wall-clock
/// deadline into a [`SimOptions::max_cycles`] engine bound.
///
/// Starts deliberately generous (a too-low estimate would 504 requests
/// that had time left; a too-high one merely lets the engine overshoot
/// the deadline once before calibration catches up) and converges with
/// an EWMA over observed `cycles / sim-wall-time` ratios.
///
/// [`SimOptions::max_cycles`]: nupea::SimOptions
#[derive(Debug)]
struct Calibration {
    cycles_per_ms: AtomicU64,
}

/// Initial cycles-per-ms guess before any run has been observed.
const DEFAULT_CYCLES_PER_MS: u64 = 1_000_000;

impl Calibration {
    fn new() -> Self {
        Calibration {
            cycles_per_ms: AtomicU64::new(DEFAULT_CYCLES_PER_MS),
        }
    }

    /// The current estimate (cycles the engine retires per wall-ms).
    fn estimate(&self) -> u64 {
        self.cycles_per_ms.load(Ordering::Relaxed)
    }

    /// Fold one completed run into the estimate (EWMA, newest 1/4).
    fn observe(&self, cycles: u64, sim_micros: u64) {
        if cycles == 0 || sim_micros == 0 {
            return;
        }
        let observed = (cycles.saturating_mul(1000) / sim_micros).max(1);
        let old = self.cycles_per_ms.load(Ordering::Relaxed);
        let new = (old / 4)
            .saturating_mul(3)
            .saturating_add(observed / 4)
            .max(1);
        self.cycles_per_ms.store(new, Ordering::Relaxed);
    }

    /// The engine budget a remaining wall-clock allowance buys.
    fn budget_for(&self, remaining: Duration) -> u64 {
        let ms = u64::try_from(remaining.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        self.estimate().saturating_mul(ms).max(1)
    }
}

/// The latency-tracked endpoints, indexing [`App::hists`].
const ENDPOINTS: [&str; 6] = [
    "healthz", "stats", "compile", "simulate", "trace", "campaign",
];

/// Shared server state.
struct App {
    cache: Arc<ArtifactCache>,
    batcher: Batcher,
    hists: [Mutex<Hist>; 6],
    /// Per-tier simulate/trace latency histograms (critical first).
    tier_hists: [Mutex<Hist>; Priority::COUNT],
    calib: Arc<Calibration>,
    start: Instant,
    addr: SocketAddr,
    stop: AtomicBool,
    conns: Mutex<VecDeque<TcpStream>>,
    conn_ready: Condvar,
    queue_cap: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    drain: Duration,
    chaos_hooks: bool,
}

impl App {
    /// Flip the stop flag and unblock every parked thread: the batch
    /// executor (drain up to the drain deadline, then exit), the HTTP
    /// workers (condvar), and the accept loop (a wake-up connection,
    /// since `accept` only observes the flag after returning).
    fn begin_shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return; // already stopping
        }
        self.batcher.stop(self.drain);
        self.conn_ready.notify_all();
        let addr = self.addr;
        std::thread::spawn(move || drop(TcpStream::connect(addr)));
    }

    /// The coarse health state `/healthz` and `/stats` report:
    /// `draining` once shutdown began, `degraded` when an artifact
    /// breaker is open or the queue is at least half full, `ok`
    /// otherwise.
    fn health_state(&self) -> &'static str {
        if self.stop.load(Ordering::SeqCst) {
            return "draining";
        }
        let breakers = self.cache.stats().open_breakers;
        let depth = self.batcher.depth();
        if breakers > 0 || (self.queue_cap > 0 && depth.saturating_mul(2) >= self.queue_cap) {
            "degraded"
        } else {
            "ok"
        }
    }
}

/// A running server: accept loop, HTTP worker pool, and batch executor.
/// Stop it with a `POST /shutdown` or [`Server::shutdown`], then join
/// with [`Server::wait`].
pub struct Server {
    app: Arc<App>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.app.addr)
            .finish()
    }
}

impl Server {
    /// Bind and start serving.
    ///
    /// # Errors
    ///
    /// I/O errors binding the listener.
    pub fn start(opts: &ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        let app = Arc::new(App {
            cache: Arc::new(ArtifactCache::new(opts.cache_cap)),
            batcher: Batcher::new(
                opts.queue_cap,
                opts.batch_max,
                opts.batch_wait_ms,
                opts.sim_threads,
            ),
            hists: std::array::from_fn(|_| Mutex::new(Hist::new())),
            tier_hists: std::array::from_fn(|_| Mutex::new(Hist::new())),
            calib: Arc::new(Calibration::new()),
            start: Instant::now(),
            addr,
            stop: AtomicBool::new(false),
            conns: Mutex::new(VecDeque::new()),
            conn_ready: Condvar::new(),
            queue_cap: opts.queue_cap,
            read_timeout: Duration::from_millis(opts.read_timeout_ms.max(1)),
            write_timeout: Duration::from_millis(opts.write_timeout_ms.max(1)),
            drain: Duration::from_millis(opts.drain_ms),
            chaos_hooks: opts.chaos_hooks,
        });
        let mut threads = Vec::new();
        // Batch executor.
        {
            let app = Arc::clone(&app);
            threads.push(std::thread::spawn(move || app.batcher.run_executor()));
        }
        // HTTP workers.
        for _ in 0..opts.http_workers.max(1) {
            let app = Arc::clone(&app);
            threads.push(std::thread::spawn(move || worker_loop(&app)));
        }
        // Accept loop.
        {
            let app = Arc::clone(&app);
            threads.push(std::thread::spawn(move || accept_loop(&listener, &app)));
        }
        Ok(Server { app, threads })
    }

    /// The bound address (with the real port when `:0` was requested).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.app.addr
    }

    /// The current `/stats` JSON (also what shutdown reports print).
    #[must_use]
    pub fn stats_json(&self) -> String {
        stats_json(&self.app)
    }

    /// Trigger the same clean stop a `POST /shutdown` performs.
    pub fn shutdown(&self) {
        self.app.begin_shutdown();
    }

    /// Block until the server has fully stopped (after [`Server::shutdown`]
    /// or a `POST /shutdown`), join every thread, and return the final
    /// `/stats` report.
    pub fn wait(self) -> String {
        for t in self.threads {
            let _ = t.join();
        }
        stats_json(&self.app)
    }
}

fn accept_loop(listener: &TcpListener, app: &App) {
    for conn in listener.incoming() {
        if app.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let mut conns = app.conns.lock().expect("conn queue poisoned");
        conns.push_back(stream);
        app.conn_ready.notify_one();
    }
}

fn worker_loop(app: &App) {
    loop {
        let stream = {
            let mut conns = app.conns.lock().expect("conn queue poisoned");
            loop {
                if let Some(s) = conns.pop_front() {
                    break s;
                }
                if app.stop.load(Ordering::SeqCst) {
                    return;
                }
                conns = app.conn_ready.wait(conns).expect("conn queue poisoned");
            }
        };
        handle_connection(app, stream);
    }
}

/// Serve one connection: keep-alive loop until close, EOF, protocol
/// error, timeout, or server shutdown.
///
/// Hostile-client hardening: `TCP_NODELAY` (small JSON responses go out
/// immediately), per-read socket timeouts in both directions, and a
/// whole-request-head wall-clock deadline via [`DeadlineReader`] — so
/// neither an abandoned keep-alive socket nor a slow-loris client
/// trickling header bytes can hold this worker past the read timeout.
fn handle_connection(app: &App, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(app.read_timeout));
    let _ = stream.set_write_timeout(Some(app.write_timeout));
    let Ok(peer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(DeadlineReader::new(peer, Instant::now() + app.read_timeout));
    let mut out = stream;
    loop {
        // The head deadline doubles as the idle keep-alive timeout:
        // it is re-armed per request, so a connection that sends
        // nothing for read_timeout is dropped just like one that
        // trickles bytes forever.
        reader
            .get_mut()
            .set_deadline(Instant::now() + app.read_timeout);
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let _ = write_response(&mut out, &Response::error(400, &e.to_string()), false);
                return;
            }
            // TimedOut/WouldBlock (idle or slow-loris) and every other
            // I/O failure: drop the connection, free the worker.
            Err(_) => return,
        };
        let t0 = Instant::now();
        // Worker isolation: a panic anywhere in routing/handling is
        // this request's 500, not the worker thread's death.
        let (endpoint, resp) = catch_unwind(AssertUnwindSafe(|| handle_request(app, &req)))
            .unwrap_or_else(|_| ("", Response::error(500, "internal panic (worker isolated)")));
        if let Some(i) = ENDPOINTS.iter().position(|&e| e == endpoint) {
            let micros = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
            app.hists[i].lock().expect("hist poisoned").record(micros);
        }
        // A stop may have raced in (possibly flipped by this very
        // request): close after this response so the worker can exit.
        let keep_alive = req.keep_alive && !app.stop.load(Ordering::SeqCst);
        if write_response(&mut out, &resp, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Route one request. Returns the latency-histogram endpoint name (""
/// for untracked routes) and the response.
fn handle_request(app: &App, req: &Request) -> (&'static str, Response) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let state = app.health_state();
            let cache = app.cache.stats();
            (
                "healthz",
                Response::json(format!(
                    "{{\"ok\":{},\"state\":\"{state}\",\"uptime_ms\":{},\
                     \"queue_depth\":{},\"open_breakers\":{}}}",
                    state != "draining",
                    app.start.elapsed().as_millis(),
                    app.batcher.depth(),
                    cache.open_breakers,
                )),
            )
        }
        ("GET", "/stats") => ("stats", Response::json(stats_json(app))),
        ("POST", "/compile") => ("compile", compile_endpoint(app, &req.body)),
        ("POST", "/simulate") => ("simulate", sim_endpoint(app, &req.body, false)),
        ("POST", "/trace") => ("trace", sim_endpoint(app, &req.body, true)),
        ("POST", "/campaign") => ("campaign", campaign_endpoint(&req.body)),
        ("POST", "/shutdown") => {
            app.begin_shutdown();
            (
                "",
                Response::json("{\"ok\":true,\"stopping\":true}".as_bytes().to_vec()),
            )
        }
        ("GET" | "POST", _) => ("", Response::error(404, "no such endpoint")),
        _ => ("", Response::error(405, "method not allowed")),
    }
}

fn stats_json(app: &App) -> String {
    let c = app.cache.stats();
    let mut out = format!(
        "{{\"uptime_ms\":{},\"state\":\"{}\",\"queue_depth\":{},\
         \"cycles_per_ms_estimate\":{},\"cache\":{{\"hits\":{},\"misses\":{},\
         \"compiles\":{},\"evictions\":{},\"entries\":{},\"fast_fails\":{},\
         \"open_breakers\":{}}},\"endpoints\":{{",
        app.start.elapsed().as_millis(),
        app.health_state(),
        app.batcher.depth(),
        app.calib.estimate(),
        c.hits,
        c.misses,
        c.compiles,
        c.evictions,
        c.entries,
        c.fast_fails,
        c.open_breakers,
    );
    for (i, name) in ENDPOINTS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let hist = app.hists[i].lock().expect("hist poisoned");
        out.push_str(&format!("\"{name}\":{}", hist.to_json()));
    }
    out.push_str("},\"tiers\":{");
    let depths = app.batcher.depth_by_tier();
    let counters = app.batcher.tier_counters();
    for i in 0..Priority::COUNT {
        if i > 0 {
            out.push(',');
        }
        let hist = app.tier_hists[i].lock().expect("hist poisoned");
        out.push_str(&format!(
            "\"{}\":{{\"depth\":{},\"shed\":{},\"refused\":{},\"expired\":{},\
             \"executed\":{},\"latency\":{}}}",
            Priority::from_index(i).name(),
            depths[i],
            counters[i].shed,
            counters[i].refused,
            counters[i].expired,
            counters[i].executed,
            hist.to_json(),
        ));
    }
    out.push_str("}}");
    out
}

/// `POST /compile`: resolve the config, compile (or hit the cache), and
/// report the artifact's address and cache disposition. Compiles run
/// inline on the HTTP worker — the cache's single-flight dedup is the
/// concurrency control.
fn compile_endpoint(app: &App, body: &str) -> Response {
    let (cfg, workload, sys) = match resolve(body) {
        Ok(t) => t,
        Err(resp) => return *resp,
    };
    let hash = nupea::config_hash(&workload, &sys, cfg.heuristic);
    let t0 = Instant::now();
    let (result, cached) = app
        .cache
        .get_or_compile(hash, &workload, &sys, cfg.heuristic);
    match result {
        Ok(compiled) => Response::json(format!(
            "{{\"config_hash\":\"{hash:016x}\",\"compile_cached\":{cached},\
             \"workload\":\"{}\",\"heuristic\":\"{}\",\"divider\":{},\
             \"compile_micros\":{}}}",
            nupea::jsonl::escape(workload.name),
            compiled.heuristic,
            compiled.placed.timing.divider,
            t0.elapsed().as_micros()
        )),
        Err(e @ PipelineError::FastFailed { .. }) => Response::error(422, &e.to_string()),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

/// `POST /simulate` and `POST /trace`: enqueue into the batch executor
/// (backpressure and tiered shedding apply), compile via the shared
/// cache, simulate with the runner's record machinery. The simulate
/// response body is exactly [`records_to_json`] of the one record —
/// byte-identical to the batch CLI for the same config.
///
/// A `deadline_ms` request caps both queue wait (expired entries answer
/// 504 without consuming a batch slot) and the engine's cycle budget
/// via the calibrated cycles-per-ms estimate; a run that hits that
/// deadline-derived cap (and only that cap) is a 504 at the `sim`
/// stage, not a 200 with a cycle-limit error record.
fn sim_endpoint(app: &App, body: &str, want_trace: bool) -> Response {
    let (cfg, workload, sys) = match resolve(body) {
        Ok(t) => t,
        Err(resp) => return *resp,
    };
    // The in-band chaos hooks are strictly opt-in: without the flag,
    // any client could panic workers or pin executor slots at will.
    if cfg.x_chaos.is_some() && !app.chaos_hooks {
        return Response::error(
            403,
            "x_chaos is a test-only hook; start the server with --chaos-hooks to enable it",
        );
    }
    let hash = nupea::config_hash(&workload, &sys, cfg.heuristic);
    let retry = match cfg.retry_factor {
        None | Some(0 | 1) => RetryPolicy::None,
        Some(factor) => RetryPolicy::OneShot { factor },
    };
    let budget = cfg.cycle_budget;
    let heuristic = cfg.heuristic;
    let model = cfg.model;
    let tier = cfg.priority;
    let deadline = cfg
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let chaos = cfg.x_chaos.clone();
    let chaos_sleep_cap = app.read_timeout;
    let cache = Arc::clone(&app.cache);
    let calib = Arc::clone(&app.calib);
    let t0 = Instant::now();
    let job = Box::new(move || -> Response {
        // Chaos hooks (opt-in, gated above): honored only inside the
        // server's job closure, so they never affect the batch CLI or
        // the config hash.
        if let Some(spec) = chaos.as_deref() {
            if spec == "panic" {
                panic!("chaos: injected worker panic");
            }
            if let Some(ms) = spec.strip_prefix("sleep:").and_then(|s| s.parse().ok()) {
                // Even opted in, a chaos sleep cannot pin an executor
                // slot longer than the read timeout or the request's
                // own remaining deadline.
                let mut cap = chaos_sleep_cap;
                if let Some(d) = deadline {
                    cap = cap.min(d.saturating_duration_since(Instant::now()));
                }
                std::thread::sleep(cap.min(Duration::from_millis(ms)));
            }
        }
        // The executor already dropped expired entries at dequeue time,
        // but the deadline may have lapsed since; don't start a sim we
        // know can't answer in time.
        let mut deadline_cap = None;
        if let Some(d) = deadline {
            let Some(remaining) = d.checked_duration_since(Instant::now()) else {
                return Response::deadline_exceeded("queue");
            };
            deadline_cap = Some(calib.budget_for(remaining));
        }
        let (result, cached) = cache.get_or_compile(hash, &workload, &sys, heuristic);
        let compiled = match result {
            Ok(c) => c,
            Err(e @ PipelineError::FastFailed { .. }) => {
                return Response::error(422, &e.to_string());
            }
            Err(e) => return Response::error(500, &e.to_string()),
        };
        // Effective budget: the user's cycle cap, tightened (never
        // loosened) by the deadline-derived cap.
        let capped = deadline_cap.is_some_and(|cap| budget.is_none_or(|b| cap < b));
        let effective = match (deadline_cap, budget) {
            (Some(cap), Some(b)) => Some(cap.min(b)),
            (Some(cap), None) => Some(cap),
            (None, b) => b,
        };
        let (mut record, trace) = run_compiled(&compiled, model, effective, retry, want_trace);
        record.compile_cached = cached;
        if record.error_kind.is_none() {
            calib.observe(record.cycles, record.sim_micros);
        } else if capped && record.error_kind == Some(RunErrorKind::CycleLimit) {
            // The deadline cap (not the user's budget) was binding.
            return Response::deadline_exceeded("sim");
        }
        if want_trace {
            match trace {
                Some(t) => Response::json(t.to_chrome_json()),
                None => Response::error(
                    500,
                    record.error.as_deref().unwrap_or("run produced no trace"),
                ),
            }
        } else {
            Response::json(records_to_json(&[record], false))
        }
    });
    let resp = match app.batcher.submit(job, tier, deadline) {
        Ok(resp) => resp,
        Err(Rejected::Full(retry_after)) => {
            return Response::tier_busy(tier.name(), false, retry_after)
        }
        Err(Rejected::Draining) => return Response::draining(),
    };
    // Per-tier latency covers only jobs the executor actually ran:
    // shed 429s, draining 503s, and queue-expired 504s answer in
    // microseconds and would drag a tier's percentiles down exactly
    // when overload makes them matter. Those outcomes show up in the
    // per-tier shed/refused/expired counters instead.
    let fast_rejected = matches!(resp.status, 429 | 503)
        || (resp.status == 504 && contains(&resp.body, b"\"stage\":\"queue\""));
    if !fast_rejected {
        let micros = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
        app.tier_hists[tier.index()]
            .lock()
            .expect("hist poisoned")
            .record(micros);
    }
    resp
}

/// Byte-level substring test (for classifying responses by body).
fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// `POST /campaign`: a small synchronous fault campaign over the
/// requested workload (smoke preset; seed/injections overridable).
fn campaign_endpoint(body: &str) -> Response {
    let (cfg, workload, _sys) = match resolve(body) {
        Ok(t) => t,
        Err(resp) => return *resp,
    };
    let mut ccfg = CampaignConfig::smoke();
    ccfg.scale = cfg.scale;
    ccfg.heuristic = cfg.heuristic;
    ccfg.model = cfg.model;
    if let Some(seed) = cfg.seed {
        ccfg.seed = seed;
    }
    if let Some(injections) = cfg.injections {
        ccfg.injections = injections;
    }
    let mut campaign = FaultCampaign::new(ccfg);
    campaign.workload((*workload).clone());
    match campaign.run() {
        Ok(report) => Response::json(report.to_json()),
        Err(e) => Response::error(500, &e.to_string()),
    }
}

/// Parse + build one request config, mapping failures to a 400.
#[allow(clippy::type_complexity)]
fn resolve(
    body: &str,
) -> Result<
    (
        ConfigRequest,
        Arc<nupea::Workload>,
        Arc<nupea::SystemConfig>,
    ),
    Box<Response>,
> {
    let cfg = ConfigRequest::parse(body).map_err(|e| Box::new(Response::error(400, &e)))?;
    let (workload, sys) = cfg
        .build()
        .map_err(|e| Box::new(Response::error(400, &e)))?;
    Ok((cfg, workload, sys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use client::{post, request, ClientResponse};

    fn test_server(opts: &ServeOptions) -> Server {
        Server::start(opts).expect("bind 127.0.0.1:0")
    }

    #[test]
    fn healthz_compile_cache_and_stats_end_to_end() {
        let server = test_server(&ServeOptions::default());
        let addr = server.addr();

        let health = request(addr, "GET", "/healthz", "").unwrap();
        assert_eq!(health.status, 200);
        assert!(health.body_str().contains("\"ok\":true"), "{health:?}");

        // First compile is a miss, second identical one a hit; both name
        // the same artifact hash.
        let body = "{\"workload\":\"spmv\",\"effort\":0}";
        let first = post(addr, "/compile", body).unwrap();
        assert_eq!(first.status, 200, "{first:?}");
        assert!(
            first.body_str().contains("\"compile_cached\":false"),
            "{first:?}"
        );
        let second = post(addr, "/compile", body).unwrap();
        assert!(
            second.body_str().contains("\"compile_cached\":true"),
            "{second:?}"
        );
        let hash_of = |r: &ClientResponse| {
            let b = r.body_str();
            let i = b.find("\"config_hash\":\"").unwrap() + 15;
            b[i..i + 16].to_string()
        };
        assert_eq!(hash_of(&first), hash_of(&second));

        let stats = request(addr, "GET", "/stats", "").unwrap();
        let s = stats.body_str();
        assert!(s.contains("\"hits\":1"), "{s}");
        assert!(s.contains("\"misses\":1"), "{s}");
        assert!(s.contains("\"compiles\":1"), "{s}");
        assert!(s.contains("\"compile\":{\"count\":2"), "{s}");

        server.shutdown();
        server.wait();
    }

    #[test]
    fn simulate_is_byte_identical_to_the_direct_runner_record() {
        let server = test_server(&ServeOptions::default());
        let addr = server.addr();

        let body = "{\"workload\":\"spmv\",\"effort\":0,\"model\":\"upea4\"}";
        let resp = post(addr, "/simulate", body).unwrap();
        assert_eq!(resp.status, 200, "{resp:?}");

        // Recompute the same record directly against the library.
        let cfg = ConfigRequest::parse(body).unwrap();
        let (workload, sys) = cfg.build().unwrap();
        let cache = ArtifactCache::new(4);
        let hash = nupea::config_hash(&workload, &sys, cfg.heuristic);
        let (compiled, _) = cache.get_or_compile(hash, &workload, &sys, cfg.heuristic);
        let (record, _) = run_compiled(
            &compiled.unwrap(),
            cfg.model,
            None,
            RetryPolicy::None,
            false,
        );
        assert_eq!(
            resp.body_str(),
            records_to_json(&[record], false),
            "served record must be byte-identical to the direct one"
        );

        // A second identical simulate rides the cache.
        let again = post(addr, "/simulate", body).unwrap();
        assert!(
            again.body_str().contains("\"compile_cached\":true"),
            "{}",
            again.body_str()
        );

        // Bad configs are 400s, not 500s.
        let bad = post(addr, "/simulate", "{\"workload\":\"nope\"}").unwrap();
        assert_eq!(bad.status, 400, "{bad:?}");
        let worse = post(addr, "/simulate", "{}").unwrap();
        assert_eq!(worse.status, 400, "{worse:?}");

        server.shutdown();
        server.wait();
    }

    #[test]
    fn full_queue_answers_429_with_retry_after() {
        let opts = ServeOptions {
            queue_cap: 0, // every simulate submission is refused
            ..ServeOptions::default()
        };
        let server = test_server(&opts);
        let addr = server.addr();

        let resp = post(addr, "/simulate", "{\"workload\":\"spmv\",\"effort\":0}").unwrap();
        assert_eq!(resp.status, 429, "{resp:?}");
        assert!(
            resp.headers
                .iter()
                .any(|(n, v)| n.eq_ignore_ascii_case("retry-after") && v == "1"),
            "{:?}",
            resp.headers
        );
        // Health and compile still work — only the sim queue is bounded.
        assert_eq!(request(addr, "GET", "/healthz", "").unwrap().status, 200);

        server.shutdown();
        server.wait();
    }

    #[test]
    fn expired_deadline_answers_504_and_tiers_reach_stats() {
        let server = test_server(&ServeOptions::default());
        let addr = server.addr();

        // deadline_ms:0 is expired on arrival: 504 from the queue stage,
        // no simulation.
        let resp = post(
            addr,
            "/simulate",
            "{\"workload\":\"spmv\",\"effort\":0,\"deadline_ms\":0,\"priority\":\"critical\"}",
        )
        .unwrap();
        assert_eq!(resp.status, 504, "{resp:?}");
        assert!(resp.body_str().contains("\"stage\":\"queue\""), "{resp:?}");

        // A generous deadline simulates normally.
        let ok = post(
            addr,
            "/simulate",
            "{\"workload\":\"spmv\",\"effort\":0,\"deadline_ms\":60000}",
        )
        .unwrap();
        assert_eq!(ok.status, 200, "{ok:?}");

        let stats = request(addr, "GET", "/stats", "").unwrap();
        let s = stats.body_str();
        assert!(s.contains("\"state\":\"ok\""), "{s}");
        assert!(s.contains("\"cycles_per_ms_estimate\":"), "{s}");
        assert!(s.contains("\"critical\":{\"depth\":"), "{s}");
        assert!(s.contains("\"expired\":1"), "{s}");

        server.shutdown();
        server.wait();
    }

    #[test]
    fn breaker_fast_fails_and_degrades_health() {
        let server = test_server(&ServeOptions::default());
        let addr = server.addr();

        // fifo_depth:0 cannot compile; after BREAKER_THRESHOLD
        // consecutive failures the breaker opens and answers 422
        // instead of re-running the failing compile.
        let body = "{\"workload\":\"spmv\",\"effort\":0,\"fifo_depth\":0}";
        for _ in 0..nupea::cache::BREAKER_THRESHOLD {
            let resp = post(addr, "/compile", body).unwrap();
            assert_eq!(resp.status, 500, "{resp:?}");
        }
        let fast = post(addr, "/compile", body).unwrap();
        assert_eq!(fast.status, 422, "{fast:?}");
        assert!(fast.body_str().contains("fast-failed"), "{fast:?}");
        // Simulate against the same config fast-fails too.
        let sim = post(addr, "/simulate", body).unwrap();
        assert_eq!(sim.status, 422, "{sim:?}");

        // An open breaker degrades health (still 200 — degraded is
        // load-balancer advice, not an outage).
        let health = request(addr, "GET", "/healthz", "").unwrap();
        assert_eq!(health.status, 200);
        assert!(
            health.body_str().contains("\"state\":\"degraded\""),
            "{health:?}"
        );

        server.shutdown();
        server.wait();
    }

    #[test]
    fn chaos_panic_is_isolated_to_a_500() {
        let opts = ServeOptions {
            chaos_hooks: true,
            ..ServeOptions::default()
        };
        let server = test_server(&opts);
        let addr = server.addr();

        let body = "{\"workload\":\"spmv\",\"effort\":0,\"x_chaos\":\"panic\"}";
        let resp = post(addr, "/simulate", body).unwrap();
        assert_eq!(resp.status, 500, "{resp:?}");
        assert!(resp.body_str().contains("panicked"), "{resp:?}");

        // The worker survived: a normal request on the same server works.
        let ok = post(addr, "/simulate", "{\"workload\":\"spmv\",\"effort\":0}").unwrap();
        assert_eq!(ok.status, 200, "{ok:?}");

        server.shutdown();
        server.wait();
    }

    #[test]
    fn chaos_hooks_are_refused_unless_opted_in() {
        // Default options: any x_chaos request is a 403, never a panic
        // or a sleep occupying an executor slot.
        let server = test_server(&ServeOptions::default());
        let addr = server.addr();

        for body in [
            "{\"workload\":\"spmv\",\"effort\":0,\"x_chaos\":\"panic\"}",
            "{\"workload\":\"spmv\",\"effort\":0,\"x_chaos\":\"sleep:3600000\"}",
        ] {
            let resp = post(addr, "/simulate", body).unwrap();
            assert_eq!(resp.status, 403, "{resp:?}");
            assert!(resp.body_str().contains("x_chaos"), "{resp:?}");
        }
        // The refusals consumed nothing: a normal simulate still works
        // and no job was ever admitted to the batch queue.
        let ok = post(addr, "/simulate", "{\"workload\":\"spmv\",\"effort\":0}").unwrap();
        assert_eq!(ok.status, 200, "{ok:?}");
        let stats = request(addr, "GET", "/stats", "").unwrap();
        assert!(
            stats.body_str().contains(
                "\"normal\":{\"depth\":0,\"shed\":0,\"refused\":0,\"expired\":0,\"executed\":1"
            ),
            "{}",
            stats.body_str()
        );

        server.shutdown();
        server.wait();
    }

    #[test]
    fn shutdown_endpoint_stops_the_server() {
        let server = test_server(&ServeOptions::default());
        let addr = server.addr();
        let resp = post(addr, "/shutdown", "").unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body_str().contains("\"stopping\":true"));
        server.wait(); // must return, not hang

        // Unknown paths and methods get structured errors while up.
        let server = test_server(&ServeOptions::default());
        let addr = server.addr();
        assert_eq!(request(addr, "GET", "/nope", "").unwrap().status, 404);
        assert_eq!(request(addr, "PUT", "/healthz", "").unwrap().status, 405);
        server.shutdown();
        server.wait();
    }
}

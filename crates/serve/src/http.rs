//! Dependency-free blocking HTTP/1.1, just enough for the serve API:
//! request-line + header parsing, `Content-Length` bodies, keep-alive.
//!
//! The repo's offline-safe discipline rules out an async stack; a
//! worker pool over [`std::net::TcpListener`] saturates the simulator
//! (each request spends its time in PnR/simulation, not I/O), so the
//! protocol layer stays ~200 lines of plain reads and writes. Limits
//! are enforced up front: 8 KB request head, 1 MB body.

use std::io::{self, BufRead, Write};

/// Longest accepted request line or header line.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body.
pub const MAX_BODY: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query strings are not split off).
    pub path: String,
    /// Decoded body (empty without a `Content-Length`).
    pub body: String,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// One response to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (name, value) — e.g. `Retry-After` on 429.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A 200 response with a JSON body.
    #[must_use]
    pub fn json(body: impl Into<Vec<u8>>) -> Self {
        Response {
            status: 200,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// An error response with a JSON `{"error": ...}` body.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: format!("{{\"error\":\"{}\"}}", nupea::jsonl::escape(message)).into_bytes(),
        }
    }

    /// A 429 with a `Retry-After` hint in seconds.
    #[must_use]
    pub fn too_busy(retry_after_secs: u64) -> Self {
        let mut r = Response::error(429, "simulation queue full");
        r.headers
            .push(("Retry-After", retry_after_secs.to_string()));
        r
    }

    /// A tier-tagged 429: either a refusal at the door (the queue is
    /// full and nothing lower-tier could be shed) or a queued job
    /// evicted by a higher-tier arrival (`shed` true). Always carries
    /// `Retry-After` (≥ 1 second) so front-of-fleet proxies can pace.
    #[must_use]
    pub fn tier_busy(tier: &'static str, shed: bool, retry_after_secs: u64) -> Self {
        let mut r = Response {
            status: 429,
            content_type: "application/json",
            headers: Vec::new(),
            body: format!(
                "{{\"error\":\"simulation queue full\",\"tier\":\"{tier}\",\"shed\":{shed}}}"
            )
            .into_bytes(),
        };
        r.headers
            .push(("Retry-After", retry_after_secs.max(1).to_string()));
        r
    }

    /// A 504: the request's `deadline_ms` expired (`where_` says at
    /// which stage — `queue` before simulating, `sim` mid-simulation).
    #[must_use]
    pub fn deadline_exceeded(where_: &str) -> Self {
        Response {
            status: 504,
            content_type: "application/json",
            headers: Vec::new(),
            body: format!("{{\"error\":\"deadline exceeded\",\"stage\":\"{where_}\"}}")
                .into_bytes(),
        }
    }

    /// A 503 for jobs abandoned when the drain deadline passes during
    /// graceful shutdown.
    #[must_use]
    pub fn draining() -> Self {
        Response::error(503, "server draining")
    }
}

/// The standard reason phrase for the status codes this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// A [`Read`](io::Read) adapter enforcing a wall-clock deadline on the
/// *whole* request head, not just each syscall. A slow-loris client
/// trickling one header byte per interval defeats a per-read socket
/// timeout (every read succeeds quickly); this adapter rejects the next
/// read once the deadline passes, so the connection is dropped within
/// one socket-timeout granule of the deadline regardless of how the
/// bytes arrive. Reset the deadline between keep-alive requests with
/// [`DeadlineReader::set_deadline`] (the same bound then doubles as the
/// idle keep-alive timeout).
#[derive(Debug)]
pub struct DeadlineReader<R> {
    inner: R,
    deadline: std::time::Instant,
}

impl<R> DeadlineReader<R> {
    /// Wrap `inner`, rejecting reads after `deadline`.
    pub fn new(inner: R, deadline: std::time::Instant) -> Self {
        DeadlineReader { inner, deadline }
    }

    /// Move the deadline (per keep-alive request).
    pub fn set_deadline(&mut self, deadline: std::time::Instant) {
        self.deadline = deadline;
    }
}

impl<R: io::Read> io::Read for DeadlineReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if std::time::Instant::now() >= self.deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request header deadline exceeded",
            ));
        }
        self.inner.read(buf)
    }
}

/// Read one line (stripping CRLF), bounded by [`MAX_LINE`].
fn read_line<R: BufRead>(reader: &mut R) -> io::Result<Option<String>> {
    let mut line = String::new();
    let mut limited = <&mut R as io::Read>::take(&mut *reader, MAX_LINE as u64 + 1);
    let n = limited.read_line(&mut line)?;
    if n == 0 {
        return Ok(None); // clean EOF
    }
    if n > MAX_LINE {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request line too long",
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Read and parse one request. `Ok(None)` means the peer closed the
/// connection cleanly between requests; malformed or oversized input is
/// an `InvalidData` error (the caller drops the connection).
///
/// # Errors
///
/// I/O errors from the stream, or `InvalidData` on protocol violations.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(start) = read_line(reader)? else {
        return Ok(None);
    };
    let mut parts = start.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed request line",
        ));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unsupported HTTP version",
        ));
    }
    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";
    for _ in 0..MAX_HEADERS {
        let Some(line) = read_line(reader)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF inside headers",
            ));
        };
        if line.is_empty() {
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            let body = String::from_utf8(body)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
            return Ok(Some(Request {
                method: method.to_string(),
                path: path.to_string(),
                body,
                keep_alive,
            }));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed header",
            ));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
            if content_length > MAX_BODY {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        "too many headers",
    ))
}

/// Serialize `resp`, honoring the request's keep-alive choice.
///
/// # Errors
///
/// I/O errors writing to the stream.
pub fn write_response(out: &mut impl Write, resp: &Response, keep_alive: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    out.write_all(head.as_bytes())?;
    out.write_all(&resp.body)?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> io::Result<Option<Request>> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_post_with_body_and_keep_alive_defaults() {
        let req = parse(
            "POST /simulate HTTP/1.1\r\nHost: x\r\nContent-Length: 17\r\n\r\n{\"workload\":\"a\"}x",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/simulate");
        assert_eq!(req.body, "{\"workload\":\"a\"}x");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");

        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, "");
        assert!(!req.keep_alive, "Connection: close honored");

        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn clean_eof_is_none_and_garbage_is_invalid_data() {
        assert!(parse("").unwrap().is_none(), "EOF between requests");
        for bad in [
            "GARBAGE\r\n\r\n",
            "GET /x SPDY/9\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
        ] {
            let err = parse(bad).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bad:?}");
        }
        // Truncated mid-headers is UnexpectedEof, not a clean close.
        let err = parse("GET /x HTTP/1.1\r\nHost: y\r\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn response_round_trips_through_the_parser_shapes() {
        let mut out = Vec::new();
        let mut resp = Response::json("{\"ok\":true}".as_bytes().to_vec());
        resp.headers.push(("X-Extra", "1".to_string()));
        write_response(&mut out, &resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("X-Extra: 1\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, &Response::too_busy(2), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("queue full"));
    }

    #[test]
    fn tier_and_deadline_responses_have_the_right_shape() {
        // Every 429 constructor yields a parseable Retry-After >= 1,
        // even when the caller computes a zero hint.
        for resp in [
            Response::too_busy(1),
            Response::tier_busy("batch", true, 0),
            Response::tier_busy("normal", false, 3),
        ] {
            assert_eq!(resp.status, 429);
            let retry = resp
                .headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case("retry-after"))
                .map(|(_, v)| v.parse::<u64>().expect("numeric Retry-After"))
                .expect("429 always carries Retry-After");
            assert!(retry >= 1, "Retry-After must be at least 1s, got {retry}");
        }
        let shed = Response::tier_busy("batch", true, 0);
        let body = String::from_utf8(shed.body).unwrap();
        assert!(body.contains("\"tier\":\"batch\""), "{body}");
        assert!(body.contains("\"shed\":true"), "{body}");

        let expired = Response::deadline_exceeded("queue");
        assert_eq!(expired.status, 504);
        assert_eq!(reason(504), "Gateway Timeout");
        assert!(String::from_utf8(expired.body)
            .unwrap()
            .contains("\"stage\":\"queue\""));

        assert_eq!(Response::draining().status, 503);
        assert_eq!(reason(503), "Service Unavailable");
        assert_eq!(reason(422), "Unprocessable Entity");
    }

    #[test]
    fn deadline_reader_rejects_reads_past_the_deadline() {
        use std::io::Read;
        use std::time::{Duration, Instant};
        let data = Cursor::new(b"GET /x HTTP/1.1\r\n\r\n".to_vec());
        // Future deadline: reads pass through.
        let mut ok = DeadlineReader::new(data, Instant::now() + Duration::from_secs(60));
        let mut buf = [0u8; 4];
        assert_eq!(ok.read(&mut buf).unwrap(), 4);
        // Expired deadline: the next read is a TimedOut error even
        // though bytes are available — the slow-loris bound.
        ok.set_deadline(Instant::now() - Duration::from_millis(1));
        let err = ok.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }
}

//! Seeded chaos harness: hostile clients against a live `nupea-serve`.
//!
//! Four attack shapes, all deterministic for a given [`ChaosConfig`]
//! seed (event order is RNG-shuffled, payloads are fixed):
//!
//! - **Slow-loris**: open a connection and trickle request-head bytes
//!   one at a time, far slower than any real client. A hardened server
//!   cuts the connection at its read deadline instead of pinning an
//!   HTTP worker ([`crate::http::DeadlineReader`]).
//! - **Mid-body disconnect**: advertise a `Content-Length`, send half
//!   the body, hang up. The worker must recycle, not block.
//! - **Injected worker panics**: `/simulate` with `x_chaos:"panic"`
//!   panics inside the batch job; `catch_unwind` isolation must turn
//!   that into a `500` and keep the executor alive.
//! - **Deadline storm**: `/simulate` with `deadline_ms:0` — every one
//!   is expired on arrival and must answer `504` without consuming a
//!   batch slot.
//!
//! [`run`] fires the configured mix at a server and returns a
//! [`ChaosReport`] of what came back; the caller (tests, `bench
//! serve_load`, CI) asserts on it — typically that the server is still
//! alive and answering correctly afterwards.

use crate::client::post;
use nupea_rng::Xoshiro256;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

/// What to throw at the server, and how hard.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ChaosConfig {
    /// RNG seed: fixes event interleaving for reproducible runs.
    pub seed: u64,
    /// Slow-loris connections to open (each on its own thread).
    pub slow_loris: usize,
    /// Mid-body disconnects to perform.
    pub disconnects: usize,
    /// `x_chaos:"panic"` simulate requests to send.
    pub panics: usize,
    /// `deadline_ms:0` simulate requests to send.
    pub deadline_storm: usize,
    /// Milliseconds between trickled slow-loris bytes.
    pub trickle_ms: u64,
    /// Bytes each slow-loris connection trickles before listening for
    /// the server's verdict.
    pub trickle_bytes: usize,
    /// How long a slow-loris client waits for the server to hang up
    /// before giving up and counting the connection as still open.
    pub loris_wait_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 7,
            slow_loris: 2,
            disconnects: 2,
            panics: 2,
            deadline_storm: 4,
            trickle_ms: 20,
            trickle_bytes: 16,
            loris_wait_ms: 10_000,
        }
    }
}

/// What came back from one chaos run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ChaosReport {
    /// Slow-loris connections opened.
    pub loris_sent: usize,
    /// Slow-loris connections the server cut (EOF/reset observed).
    pub loris_cut: usize,
    /// Mid-body disconnects performed.
    pub disconnects_sent: usize,
    /// Panic injections sent.
    pub panics_sent: usize,
    /// Panic injections answered `500` (worker isolated the panic).
    pub panics_isolated: usize,
    /// Deadline-storm requests sent.
    pub storm_sent: usize,
    /// Deadline-storm requests answered `504`.
    pub storm_expired: usize,
    /// Responses that didn't match the expected chaos outcome.
    pub unexpected: usize,
    /// `GET /healthz` answered 200 after the storm.
    pub alive_after: bool,
}

impl ChaosReport {
    /// JSON rendering for `bench serve_load --json` and CI logs.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"loris_sent\":{},\"loris_cut\":{},\"disconnects_sent\":{},\
             \"panics_sent\":{},\"panics_isolated\":{},\"storm_sent\":{},\
             \"storm_expired\":{},\"unexpected\":{},\"alive_after\":{}}}",
            self.loris_sent,
            self.loris_cut,
            self.disconnects_sent,
            self.panics_sent,
            self.panics_isolated,
            self.storm_sent,
            self.storm_expired,
            self.unexpected,
            self.alive_after,
        )
    }

    /// Every attack shape produced its contained outcome and the server
    /// answered `/healthz` afterwards.
    #[must_use]
    pub fn contained(&self) -> bool {
        self.alive_after
            && self.unexpected == 0
            && self.loris_cut == self.loris_sent
            && self.panics_isolated == self.panics_sent
            && self.storm_expired == self.storm_sent
    }
}

/// One slow-loris connection: trickle `trickle_bytes` head bytes at
/// `trickle_ms` intervals, then wait for the server to hang up. Returns
/// `true` if the server cut the connection (write failure, EOF, or
/// reset) within `loris_wait_ms`.
fn slow_loris(addr: SocketAddr, cfg: &ChaosConfig) -> bool {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return false;
    };
    // A plausible-looking start so the server commits a worker to the
    // read, then bytes arriving too slowly to ever finish a head.
    if stream.write_all(b"POST /simulate HTTP/1.1\r\n").is_err() {
        return true;
    }
    let drip = b"X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
    for i in 0..cfg.trickle_bytes {
        thread::sleep(Duration::from_millis(cfg.trickle_ms));
        if stream
            .write_all(&drip[i % drip.len()..=i % drip.len()])
            .is_err()
        {
            return true; // server already reset us mid-trickle
        }
    }
    // Listen for the server's close. A deadline-enforcing server EOFs
    // (or resets) us; a vulnerable one leaves the socket open until our
    // own read timeout fires.
    if stream
        .set_read_timeout(Some(Duration::from_millis(cfg.loris_wait_ms.max(1))))
        .is_err()
    {
        return false;
    }
    let mut buf = [0u8; 256];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return true, // EOF: the server closed the connection
            Ok(_) => continue,    // server wrote something; keep draining
            // Our own read timeout fired: the server left the socket
            // open for the whole loris_wait_ms — NOT cut. A vulnerable
            // server must fail `contained()`, not pass by our timeout.
            Err(e) if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) => {
                return false;
            }
            Err(_) => return true, // reset/abort: the server cut us
        }
    }
}

/// One mid-body disconnect: advertise a body, send half, hang up.
fn mid_body_disconnect(addr: SocketAddr) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    let body = "{\"workload\":\"spmv\",\"effort\":0}";
    let head = format!(
        "POST /simulate HTTP/1.1\r\nHost: chaos\r\nContent-Length: {}\r\n\r\n",
        body.len() * 2
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    // Drop: the server sees EOF mid-body and must recycle the worker.
}

/// Fire the configured chaos mix at `addr` and report what came back.
///
/// Slow-loris connections run on their own threads (they overlap the
/// rest of the storm, as hostile traffic would); panics, disconnects,
/// and deadline-storm requests are interleaved in seed-shuffled order.
#[must_use]
pub fn run(addr: SocketAddr, cfg: &ChaosConfig) -> ChaosReport {
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    let mut report = ChaosReport {
        loris_sent: cfg.slow_loris,
        ..ChaosReport::default()
    };

    let loris_threads: Vec<_> = (0..cfg.slow_loris)
        .map(|_| {
            let cfg = cfg.clone();
            thread::spawn(move || slow_loris(addr, &cfg))
        })
        .collect();

    #[derive(Clone, Copy)]
    enum Event {
        Disconnect,
        Panic,
        Storm,
    }
    let mut events = Vec::new();
    events.extend(std::iter::repeat_n(Event::Disconnect, cfg.disconnects));
    events.extend(std::iter::repeat_n(Event::Panic, cfg.panics));
    events.extend(std::iter::repeat_n(Event::Storm, cfg.deadline_storm));
    rng.shuffle(&mut events);

    for event in events {
        match event {
            Event::Disconnect => {
                mid_body_disconnect(addr);
                report.disconnects_sent += 1;
            }
            Event::Panic => {
                report.panics_sent += 1;
                let body = "{\"workload\":\"spmv\",\"effort\":0,\"x_chaos\":\"panic\"}";
                match post(addr, "/simulate", body) {
                    Ok(resp) if resp.status == 500 => report.panics_isolated += 1,
                    _ => report.unexpected += 1,
                }
            }
            Event::Storm => {
                report.storm_sent += 1;
                let body = "{\"workload\":\"spmv\",\"effort\":0,\"deadline_ms\":0,\
                            \"priority\":\"batch\"}";
                match post(addr, "/simulate", body) {
                    Ok(resp) if resp.status == 504 => report.storm_expired += 1,
                    // Under combined load a storm request may be shed
                    // (429) or refused while draining (503) before its
                    // deadline is even examined — still contained.
                    Ok(resp) if resp.status == 429 || resp.status == 503 => {
                        report.storm_expired += 1;
                    }
                    _ => report.unexpected += 1,
                }
            }
        }
    }

    for t in loris_threads {
        if t.join().unwrap_or(false) {
            report.loris_cut += 1;
        }
    }

    report.alive_after = matches!(
        crate::client::request(addr, "GET", "/healthz", ""),
        Ok(resp) if resp.status == 200
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_and_containment() {
        let report = ChaosReport {
            loris_sent: 2,
            loris_cut: 2,
            disconnects_sent: 1,
            panics_sent: 3,
            panics_isolated: 3,
            storm_sent: 4,
            storm_expired: 4,
            unexpected: 0,
            alive_after: true,
        };
        assert!(report.contained());
        let json = report.to_json();
        assert!(json.contains("\"loris_cut\":2"), "{json}");
        assert!(json.contains("\"alive_after\":true"), "{json}");

        let hurt = ChaosReport {
            unexpected: 1,
            ..report
        };
        assert!(!hurt.contained());
    }

    #[test]
    fn default_config_is_modest() {
        let cfg = ChaosConfig::default();
        assert!(cfg.slow_loris <= 4 && cfg.panics <= 4);
        assert!(cfg.trickle_ms >= 1);
    }
}

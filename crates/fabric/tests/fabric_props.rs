//! Property tests for fabric construction: every geometry the constructors
//! accept must produce a structurally sound NUPEA fabric. Randomized via
//! the workspace PRNG (seeded, exactly reproducible).

use nupea_fabric::{Fabric, PeKind, TopologyKind};
use nupea_rng::Xoshiro256;

const CASES: usize = 64;

#[test]
fn monaco_geometry_invariants() {
    let mut rng = Xoshiro256::seed_from_u64(0xFAB0);
    for _ in 0..CASES {
        let rows = rng.range_usize(1, 12) * 2;
        let cols = rng.range_usize(4, 25);
        let tracks = rng.range_usize(1, 7) as u32;
        let f = Fabric::monaco(rows, cols, tracks).expect("valid dims");
        // Half the PEs are load-store (alternating rows).
        assert_eq!(f.num_ls_pes(), rows * cols / 2);
        // Every LS PE reaches a port, with hops equal to its domain id.
        for pe in f.ls_pes() {
            let d = f.domain(pe).expect("LS PE has a domain");
            assert_eq!(f.mem_hops(pe), u32::from(d.0));
            let port = f.fmnoc().port_of(pe);
            assert!(port.index() < f.num_ports());
        }
        // Domains are monotone in distance from memory within a row.
        for r in (1..rows).step_by(2) {
            let mut last = 0u8;
            for c in (0..cols).rev() {
                let d = f.domain(f.at(r, c)).expect("LS row");
                assert!(d.0 >= last, "domains must not shrink away from memory");
                last = d.0;
            }
        }
        // Arithmetic PEs have no domain or access path.
        for pe in f.pes() {
            if f.kind(pe) == PeKind::Arith {
                assert!(f.domain(pe).is_none());
            }
        }
    }
}

#[test]
fn custom_domain_geometry_invariants() {
    let mut rng = Xoshiro256::seed_from_u64(0xFAB1);
    for _ in 0..CASES {
        let d0 = rng.range_usize(1, 5);
        let dcols = rng.range_usize(1, 4);
        let f = Fabric::monaco_with_domains(12, 12, 3, d0, dcols).expect("valid geometry");
        // Ports scale with d0 columns: one direct port per D0 PE per LS row.
        assert_eq!(f.num_ports(), 6 * d0.min(12));
        // D0 PEs have zero hops.
        let d0_count = f
            .ls_pes()
            .filter(|&p| f.domain(p).map(|d| d.0) == Some(0))
            .count();
        assert_eq!(d0_count, 6 * d0.min(12));
        for pe in f.ls_pes() {
            if f.domain(pe).map(|d| d.0) == Some(0) {
                assert_eq!(f.mem_hops(pe), 0);
            }
        }
    }
}

#[test]
fn clustered_topologies_cluster_ls_near_memory() {
    let mut rng = Xoshiro256::seed_from_u64(0xFAB2);
    for _ in 0..CASES {
        let rows = rng.range_usize(2, 16);
        let cols = rng.range_usize(2, 12) * 2;
        for kind in [TopologyKind::ClusteredSingle, TopologyKind::ClusteredDouble] {
            let f = Fabric::of_kind(kind, rows, cols, 3).expect("valid dims");
            // LS PEs occupy exactly the right half of every row.
            for r in 0..rows {
                for c in 0..cols {
                    let expect = if c >= cols / 2 {
                        PeKind::LoadStore
                    } else {
                        PeKind::Arith
                    };
                    assert_eq!(f.kind(f.at(r, c)), expect);
                }
            }
            // Port count: one (CS) or two (CD) per row.
            let per_row = if kind == TopologyKind::ClusteredSingle {
                1
            } else {
                2
            };
            assert_eq!(f.num_ports(), rows * per_row);
        }
    }
}

#[test]
fn distance_is_a_metric() {
    use nupea_fabric::PeId;
    let f = Fabric::monaco(12, 12, 3).unwrap();
    let mut rng = Xoshiro256::seed_from_u64(0xFAB3);
    for _ in 0..CASES * 4 {
        let a = PeId(rng.index(144) as u32);
        let b = PeId(rng.index(144) as u32);
        let c = PeId(rng.index(144) as u32);
        assert_eq!(f.dist(a, a), 0);
        assert_eq!(f.dist(a, b), f.dist(b, a));
        assert!(f.dist(a, c) <= f.dist(a, b) + f.dist(b, c));
    }
}

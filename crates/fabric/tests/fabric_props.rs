//! Property tests for fabric construction: every geometry the constructors
//! accept must produce a structurally sound NUPEA fabric.

use nupea_fabric::{Fabric, PeKind, TopologyKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn monaco_geometry_invariants(
        rows_half in 1usize..13,
        cols in 4usize..26,
        tracks in 1u32..8,
    ) {
        let rows = rows_half * 2;
        let f = Fabric::monaco(rows, cols, tracks).expect("valid dims");
        // Half the PEs are load-store (alternating rows).
        prop_assert_eq!(f.num_ls_pes(), rows * cols / 2);
        // Every LS PE reaches a port, with hops equal to its domain id.
        for pe in f.ls_pes() {
            let d = f.domain(pe).expect("LS PE has a domain");
            prop_assert_eq!(f.mem_hops(pe), u32::from(d.0));
            let port = f.fmnoc().port_of(pe);
            prop_assert!(port.index() < f.num_ports());
        }
        // Domains are monotone in distance from memory within a row.
        for r in (1..rows).step_by(2) {
            let mut last = 0u8;
            for c in (0..cols).rev() {
                let d = f.domain(f.at(r, c)).expect("LS row");
                prop_assert!(d.0 >= last, "domains must not shrink away from memory");
                last = d.0;
            }
        }
        // Arithmetic PEs have no domain or access path.
        for pe in f.pes() {
            if f.kind(pe) == PeKind::Arith {
                prop_assert!(f.domain(pe).is_none());
            }
        }
    }

    #[test]
    fn custom_domain_geometry_invariants(
        d0 in 1usize..6,
        dcols in 1usize..5,
    ) {
        let f = Fabric::monaco_with_domains(12, 12, 3, d0, dcols).expect("valid geometry");
        // Ports scale with d0 columns: one direct port per D0 PE per LS row.
        prop_assert_eq!(f.num_ports(), 6 * d0.min(12));
        // D0 PEs have zero hops.
        let d0_count = f
            .ls_pes()
            .filter(|&p| f.domain(p).map(|d| d.0) == Some(0))
            .count();
        prop_assert_eq!(d0_count, 6 * d0.min(12));
        for pe in f.ls_pes() {
            if f.domain(pe).map(|d| d.0) == Some(0) {
                prop_assert_eq!(f.mem_hops(pe), 0);
            }
        }
    }

    #[test]
    fn clustered_topologies_cluster_ls_near_memory(
        rows in 2usize..17,
        cols_half in 2usize..13,
    ) {
        let cols = cols_half * 2;
        for kind in [TopologyKind::ClusteredSingle, TopologyKind::ClusteredDouble] {
            let f = Fabric::of_kind(kind, rows, cols, 3).expect("valid dims");
            // LS PEs occupy exactly the right half of every row.
            for r in 0..rows {
                for c in 0..cols {
                    let expect = if c >= cols / 2 {
                        PeKind::LoadStore
                    } else {
                        PeKind::Arith
                    };
                    prop_assert_eq!(f.kind(f.at(r, c)), expect);
                }
            }
            // Port count: one (CS) or two (CD) per row.
            let per_row = if kind == TopologyKind::ClusteredSingle { 1 } else { 2 };
            prop_assert_eq!(f.num_ports(), rows * per_row);
        }
    }

    #[test]
    fn distance_is_a_metric(
        a in 0u32..144,
        b in 0u32..144,
        c in 0u32..144,
    ) {
        use nupea_fabric::PeId;
        let f = Fabric::monaco(12, 12, 3).unwrap();
        let (a, b, c) = (PeId(a), PeId(b), PeId(c));
        prop_assert_eq!(f.dist(a, a), 0);
        prop_assert_eq!(f.dist(a, b), f.dist(b, a));
        prop_assert!(f.dist(a, c) <= f.dist(a, b) + f.dist(b, c));
    }
}

//! Processing-element identifiers and kinds.

use std::fmt;

/// Identifies a PE within a fabric (row-major index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeId(pub u32);

impl PeId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pe{}", self.0)
    }
}

/// The functional-unit mix of a PE (§4.2: half of Monaco's PEs carry a
/// memory FU in addition to arithmetic and control-flow FUs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeKind {
    /// Arithmetic + control-flow FUs only.
    Arith,
    /// Arithmetic + control-flow + load-store FU; can issue memory requests.
    LoadStore,
}

impl fmt::Display for PeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeKind::Arith => f.write_str("A"),
            PeKind::LoadStore => f.write_str("LS"),
        }
    }
}

/// A NUPEA domain id; `DomainId(0)` is the fastest (closest to memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u8);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Identifies a fabric-to-memory port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u32);

impl PortId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// Identifies an arbiter in the fabric-memory NoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArbiterId(pub u32);

impl ArbiterId {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ArbiterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arb{}", self.0)
    }
}

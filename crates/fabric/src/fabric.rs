//! Fabric construction: PE grids, NUPEA domains, and the fabric-memory NoC.
//!
//! Memory sits on the **right edge** of the fabric in all topologies, as in
//! Fig. 8 of the paper. A PE's proximity to memory is therefore measured by
//! how close its column is to `cols - 1`.

use crate::pe::{ArbiterId, DomainId, PeId, PeKind, PortId};
use std::fmt;

/// Which fabric layout to build (§4.2 and Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Monaco: rows alternate between all-arithmetic and all-load-store;
    /// per LS row, the 3 columns nearest memory form domain D0 with direct
    /// memory ports, and the remaining columns are chunked (3 per domain)
    /// into D1, D2, … with one arbiter per (row, domain).
    Monaco,
    /// Clustered-Single: every row has its right half as LS PEs; one direct
    /// port per row (D0 is a single column).
    ClusteredSingle,
    /// Clustered-Double: like Clustered-Single but with two direct-port
    /// columns per row (doubling ports and fast-domain LS PEs).
    ClusteredDouble,
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyKind::Monaco => f.write_str("monaco"),
            TopologyKind::ClusteredSingle => f.write_str("clustered-single"),
            TopologyKind::ClusteredDouble => f.write_str("clustered-double"),
        }
    }
}

/// Where an LS PE's memory requests go first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAccess {
    /// Domain-0 PEs connect directly to a memory port (zero NoC hops).
    Direct(PortId),
    /// Other domains send requests to their (row, domain) arbiter.
    ViaArbiter(ArbiterId),
}

/// A round-robin arbiter in the fabric-memory NoC (one per row per domain
/// other than D0). Forwards one request per system cycle downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arbiter {
    /// Fabric row this arbiter serves.
    pub row: u32,
    /// Domain this arbiter serves.
    pub domain: DomainId,
    /// Where forwarded requests go.
    pub downstream: ArbSink,
}

/// Downstream target of an arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbSink {
    /// The next-closer domain's arbiter in the same row.
    Arbiter(ArbiterId),
    /// A memory port (shared combinationally with a D0 PE, §4.2).
    Port(PortId),
}

/// A fabric-to-memory port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Port {
    /// Fabric row the port serves.
    pub row: u32,
}

/// The fabric-memory NoC description consumed by the simulator.
#[derive(Debug, Clone, Default)]
pub struct FmNoc {
    /// All ports.
    pub ports: Vec<Port>,
    /// All arbiters.
    pub arbiters: Vec<Arbiter>,
    /// Per-PE memory access path (`None` for arithmetic PEs).
    pub access: Vec<Option<MemAccess>>,
}

impl FmNoc {
    /// Number of arbitration hops (request cycles) from a PE to its port.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is not a load-store PE.
    pub fn hops(&self, pe: PeId) -> u32 {
        let mut hops = 0;
        let mut cur = self.access[pe.index()].expect("hops() on non-LS PE");
        loop {
            match cur {
                MemAccess::Direct(_) => return hops,
                MemAccess::ViaArbiter(a) => {
                    hops += 1;
                    match self.arbiters[a.index()].downstream {
                        ArbSink::Arbiter(next) => cur = MemAccess::ViaArbiter(next),
                        ArbSink::Port(p) => {
                            let _ = p;
                            return hops;
                        }
                    }
                }
            }
        }
    }

    /// The port ultimately reached by a PE's requests.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is not a load-store PE.
    pub fn port_of(&self, pe: PeId) -> PortId {
        let mut cur = self.access[pe.index()].expect("port_of() on non-LS PE");
        loop {
            match cur {
                MemAccess::Direct(p) => return p,
                MemAccess::ViaArbiter(a) => match self.arbiters[a.index()].downstream {
                    ArbSink::Arbiter(next) => cur = MemAccess::ViaArbiter(next),
                    ArbSink::Port(p) => return p,
                },
            }
        }
    }
}

/// Errors from fabric construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// Rows/cols too small or odd where evenness is required.
    BadDimensions {
        /// Requested rows.
        rows: usize,
        /// Requested columns.
        cols: usize,
        /// Why they are rejected.
        reason: &'static str,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::BadDimensions { rows, cols, reason } => {
                write!(f, "bad fabric dimensions {rows}x{cols}: {reason}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// A spatial dataflow fabric: PE grid + NUPEA domains + fabric-memory NoC.
#[derive(Debug, Clone)]
pub struct Fabric {
    rows: usize,
    cols: usize,
    topology: TopologyKind,
    kinds: Vec<PeKind>,
    domains: Vec<Option<DomainId>>,
    num_domains: u8,
    fmnoc: FmNoc,
    /// Data-NoC track capacity per tile edge per direction.
    pub tracks: u32,
    /// Routed hops coverable within one fabric clock (timing calibration;
    /// stands in for sign-off timing closure — see DESIGN.md).
    pub hops_per_fabric_cycle: u32,
}

/// Columns per NUPEA domain beyond D0 in Monaco's shipping configuration
/// (the fan-out-4 arbiter tree takes three PE inputs plus one upstream
/// arbiter, §4.2).
const DOMAIN_COLS: usize = 3;

/// Number of direct-port columns in Monaco's D0 (3 ports per LS row gives
/// 18 ports on the 12×12 fabric, §4.2).
const MONACO_D0_COLS: usize = 3;

impl Fabric {
    /// Default data-NoC track capacity (§4.1: three tracks per tile).
    pub const DEFAULT_TRACKS: u32 = 3;
    /// Default timing calibration (see DESIGN.md §1): with diagonal and
    /// skip tracks passing a router only every other hop (§4.1), ~7
    /// Manhattan hops fit in one fabric cycle — cross-fabric paths on the
    /// 12×12 then yield the clock divider of 2 the paper reports (§6).
    pub const DEFAULT_HOPS_PER_FABRIC_CYCLE: u32 = 7;

    /// Build a Monaco-style fabric (`rows` must be even, ≥2; `cols` ≥4).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::BadDimensions`] for unusable sizes.
    pub fn monaco(rows: usize, cols: usize, tracks: u32) -> Result<Self, FabricError> {
        Self::monaco_with_domains(rows, cols, tracks, MONACO_D0_COLS, DOMAIN_COLS)
    }

    /// Monaco layout with explicit NUPEA-domain geometry: `d0_cols` columns
    /// of direct-port LS PEs per row and `domain_cols` columns per farther
    /// domain. This is the knob of the paper's LS-placement design-space
    /// exploration (contribution 4); `monaco(…)` uses the shipping (3, 3).
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::BadDimensions`] for unusable sizes or
    /// zero-width domains.
    pub fn monaco_with_domains(
        rows: usize,
        cols: usize,
        tracks: u32,
        d0_cols: usize,
        domain_cols: usize,
    ) -> Result<Self, FabricError> {
        if rows < 2 || !rows.is_multiple_of(2) || cols < 4 {
            return Err(FabricError::BadDimensions {
                rows,
                cols,
                reason: "monaco needs even rows >= 2 and cols >= 4",
            });
        }
        if d0_cols == 0 || d0_cols > cols || domain_cols == 0 {
            return Err(FabricError::BadDimensions {
                rows,
                cols,
                reason: "domain geometry must be nonzero and fit the row",
            });
        }
        // LS rows are the odd rows; every PE in an LS row is load-store.
        let is_ls = |r: usize, _c: usize| r % 2 == 1;
        Self::build(
            TopologyKind::Monaco,
            rows,
            cols,
            tracks,
            d0_cols,
            domain_cols,
            is_ls,
        )
    }

    /// Build a Clustered-Single fabric: right half of every row is LS, one
    /// direct-port column per row.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::BadDimensions`] for unusable sizes.
    pub fn clustered_single(rows: usize, cols: usize, tracks: u32) -> Result<Self, FabricError> {
        if rows < 2 || cols < 4 || !cols.is_multiple_of(2) {
            return Err(FabricError::BadDimensions {
                rows,
                cols,
                reason: "clustered needs rows >= 2 and even cols >= 4",
            });
        }
        let half = cols / 2;
        let is_ls = move |_r: usize, c: usize| c >= half;
        Self::build(
            TopologyKind::ClusteredSingle,
            rows,
            cols,
            tracks,
            1,
            DOMAIN_COLS,
            is_ls,
        )
    }

    /// Build a Clustered-Double fabric: like Clustered-Single with two
    /// direct-port columns per row.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::BadDimensions`] for unusable sizes.
    pub fn clustered_double(rows: usize, cols: usize, tracks: u32) -> Result<Self, FabricError> {
        if rows < 2 || cols < 4 || !cols.is_multiple_of(2) {
            return Err(FabricError::BadDimensions {
                rows,
                cols,
                reason: "clustered needs rows >= 2 and even cols >= 4",
            });
        }
        let half = cols / 2;
        let is_ls = move |_r: usize, c: usize| c >= half;
        Self::build(
            TopologyKind::ClusteredDouble,
            rows,
            cols,
            tracks,
            2,
            DOMAIN_COLS,
            is_ls,
        )
    }

    /// Build a fabric by topology kind.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::BadDimensions`] for unusable sizes.
    pub fn of_kind(
        kind: TopologyKind,
        rows: usize,
        cols: usize,
        tracks: u32,
    ) -> Result<Self, FabricError> {
        match kind {
            TopologyKind::Monaco => Self::monaco(rows, cols, tracks),
            TopologyKind::ClusteredSingle => Self::clustered_single(rows, cols, tracks),
            TopologyKind::ClusteredDouble => Self::clustered_double(rows, cols, tracks),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        topology: TopologyKind,
        rows: usize,
        cols: usize,
        tracks: u32,
        d0_cols: usize,
        domain_cols: usize,
        is_ls: impl Fn(usize, usize) -> bool,
    ) -> Result<Self, FabricError> {
        let mut kinds = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                kinds.push(if is_ls(r, c) {
                    PeKind::LoadStore
                } else {
                    PeKind::Arith
                });
            }
        }

        let mut domains: Vec<Option<DomainId>> = vec![None; rows * cols];
        let mut fmnoc = FmNoc {
            access: vec![None; rows * cols],
            ..Default::default()
        };
        let mut num_domains = 0u8;

        for r in 0..rows {
            // LS columns in this row, nearest-to-memory first.
            let ls_cols: Vec<usize> = (0..cols).rev().filter(|&c| is_ls(r, c)).collect();
            if ls_cols.is_empty() {
                continue;
            }
            // D0: direct ports.
            let d0 = &ls_cols[..d0_cols.min(ls_cols.len())];
            let row_port_base = fmnoc.ports.len();
            for &c in d0 {
                let pid = PortId(fmnoc.ports.len() as u32);
                fmnoc.ports.push(Port { row: r as u32 });
                let pe = r * cols + c;
                domains[pe] = Some(DomainId(0));
                fmnoc.access[pe] = Some(MemAccess::Direct(pid));
            }
            num_domains = num_domains.max(1);
            // Remaining columns chunked into domains of `domain_cols`,
            // nearest first; arbiters built near-to-far so each can point
            // downstream.
            let rest = &ls_cols[d0.len()..];
            let chunks: Vec<&[usize]> = rest.chunks(domain_cols).collect();
            // The D1 arbiter drains into the row's last D0 port ("every
            // third port", shared combinationally with that D0 PE).
            let shared_port = PortId((row_port_base + d0.len() - 1) as u32);
            let mut downstream = ArbSink::Port(shared_port);
            for (k, chunk) in chunks.iter().enumerate() {
                let domain = DomainId((k + 1) as u8);
                num_domains = num_domains.max(domain.0 + 1);
                let aid = ArbiterId(fmnoc.arbiters.len() as u32);
                fmnoc.arbiters.push(Arbiter {
                    row: r as u32,
                    domain,
                    downstream,
                });
                for &c in *chunk {
                    let pe = r * cols + c;
                    domains[pe] = Some(domain);
                    fmnoc.access[pe] = Some(MemAccess::ViaArbiter(aid));
                }
                downstream = ArbSink::Arbiter(aid);
            }
        }

        Ok(Fabric {
            rows,
            cols,
            topology,
            kinds,
            domains,
            num_domains,
            fmnoc,
            tracks,
            hops_per_fabric_cycle: Self::DEFAULT_HOPS_PER_FABRIC_CYCLE,
        })
    }

    /// Fabric rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Fabric columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Topology kind.
    pub fn topology(&self) -> TopologyKind {
        self.topology
    }

    /// Total PEs.
    pub fn num_pes(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of NUPEA domains in use.
    pub fn num_domains(&self) -> u8 {
        self.num_domains
    }

    /// The fabric-memory NoC description.
    pub fn fmnoc(&self) -> &FmNoc {
        &self.fmnoc
    }

    /// Number of fabric-to-memory ports.
    pub fn num_ports(&self) -> usize {
        self.fmnoc.ports.len()
    }

    /// PE kind.
    pub fn kind(&self, pe: PeId) -> PeKind {
        self.kinds[pe.index()]
    }

    /// NUPEA domain of a PE (`None` for arithmetic PEs).
    pub fn domain(&self, pe: PeId) -> Option<DomainId> {
        self.domains[pe.index()]
    }

    /// `(row, col)` of a PE.
    pub fn coords(&self, pe: PeId) -> (usize, usize) {
        (pe.index() / self.cols, pe.index() % self.cols)
    }

    /// PE at `(row, col)`.
    pub fn at(&self, row: usize, col: usize) -> PeId {
        debug_assert!(row < self.rows && col < self.cols);
        PeId((row * self.cols + col) as u32)
    }

    /// All PE ids.
    pub fn pes(&self) -> impl Iterator<Item = PeId> {
        (0..self.num_pes() as u32).map(PeId)
    }

    /// All load-store PE ids.
    pub fn ls_pes(&self) -> impl Iterator<Item = PeId> + '_ {
        self.pes().filter(|&p| self.kind(p) == PeKind::LoadStore)
    }

    /// Count of load-store PEs.
    pub fn num_ls_pes(&self) -> usize {
        self.kinds
            .iter()
            .filter(|k| **k == PeKind::LoadStore)
            .count()
    }

    /// Manhattan distance between two PEs (data-NoC hops lower bound).
    pub fn dist(&self, a: PeId, b: PeId) -> u32 {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        (ar.abs_diff(br) + ac.abs_diff(bc)) as u32
    }

    /// Column distance of a PE from the memory edge (right side).
    pub fn memory_distance(&self, pe: PeId) -> u32 {
        let (_, c) = self.coords(pe);
        (self.cols - 1 - c) as u32
    }

    /// Arbitration hops from an LS PE to its port (0 for D0).
    ///
    /// # Panics
    ///
    /// Panics if `pe` is not a load-store PE.
    pub fn mem_hops(&self, pe: PeId) -> u32 {
        self.fmnoc.hops(pe)
    }

    /// LS PEs in NUPEA placement-preference order (§5): sorted by domain
    /// (fastest first), then by column proximity to memory, then row —
    /// `… ≤ D1.c0 ≤ D0.c2 ≤ D0.c1 ≤ D0.c0`.
    pub fn ls_pref_order(&self) -> Vec<PeId> {
        let mut v: Vec<PeId> = self.ls_pes().collect();
        v.sort_by_key(|&p| {
            let d = self.domains[p.index()].expect("LS PE has a domain").0;
            let (r, _) = self.coords(p);
            (d, self.memory_distance(p), r)
        });
        v
    }

    /// Deterministic pseudo-random NUMA assignment of LS PEs to
    /// `num_numa_domains` (the NUMA-UPEA baseline, §6). Arithmetic PEs get
    /// `None`.
    pub fn numa_assignment(&self, seed: u64, num_numa_domains: u8) -> Vec<Option<u8>> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        self.pes()
            .map(|p| {
                if self.kind(p) == PeKind::LoadStore {
                    Some((next() % u64::from(num_numa_domains)) as u8)
                } else {
                    None
                }
            })
            .collect()
    }

    /// ASCII rendering of the fabric (kinds and domains), for debugging.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for r in 0..self.rows {
            for c in 0..self.cols {
                let pe = self.at(r, c);
                match self.domain(pe) {
                    Some(d) => {
                        let _ = write!(s, "{} ", d.0);
                    }
                    None => s.push_str(". "),
                }
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monaco_12x12_matches_paper() {
        let f = Fabric::monaco(12, 12, 3).unwrap();
        assert_eq!(f.num_pes(), 144);
        assert_eq!(f.num_ls_pes(), 72, "half of Monaco's PEs are LS");
        assert_eq!(f.num_ports(), 18, "18 memory ports at 12x12");
        assert_eq!(f.num_domains(), 4, "four NUPEA domains");
    }

    #[test]
    fn clustered_port_counts_match_paper() {
        let cs = Fabric::clustered_single(12, 12, 3).unwrap();
        let cd = Fabric::clustered_double(12, 12, 3).unwrap();
        assert_eq!(cs.num_ports(), 12);
        assert_eq!(cd.num_ports(), 24);
        assert_eq!(cs.num_ls_pes(), 72, "same LS count as Monaco");
        assert_eq!(cd.num_ls_pes(), 72);
    }

    #[test]
    fn monaco_domain_hops_increase_away_from_memory() {
        let f = Fabric::monaco(12, 12, 3).unwrap();
        // LS rows are odd; col 11 is D0 (0 hops), col 0 is D3 (3 hops).
        let near = f.at(1, 11);
        let far = f.at(1, 0);
        assert_eq!(f.domain(near), Some(DomainId(0)));
        assert_eq!(f.mem_hops(near), 0);
        assert_eq!(f.domain(far), Some(DomainId(3)));
        assert_eq!(f.mem_hops(far), 3);
        // Monotone: hops == domain id.
        for pe in f.ls_pes() {
            assert_eq!(f.mem_hops(pe), u32::from(f.domain(pe).unwrap().0));
        }
    }

    #[test]
    fn arith_rows_have_no_domains() {
        let f = Fabric::monaco(8, 8, 2).unwrap();
        for c in 0..8 {
            assert_eq!(f.kind(f.at(0, c)), PeKind::Arith);
            assert_eq!(f.domain(f.at(0, c)), None);
            assert_eq!(f.kind(f.at(1, c)), PeKind::LoadStore);
        }
    }

    #[test]
    fn ls_pref_order_puts_d0_nearest_column_first() {
        let f = Fabric::monaco(12, 12, 3).unwrap();
        let order = f.ls_pref_order();
        assert_eq!(order.len(), 72);
        // First 6 entries: the col-11 D0 PEs of each LS row.
        for pe in &order[..6] {
            let (_, c) = f.coords(*pe);
            assert_eq!(c, 11);
            assert_eq!(f.domain(*pe), Some(DomainId(0)));
        }
        // Order is monotone in domain.
        let doms: Vec<u8> = order.iter().map(|p| f.domain(*p).unwrap().0).collect();
        let mut sorted = doms.clone();
        sorted.sort_unstable();
        assert_eq!(doms, sorted);
    }

    #[test]
    fn scaling_preserves_structure() {
        for (r, c, ls, ports) in [(8, 8, 32, 12), (16, 16, 128, 24), (24, 24, 288, 36)] {
            let f = Fabric::monaco(r, c, 2).unwrap();
            assert_eq!(f.num_ls_pes(), ls, "{r}x{c} LS count");
            assert_eq!(f.num_ports(), ports, "{r}x{c} ports");
            let cs = Fabric::clustered_single(r, c, 2).unwrap();
            assert_eq!(cs.num_ls_pes(), ls, "{r}x{c} CS LS count matches Monaco");
        }
    }

    #[test]
    fn shared_port_is_the_last_d0_port_of_the_row() {
        let f = Fabric::monaco(12, 12, 3).unwrap();
        // D1 PEs of row 1 drain to the same port as the D0 PE at col 9
        // (third-nearest memory column).
        let d1_pe = f.at(1, 8);
        assert_eq!(f.domain(d1_pe), Some(DomainId(1)));
        let d0_shared = f.at(1, 9);
        assert_eq!(f.domain(d0_shared), Some(DomainId(0)));
        assert_eq!(f.fmnoc().port_of(d1_pe), f.fmnoc().port_of(d0_shared));
    }

    #[test]
    fn numa_assignment_is_deterministic_and_covers_ls_only() {
        let f = Fabric::monaco(12, 12, 3).unwrap();
        let a = f.numa_assignment(7, 4);
        let b = f.numa_assignment(7, 4);
        assert_eq!(a, b);
        for pe in f.pes() {
            match f.kind(pe) {
                PeKind::LoadStore => assert!(a[pe.index()].is_some()),
                PeKind::Arith => assert!(a[pe.index()].is_none()),
            }
        }
        let used: std::collections::HashSet<u8> = a.iter().flatten().copied().collect();
        assert!(used.len() >= 2, "assignment should spread across domains");
    }

    #[test]
    fn bad_dimensions_are_rejected() {
        assert!(Fabric::monaco(7, 12, 3).is_err());
        assert!(Fabric::monaco(12, 2, 3).is_err());
        assert!(Fabric::clustered_single(12, 7, 3).is_err());
    }

    #[test]
    fn dist_is_manhattan() {
        let f = Fabric::monaco(8, 8, 2).unwrap();
        assert_eq!(f.dist(f.at(0, 0), f.at(3, 4)), 7);
        assert_eq!(f.dist(f.at(2, 2), f.at(2, 2)), 0);
    }

    #[test]
    fn render_shows_domain_digits() {
        let f = Fabric::monaco(4, 8, 2).unwrap();
        let r = f.render();
        assert!(r.contains('0'));
        assert!(r.contains('.'));
    }
}

//! # nupea-fabric — fabric topologies and NUPEA domains
//!
//! Models the spatial fabrics evaluated in the NUPEA paper:
//!
//! * **Monaco** (§4.2, Fig. 8): a grid with alternating arithmetic and
//!   load-store rows, four NUPEA domains ordered by proximity to memory, a
//!   hierarchical fan-out-4 arbiter tree per LS row, and direct memory ports
//!   for domain D0.
//! * **Clustered-Single / Clustered-Double** (Fig. 13): alternative NUPEA
//!   topologies that pack all LS PEs into the columns nearest memory.
//!
//! The [`Fabric`] type exposes everything the compiler (`nupea-pnr`) and the
//! simulator (`nupea-sim`) need: PE kinds, domain assignments, the
//! fabric-memory NoC ([`fabric::FmNoc`]), data-NoC track capacity, and the
//! NUPEA placement-preference order.
//!
//! # Example
//!
//! ```
//! use nupea_fabric::{Fabric, PeKind};
//!
//! let f = Fabric::monaco(12, 12, 3)?;
//! assert_eq!(f.num_ls_pes(), 72);
//! assert_eq!(f.num_ports(), 18);
//! assert_eq!(f.num_domains(), 4);
//! // Domain-0 PEs reach memory with zero arbitration hops.
//! let d0 = f.ls_pref_order()[0];
//! assert_eq!(f.mem_hops(d0), 0);
//! # Ok::<(), nupea_fabric::FabricError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fabric;
pub mod pe;

pub use fabric::{ArbSink, Arbiter, Fabric, FabricError, FmNoc, MemAccess, Port, TopologyKind};
pub use pe::{ArbiterId, DomainId, PeId, PeKind, PortId};

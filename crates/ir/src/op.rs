//! Dataflow instruction set.
//!
//! The instruction set mirrors the ordered-dataflow model of RipTide-style
//! spatial dataflow architectures (and Monaco, per §4.1 of the NUPEA paper):
//! arithmetic executes in one fabric cycle, control-flow gates (steer, carry,
//! invariant, mux, select) execute combinationally, and memory operations have
//! variable latency determined by the memory system.

use std::fmt;

/// Binary arithmetic/logic operations. All operate on `i64` token values.
///
/// Division and remainder by zero yield `0` rather than trapping; the fabric
/// has no exception machinery and kernels rely on this total semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOpKind {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division (`x / 0 == 0`).
    Div,
    /// Remainder (`x % 0 == 0`).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (shift amount masked to 0..64).
    Shl,
    /// Arithmetic right shift (shift amount masked to 0..64).
    Shr,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl BinOpKind {
    /// Evaluate the operation on two token values.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOpKind::Add => a.wrapping_add(b),
            BinOpKind::Sub => a.wrapping_sub(b),
            BinOpKind::Mul => a.wrapping_mul(b),
            BinOpKind::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOpKind::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOpKind::And => a & b,
            BinOpKind::Or => a | b,
            BinOpKind::Xor => a ^ b,
            BinOpKind::Shl => a.wrapping_shl((b & 63) as u32),
            BinOpKind::Shr => a.wrapping_shr((b & 63) as u32),
            BinOpKind::Min => a.min(b),
            BinOpKind::Max => a.max(b),
        }
    }

    /// All binary operation kinds, for exhaustive testing.
    pub const ALL: [BinOpKind; 12] = [
        BinOpKind::Add,
        BinOpKind::Sub,
        BinOpKind::Mul,
        BinOpKind::Div,
        BinOpKind::Rem,
        BinOpKind::And,
        BinOpKind::Or,
        BinOpKind::Xor,
        BinOpKind::Shl,
        BinOpKind::Shr,
        BinOpKind::Min,
        BinOpKind::Max,
    ];
}

impl fmt::Display for BinOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOpKind::Add => "add",
            BinOpKind::Sub => "sub",
            BinOpKind::Mul => "mul",
            BinOpKind::Div => "div",
            BinOpKind::Rem => "rem",
            BinOpKind::And => "and",
            BinOpKind::Or => "or",
            BinOpKind::Xor => "xor",
            BinOpKind::Shl => "shl",
            BinOpKind::Shr => "shr",
            BinOpKind::Min => "min",
            BinOpKind::Max => "max",
        };
        f.write_str(s)
    }
}

/// Comparison operations; result is `1` (true) or `0` (false).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpKind {
    /// Evaluate the comparison, returning `1` or `0`.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> i64 {
        let r = match self {
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
            CmpKind::Lt => a < b,
            CmpKind::Le => a <= b,
            CmpKind::Gt => a > b,
            CmpKind::Ge => a >= b,
        };
        r as i64
    }

    /// All comparison kinds, for exhaustive testing.
    pub const ALL: [CmpKind; 6] = [
        CmpKind::Eq,
        CmpKind::Ne,
        CmpKind::Lt,
        CmpKind::Le,
        CmpKind::Gt,
        CmpKind::Ge,
    ];
}

impl fmt::Display for CmpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpKind::Eq => "eq",
            CmpKind::Ne => "ne",
            CmpKind::Lt => "lt",
            CmpKind::Le => "le",
            CmpKind::Gt => "gt",
            CmpKind::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnOpKind {
    /// Arithmetic negation.
    Neg,
    /// Bitwise not.
    Not,
    /// Absolute value (wrapping at `i64::MIN`).
    Abs,
}

impl UnOpKind {
    /// Evaluate the operation.
    #[inline]
    pub fn eval(self, a: i64) -> i64 {
        match self {
            UnOpKind::Neg => a.wrapping_neg(),
            UnOpKind::Not => !a,
            UnOpKind::Abs => a.wrapping_abs(),
        }
    }

    /// All unary operation kinds, for exhaustive testing.
    pub const ALL: [UnOpKind; 3] = [UnOpKind::Neg, UnOpKind::Not, UnOpKind::Abs];
}

impl fmt::Display for UnOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOpKind::Neg => "neg",
            UnOpKind::Not => "not",
            UnOpKind::Abs => "abs",
        };
        f.write_str(s)
    }
}

/// Whether a steer forwards its value on a true or a false decider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SteerPolarity {
    /// Forward the value when the decider is non-zero, drop it otherwise.
    OnTrue,
    /// Forward the value when the decider is zero, drop it otherwise.
    OnFalse,
}

impl fmt::Display for SteerPolarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SteerPolarity::OnTrue => f.write_str("T"),
            SteerPolarity::OnFalse => f.write_str("F"),
        }
    }
}

/// Identifies a kernel parameter ("xdata" program argument on Monaco).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub u32);

/// Identifies a sink (result-collection endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SinkId(pub u32);

/// A dataflow instruction.
///
/// Input/output port conventions are defined by [`Op::num_inputs`] and
/// [`Op::num_outputs`]; the named port constants on this type document the
/// meaning of each port index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A kernel argument. Emits its bound value exactly once at program start.
    Param(ParamId),
    /// Binary arithmetic. Inputs `[a, b]`, one fabric cycle.
    BinOp(BinOpKind),
    /// Comparison producing `0`/`1`. Inputs `[a, b]`, one fabric cycle.
    Cmp(CmpKind),
    /// Unary arithmetic. Input `[a]`, one fabric cycle.
    UnOp(UnOpKind),
    /// Steer (φ⁻¹): inputs `[decider, value]`. Combinational. Forwards or
    /// drops `value` according to the polarity.
    Steer(SteerPolarity),
    /// Loop-carried variable gate. Inputs `[init, back, decider]`.
    ///
    /// State machine: starting in the *await-init* state it consumes one
    /// `init` token and re-emits it. While looping, each `decider` token is
    /// consumed in order: a true decider consumes and re-emits one `back`
    /// token; a false decider emits nothing and returns to *await-init*.
    Carry,
    /// Loop-invariant value gate. Inputs `[value, decider]`.
    ///
    /// When empty it consumes one `value` token, stores it, and emits a copy.
    /// While holding, each true `decider` emits another copy; a false decider
    /// discards the held value (emitting nothing) so that a fresh value can be
    /// accepted on the next loop entry.
    Invariant,
    /// Eager conditional: inputs `[decider, on_true, on_false]`. Consumes all
    /// three tokens and forwards the selected one. Combinational.
    Select,
    /// Lazy merge: inputs `[decider, on_true, on_false]`. Consumes the decider
    /// and *only* the selected data token; the untaken port is expected to
    /// carry no token for this firing. Combinational.
    Mux,
    /// Memory load. Inputs `[addr, order?]`; outputs `[value, order]`.
    /// Latency is determined by the memory system and NUPEA domain.
    Load,
    /// Memory store. Inputs `[addr, value, order?]`; outputs `[order]`.
    Store,
    /// Result collection endpoint. Input `[value]`; values are recorded in
    /// arrival order for validation against reference implementations.
    Sink(SinkId),
}

impl Op {
    /// Input port index of the decider for steer/select/mux.
    pub const DECIDER: usize = 0;
    /// Input port index of a steer's value operand.
    pub const STEER_VALUE: usize = 1;
    /// Carry input ports.
    pub const CARRY_INIT: usize = 0;
    /// Carry back-edge port.
    pub const CARRY_BACK: usize = 1;
    /// Carry decider port.
    pub const CARRY_DECIDER: usize = 2;
    /// Invariant value port.
    pub const INV_VALUE: usize = 0;
    /// Invariant decider port.
    pub const INV_DECIDER: usize = 1;
    /// Load address port.
    pub const LOAD_ADDR: usize = 0;
    /// Load optional order-in port.
    pub const LOAD_ORDER: usize = 1;
    /// Store address port.
    pub const STORE_ADDR: usize = 0;
    /// Store value port.
    pub const STORE_VALUE: usize = 1;
    /// Store optional order-in port.
    pub const STORE_ORDER: usize = 2;
    /// Load output port carrying the loaded value.
    pub const OUT_VALUE: usize = 0;
    /// Load output port carrying the completion/order token.
    pub const LOAD_OUT_ORDER: usize = 1;

    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        match self {
            Op::Param(_) => 0,
            Op::UnOp(_) | Op::Sink(_) => 1,
            Op::BinOp(_) | Op::Cmp(_) | Op::Steer(_) | Op::Invariant | Op::Load => 2,
            Op::Carry | Op::Select | Op::Mux | Op::Store => 3,
        }
    }

    /// Number of output ports.
    pub fn num_outputs(&self) -> usize {
        match self {
            Op::Sink(_) => 0,
            Op::Load => 2,
            _ => 1,
        }
    }

    /// Input ports that may legally be left unconnected (optional order-ins).
    pub fn optional_inputs(&self) -> &'static [usize] {
        match self {
            Op::Load => &[Op::LOAD_ORDER],
            Op::Store => &[Op::STORE_ORDER],
            _ => &[],
        }
    }

    /// True for memory operations (only placeable on load-store PEs).
    pub fn is_memory(&self) -> bool {
        matches!(self, Op::Load | Op::Store)
    }

    /// True for combinational control-flow gates (steer/carry/invariant/
    /// select/mux), which run on the control-flow FU with zero fabric-cycle
    /// latency.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Op::Steer(_) | Op::Carry | Op::Invariant | Op::Select | Op::Mux
        )
    }

    /// True for single-cycle arithmetic (binop/cmp/unop).
    pub fn is_arith(&self) -> bool {
        matches!(self, Op::BinOp(_) | Op::Cmp(_) | Op::UnOp(_))
    }

    /// True for param/sink endpoints (hosted by the xdata FU).
    pub fn is_endpoint(&self) -> bool {
        matches!(self, Op::Param(_) | Op::Sink(_))
    }

    /// Short mnemonic used in graph dumps.
    pub fn mnemonic(&self) -> String {
        match self {
            Op::Param(p) => format!("param{}", p.0),
            Op::BinOp(k) => k.to_string(),
            Op::Cmp(k) => format!("cmp.{k}"),
            Op::UnOp(k) => k.to_string(),
            Op::Steer(p) => format!("steer.{p}"),
            Op::Carry => "carry".to_string(),
            Op::Invariant => "inv".to_string(),
            Op::Select => "sel".to_string(),
            Op::Mux => "mux".to_string(),
            Op::Load => "ld".to_string(),
            Op::Store => "st".to_string(),
            Op::Sink(s) => format!("sink{}", s.0),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_basics() {
        assert_eq!(BinOpKind::Add.eval(2, 3), 5);
        assert_eq!(BinOpKind::Sub.eval(2, 3), -1);
        assert_eq!(BinOpKind::Mul.eval(-4, 3), -12);
        assert_eq!(BinOpKind::Min.eval(-4, 3), -4);
        assert_eq!(BinOpKind::Max.eval(-4, 3), 3);
        assert_eq!(BinOpKind::Xor.eval(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn div_rem_by_zero_is_zero() {
        assert_eq!(BinOpKind::Div.eval(42, 0), 0);
        assert_eq!(BinOpKind::Rem.eval(42, 0), 0);
        assert_eq!(BinOpKind::Div.eval(42, 5), 8);
        assert_eq!(BinOpKind::Rem.eval(42, 5), 2);
    }

    #[test]
    fn wrapping_arithmetic_does_not_panic() {
        assert_eq!(BinOpKind::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(BinOpKind::Mul.eval(i64::MAX, 2), -2);
        assert_eq!(UnOpKind::Neg.eval(i64::MIN), i64::MIN);
        assert_eq!(UnOpKind::Abs.eval(i64::MIN), i64::MIN);
    }

    #[test]
    fn shift_amounts_are_masked() {
        assert_eq!(BinOpKind::Shl.eval(1, 65), 2);
        assert_eq!(BinOpKind::Shr.eval(-8, 1), -4);
    }

    #[test]
    fn cmp_eval_is_boolean() {
        for k in CmpKind::ALL {
            for (a, b) in [(0, 0), (1, 2), (2, 1), (-5, 5)] {
                let v = k.eval(a, b);
                assert!(v == 0 || v == 1, "{k} produced non-boolean {v}");
            }
        }
        assert_eq!(CmpKind::Lt.eval(-1, 0), 1);
        assert_eq!(CmpKind::Ge.eval(-1, 0), 0);
        assert_eq!(CmpKind::Eq.eval(7, 7), 1);
    }

    #[test]
    fn port_arities_are_consistent() {
        let ops = [
            Op::Param(ParamId(0)),
            Op::BinOp(BinOpKind::Add),
            Op::Cmp(CmpKind::Lt),
            Op::UnOp(UnOpKind::Neg),
            Op::Steer(SteerPolarity::OnTrue),
            Op::Carry,
            Op::Invariant,
            Op::Select,
            Op::Mux,
            Op::Load,
            Op::Store,
            Op::Sink(SinkId(0)),
        ];
        for op in ops {
            for &p in op.optional_inputs() {
                assert!(p < op.num_inputs(), "{op}: optional port out of range");
            }
            // Exactly one of the FU categories applies to each op.
            let cats = [
                op.is_memory(),
                op.is_control(),
                op.is_arith(),
                op.is_endpoint(),
            ];
            assert_eq!(
                cats.iter().filter(|&&c| c).count(),
                1,
                "{op} must belong to exactly one FU category"
            );
        }
    }
}

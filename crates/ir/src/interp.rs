//! Untimed reference interpreter for [`Dfg`]s.
//!
//! The interpreter executes the ordered-dataflow semantics with unbounded
//! token FIFOs and zero-latency memory. It defines the *functional* meaning
//! of a graph, independent of the microarchitecture: the timed simulator in
//! `nupea-sim` must produce exactly the same sink values and final memory
//! contents (differential tests enforce this).
//!
//! Besides execution, the interpreter reports diagnostics that catch lowering
//! bugs early: per-node firing counts, residual (unconsumed) tokens, and the
//! set of nodes still waiting on operands at quiescence.

use crate::graph::{Dfg, InPort, NodeId};
use crate::op::{Op, ParamId};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Errors surfaced during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// A load or store address fell outside simulated memory.
    OutOfBounds {
        /// Node that issued the access.
        node: NodeId,
        /// Offending word address.
        addr: i64,
    },
    /// The firing budget was exhausted (suggests a livelock or runaway loop).
    FiringBudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// A param node has no bound value.
    UnboundParam(ParamId),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfBounds { node, addr } => {
                write!(f, "memory access out of bounds at {node}: address {addr}")
            }
            InterpError::FiringBudgetExhausted { budget } => {
                write!(f, "firing budget of {budget} exhausted")
            }
            InterpError::UnboundParam(p) => write!(f, "param {} has no bound value", p.0),
        }
    }
}

impl std::error::Error for InterpError {}

/// Outcome of a completed interpretation.
#[derive(Debug, Clone)]
pub struct InterpResult {
    /// Values collected by each sink, in arrival order, indexed by `SinkId`.
    pub sinks: Vec<Vec<i64>>,
    /// Total node firings.
    pub total_firings: u64,
    /// Firings per node.
    pub firings: Vec<u64>,
    /// Nodes left with at least one buffered token after quiescence.
    /// A balanced lowering leaves this empty.
    pub residual: Vec<NodeId>,
    /// Nodes that are mid-state (carry looping / invariant holding) at
    /// quiescence. A balanced lowering leaves this empty too.
    pub unsettled: Vec<NodeId>,
}

impl InterpResult {
    /// True if no tokens or gate state linger after execution — the
    /// token-balance invariant of a correct structured lowering.
    pub fn is_balanced(&self) -> bool {
        self.residual.is_empty() && self.unsettled.is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateState {
    /// Carry awaiting an init token / invariant empty.
    Fresh,
    /// Carry looping.
    Looping,
    /// Invariant holding a value.
    Holding(i64),
}

/// The untimed interpreter.
///
/// # Examples
///
/// ```
/// use nupea_ir::graph::Dfg;
/// use nupea_ir::op::{BinOpKind, Op};
/// use nupea_ir::interp::Interp;
///
/// let mut g = Dfg::new("axpy1");
/// let (x, xp) = g.add_param("x");
/// let mul = g.add_node(Op::BinOp(BinOpKind::Mul));
/// g.connect(x, 0, mul, 0);
/// g.set_imm(mul, 1, 3);
/// let (s, _) = g.add_sink("out");
/// g.connect(mul, 0, s, 0);
///
/// let mut mem = vec![0i64; 16];
/// let mut it = Interp::new(&g);
/// it.bind(xp, 14);
/// let r = it.run(&mut mem)?;
/// assert_eq!(r.sinks[0], vec![42]);
/// # Ok::<(), nupea_ir::interp::InterpError>(())
/// ```
#[derive(Debug)]
pub struct Interp<'g> {
    dfg: &'g Dfg,
    fifos: Vec<Vec<VecDeque<i64>>>,
    state: Vec<GateState>,
    param_emitted: Vec<bool>,
    bindings: HashMap<u32, i64>,
    sinks: Vec<Vec<i64>>,
    firings: Vec<u64>,
    total_firings: u64,
    budget: u64,
}

impl<'g> Interp<'g> {
    /// Default firing budget.
    pub const DEFAULT_BUDGET: u64 = 200_000_000;

    /// Create an interpreter for a graph.
    pub fn new(dfg: &'g Dfg) -> Self {
        let fifos = dfg
            .iter()
            .map(|(_, n)| n.inputs.iter().map(|_| VecDeque::new()).collect())
            .collect();
        Interp {
            dfg,
            fifos,
            state: vec![GateState::Fresh; dfg.len()],
            param_emitted: vec![false; dfg.len()],
            bindings: HashMap::new(),
            sinks: vec![Vec::new(); dfg.sinks().len()],
            firings: vec![0; dfg.len()],
            total_firings: 0,
            budget: Self::DEFAULT_BUDGET,
        }
    }

    /// Bind a param to a value. Unbound params are an error at [`run`].
    ///
    /// [`run`]: Interp::run
    pub fn bind(&mut self, param: ParamId, value: i64) -> &mut Self {
        self.bindings.insert(param.0, value);
        self
    }

    /// Override the firing budget (livelock guard).
    pub fn with_budget(&mut self, budget: u64) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Execute to quiescence over the given word-addressed memory.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-bounds memory accesses, unbound params, or
    /// if the firing budget is exhausted.
    pub fn run(&mut self, mem: &mut [i64]) -> Result<InterpResult, InterpError> {
        for (pid, _) in self.dfg.params() {
            if !self.bindings.contains_key(&pid.0) {
                return Err(InterpError::UnboundParam(*pid));
            }
        }
        let mut work: VecDeque<NodeId> = self.dfg.node_ids().collect();
        let mut queued = vec![true; self.dfg.len()];
        while let Some(id) = work.pop_front() {
            queued[id.index()] = false;
            // Drain: fire as long as the node can.
            while self.try_fire(id, mem, &mut work, &mut queued)? {
                self.total_firings += 1;
                self.firings[id.index()] += 1;
                if self.total_firings > self.budget {
                    return Err(InterpError::FiringBudgetExhausted {
                        budget: self.budget,
                    });
                }
            }
        }
        let residual = self
            .dfg
            .node_ids()
            .filter(|id| self.fifos[id.index()].iter().any(|q| !q.is_empty()))
            .collect();
        let unsettled = self
            .dfg
            .node_ids()
            .filter(|id| !matches!(self.state[id.index()], GateState::Fresh))
            .collect();
        Ok(InterpResult {
            sinks: self.sinks.clone(),
            total_firings: self.total_firings,
            firings: self.firings.clone(),
            residual,
            unsettled,
        })
    }

    /// Tokens currently buffered at a node's input port (diagnostics).
    pub fn buffered(&self, node: NodeId, port: usize) -> &VecDeque<i64> {
        &self.fifos[node.index()][port]
    }

    #[inline]
    fn peek(&self, id: NodeId, port: usize) -> Option<i64> {
        match self.dfg.node(id).inputs[port] {
            InPort::Imm(v) => Some(v),
            InPort::Wire { .. } => self.fifos[id.index()][port].front().copied(),
            InPort::Unconnected => None,
        }
    }

    #[inline]
    fn consume(&mut self, id: NodeId, port: usize) -> i64 {
        match self.dfg.node(id).inputs[port] {
            InPort::Imm(v) => v,
            InPort::Wire { .. } => self.fifos[id.index()][port]
                .pop_front()
                .expect("consume called without token"),
            InPort::Unconnected => panic!("consume on unconnected port"),
        }
    }

    #[inline]
    fn order_wired(&self, id: NodeId, port: usize) -> bool {
        self.dfg.node(id).inputs[port].is_wire()
    }

    fn emit(
        &mut self,
        id: NodeId,
        port: usize,
        value: i64,
        work: &mut VecDeque<NodeId>,
        queued: &mut [bool],
    ) {
        for e in self.dfg.outs(id) {
            if e.src_port as usize == port {
                self.fifos[e.dst.index()][e.dst_port as usize].push_back(value);
                if !queued[e.dst.index()] {
                    queued[e.dst.index()] = true;
                    work.push_back(e.dst);
                }
            }
        }
    }

    /// Attempt one firing. Returns whether the node fired.
    fn try_fire(
        &mut self,
        id: NodeId,
        mem: &mut [i64],
        work: &mut VecDeque<NodeId>,
        queued: &mut [bool],
    ) -> Result<bool, InterpError> {
        let op = self.dfg.node(id).op;
        match op {
            Op::Param(p) => {
                if self.param_emitted[id.index()] {
                    return Ok(false);
                }
                let v = self.bindings[&p.0];
                self.param_emitted[id.index()] = true;
                self.emit(id, 0, v, work, queued);
                Ok(true)
            }
            Op::BinOp(k) => {
                if self.peek(id, 0).is_none() || self.peek(id, 1).is_none() {
                    return Ok(false);
                }
                let a = self.consume(id, 0);
                let b = self.consume(id, 1);
                self.emit(id, 0, k.eval(a, b), work, queued);
                Ok(true)
            }
            Op::Cmp(k) => {
                if self.peek(id, 0).is_none() || self.peek(id, 1).is_none() {
                    return Ok(false);
                }
                let a = self.consume(id, 0);
                let b = self.consume(id, 1);
                self.emit(id, 0, k.eval(a, b), work, queued);
                Ok(true)
            }
            Op::UnOp(k) => {
                if self.peek(id, 0).is_none() {
                    return Ok(false);
                }
                let a = self.consume(id, 0);
                self.emit(id, 0, k.eval(a), work, queued);
                Ok(true)
            }
            Op::Steer(pol) => {
                if self.peek(id, 0).is_none() || self.peek(id, 1).is_none() {
                    return Ok(false);
                }
                let d = self.consume(id, 0) != 0;
                let v = self.consume(id, 1);
                let forward = match pol {
                    crate::op::SteerPolarity::OnTrue => d,
                    crate::op::SteerPolarity::OnFalse => !d,
                };
                if forward {
                    self.emit(id, 0, v, work, queued);
                }
                Ok(true)
            }
            Op::Carry => match self.state[id.index()] {
                GateState::Fresh => {
                    if self.peek(id, Op::CARRY_INIT).is_none() {
                        return Ok(false);
                    }
                    let v = self.consume(id, Op::CARRY_INIT);
                    self.state[id.index()] = GateState::Looping;
                    self.emit(id, 0, v, work, queued);
                    Ok(true)
                }
                GateState::Looping => {
                    let Some(d) = self.peek(id, Op::CARRY_DECIDER) else {
                        return Ok(false);
                    };
                    if d != 0 {
                        if self.peek(id, Op::CARRY_BACK).is_none() {
                            return Ok(false);
                        }
                        self.consume(id, Op::CARRY_DECIDER);
                        let v = self.consume(id, Op::CARRY_BACK);
                        self.emit(id, 0, v, work, queued);
                    } else {
                        self.consume(id, Op::CARRY_DECIDER);
                        self.state[id.index()] = GateState::Fresh;
                    }
                    Ok(true)
                }
                GateState::Holding(_) => unreachable!("carry never holds"),
            },
            Op::Invariant => match self.state[id.index()] {
                GateState::Fresh => {
                    if self.peek(id, Op::INV_VALUE).is_none() {
                        return Ok(false);
                    }
                    let v = self.consume(id, Op::INV_VALUE);
                    self.state[id.index()] = GateState::Holding(v);
                    self.emit(id, 0, v, work, queued);
                    Ok(true)
                }
                GateState::Holding(v) => {
                    let Some(d) = self.peek(id, Op::INV_DECIDER) else {
                        return Ok(false);
                    };
                    self.consume(id, Op::INV_DECIDER);
                    if d != 0 {
                        self.emit(id, 0, v, work, queued);
                    } else {
                        self.state[id.index()] = GateState::Fresh;
                    }
                    Ok(true)
                }
                GateState::Looping => unreachable!("invariant never loops"),
            },
            Op::Select => {
                if self.peek(id, 0).is_none()
                    || self.peek(id, 1).is_none()
                    || self.peek(id, 2).is_none()
                {
                    return Ok(false);
                }
                let d = self.consume(id, 0) != 0;
                let a = self.consume(id, 1);
                let b = self.consume(id, 2);
                self.emit(id, 0, if d { a } else { b }, work, queued);
                Ok(true)
            }
            Op::Mux => {
                let Some(d) = self.peek(id, 0) else {
                    return Ok(false);
                };
                let taken = if d != 0 { 1 } else { 2 };
                if self.peek(id, taken).is_none() {
                    return Ok(false);
                }
                self.consume(id, 0);
                let v = self.consume(id, taken);
                self.emit(id, 0, v, work, queued);
                Ok(true)
            }
            Op::Load => {
                if self.peek(id, Op::LOAD_ADDR).is_none() {
                    return Ok(false);
                }
                if self.order_wired(id, Op::LOAD_ORDER) && self.peek(id, Op::LOAD_ORDER).is_none() {
                    return Ok(false);
                }
                let addr = self.consume(id, Op::LOAD_ADDR);
                if self.order_wired(id, Op::LOAD_ORDER) {
                    self.consume(id, Op::LOAD_ORDER);
                }
                let v = *usize::try_from(addr)
                    .ok()
                    .and_then(|a| mem.get(a))
                    .ok_or(InterpError::OutOfBounds { node: id, addr })?;
                self.emit(id, Op::OUT_VALUE, v, work, queued);
                self.emit(id, Op::LOAD_OUT_ORDER, 0, work, queued);
                Ok(true)
            }
            Op::Store => {
                if self.peek(id, Op::STORE_ADDR).is_none()
                    || self.peek(id, Op::STORE_VALUE).is_none()
                {
                    return Ok(false);
                }
                if self.order_wired(id, Op::STORE_ORDER) && self.peek(id, Op::STORE_ORDER).is_none()
                {
                    return Ok(false);
                }
                let addr = self.consume(id, Op::STORE_ADDR);
                let v = self.consume(id, Op::STORE_VALUE);
                if self.order_wired(id, Op::STORE_ORDER) {
                    self.consume(id, Op::STORE_ORDER);
                }
                let slot = usize::try_from(addr)
                    .ok()
                    .and_then(|a| mem.get_mut(a))
                    .ok_or(InterpError::OutOfBounds { node: id, addr })?;
                *slot = v;
                self.emit(id, 0, 0, work, queued);
                Ok(true)
            }
            Op::Sink(s) => {
                if self.peek(id, 0).is_none() {
                    return Ok(false);
                }
                let v = self.consume(id, 0);
                self.sinks[s.0 as usize].push(v);
                Ok(true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BinOpKind, CmpKind, SteerPolarity};

    /// Hand-build `for i in 0..n { acc += i }` and check the loop gates.
    fn counting_loop(n: i64) -> (Dfg, ParamId) {
        let mut g = Dfg::new("count");
        let (n_param, np) = g.add_param("n");

        // i carry: init 0 (materialized as a param-like source via imm on a
        // unop is not allowed on init; use an Add of the bound param 0*? —
        // instead use a dedicated zero source).
        let (zero_i, zp_i) = g.add_param("zero_i");
        let (zero_a, zp_a) = g.add_param("zero_a");
        let i_carry = g.add_node(Op::Carry);
        let acc_carry = g.add_node(Op::Carry);
        g.connect(zero_i, 0, i_carry, Op::CARRY_INIT);
        g.connect(zero_a, 0, acc_carry, Op::CARRY_INIT);

        // n invariant gated by the loop decider.
        let n_inv = g.add_node(Op::Invariant);
        g.connect(n_param, 0, n_inv, Op::INV_VALUE);

        // cond = i < n
        let cond = g.add_node(Op::Cmp(CmpKind::Lt));
        g.connect(i_carry, 0, cond, 0);
        g.connect(n_inv, 0, cond, 1);
        g.connect(cond, 0, n_inv, Op::INV_DECIDER);
        g.connect(cond, 0, i_carry, Op::CARRY_DECIDER);
        g.connect(cond, 0, acc_carry, Op::CARRY_DECIDER);

        // body: steer i and acc into the body.
        let i_body = g.add_node(Op::Steer(SteerPolarity::OnTrue));
        g.connect(cond, 0, i_body, 0);
        g.connect(i_carry, 0, i_body, 1);
        let acc_body = g.add_node(Op::Steer(SteerPolarity::OnTrue));
        g.connect(cond, 0, acc_body, 0);
        g.connect(acc_carry, 0, acc_body, 1);

        // i' = i + 1 ; acc' = acc + i
        let i_next = g.add_node(Op::BinOp(BinOpKind::Add));
        g.connect(i_body, 0, i_next, 0);
        g.set_imm(i_next, 1, 1);
        g.connect(i_next, 0, i_carry, Op::CARRY_BACK);
        let acc_next = g.add_node(Op::BinOp(BinOpKind::Add));
        g.connect(acc_body, 0, acc_next, 0);
        g.connect(i_body, 0, acc_next, 1);
        // NOTE: i_body fans out to both i_next and acc_next; each gets a copy.
        g.connect(acc_next, 0, acc_carry, Op::CARRY_BACK);

        // exit value of acc.
        let acc_exit = g.add_node(Op::Steer(SteerPolarity::OnFalse));
        g.connect(cond, 0, acc_exit, 0);
        g.connect(acc_carry, 0, acc_exit, 1);
        let (sink, _) = g.add_sink("acc");
        g.connect(acc_exit, 0, sink, 0);

        // The steered i copy to i_next also reaches acc_next; i_carry's raw
        // output feeds cond and both steers — consumption counts match.
        let _ = (n, zp_i, zp_a);
        g.validate().expect("valid graph");
        (g, np)
    }

    #[test]
    fn loop_sums_correctly_for_various_trip_counts() {
        for n in [0i64, 1, 2, 5, 17] {
            let (g, np) = counting_loop(n);
            let mut mem = vec![0i64; 4];
            let mut it = Interp::new(&g);
            // params: n, zero_i, zero_a in declaration order.
            let params: Vec<_> = g.params().iter().map(|(p, _)| *p).collect();
            for p in &params {
                it.bind(*p, 0);
            }
            it.bind(np, n);
            let r = it.run(&mut mem).expect("run ok");
            let expected: i64 = (0..n).sum();
            assert_eq!(r.sinks[0], vec![expected], "n={n}");
            assert!(
                r.is_balanced(),
                "n={n}: residual={:?} unsettled={:?}",
                r.residual,
                r.unsettled
            );
        }
    }

    #[test]
    fn zero_trip_loop_emits_init_and_resets() {
        let (g, np) = counting_loop(0);
        let mut mem = vec![0i64; 4];
        let mut it = Interp::new(&g);
        for (p, _) in g.params() {
            it.bind(*p, 0);
        }
        it.bind(np, 0);
        let r = it.run(&mut mem).unwrap();
        assert_eq!(r.sinks[0], vec![0]);
        assert!(r.is_balanced());
    }

    #[test]
    fn load_store_roundtrip() {
        let mut g = Dfg::new("copy");
        let (a, ap) = g.add_param("src");
        let ld = g.add_node(Op::Load);
        g.connect(a, 0, ld, Op::LOAD_ADDR);
        let st = g.add_node(Op::Store);
        g.set_imm(st, Op::STORE_ADDR, 3);
        g.connect(ld, Op::OUT_VALUE, st, Op::STORE_VALUE);
        let (sink, _) = g.add_sink("done");
        g.connect(st, 0, sink, 0);
        let mut mem = vec![7, 8, 9, 0];
        let mut it = Interp::new(&g);
        it.bind(ap, 1);
        let r = it.run(&mut mem).unwrap();
        assert_eq!(mem[3], 8);
        assert_eq!(r.sinks[0].len(), 1);
    }

    #[test]
    fn out_of_bounds_load_is_an_error() {
        let mut g = Dfg::new("oob");
        let (a, ap) = g.add_param("addr");
        let ld = g.add_node(Op::Load);
        g.connect(a, 0, ld, Op::LOAD_ADDR);
        let (s, _) = g.add_sink("v");
        g.connect(ld, 0, s, 0);
        let mut mem = vec![0i64; 4];
        let mut it = Interp::new(&g);
        it.bind(ap, 100);
        match it.run(&mut mem) {
            Err(InterpError::OutOfBounds { addr: 100, .. }) => {}
            other => panic!("expected OOB, got {other:?}"),
        }
    }

    #[test]
    fn unbound_param_is_an_error() {
        let mut g = Dfg::new("p");
        let (_a, _) = g.add_param("x");
        let mut mem = vec![0i64; 1];
        let mut it = Interp::new(&g);
        assert!(matches!(
            it.run(&mut mem),
            Err(InterpError::UnboundParam(_))
        ));
    }

    #[test]
    fn mux_consumes_only_taken_side() {
        // d=true path: produce only the true token; mux must fire.
        let mut g = Dfg::new("mux");
        let (d, dp) = g.add_param("d");
        let (t, tp) = g.add_param("t");
        let mux = g.add_node(Op::Mux);
        g.connect(d, 0, mux, 0);
        g.connect(t, 0, mux, 1);
        // false side: a steer that never fires (decider imm 0 forwards
        // nothing on OnTrue) — leave port simply wired from a steer with no
        // token. Simplest: wire from a second param that we bind but gate.
        let (f, fp) = g.add_param("f");
        let gate = g.add_node(Op::Steer(SteerPolarity::OnTrue));
        g.set_imm(gate, 0, 0); // decider false => drop
        g.connect(f, 0, gate, 1);
        g.connect(gate, 0, mux, 2);
        let (s, _) = g.add_sink("out");
        g.connect(mux, 0, s, 0);
        let mut mem = vec![0i64; 1];
        let mut it = Interp::new(&g);
        it.bind(dp, 1).bind(tp, 42).bind(fp, 99);
        let r = it.run(&mut mem).unwrap();
        assert_eq!(r.sinks[0], vec![42]);
        assert!(r.is_balanced());
    }

    #[test]
    fn firing_budget_guards_livelock() {
        // A 2-node oscillator: carry with an always-true decider and its own
        // output (via add) as back-edge = infinite loop.
        let mut g = Dfg::new("live");
        let (z, zp) = g.add_param("z");
        let c = g.add_node(Op::Carry);
        g.connect(z, 0, c, Op::CARRY_INIT);
        let inc = g.add_node(Op::BinOp(BinOpKind::Add));
        g.connect(c, 0, inc, 0);
        g.set_imm(inc, 1, 1);
        g.connect(inc, 0, c, Op::CARRY_BACK);
        g.set_imm(c, Op::CARRY_DECIDER, 1);
        let mut mem = vec![0i64; 1];
        let mut it = Interp::new(&g);
        it.bind(zp, 0).with_budget(10_000);
        assert!(matches!(
            it.run(&mut mem),
            Err(InterpError::FiringBudgetExhausted { .. })
        ));
    }
}

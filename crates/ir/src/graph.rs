//! The dataflow graph (DFG) data structure.
//!
//! A [`Dfg`] is a directed graph of dataflow instructions ([`Op`]s). Each node
//! has a fixed set of input ports (filled by a wire from another node's output
//! port, by an immediate constant, or — for optional order ports — left
//! unconnected) and one or more output ports that broadcast each produced
//! token to every attached consumer.

use crate::op::{Op, ParamId, SinkId};
use std::collections::HashMap;
use std::fmt;

/// Identifies a node within a [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index into [`Dfg::nodes`]-style dense arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What feeds an input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InPort {
    /// Nothing; only legal for optional order ports.
    Unconnected,
    /// An immediate constant encoded in the instruction. Immediates are
    /// always available and are never consumed.
    Imm(i64),
    /// A wire from `src`'s output port `src_port`.
    Wire {
        /// Producer node.
        src: NodeId,
        /// Producer output port.
        src_port: u8,
    },
}

impl InPort {
    /// True if this port must receive tokens at runtime.
    #[inline]
    pub fn is_wire(&self) -> bool {
        matches!(self, InPort::Wire { .. })
    }
}

/// An outgoing fanout record: `src_port` of the owning node feeds
/// (`dst`, `dst_port`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutEdge {
    /// Producer output port.
    pub src_port: u8,
    /// Consumer node.
    pub dst: NodeId,
    /// Consumer input port.
    pub dst_port: u8,
}

/// Criticality class of a memory operation, per §5 of the paper.
///
/// `Critical` loads sit on a loop-governing recurrence (long initiation
/// interval); `InnerLoop` memory ops execute frequently but are not on a
/// recurrence; `Other` covers the rest. The classes are ordered from most to
/// least critical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Criticality {
    /// Class (a): on a loop-governing recurrence.
    Critical,
    /// Class (b): inside an innermost loop but not on a recurrence.
    InnerLoop,
    /// Class (c): everything else.
    Other,
}

impl fmt::Display for Criticality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Criticality::Critical => f.write_str("critical"),
            Criticality::InnerLoop => f.write_str("inner-loop"),
            Criticality::Other => f.write_str("other"),
        }
    }
}

/// Per-node metadata carried alongside the op.
#[derive(Debug, Clone, Default)]
pub struct NodeMeta {
    /// Loop nesting depth at which the instruction was created (0 = top).
    pub loop_depth: u32,
    /// True if the instruction sits in a loop that contains no nested loop.
    pub in_leaf_loop: bool,
    /// Criticality class; `None` until [`crate::criticality::classify`] runs.
    pub criticality: Option<Criticality>,
    /// Front-end assertion that this memory op should classify as
    /// [`Criticality::Critical`]. The flag survives CSE/DCE rebuilds
    /// (metadata is cloned node-for-node) so a front end can verify its
    /// annotations against the classifier after optimization — see
    /// `Kernel::criticality_hint_violations`.
    pub expect_critical: bool,
    /// Optional debug label from the kernel builder.
    pub label: Option<String>,
}

/// A dataflow instruction plus its wiring and metadata.
#[derive(Debug, Clone)]
pub struct Node {
    /// The instruction.
    pub op: Op,
    /// Input ports, length = `op.num_inputs()`.
    pub inputs: Vec<InPort>,
    /// Metadata.
    pub meta: NodeMeta,
}

/// Errors produced by [`Dfg::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An input port that must be driven is unconnected.
    MissingInput {
        /// Offending node.
        node: NodeId,
        /// Offending port.
        port: usize,
    },
    /// A wire references a nonexistent node or output port.
    DanglingWire {
        /// Offending node.
        node: NodeId,
        /// Offending port.
        port: usize,
    },
    /// Two param nodes share a [`ParamId`].
    DuplicateParam(ParamId),
    /// Two sink nodes share a [`SinkId`].
    DuplicateSink(SinkId),
    /// An immediate was supplied on a port that requires a token stream
    /// (carry init/back, invariant value, steer value, mux data).
    ImmOnStreamPort {
        /// Offending node.
        node: NodeId,
        /// Offending port.
        port: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::MissingInput { node, port } => {
                write!(f, "input port {port} of {node} is unconnected")
            }
            GraphError::DanglingWire { node, port } => {
                write!(
                    f,
                    "input port {port} of {node} references a nonexistent source"
                )
            }
            GraphError::DuplicateParam(p) => write!(f, "duplicate param id {}", p.0),
            GraphError::DuplicateSink(s) => write!(f, "duplicate sink id {}", s.0),
            GraphError::ImmOnStreamPort { node, port } => {
                write!(f, "immediate on stream-only port {port} of {node}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An ordered-dataflow graph.
#[derive(Debug, Clone, Default)]
pub struct Dfg {
    name: String,
    nodes: Vec<Node>,
    outs: Vec<Vec<OutEdge>>,
    params: Vec<(ParamId, String)>,
    sinks: Vec<(SinkId, String)>,
}

impl Dfg {
    /// Create an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Dfg {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The graph's name (usually the kernel name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Add a node with all inputs unconnected. Returns its id.
    pub fn add_node(&mut self, op: Op) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            op,
            inputs: vec![InPort::Unconnected; op.num_inputs()],
            meta: NodeMeta::default(),
        });
        self.outs.push(Vec::new());
        if let Op::Param(p) = op {
            self.params.push((p, format!("p{}", p.0)));
        }
        if let Op::Sink(s) = op {
            self.sinks.push((s, format!("s{}", s.0)));
        }
        id
    }

    /// Add a fresh param node with a name; allocates the next [`ParamId`].
    pub fn add_param(&mut self, name: impl Into<String>) -> (NodeId, ParamId) {
        let pid = ParamId(self.params.len() as u32);
        let id = self.add_node(Op::Param(pid));
        self.params.last_mut().expect("param just pushed").1 = name.into();
        (id, pid)
    }

    /// Add a fresh sink node with a name; allocates the next [`SinkId`].
    pub fn add_sink(&mut self, name: impl Into<String>) -> (NodeId, SinkId) {
        let sid = SinkId(self.sinks.len() as u32);
        let id = self.add_node(Op::Sink(sid));
        self.sinks.last_mut().expect("sink just pushed").1 = name.into();
        (id, sid)
    }

    /// Declared params as `(id, name)` pairs, in declaration order.
    pub fn params(&self) -> &[(ParamId, String)] {
        &self.params
    }

    /// Declared sinks as `(id, name)` pairs, in declaration order.
    pub fn sinks(&self) -> &[(SinkId, String)] {
        &self.sinks
    }

    /// Connect `src`'s output port `src_port` to `dst`'s input port `dst_port`.
    ///
    /// # Panics
    ///
    /// Panics if ids or ports are out of range, or if the input port is
    /// already driven.
    pub fn connect(&mut self, src: NodeId, src_port: usize, dst: NodeId, dst_port: usize) {
        assert!(
            src_port < self.nodes[src.index()].op.num_outputs(),
            "output port {src_port} out of range for {src} ({})",
            self.nodes[src.index()].op
        );
        let slot = &mut self.nodes[dst.index()].inputs[dst_port];
        assert!(
            matches!(slot, InPort::Unconnected),
            "input port {dst_port} of {dst} already driven"
        );
        *slot = InPort::Wire {
            src,
            src_port: src_port as u8,
        };
        self.outs[src.index()].push(OutEdge {
            src_port: src_port as u8,
            dst,
            dst_port: dst_port as u8,
        });
    }

    /// Set an input port to an immediate constant.
    ///
    /// # Panics
    ///
    /// Panics if the port is already driven.
    pub fn set_imm(&mut self, dst: NodeId, dst_port: usize, value: i64) {
        let slot = &mut self.nodes[dst.index()].inputs[dst_port];
        assert!(
            matches!(slot, InPort::Unconnected),
            "input port {dst_port} of {dst} already driven"
        );
        *slot = InPort::Imm(value);
    }

    /// The node for an id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node's metadata.
    pub fn meta_mut(&mut self, id: NodeId) -> &mut NodeMeta {
        &mut self.nodes[id.index()].meta
    }

    /// Iterate over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Fanout records of a node (all output ports).
    pub fn outs(&self, id: NodeId) -> &[OutEdge] {
        &self.outs[id.index()]
    }

    /// Number of consumers attached to a given output port.
    pub fn fanout(&self, id: NodeId, port: usize) -> usize {
        self.outs[id.index()]
            .iter()
            .filter(|e| e.src_port as usize == port)
            .count()
    }

    /// Total number of wires in the graph.
    pub fn num_edges(&self) -> usize {
        self.outs.iter().map(Vec::len).sum()
    }

    /// Count of memory operations.
    pub fn num_memory_ops(&self) -> usize {
        self.nodes.iter().filter(|n| n.op.is_memory()).count()
    }

    /// Validate structural invariants. Returns all violations found.
    pub fn validate(&self) -> Result<(), Vec<GraphError>> {
        let mut errs = Vec::new();
        let mut seen_params: HashMap<u32, ()> = HashMap::new();
        let mut seen_sinks: HashMap<u32, ()> = HashMap::new();
        for (id, node) in self.iter() {
            let optional = node.op.optional_inputs();
            for (port, ip) in node.inputs.iter().enumerate() {
                match ip {
                    InPort::Unconnected => {
                        if !optional.contains(&port) {
                            errs.push(GraphError::MissingInput { node: id, port });
                        }
                    }
                    InPort::Imm(_) => {
                        if Self::stream_only_port(node.op, port) {
                            errs.push(GraphError::ImmOnStreamPort { node: id, port });
                        }
                    }
                    InPort::Wire { src, src_port } => {
                        let ok = (src.index()) < self.nodes.len()
                            && (*src_port as usize) < self.nodes[src.index()].op.num_outputs();
                        if !ok {
                            errs.push(GraphError::DanglingWire { node: id, port });
                        }
                    }
                }
            }
            match node.op {
                Op::Param(p) if seen_params.insert(p.0, ()).is_some() => {
                    errs.push(GraphError::DuplicateParam(p));
                }
                Op::Sink(s) if seen_sinks.insert(s.0, ()).is_some() => {
                    errs.push(GraphError::DuplicateSink(s));
                }
                _ => {}
            }
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    /// Ports whose semantics require a consumable token stream, so an
    /// immediate (never consumed) would change the firing discipline.
    fn stream_only_port(op: Op, port: usize) -> bool {
        match op {
            // A carry must consume its init to leave the await-init state;
            // an immediate would re-arm the loop forever. Back edges are
            // token streams by definition.
            Op::Carry => port == Op::CARRY_INIT || port == Op::CARRY_BACK,
            // An invariant's held value must be consumable/replaceable.
            Op::Invariant => port == Op::INV_VALUE,
            // A mux conditionally consumes its data ports.
            Op::Mux => port == 1 || port == 2,
            _ => false,
        }
    }

    /// Render a human-readable dump of the graph, one node per line.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "dfg {} ({} nodes, {} edges)",
            self.name,
            self.len(),
            self.num_edges()
        );
        for (id, n) in self.iter() {
            let ins: Vec<String> = n
                .inputs
                .iter()
                .map(|ip| match ip {
                    InPort::Unconnected => "-".to_string(),
                    InPort::Imm(v) => format!("#{v}"),
                    InPort::Wire { src, src_port } => format!("{src}.{src_port}"),
                })
                .collect();
            let crit = match n.meta.criticality {
                Some(c) => format!(" [{c}]"),
                None => String::new(),
            };
            let label = n.meta.label.as_deref().unwrap_or("");
            let _ = writeln!(
                s,
                "  {id}: {} ({}) d{}{}{} {}",
                n.op,
                ins.join(", "),
                n.meta.loop_depth,
                if n.meta.in_leaf_loop { " leaf" } else { "" },
                crit,
                label
            );
        }
        s
    }
}

impl fmt::Display for Dfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.dump())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BinOpKind, CmpKind};

    #[test]
    fn build_and_validate_small_graph() {
        let mut g = Dfg::new("t");
        let (a, _) = g.add_param("a");
        let (b, _) = g.add_param("b");
        let add = g.add_node(Op::BinOp(BinOpKind::Add));
        g.connect(a, 0, add, 0);
        g.connect(b, 0, add, 1);
        let (sink, _) = g.add_sink("out");
        g.connect(add, 0, sink, 0);
        assert!(g.validate().is_ok());
        assert_eq!(g.len(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.fanout(add, 0), 1);
    }

    #[test]
    fn missing_input_is_reported() {
        let mut g = Dfg::new("t");
        let add = g.add_node(Op::BinOp(BinOpKind::Add));
        g.set_imm(add, 0, 1);
        let errs = g.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, GraphError::MissingInput { node, port: 1 } if *node == add)));
    }

    #[test]
    fn optional_order_port_may_be_unconnected() {
        let mut g = Dfg::new("t");
        let ld = g.add_node(Op::Load);
        g.set_imm(ld, Op::LOAD_ADDR, 0);
        let (sink, _) = g.add_sink("v");
        g.connect(ld, 0, sink, 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn imm_on_carry_init_is_rejected() {
        let mut g = Dfg::new("t");
        let c = g.add_node(Op::Carry);
        g.set_imm(c, Op::CARRY_INIT, 0);
        g.set_imm(c, Op::CARRY_BACK, 0);
        g.set_imm(c, Op::CARRY_DECIDER, 1);
        let errs = g.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, GraphError::ImmOnStreamPort { port: 0, .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, GraphError::ImmOnStreamPort { port: 1, .. })));
    }

    #[test]
    #[should_panic(expected = "already driven")]
    fn double_drive_panics() {
        let mut g = Dfg::new("t");
        let (a, _) = g.add_param("a");
        let cmp = g.add_node(Op::Cmp(CmpKind::Lt));
        g.connect(a, 0, cmp, 0);
        g.connect(a, 0, cmp, 0);
    }

    #[test]
    fn dump_contains_nodes() {
        let mut g = Dfg::new("demo");
        let (a, _) = g.add_param("a");
        let neg = g.add_node(Op::UnOp(crate::op::UnOpKind::Neg));
        g.connect(a, 0, neg, 0);
        let d = g.dump();
        assert!(d.contains("demo"));
        assert!(d.contains("neg"));
    }
}

//! Critical-load identification (§5 of the paper).
//!
//! effcc's heuristics classify memory instructions into three classes:
//!
//! * **(a) Critical** — loads on a loop-governing recurrence, i.e. on a cycle
//!   in the dataflow graph. The latency of such a load bounds the initiation
//!   interval of the loop: no dependent work can be pipelined until it
//!   returns. We find these with Tarjan's strongly-connected-components
//!   algorithm over all dataflow edges (value *and* memory-ordering edges,
//!   so ordering recurrences inserted for correctness — e.g. in stencils —
//!   are recognized, matching the jacobi2d discussion in §7.1).
//! * **(b) InnerLoop** — memory instructions in an innermost (leaf) loop;
//!   they execute frequently but tolerate latency through pipelining.
//! * **(c) Other** — everything else.

use crate::graph::{Criticality, Dfg, InPort, NodeId};

/// Summary statistics of a classification pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CriticalityStats {
    /// Memory ops classified critical (class a).
    pub critical: usize,
    /// Memory ops classified inner-loop (class b).
    pub inner_loop: usize,
    /// Memory ops classified other (class c).
    pub other: usize,
}

impl CriticalityStats {
    /// Total memory operations classified.
    pub fn total(&self) -> usize {
        self.critical + self.inner_loop + self.other
    }
}

/// Compute strongly connected components over the DFG.
///
/// Returns a vector mapping each node index to its component id, plus the
/// size of each component. Iterative Tarjan (explicit stack) so deep graphs
/// cannot overflow the call stack.
pub fn sccs(dfg: &Dfg) -> (Vec<u32>, Vec<u32>) {
    let n = dfg.len();
    let mut index = vec![u32::MAX; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![u32::MAX; n];
    let mut comp_size: Vec<u32> = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;

    // Pre-build successor lists (by node index).
    let succs: Vec<Vec<u32>> = dfg
        .node_ids()
        .map(|id| dfg.outs(id).iter().map(|e| e.dst.0).collect())
        .collect();

    // Explicit DFS frames: (node, next-successor-position).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if index[start as usize] != u32::MAX {
            continue;
        }
        frames.push((start, 0));
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if *pos < succs[v as usize].len() {
                let w = succs[v as usize][*pos];
                *pos += 1;
                if index[w as usize] == u32::MAX {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    let cid = comp_size.len() as u32;
                    let mut size = 0u32;
                    loop {
                        let w = stack.pop().expect("tarjan stack nonempty");
                        on_stack[w as usize] = false;
                        comp[w as usize] = cid;
                        size += 1;
                        if w == v {
                            break;
                        }
                    }
                    comp_size.push(size);
                }
            }
        }
    }
    (comp, comp_size)
}

/// True if the node participates in a dataflow cycle (non-trivial SCC or a
/// self-loop).
fn on_cycle(dfg: &Dfg, id: NodeId, comp: &[u32], comp_size: &[u32]) -> bool {
    let c = comp[id.index()];
    if comp_size[c as usize] > 1 {
        return true;
    }
    // Self loop?
    dfg.node(id)
        .inputs
        .iter()
        .any(|ip| matches!(ip, InPort::Wire { src, .. } if *src == id))
}

/// Classify every memory operation in the graph, writing the result into
/// each node's metadata and returning summary statistics.
///
/// Non-memory nodes are left unclassified (`None`).
pub fn classify(dfg: &mut Dfg) -> CriticalityStats {
    let (comp, comp_size) = sccs(dfg);
    let mut stats = CriticalityStats::default();
    let ids: Vec<NodeId> = dfg.node_ids().collect();
    for id in ids {
        if !dfg.node(id).op.is_memory() {
            continue;
        }
        let class = if on_cycle(dfg, id, &comp, &comp_size) {
            stats.critical += 1;
            Criticality::Critical
        } else if dfg.node(id).meta.in_leaf_loop {
            stats.inner_loop += 1;
            Criticality::InnerLoop
        } else {
            stats.other += 1;
            Criticality::Other
        };
        dfg.meta_mut(id).criticality = Some(class);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Dfg;
    use crate::op::{BinOpKind, CmpKind, Op, SteerPolarity};

    /// A pointer-chase loop: the load feeds the carry back-edge, so the load
    /// is on a recurrence and must be classified Critical.
    #[test]
    fn pointer_chase_load_is_critical() {
        let mut g = Dfg::new("chase");
        let (head, _) = g.add_param("head");
        let carry = g.add_node(Op::Carry);
        g.connect(head, 0, carry, Op::CARRY_INIT);
        let cond = g.add_node(Op::Cmp(CmpKind::Ne));
        g.connect(carry, 0, cond, 0);
        g.set_imm(cond, 1, -1);
        g.connect(cond, 0, carry, Op::CARRY_DECIDER);
        let body = g.add_node(Op::Steer(SteerPolarity::OnTrue));
        g.connect(cond, 0, body, 0);
        g.connect(carry, 0, body, 1);
        let ld = g.add_node(Op::Load);
        g.connect(body, 0, ld, Op::LOAD_ADDR);
        g.meta_mut(ld).in_leaf_loop = true;
        g.connect(ld, Op::OUT_VALUE, carry, Op::CARRY_BACK);

        let stats = classify(&mut g);
        assert_eq!(stats.critical, 1);
        assert_eq!(stats.inner_loop, 0);
        assert_eq!(
            g.node(ld).meta.criticality,
            Some(crate::graph::Criticality::Critical)
        );
    }

    /// An accumulation loop where the load only feeds the reduction: the add
    /// is on the recurrence but the load is not, so it is InnerLoop.
    #[test]
    fn streaming_load_is_inner_loop_not_critical() {
        let mut g = Dfg::new("sum");
        let (base, _) = g.add_param("base");
        let (zero, _) = g.add_param("zero");
        let i_carry = g.add_node(Op::Carry);
        g.connect(zero, 0, i_carry, Op::CARRY_INIT);
        let cond = g.add_node(Op::Cmp(CmpKind::Lt));
        g.connect(i_carry, 0, cond, 0);
        g.set_imm(cond, 1, 100);
        g.connect(cond, 0, i_carry, Op::CARRY_DECIDER);
        let i_body = g.add_node(Op::Steer(SteerPolarity::OnTrue));
        g.connect(cond, 0, i_body, 0);
        g.connect(i_carry, 0, i_body, 1);
        let i_next = g.add_node(Op::BinOp(BinOpKind::Add));
        g.connect(i_body, 0, i_next, 0);
        g.set_imm(i_next, 1, 1);
        g.connect(i_next, 0, i_carry, Op::CARRY_BACK);

        // base invariant omitted for brevity: address = i + imm base.
        let _ = base;
        let addr = g.add_node(Op::BinOp(BinOpKind::Add));
        g.connect(i_body, 0, addr, 0);
        g.set_imm(addr, 1, 64);
        let ld = g.add_node(Op::Load);
        g.connect(addr, 0, ld, Op::LOAD_ADDR);
        g.meta_mut(ld).in_leaf_loop = true;
        let (sink, _) = g.add_sink("v");
        g.connect(ld, Op::OUT_VALUE, sink, 0);

        let stats = classify(&mut g);
        assert_eq!(stats.critical, 0);
        assert_eq!(stats.inner_loop, 1);
        assert_eq!(
            g.node(ld).meta.criticality,
            Some(crate::graph::Criticality::InnerLoop)
        );
    }

    /// A load at top level (outside any loop) is class Other.
    #[test]
    fn top_level_load_is_other() {
        let mut g = Dfg::new("once");
        let (a, _) = g.add_param("a");
        let ld = g.add_node(Op::Load);
        g.connect(a, 0, ld, Op::LOAD_ADDR);
        let (s, _) = g.add_sink("v");
        g.connect(ld, 0, s, 0);
        let stats = classify(&mut g);
        assert_eq!(stats.other, 1);
        assert_eq!(stats.total(), 1);
    }

    /// Memory-ordering edges participate in recurrence detection: a store
    /// whose order token is carried around the loop and gates the next
    /// iteration's store is Critical.
    #[test]
    fn ordering_recurrence_marks_store_critical() {
        let mut g = Dfg::new("ord");
        let (tok0, _) = g.add_param("tok0");
        let carry = g.add_node(Op::Carry);
        g.connect(tok0, 0, carry, Op::CARRY_INIT);
        let cond = g.add_node(Op::Cmp(CmpKind::Lt));
        g.connect(carry, 0, cond, 0);
        g.set_imm(cond, 1, 10);
        g.connect(cond, 0, carry, Op::CARRY_DECIDER);
        let tok_body = g.add_node(Op::Steer(SteerPolarity::OnTrue));
        g.connect(cond, 0, tok_body, 0);
        g.connect(carry, 0, tok_body, 1);
        let st = g.add_node(Op::Store);
        g.set_imm(st, Op::STORE_ADDR, 0);
        g.set_imm(st, Op::STORE_VALUE, 1);
        g.connect(tok_body, 0, st, Op::STORE_ORDER);
        // order-out feeds the next "token counter" via an add.
        let next = g.add_node(Op::BinOp(BinOpKind::Add));
        g.connect(st, 0, next, 0);
        g.connect(tok_body, 0, next, 1);
        g.connect(next, 0, carry, Op::CARRY_BACK);

        let stats = classify(&mut g);
        assert_eq!(stats.critical, 1);
    }

    #[test]
    fn scc_sizes_are_consistent() {
        let mut g = Dfg::new("two-loops");
        // Two independent 2-node cycles plus an isolated node.
        let (p, _) = g.add_param("p");
        let a = g.add_node(Op::BinOp(BinOpKind::Add));
        let b = g.add_node(Op::Carry);
        g.connect(p, 0, b, Op::CARRY_INIT);
        g.connect(b, 0, a, 0);
        g.set_imm(a, 1, 1);
        g.connect(a, 0, b, Op::CARRY_BACK);
        g.set_imm(b, Op::CARRY_DECIDER, 1);
        let (comp, sizes) = sccs(&g);
        assert_eq!(comp.len(), 3);
        // a and b share a component of size 2; p is alone.
        assert_eq!(comp[a.index()], comp[b.index()]);
        assert_eq!(sizes[comp[a.index()] as usize], 2);
        assert_eq!(sizes[comp[p.index()] as usize], 1);
    }
}

//! Structured kernel builder: lowers loops, conditionals, and memory
//! accesses to token-balanced ordered dataflow.
//!
//! This module plays the role of effcc's dataflow lowering (§5 of the
//! paper): structured control flow becomes steer/carry/invariant gates in
//! the style of RipTide — the execution model Monaco implements.
//!
//! # Token discipline
//!
//! Every value ([`Val`]) is tagged with the **region** that produced it:
//! the top level, a loop header (one token per iteration *attempt*), a loop
//! body (one per iteration), or an `if` branch (one per taken iteration).
//! Mixing values from different regions is a token-imbalance bug — the
//! builder panics at graph-construction time instead of deadlocking at
//! simulation time. Values cross regions only through the lowering
//! primitives: carried variables, declared invariants, branch inputs, and
//! loop exits.
//!
//! The resulting graphs satisfy a strong invariant, enforced by tests all
//! over this repository: after execution, **no tokens remain buffered
//! anywhere** and every gate is back in its fresh state.

use crate::graph::{Criticality, Dfg, NodeId};
use crate::op::{BinOpKind, CmpKind, Op, ParamId, SinkId, SteerPolarity, UnOpKind};
use std::collections::HashMap;

/// A value handle: an immediate or a node output, tagged with its region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Val {
    kind: ValKind,
    region: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ValKind {
    Imm(i64),
    Node(u32, u8),
}

impl Val {
    /// True if this is an immediate constant.
    pub fn is_imm(&self) -> bool {
        matches!(self.kind, ValKind::Imm(_))
    }

    /// The immediate value, if any.
    pub fn as_imm(&self) -> Option<i64> {
        match self.kind {
            ValKind::Imm(v) => Some(v),
            ValKind::Node(..) => None,
        }
    }
}

impl From<i64> for Val {
    fn from(v: i64) -> Self {
        Val {
            kind: ValKind::Imm(v),
            region: u32::MAX, // immediates are region-free
        }
    }
}

#[derive(Debug)]
struct Region {
    /// A stream carrying exactly one token per activation of this region,
    /// used to materialize constants as token streams.
    activation: Option<Val>,
    /// Loop nesting depth of the region (for criticality metadata).
    depth: u32,
    /// Set when a loop is created inside this region (leaf-loop tracking).
    has_inner_loop: bool,
    /// Memory nodes created directly in this region.
    mem_nodes: Vec<NodeId>,
    /// True if this region is a loop body (depth counts it).
    is_loop: bool,
    /// Parent region index in the builder's region arena.
    parent: Option<usize>,
}

/// The kernel construction context.
///
/// Obtain one through [`Kernel::build`]; all graph construction goes
/// through its methods.
#[derive(Debug)]
pub struct Ctx {
    g: Dfg,
    regions: Vec<Region>,
    cur: usize,
    fixed: Vec<(ParamId, i64)>,
    named: HashMap<String, ParamId>,
    imm_cache: HashMap<(u32, i64), Val>,
}

impl Ctx {
    fn new(name: &str) -> Self {
        let mut g = Dfg::new(name);
        // Hidden activation token for the top level.
        let (act_node, act_pid) = g.add_param("__act");
        let mut ctx = Ctx {
            g,
            regions: vec![Region {
                activation: None,
                depth: 0,
                has_inner_loop: false,
                mem_nodes: Vec::new(),
                is_loop: false,
                parent: None,
            }],
            cur: 0,
            fixed: vec![(act_pid, 1)],
            named: HashMap::new(),
            imm_cache: HashMap::new(),
        };
        ctx.regions[0].activation = Some(ctx.val(act_node, 0));
        ctx
    }

    fn val(&self, node: NodeId, port: u8) -> Val {
        Val {
            kind: ValKind::Node(node.0, port),
            region: self.cur as u32,
        }
    }

    fn val_in(&self, node: NodeId, port: u8, region: usize) -> Val {
        Val {
            kind: ValKind::Node(node.0, port),
            region: region as u32,
        }
    }

    #[track_caller]
    fn check_region(&self, v: Val) {
        if let ValKind::Node(n, _) = v.kind {
            assert_eq!(
                v.region, self.cur as u32,
                "value from node n{n} (region {}) used in region {}: tokens \
                 must cross regions via carried vars, invariants, branch \
                 inputs, or loop exits",
                v.region, self.cur
            );
        }
    }

    fn new_node(&mut self, op: Op) -> NodeId {
        let id = self.g.add_node(op);
        let depth = self.regions[self.cur].depth;
        let meta = self.g.meta_mut(id);
        meta.loop_depth = depth;
        if op.is_memory() {
            self.regions[self.cur].mem_nodes.push(id);
        }
        id
    }

    /// Wire a Val into a node input port.
    fn attach(&mut self, v: Val, dst: NodeId, port: usize) {
        match v.kind {
            ValKind::Imm(c) => self.g.set_imm(dst, port, c),
            ValKind::Node(n, p) => self.g.connect(NodeId(n), p as usize, dst, port),
        }
    }

    // ----- constants and params ------------------------------------------

    /// An immediate constant (usable as any operand except token-stream
    /// ports, where [`Ctx::stream_const`] materializes it).
    pub fn imm(&self, v: i64) -> Val {
        Val::from(v)
    }

    /// A named runtime parameter (bound at run time). Top-level region.
    ///
    /// # Panics
    ///
    /// Panics when called outside the top-level region or with a duplicate
    /// name.
    pub fn param(&mut self, name: &str) -> Val {
        assert_eq!(self.cur, 0, "params must be declared at top level");
        assert!(
            !self.named.contains_key(name),
            "duplicate param name {name}"
        );
        let (node, pid) = self.g.add_param(name);
        self.named.insert(name.to_string(), pid);
        self.val(node, 0)
    }

    /// A compile-time constant delivered as a real token stream (one token
    /// per activation of the current region). Needed wherever a consumable
    /// token is required, e.g. carry inits. Cached per (region, value).
    pub fn stream_const(&mut self, v: i64) -> Val {
        let key = (self.cur as u32, v);
        if let Some(&cached) = self.imm_cache.get(&key) {
            return cached;
        }
        let act = self.regions[self.cur]
            .activation
            .expect("region has an activation stream");
        // act & 0 = 0 ; 0 | v = v — two single-cycle ops per constant.
        let zero = self.new_node(Op::BinOp(BinOpKind::And));
        self.attach(act, zero, 0);
        self.g.set_imm(zero, 1, 0);
        let out = if v == 0 {
            self.val(zero, 0)
        } else {
            let or = self.new_node(Op::BinOp(BinOpKind::Or));
            let zv = self.val(zero, 0);
            self.attach(zv, or, 0);
            self.g.set_imm(or, 1, v);
            self.val(or, 0)
        };
        self.imm_cache.insert(key, out);
        out
    }

    /// Turn a Val into a guaranteed token stream in the current region
    /// (materializing immediates via [`Ctx::stream_const`]).
    pub fn as_stream(&mut self, v: Val) -> Val {
        match v.kind {
            ValKind::Imm(c) => self.stream_const(c),
            ValKind::Node(..) => {
                self.check_region(v);
                v
            }
        }
    }

    // ----- arithmetic ------------------------------------------------------

    /// Binary arithmetic/logic operation.
    pub fn bin(&mut self, k: BinOpKind, a: Val, b: Val) -> Val {
        if let (Some(x), Some(y)) = (a.as_imm(), b.as_imm()) {
            return self.imm(k.eval(x, y)); // constant-fold
        }
        self.check_region(a);
        self.check_region(b);
        let id = self.new_node(Op::BinOp(k));
        self.attach(a, id, 0);
        self.attach(b, id, 1);
        self.val(id, 0)
    }

    /// Comparison returning 0/1.
    pub fn cmp(&mut self, k: CmpKind, a: Val, b: Val) -> Val {
        if let (Some(x), Some(y)) = (a.as_imm(), b.as_imm()) {
            return self.imm(k.eval(x, y));
        }
        self.check_region(a);
        self.check_region(b);
        let id = self.new_node(Op::Cmp(k));
        self.attach(a, id, 0);
        self.attach(b, id, 1);
        self.val(id, 0)
    }

    /// Unary operation.
    pub fn un(&mut self, k: UnOpKind, a: Val) -> Val {
        if let Some(x) = a.as_imm() {
            return self.imm(k.eval(x));
        }
        self.check_region(a);
        let id = self.new_node(Op::UnOp(k));
        self.attach(a, id, 0);
        self.val(id, 0)
    }

    /// `a + b`.
    pub fn add(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.bin(BinOpKind::Add, a.into(), b.into())
    }
    /// `a - b`.
    pub fn sub(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.bin(BinOpKind::Sub, a.into(), b.into())
    }
    /// `a * b`.
    pub fn mul(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.bin(BinOpKind::Mul, a.into(), b.into())
    }
    /// `a / b` (0 on division by zero).
    pub fn div(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.bin(BinOpKind::Div, a.into(), b.into())
    }
    /// `a % b` (0 on division by zero).
    pub fn rem(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.bin(BinOpKind::Rem, a.into(), b.into())
    }
    /// `a & b`.
    pub fn and(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.bin(BinOpKind::And, a.into(), b.into())
    }
    /// `a | b`.
    pub fn or(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.bin(BinOpKind::Or, a.into(), b.into())
    }
    /// `a ^ b`.
    pub fn xor(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.bin(BinOpKind::Xor, a.into(), b.into())
    }
    /// `a << b`.
    pub fn shl(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.bin(BinOpKind::Shl, a.into(), b.into())
    }
    /// `a >> b` (arithmetic).
    pub fn shr(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.bin(BinOpKind::Shr, a.into(), b.into())
    }
    /// `min(a, b)`.
    pub fn min(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.bin(BinOpKind::Min, a.into(), b.into())
    }
    /// `max(a, b)`.
    pub fn max(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.bin(BinOpKind::Max, a.into(), b.into())
    }
    /// `a < b`.
    pub fn lt(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.cmp(CmpKind::Lt, a.into(), b.into())
    }
    /// `a <= b`.
    pub fn le(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.cmp(CmpKind::Le, a.into(), b.into())
    }
    /// `a > b`.
    pub fn gt(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.cmp(CmpKind::Gt, a.into(), b.into())
    }
    /// `a >= b`.
    pub fn ge(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.cmp(CmpKind::Ge, a.into(), b.into())
    }
    /// `a == b`.
    pub fn eq(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.cmp(CmpKind::Eq, a.into(), b.into())
    }
    /// `a != b`.
    pub fn ne(&mut self, a: impl Into<Val>, b: impl Into<Val>) -> Val {
        self.cmp(CmpKind::Ne, a.into(), b.into())
    }
    /// Eager conditional `if c { t } else { f }` — both sides are computed
    /// every iteration (arithmetic only; for conditional memory use
    /// [`Ctx::if_else`]).
    pub fn select(&mut self, c: Val, t: impl Into<Val>, f: impl Into<Val>) -> Val {
        let (t, f) = (t.into(), f.into());
        self.check_region(c);
        let t = self.as_stream(t);
        let f = self.as_stream(f);
        let id = self.new_node(Op::Select);
        self.attach(c, id, 0);
        self.attach(t, id, 1);
        self.attach(f, id, 2);
        self.val(id, 0)
    }

    // ----- memory ----------------------------------------------------------

    /// Load from `addr`.
    pub fn load(&mut self, addr: Val) -> Val {
        self.check_region(addr);
        let id = self.new_node(Op::Load);
        self.attach(addr, id, Op::LOAD_ADDR);
        self.val(id, Op::OUT_VALUE as u8)
    }

    /// Load from `addr`, asserting that the criticality classifier will
    /// mark it [`Criticality::Critical`] (i.e. it sits on a
    /// loop-governing recurrence). The assertion is checked after the
    /// kernel is built — see [`Kernel::criticality_hint_violations`].
    pub fn load_expect_critical(&mut self, addr: Val) -> Val {
        let v = self.load(addr);
        self.mark_last_expect_critical();
        v
    }

    /// Ordered variant of [`Ctx::load_expect_critical`].
    pub fn load_ordered_expect_critical(&mut self, addr: Val, order: Val) -> (Val, Val) {
        let v = self.load_ordered(addr, order);
        self.mark_last_expect_critical();
        v
    }

    /// Flag the most recently created node (a load, by construction of the
    /// two callers above) as expected-critical.
    fn mark_last_expect_critical(&mut self) {
        let id = NodeId(self.g.len() as u32 - 1);
        self.g.meta_mut(id).expect_critical = true;
    }

    /// Load gated on a memory-ordering token; returns `(value, order_out)`.
    pub fn load_ordered(&mut self, addr: Val, order: Val) -> (Val, Val) {
        self.check_region(addr);
        self.check_region(order);
        let id = self.new_node(Op::Load);
        self.attach(addr, id, Op::LOAD_ADDR);
        self.attach(order, id, Op::LOAD_ORDER);
        (
            self.val(id, Op::OUT_VALUE as u8),
            self.val(id, Op::LOAD_OUT_ORDER as u8),
        )
    }

    /// Store `value` to `addr`; returns the completion/order token.
    pub fn store(&mut self, addr: Val, value: Val) -> Val {
        self.check_region(addr);
        let value = self.as_stream(value);
        let id = self.new_node(Op::Store);
        self.attach(addr, id, Op::STORE_ADDR);
        self.attach(value, id, Op::STORE_VALUE);
        self.val(id, 0)
    }

    /// Store gated on a memory-ordering token; returns the order-out token.
    pub fn store_ordered(&mut self, addr: Val, value: Val, order: Val) -> Val {
        self.check_region(addr);
        self.check_region(order);
        let value = self.as_stream(value);
        let id = self.new_node(Op::Store);
        self.attach(addr, id, Op::STORE_ADDR);
        self.attach(value, id, Op::STORE_VALUE);
        self.attach(order, id, Op::STORE_ORDER);
        self.val(id, 0)
    }

    /// Join several ordering tokens into one (a tree of OR gates).
    ///
    /// # Panics
    ///
    /// Panics on an empty token list.
    pub fn join_order(&mut self, tokens: &[Val]) -> Val {
        assert!(!tokens.is_empty(), "join_order needs at least one token");
        let mut level: Vec<Val> = tokens.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.or(pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        level[0]
    }

    /// Record a value stream into a named sink (for validation).
    pub fn sink(&mut self, v: Val, name: &str) -> SinkId {
        self.check_region(v);
        let v = self.as_stream(v);
        let (id, sid) = self.g.add_sink(name);
        self.attach(v, id, 0);
        sid
    }

    // ----- control flow ----------------------------------------------------

    /// General while loop.
    ///
    /// * `carried` — loop-carried variables (their current-region values
    ///   are the initial values). Must be non-empty.
    /// * `invariants` — values from the current region needed inside the
    ///   loop (header and/or body).
    /// * `cond(ctx, carried, invariants) -> Val` — evaluated once per
    ///   iteration attempt in the **header** region.
    /// * `body(ctx, carried, invariants) -> Vec<Val>` — produces the next
    ///   value of every carried variable, in order, in the **body** region.
    ///
    /// Returns the exit values of the carried variables (current region).
    ///
    /// # Panics
    ///
    /// Panics if `carried` is empty, if `body` returns the wrong number of
    /// values, or on region violations.
    pub fn while_loop(
        &mut self,
        carried: &[Val],
        invariants: &[Val],
        cond: impl FnOnce(&mut Ctx, &[Val], &[Val]) -> Val,
        body: impl FnOnce(&mut Ctx, &[Val], &[Val]) -> Vec<Val>,
    ) -> Vec<Val> {
        assert!(!carried.is_empty(), "while_loop needs a carried variable");
        let parent = self.cur;
        self.regions[parent].has_inner_loop = true;

        // Materialize inits and invariant streams in the parent region.
        let inits: Vec<Val> = carried.iter().map(|&v| self.as_stream(v)).collect();
        let inv_streams: Vec<Val> = invariants.iter().map(|&v| self.as_stream(v)).collect();

        // Gates.
        let carries: Vec<NodeId> = inits
            .iter()
            .map(|&init| {
                let c = self.new_node(Op::Carry);
                self.attach(init, c, Op::CARRY_INIT);
                c
            })
            .collect();
        let invs: Vec<NodeId> = inv_streams
            .iter()
            .map(|&v| {
                let i = self.new_node(Op::Invariant);
                self.attach(v, i, Op::INV_VALUE);
                i
            })
            .collect();

        // Header region.
        let depth = self.regions[parent].depth + 1;
        let header = self.push_region(depth, true, parent);
        let hdr_carried: Vec<Val> = carries.iter().map(|&c| self.val(c, 0)).collect();
        let hdr_invs: Vec<Val> = invs.iter().map(|&i| self.val(i, 0)).collect();
        self.regions[header].activation = Some(hdr_carried[0]);
        let d = cond(self, &hdr_carried, &hdr_invs);
        self.check_region(d);
        assert!(!d.is_imm(), "loop condition must be a computed value");
        self.pop_region(parent);

        // Wire the decider.
        for &c in &carries {
            self.attach_raw(d, c, Op::CARRY_DECIDER);
        }
        for &i in &invs {
            self.attach_raw(d, i, Op::INV_DECIDER);
        }

        // Body region: steered copies.
        let body_region = self.push_region(depth, true, parent);
        let body_carried: Vec<Val> = carries
            .iter()
            .map(|&c| {
                let s = self.new_node(Op::Steer(SteerPolarity::OnTrue));
                self.attach_raw(d, s, Op::DECIDER);
                self.g.connect(c, 0, s, Op::STEER_VALUE);
                self.val(s, 0)
            })
            .collect();
        let body_invs: Vec<Val> = invs
            .iter()
            .map(|&i| {
                let s = self.new_node(Op::Steer(SteerPolarity::OnTrue));
                self.attach_raw(d, s, Op::DECIDER);
                self.g.connect(i, 0, s, Op::STEER_VALUE);
                self.val(s, 0)
            })
            .collect();
        self.regions[body_region].activation = Some(body_carried[0]);
        let nexts = body(self, &body_carried, &body_invs);
        assert_eq!(
            nexts.len(),
            carries.len(),
            "body must return one next value per carried variable"
        );
        let nexts: Vec<Val> = nexts.iter().map(|&v| self.as_stream(v)).collect();
        self.pop_region(parent);
        for (&c, &next) in carries.iter().zip(&nexts) {
            self.attach_raw(next, c, Op::CARRY_BACK);
        }

        // Exit steers (parent region).
        carries
            .iter()
            .map(|&c| {
                let s = self.new_node(Op::Steer(SteerPolarity::OnFalse));
                self.attach_raw(d, s, Op::DECIDER);
                self.g.connect(c, 0, s, Op::STEER_VALUE);
                self.val_in(s, 0, parent)
            })
            .collect()
    }

    /// Counted loop `for i in (lo..hi).step_by(step)` with extra carried
    /// variables. The body returns the next values of the extra carried
    /// variables; the exit values of those variables are returned.
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0` or on region violations.
    pub fn for_range(
        &mut self,
        lo: impl Into<Val>,
        hi: impl Into<Val>,
        step: i64,
        carried: &[Val],
        invariants: &[Val],
        body: impl FnOnce(&mut Ctx, Val, &[Val], &[Val]) -> Vec<Val>,
    ) -> Vec<Val> {
        assert!(step > 0, "for_range requires a positive step");
        let (lo, hi) = (lo.into(), hi.into());
        let mut all_carried = vec![lo];
        all_carried.extend_from_slice(carried);
        let mut all_invs = vec![hi];
        all_invs.extend_from_slice(invariants);
        let mut exits = self.while_loop(
            &all_carried,
            &all_invs,
            |c, vars, invs| c.lt(vars[0], invs[0]),
            |c, vars, invs| {
                let i = vars[0];
                let i_next = c.add(i, step);
                let mut nexts = body(c, i, &vars[1..], &invs[1..]);
                nexts.insert(0, i_next);
                nexts
            },
        );
        exits.remove(0); // drop the induction variable's exit
        exits
    }

    /// Conditional with possibly effectful branches. `inputs` are values
    /// the branches need; each branch receives gated copies and must return
    /// the same number of result values, merged with lazy muxes.
    ///
    /// # Panics
    ///
    /// Panics if the branches return different result counts or on region
    /// violations.
    pub fn if_else(
        &mut self,
        c: Val,
        inputs: &[Val],
        then_b: impl FnOnce(&mut Ctx, &[Val]) -> Vec<Val>,
        else_b: impl FnOnce(&mut Ctx, &[Val]) -> Vec<Val>,
    ) -> Vec<Val> {
        self.check_region(c);
        assert!(!c.is_imm(), "if_else condition must be a computed value");
        let parent = self.cur;
        let inputs: Vec<Val> = inputs.iter().map(|&v| self.as_stream(v)).collect();
        let depth = self.regions[parent].depth;

        type BranchBody<'a> = Box<dyn FnOnce(&mut Ctx, &[Val]) -> Vec<Val> + 'a>;
        let run_branch = |ctx: &mut Ctx, pol: SteerPolarity, f: BranchBody<'_>| -> Vec<Val> {
            let region = ctx.push_region(depth, false, parent);
            let gated: Vec<Val> = inputs
                .iter()
                .map(|&v| {
                    let s = ctx.new_node(Op::Steer(pol));
                    ctx.attach_raw(c, s, Op::DECIDER);
                    ctx.attach_raw(v, s, Op::STEER_VALUE);
                    ctx.val(s, 0)
                })
                .collect();
            ctx.regions[region].activation = gated.first().copied();
            let out = f(ctx, &gated);
            let out: Vec<Val> = out.iter().map(|&v| ctx.as_stream(v)).collect();
            ctx.pop_region(parent);
            out
        };

        let t_out = run_branch(self, SteerPolarity::OnTrue, Box::new(then_b));
        let e_out = run_branch(self, SteerPolarity::OnFalse, Box::new(else_b));
        assert_eq!(
            t_out.len(),
            e_out.len(),
            "both branches must return the same number of values"
        );
        t_out
            .iter()
            .zip(&e_out)
            .map(|(&t, &e)| {
                let m = self.new_node(Op::Mux);
                self.attach_raw(c, m, 0);
                self.attach_raw(t, m, 1);
                self.attach_raw(e, m, 2);
                self.val(m, 0)
            })
            .collect()
    }

    /// Attach without region checking (builder-internal cross-region wiring).
    fn attach_raw(&mut self, v: Val, dst: NodeId, port: usize) {
        match v.kind {
            ValKind::Imm(c) => self.g.set_imm(dst, port, c),
            ValKind::Node(n, p) => self.g.connect(NodeId(n), p as usize, dst, port),
        }
    }

    fn push_region(&mut self, depth: u32, is_loop: bool, parent: usize) -> usize {
        self.regions.push(Region {
            activation: None,
            depth,
            has_inner_loop: false,
            mem_nodes: Vec::new(),
            is_loop,
            parent: Some(parent),
        });
        self.cur = self.regions.len() - 1;
        self.cur
    }

    fn pop_region(&mut self, parent: usize) {
        // Propagate "has inner loop" from loop regions to their parents.
        let r = self.cur;
        if self.regions[r].is_loop || self.regions[r].has_inner_loop {
            let had_loop = self.regions[r].has_inner_loop;
            if let Some(p) = self.regions[r].parent {
                // A branch region with loops inside still means the parent
                // contains a loop.
                if had_loop || self.regions[r].is_loop {
                    self.regions[p].has_inner_loop = true;
                }
            }
        }
        self.cur = parent;
    }
}

/// A finished kernel: dataflow graph + fixed and named parameter bindings.
#[derive(Debug, Clone)]
pub struct Kernel {
    dfg: Dfg,
    fixed: Vec<(ParamId, i64)>,
    named: HashMap<String, ParamId>,
}

impl Kernel {
    /// Build a kernel by running `f` over a fresh context, then finishing:
    /// dead-code elimination, leaf-loop marking, criticality
    /// classification, and validation.
    ///
    /// # Panics
    ///
    /// Panics if the resulting graph fails validation (a builder bug).
    pub fn build(name: &str, f: impl FnOnce(&mut Ctx)) -> Kernel {
        let mut ctx = Ctx::new(name);
        f(&mut ctx);
        // Leaf-loop marking: a memory node is in a leaf loop when its
        // nearest enclosing loop region (the region itself, or an ancestor
        // for `if` branches) contains no nested loop.
        let mut to_mark: Vec<NodeId> = Vec::new();
        for (ri, r) in ctx.regions.iter().enumerate() {
            let mut cur = Some(ri);
            let mut leaf = false;
            while let Some(i) = cur {
                if ctx.regions[i].is_loop {
                    leaf = !ctx.regions[i].has_inner_loop;
                    break;
                }
                cur = ctx.regions[i].parent;
            }
            if leaf {
                to_mark.extend_from_slice(&r.mem_nodes);
            }
        }
        for m in to_mark {
            ctx.g.meta_mut(m).in_leaf_loop = true;
        }
        let dfg = dce(&cse(&ctx.g));
        dfg.validate().unwrap_or_else(|errs| {
            panic!("kernel {name} failed validation: {errs:?}\n{dfg}");
        });
        let mut k = Kernel {
            dfg,
            fixed: ctx.fixed,
            named: ctx.named,
        };
        crate::criticality::classify(&mut k.dfg);
        k
    }

    /// The kernel's dataflow graph.
    pub fn dfg(&self) -> &Dfg {
        &self.dfg
    }

    /// Kernel name.
    pub fn name(&self) -> &str {
        self.dfg.name()
    }

    /// All parameter bindings: fixed internals plus `user` values for named
    /// params, in a form ready to feed an interpreter or engine.
    ///
    /// # Panics
    ///
    /// Panics if a named param is missing from `user`.
    pub fn bindings(&self, user: &[(&str, i64)]) -> Vec<(ParamId, i64)> {
        let mut out = self.fixed.clone();
        let map: HashMap<&str, i64> = user.iter().copied().collect();
        for (name, pid) in &self.named {
            let v = map
                .get(name.as_str())
                .unwrap_or_else(|| panic!("missing binding for param {name}"));
            out.push((*pid, *v));
        }
        out
    }

    /// Named parameters declared by the kernel.
    pub fn param_names(&self) -> Vec<&str> {
        self.named.keys().map(String::as_str).collect()
    }

    /// The loads classified critical by [`crate::criticality`] — the
    /// nodes NUPEA promotes toward near domains, and the first rows to
    /// inspect in a trace (their fire slices carry the `critical`
    /// category in the Chrome export). Node-id order.
    pub fn critical_loads(&self) -> Vec<NodeId> {
        self.dfg
            .iter()
            .filter(|(_, n)| {
                matches!(n.op, Op::Load) && n.meta.criticality == Some(Criticality::Critical)
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Nodes annotated [`Ctx::load_expect_critical`] that the classifier
    /// did *not* mark [`Criticality::Critical`]. An empty list means every
    /// front-end criticality annotation was vindicated; a non-empty list is
    /// an authoring error the front end should surface (the load is
    /// pipelinable and must not be pinned to the near domain).
    pub fn criticality_hint_violations(&self) -> Vec<NodeId> {
        self.dfg
            .iter()
            .filter(|(_, n)| {
                n.meta.expect_critical && n.meta.criticality != Some(Criticality::Critical)
            })
            .map(|(id, _)| id)
            .collect()
    }
}

/// Common-subexpression elimination: pure single-output ops (arithmetic,
/// comparisons, unary ops) with identical inputs compute identical token
/// streams, so duplicates can share one PE. Merging is token-safe: output
/// ports broadcast, so redirecting consumers to the surviving node leaves
/// every consumer's token count unchanged, and the duplicate (now
/// fanout-free) is dropped by the following DCE pass. Gates, memory ops,
/// params, and sinks are never merged (they carry state or effects).
///
/// Merging is capped by output fanout: a shared node becomes one physical
/// broadcast wire, and unbounded sharing creates high-fanout nets that
/// congest track-constrained fabrics. Above [`CSE_FANOUT_CAP`] consumers,
/// keeping the duplicate (the hardware analogue of register duplication)
/// routes better than sharing.
///
/// Runs to a fixpoint so chains of duplicated expressions collapse.
const CSE_FANOUT_CAP: usize = 4;

fn cse(g: &Dfg) -> Dfg {
    use crate::graph::InPort;
    use std::collections::HashMap as Map;

    // representative[i] = the node index i's value is redirected to.
    let mut repr: Vec<u32> = (0..g.len() as u32).collect();
    let mut fanout: Vec<usize> = g.node_ids().map(|id| g.outs(id).len()).collect();
    let resolve = |repr: &[u32], mut i: u32| -> u32 {
        while repr[i as usize] != i {
            i = repr[i as usize];
        }
        i
    };
    type CseKey = (String, Vec<(u8, i64, u32, u8)>);
    loop {
        let mut seen: Map<CseKey, u32> = Map::new();
        let mut changed = false;
        for (id, n) in g.iter() {
            if !n.op.is_arith() {
                continue;
            }
            // Key: op mnemonic + canonicalized inputs (through current reprs).
            let key_inputs: Vec<(u8, i64, u32, u8)> = n
                .inputs
                .iter()
                .map(|ip| match ip {
                    InPort::Imm(v) => (0u8, *v, 0, 0),
                    InPort::Wire { src, src_port } => (1, 0, resolve(&repr, src.0), *src_port),
                    InPort::Unconnected => (2, 0, 0, 0),
                })
                .collect();
            let key = (n.op.mnemonic(), key_inputs);
            let me = resolve(&repr, id.0);
            match seen.get(&key) {
                Some(&other)
                    if other != me
                        && fanout[other as usize] + fanout[me as usize] <= CSE_FANOUT_CAP =>
                {
                    fanout[other as usize] += fanout[me as usize];
                    repr[me as usize] = other;
                    changed = true;
                }
                Some(_) => {}
                None => {
                    seen.insert(key, me);
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Rebuild with redirected wires; duplicates become fanout-free and DCE
    // removes them.
    let mut out = Dfg::new(g.name());
    let mut ids = Vec::with_capacity(g.len());
    for (_, n) in g.iter() {
        let nid = out.add_node(n.op);
        *out.meta_mut(nid) = n.meta.clone();
        ids.push(nid);
    }
    for (id, n) in g.iter() {
        for (port, ip) in n.inputs.iter().enumerate() {
            match ip {
                crate::graph::InPort::Imm(v) => out.set_imm(ids[id.index()], port, *v),
                crate::graph::InPort::Wire { src, src_port } => {
                    let s = resolve(&repr, src.0);
                    out.connect(ids[s as usize], *src_port as usize, ids[id.index()], port);
                }
                crate::graph::InPort::Unconnected => {}
            }
        }
    }
    out
}

/// Dead-code elimination: keep only nodes reachable backwards from stores,
/// sinks, and params (params are kept unconditionally so `ParamId`s stay
/// valid). Dropping a dead node only removes a broadcast consumer, which
/// never unbalances the remaining graph.
fn dce(g: &Dfg) -> Dfg {
    let mut live = vec![false; g.len()];
    let mut stack: Vec<NodeId> = Vec::new();
    for (id, n) in g.iter() {
        if matches!(n.op, Op::Store | Op::Sink(_) | Op::Param(_)) {
            live[id.index()] = true;
            stack.push(id);
        }
    }
    while let Some(id) = stack.pop() {
        for ip in &g.node(id).inputs {
            if let crate::graph::InPort::Wire { src, .. } = ip {
                if !live[src.index()] {
                    live[src.index()] = true;
                    stack.push(*src);
                }
            }
        }
    }
    // Rebuild with remapped ids.
    let mut remap = vec![u32::MAX; g.len()];
    let mut out = Dfg::new(g.name());
    for (id, n) in g.iter() {
        if live[id.index()] {
            let nid = out.add_node(n.op);
            *out.meta_mut(nid) = n.meta.clone();
            remap[id.index()] = nid.0;
        }
    }
    for (id, n) in g.iter() {
        if !live[id.index()] {
            continue;
        }
        let nid = NodeId(remap[id.index()]);
        for (port, ip) in n.inputs.iter().enumerate() {
            match ip {
                crate::graph::InPort::Imm(v) => out.set_imm(nid, port, *v),
                crate::graph::InPort::Wire { src, src_port } => {
                    out.connect(NodeId(remap[src.index()]), *src_port as usize, nid, port);
                }
                crate::graph::InPort::Unconnected => {}
            }
        }
    }
    out
}

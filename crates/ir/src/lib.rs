//! # nupea-ir — ordered-dataflow IR for the NUPEA reproduction
//!
//! This crate defines the dataflow intermediate representation shared by the
//! whole NUPEA stack:
//!
//! * [`op`] — the dataflow instruction set (arithmetic, steering control
//!   flow, loop gates, memory operations), mirroring Monaco's
//!   general-purpose ordered-dataflow ISA (§4.1 of the paper).
//! * [`graph`] — the [`Dfg`](graph::Dfg) graph structure with typed input
//!   ports, immediates, broadcast output ports, and structural validation.
//! * [`interp`] — an untimed reference interpreter defining the functional
//!   semantics; the timed simulator in `nupea-sim` is differentially tested
//!   against it.
//! * [`criticality`] — effcc-style critical-load identification (§5): loads
//!   on loop-governing recurrences (via SCC analysis, including
//!   memory-ordering edges) vs. inner-loop vs. other memory instructions.
//! * [`builder`] — a structured kernel-construction layer (`for_range`,
//!   `while_loop`, `if_else`, loads/stores, memory-ordering tokens) that
//!   lowers to token-balanced ordered dataflow, standing in for effcc's
//!   MLIR lowering. Front ends (`nupea-kernels` workloads, the
//!   `nupea-lang` eDSL) target this layer rather than raw [`graph`]
//!   surgery.
//!
//! # Example
//!
//! Build a tiny graph, run it, and classify its memory ops:
//!
//! ```
//! use nupea_ir::graph::Dfg;
//! use nupea_ir::op::Op;
//! use nupea_ir::{criticality, interp::Interp};
//!
//! let mut g = Dfg::new("demo");
//! let (addr, addr_p) = g.add_param("addr");
//! let ld = g.add_node(Op::Load);
//! g.connect(addr, 0, ld, Op::LOAD_ADDR);
//! let (sink, _) = g.add_sink("value");
//! g.connect(ld, Op::OUT_VALUE, sink, 0);
//! g.validate().expect("well-formed");
//!
//! let stats = criticality::classify(&mut g);
//! assert_eq!(stats.other, 1);
//!
//! let mut mem = vec![10, 20, 30];
//! let mut it = Interp::new(&g);
//! it.bind(addr_p, 2);
//! let result = it.run(&mut mem)?;
//! assert_eq!(result.sinks[0], vec![30]);
//! # Ok::<(), nupea_ir::interp::InterpError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod criticality;
pub mod graph;
pub mod interp;
pub mod op;

pub use builder::{Ctx, Kernel, Val};
pub use graph::{Criticality, Dfg, InPort, NodeId};
pub use op::{BinOpKind, CmpKind, Op, ParamId, SinkId, SteerPolarity, UnOpKind};

//! Property tests for the instruction set's algebraic contracts and the
//! interpreter's structural guarantees, driven by a seeded internal PRNG
//! (256 cases per property, exactly reproducible).

use nupea_ir::graph::Dfg;
use nupea_ir::interp::Interp;
use nupea_ir::op::{BinOpKind, CmpKind, Op, UnOpKind};
use nupea_rng::Xoshiro256;

const CASES: usize = 256;

/// Interesting i64 values plus uniform noise: the edge cases proptest's
/// `any::<i64>()` would shrink towards, made explicit.
fn arb_i64(rng: &mut Xoshiro256) -> i64 {
    const SPECIAL: [i64; 8] = [0, 1, -1, i64::MAX, i64::MIN, i64::MAX - 1, i64::MIN + 1, 42];
    if rng.chance(0.25) {
        SPECIAL[rng.index(SPECIAL.len())]
    } else {
        rng.next_u64() as i64
    }
}

#[test]
fn binops_never_panic_and_are_total() {
    let mut rng = Xoshiro256::seed_from_u64(0x0901);
    for _ in 0..CASES {
        let (a, b) = (arb_i64(&mut rng), arb_i64(&mut rng));
        for k in BinOpKind::ALL {
            let _ = k.eval(a, b);
        }
        for k in CmpKind::ALL {
            let v = k.eval(a, b);
            assert!(v == 0 || v == 1);
        }
        for k in UnOpKind::ALL {
            let _ = k.eval(a);
        }
    }
}

#[test]
fn commutative_ops_commute() {
    let mut rng = Xoshiro256::seed_from_u64(0x0902);
    for _ in 0..CASES {
        let (a, b) = (arb_i64(&mut rng), arb_i64(&mut rng));
        for k in [
            BinOpKind::Add,
            BinOpKind::Mul,
            BinOpKind::And,
            BinOpKind::Or,
            BinOpKind::Xor,
            BinOpKind::Min,
            BinOpKind::Max,
        ] {
            assert_eq!(k.eval(a, b), k.eval(b, a), "{k} must commute");
        }
    }
}

#[test]
fn cmp_pairs_are_duals() {
    let mut rng = Xoshiro256::seed_from_u64(0x0903);
    for _ in 0..CASES {
        let (a, b) = (arb_i64(&mut rng), arb_i64(&mut rng));
        assert_eq!(CmpKind::Lt.eval(a, b), CmpKind::Gt.eval(b, a));
        assert_eq!(CmpKind::Le.eval(a, b), CmpKind::Ge.eval(b, a));
        assert_eq!(CmpKind::Eq.eval(a, b), 1 - CmpKind::Ne.eval(a, b));
        assert_eq!(CmpKind::Lt.eval(a, b), 1 - CmpKind::Ge.eval(a, b));
    }
}

#[test]
fn select_matches_mux_semantics() {
    // An eager Select and a lazy Mux fed from gated sides must produce
    // the same value for the same decider.
    let build = |lazy: bool| {
        let mut g = Dfg::new("sel");
        let (dp, dpi) = g.add_param("d");
        let (tp, tpi) = g.add_param("t");
        let (fp, fpi) = g.add_param("f");
        let n = if lazy {
            // Gate each side so only the taken one produces a token.
            let ts = g.add_node(Op::Steer(nupea_ir::op::SteerPolarity::OnTrue));
            g.connect(dp, 0, ts, 0);
            g.connect(tp, 0, ts, 1);
            let fs = g.add_node(Op::Steer(nupea_ir::op::SteerPolarity::OnFalse));
            g.connect(dp, 0, fs, 0);
            g.connect(fp, 0, fs, 1);
            let m = g.add_node(Op::Mux);
            g.connect(dp, 0, m, 0);
            g.connect(ts, 0, m, 1);
            g.connect(fs, 0, m, 2);
            m
        } else {
            let s = g.add_node(Op::Select);
            g.connect(dp, 0, s, 0);
            g.connect(tp, 0, s, 1);
            g.connect(fp, 0, s, 2);
            s
        };
        let (sink, _) = g.add_sink("out");
        g.connect(n, 0, sink, 0);
        (g, dpi, tpi, fpi)
    };
    let mut rng = Xoshiro256::seed_from_u64(0x0904);
    for _ in 0..CASES {
        let d = rng.next_bool();
        let (t, f) = (arb_i64(&mut rng), arb_i64(&mut rng));
        let mut results = Vec::new();
        for lazy in [false, true] {
            let (g, dpi, tpi, fpi) = build(lazy);
            let mut mem = vec![0i64; 1];
            let mut it = Interp::new(&g);
            it.bind(dpi, i64::from(d)).bind(tpi, t).bind(fpi, f);
            let r = it.run(&mut mem).expect("runs");
            assert!(r.is_balanced());
            results.push(r.sinks[0][0]);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], if d { t } else { f });
    }
}

#[test]
fn straight_line_arith_matches_native() {
    // Fold a chain of adds/xors through the graph and natively.
    let mut rng = Xoshiro256::seed_from_u64(0x0905);
    for _ in 0..CASES {
        let len = rng.range_usize(1, 5);
        let xs: Vec<i64> = (0..len).map(|_| arb_i64(&mut rng)).collect();
        let mut g = Dfg::new("fold");
        let mut params = Vec::new();
        let (first, p0) = g.add_param("x0");
        params.push(p0);
        let mut prev = first;
        for i in 1..xs.len() {
            let (p, pid) = g.add_param(format!("x{i}"));
            params.push(pid);
            let op = if i % 2 == 0 {
                BinOpKind::Add
            } else {
                BinOpKind::Xor
            };
            let n = g.add_node(Op::BinOp(op));
            g.connect(prev, 0, n, 0);
            g.connect(p, 0, n, 1);
            prev = n;
        }
        let (s, _) = g.add_sink("out");
        g.connect(prev, 0, s, 0);

        let mut mem = vec![0i64; 1];
        let mut it = Interp::new(&g);
        for (pid, v) in params.iter().zip(&xs) {
            it.bind(*pid, *v);
        }
        let r = it.run(&mut mem).expect("runs");
        let mut want = xs[0];
        for (i, &v) in xs.iter().enumerate().skip(1) {
            want = if i % 2 == 0 {
                want.wrapping_add(v)
            } else {
                want ^ v
            };
        }
        assert_eq!(r.sinks[0][0], want);
        assert!(r.is_balanced());
    }
}

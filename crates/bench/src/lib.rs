//! Shared machinery for the figure-regeneration benches.
//!
//! Every `benches/figNN_*.rs` target is a `harness = false` binary that
//! prints the same rows/series the corresponding figure of the paper
//! reports, normalized the same way (execution time relative to Monaco,
//! speedup over the Domain-Unaware heuristic, ...). EXPERIMENTS.md records
//! paper-vs-measured values for each.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use nupea::experiments::{geomean, heuristic_for, render_table, run_models};
use nupea::{
    auto_parallelize, compile_workload, simulate_on, Heuristic, MemoryModel, Scale, SystemConfig,
    TopologyKind,
};
use nupea_fabric::Fabric;
use nupea_kernels::workloads::all_workloads;

/// Run all 13 bench-scale workloads across `models`, printing execution
/// time normalized to the `baseline` label (lower is better), plus
/// geomeans — the format of Figs. 11/14/15.
pub fn model_sweep(title: &str, models: &[MemoryModel], baseline: &str, paper_note: &str) {
    let sys = SystemConfig::monaco_12x12();
    let headers: Vec<String> = models.iter().map(|m| m.label()).collect();
    let mut rows = Vec::new();
    let mut norm_cols: Vec<Vec<f64>> = vec![Vec::new(); models.len()];
    for spec in all_workloads() {
        let w = spec.build_default(Scale::Bench);
        match run_models(&w, &sys, models) {
            Ok(ms) => {
                let base = ms
                    .iter()
                    .find(|m| m.config == baseline)
                    .map(|m| m.cycles as f64)
                    .expect("baseline model in sweep");
                let cells: Vec<String> = ms
                    .iter()
                    .enumerate()
                    .map(|(i, m)| {
                        let norm = m.cycles as f64 / base;
                        norm_cols[i].push(norm);
                        format!("{norm:.3}")
                    })
                    .collect();
                rows.push((spec.name.to_string(), cells));
            }
            Err(e) => {
                rows.push((spec.name.to_string(), vec![format!("error: {e}")]));
            }
        }
    }
    let geo: Vec<String> = norm_cols.iter().map(|c| format!("{:.3}", geomean(c))).collect();
    rows.push(("geomean".to_string(), geo));
    println!("{}", render_table(title, &headers, &rows));
    println!("{paper_note}\n");
}

/// One measured point of the Figs. 16/17 topology sweep.
#[derive(Debug, Clone)]
pub struct TopoPoint {
    /// Fabric layout.
    pub topology: TopologyKind,
    /// Fabric side (rows = cols).
    pub size: usize,
    /// Data-NoC tracks.
    pub tracks: u32,
    /// Auto-chosen parallelism degree.
    pub par: usize,
    /// Simulated execution time (system cycles); `None` if PnR failed at
    /// every parallelism degree.
    pub cycles: Option<u64>,
    /// Maximum routed path (hops) from PnR.
    pub max_hops: u32,
    /// PnR-chosen clock divider.
    pub divider: u32,
}

/// The fabric-scaling study of §7.2: spmspv (smaller input), auto-
/// parallelized onto Monaco / Clustered-Single / Clustered-Double at
/// 8×8, 16×16, 24×24 with 2 vs 7 NoC tracks. The PnR-chosen divider is
/// used (no override) — fabric timing is the point of the study.
pub fn topology_sweep() -> Vec<TopoPoint> {
    let mut out = Vec::new();
    for &tracks in &[2u32, 7] {
        for &size in &[8usize, 16, 24] {
            for &topo in &[
                TopologyKind::Monaco,
                TopologyKind::ClusteredSingle,
                TopologyKind::ClusteredDouble,
            ] {
                let fabric =
                    Fabric::of_kind(topo, size, size, tracks).expect("valid scaled fabric");
                let mut sys = SystemConfig::with_fabric(fabric);
                sys.divider_override = None;
                // Track-constrained routing rewards placement quality:
                // spend extra annealing effort, as a real flow would for a
                // congested target.
                sys.effort = 600;
                let spec = nupea_kernels::workloads::WorkloadSpec {
                    name: "spmspv",
                    build: |_, par| {
                        nupea_kernels::workloads::sparse::spmspv_custom(96, 0.9, par)
                    },
                    default_par: 1,
                };
                match auto_parallelize(&spec, Scale::Bench, &sys, Heuristic::CriticalityAware) {
                    Ok((w, compiled)) => {
                        let cycles = simulate_on(&w, &compiled, &sys, MemoryModel::Nupea)
                            .ok()
                            .map(|s| s.cycles);
                        out.push(TopoPoint {
                            topology: topo,
                            size,
                            tracks,
                            par: w.par,
                            cycles,
                            max_hops: compiled.placed.timing.max_hops,
                            divider: compiled.placed.timing.divider,
                        });
                    }
                    Err(_) => out.push(TopoPoint {
                        topology: topo,
                        size,
                        tracks,
                        par: 0,
                        cycles: None,
                        max_hops: 0,
                        divider: 0,
                    }),
                }
            }
        }
    }
    out
}

/// Render the topology sweep with a caller-chosen metric per point.
pub fn render_topo_table(
    title: &str,
    points: &[TopoPoint],
    metric: impl Fn(&TopoPoint) -> String,
) -> String {
    let headers: Vec<String> = ["monaco", "clustered-single", "clustered-double"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for &tracks in &[2u32, 7] {
        for &size in &[8usize, 16, 24] {
            let cells: Vec<String> = [
                TopologyKind::Monaco,
                TopologyKind::ClusteredSingle,
                TopologyKind::ClusteredDouble,
            ]
            .iter()
            .map(|&t| {
                points
                    .iter()
                    .find(|p| p.topology == t && p.size == size && p.tracks == tracks)
                    .map(&metric)
                    .unwrap_or_else(|| "-".to_string())
            })
            .collect();
            rows.push((format!("{size}x{size} tracks={tracks}"), cells));
        }
    }
    render_table(title, &headers, &rows)
}

/// Fig. 12-style PnR-heuristic ablation over all workloads. Prints
/// speedup over Domain-Unaware (higher is better).
pub fn heuristic_ablation(title: &str, paper_note: &str) {
    let sys = SystemConfig::monaco_12x12();
    let hs = [
        Heuristic::DomainUnaware,
        Heuristic::OnlyDomainAware,
        Heuristic::CriticalityAware,
    ];
    let headers: Vec<String> = hs.iter().map(|h| h.to_string()).collect();
    let mut rows = Vec::new();
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); hs.len()];
    for spec in all_workloads() {
        let w = spec.build_default(Scale::Bench);
        let mut cycles = Vec::new();
        for &h in &hs {
            let c = compile_workload(&w, &sys, h)
                .and_then(|c| simulate_on(&w, &c, &sys, MemoryModel::Nupea))
                .map(|s| s.cycles);
            cycles.push(c);
        }
        match &cycles[0] {
            Ok(base) => {
                let base = *base as f64;
                let cells: Vec<String> = cycles
                    .iter()
                    .enumerate()
                    .map(|(i, c)| match c {
                        Ok(c) => {
                            let s = base / *c as f64;
                            speedups[i].push(s);
                            format!("{s:.3}")
                        }
                        Err(e) => format!("error: {e}"),
                    })
                    .collect();
                rows.push((spec.name.to_string(), cells));
            }
            Err(e) => rows.push((spec.name.to_string(), vec![format!("error: {e}")])),
        }
    }
    let geo: Vec<String> = speedups.iter().map(|c| format!("{:.3}", geomean(c))).collect();
    rows.push(("geomean".to_string(), geo));
    println!("{}", render_table(title, &headers, &rows));
    println!("{paper_note}\n");
}

/// Compile-and-run helper for the ablation benches: one workload, one
/// config, one model.
///
/// # Errors
///
/// Returns the pipeline error as a string.
pub fn run_once(
    workload: &nupea::Workload,
    sys: &SystemConfig,
    model: MemoryModel,
) -> Result<u64, String> {
    let compiled =
        compile_workload(workload, sys, heuristic_for(model)).map_err(|e| e.to_string())?;
    simulate_on(workload, &compiled, sys, model)
        .map(|s| s.cycles)
        .map_err(|e| e.to_string())
}

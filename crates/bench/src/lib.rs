//! Shared machinery for the figure-regeneration benches.
//!
//! Every `benches/figNN_*.rs` target is a `harness = false` binary that
//! prints the same rows/series the corresponding figure of the paper
//! reports, normalized the same way (execution time relative to Monaco,
//! speedup over the Domain-Unaware heuristic, ...). EXPERIMENTS.md records
//! paper-vs-measured values for each.
//!
//! The sweeps are declared against [`nupea::runner::ExperimentRunner`], so
//! one PnR compile is shared across all memory models of a row and points
//! execute in parallel. Every bench accepts:
//!
//! * `--threads N` — worker threads (0 or absent = all cores);
//! * `--json PATH` / `--csv PATH` — structured export of every sweep
//!   point alongside the printed table;
//! * `--trace-dir DIR` — write one Chrome trace-event JSON per point
//!   (loadable in ui.perfetto.dev) and append an observability section
//!   with per-domain load-latency breakdowns and PE utilization.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use nupea::experiments::{geomean, heuristic_for, render_table};
use nupea::runner::{ExperimentRunner, RunRecord, RunnerReport};
use nupea::{auto_parallelize, Heuristic, MemoryModel, Scale, SystemConfig, TopologyKind};
use nupea_fabric::Fabric;
use nupea_kernels::workloads::all_workloads;
use std::path::PathBuf;

/// Command-line options shared by every bench binary.
#[derive(Debug, Clone, Default)]
pub struct BenchOpts {
    /// Worker threads for the experiment runner (0 = all cores).
    pub threads: usize,
    /// Write the sweep's records as JSON here.
    pub json: Option<PathBuf>,
    /// Write the sweep's records as CSV here.
    pub csv: Option<PathBuf>,
    /// Write one Chrome trace-event JSON per sweep point into this
    /// directory and print the observability section.
    pub trace_dir: Option<PathBuf>,
}

impl BenchOpts {
    /// Parse `--threads N`, `--json PATH`, `--csv PATH`, `--trace-dir
    /// DIR` from the process arguments. Unknown arguments (e.g. flags
    /// cargo forwards) are ignored.
    #[must_use]
    pub fn from_env() -> Self {
        let mut opts = BenchOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--threads" => {
                    opts.threads = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--threads needs a number");
                }
                "--json" => opts.json = Some(args.next().expect("--json needs a path").into()),
                "--csv" => opts.csv = Some(args.next().expect("--csv needs a path").into()),
                "--trace-dir" => {
                    opts.trace_dir = Some(args.next().expect("--trace-dir needs a path").into());
                }
                _ => {}
            }
        }
        opts
    }

    /// Apply the runner-level options (threads, trace directory) to a
    /// fresh runner.
    pub fn configure(&self, runner: &mut ExperimentRunner) {
        runner.threads(self.threads);
        if let Some(dir) = &self.trace_dir {
            runner.trace_dir(dir.clone());
        }
    }

    /// Write the requested JSON/CSV exports, print the observability
    /// section when tracing was on, and print the runner's compile-cache
    /// accounting.
    pub fn finish(&self, report: &RunnerReport) {
        if self.trace_dir.is_some() {
            print!("{}", render_trace_section(&report.records));
        }
        if let Some(p) = &self.json {
            std::fs::write(p, report.to_json()).expect("write JSON export");
            println!("wrote {}", p.display());
        }
        if let Some(p) = &self.csv {
            std::fs::write(p, report.to_csv()).expect("write CSV export");
            println!("wrote {}", p.display());
        }
        println!(
            "({} points, {} PnR compiles, {} cache hits, {:.1}s wall)\n",
            report.records.len(),
            report.pnr_compiles,
            report.cache_hits,
            report.wall.as_secs_f64()
        );
    }
}

/// The observability section printed when a sweep ran with
/// `--trace-dir`: per-domain mean load latency, PE utilization, and the
/// busiest-link token count of every traced point, followed by the trace
/// file paths (open them in ui.perfetto.dev). The per-domain numbers are
/// aggregated from the same event stream the trace files carry, so the
/// table and the timelines agree exactly.
#[must_use]
pub fn render_trace_section(records: &[RunRecord]) -> String {
    let traced: Vec<&RunRecord> = records.iter().filter(|r| r.trace_path.is_some()).collect();
    if traced.is_empty() {
        return String::new();
    }
    let ndom = traced
        .iter()
        .map(|r| r.load_latency_by_domain.len())
        .max()
        .unwrap_or(0);
    let mut headers: Vec<String> = (0..ndom).map(|d| format!("D{d} lat")).collect();
    headers.push("util".to_string());
    headers.push("peak link".to_string());
    let mut rows = Vec::new();
    for r in &traced {
        let mut cells: Vec<String> = (0..ndom)
            .map(|d| match r.load_latency_by_domain.get(d) {
                Some(dl) if dl.count > 0 => format!(
                    "{:.1} ({})",
                    dl.total_latency as f64 / dl.count as f64,
                    dl.count
                ),
                _ => "-".to_string(),
            })
            .collect();
        cells.push(format!("{:.3}", r.mean_pe_utilization));
        cells.push(format!("{}", r.peak_link_tokens));
        rows.push((format!("{} {}", r.workload, r.model.label()), cells));
    }
    let mut out = render_table(
        "per-domain load latency from traces: mean cycles (loads)",
        &headers,
        &rows,
    );
    out.push_str("traces (open in ui.perfetto.dev):\n");
    for r in &traced {
        out.push_str(&format!("  {}\n", r.trace_path.as_deref().unwrap_or("")));
    }
    out.push('\n');
    out
}

/// Declare all 13 bench-scale workloads × `models` on a fresh runner and
/// execute it. Records come back grouped per workload, `models.len()`
/// records per group, in registry order.
fn sweep_all_workloads(opts: &BenchOpts, models: &[MemoryModel]) -> RunnerReport {
    let mut runner = ExperimentRunner::new();
    opts.configure(&mut runner);
    let sys = runner.system(SystemConfig::monaco_12x12());
    for spec in all_workloads() {
        let w = runner.workload(spec.build_default(Scale::Bench));
        runner.model_sweep(w, sys, models);
    }
    runner.run()
}

/// A table cell for one record: the normalized metric, or the error.
fn norm_cell(r: &RunRecord, base: f64, col: &mut Vec<f64>) -> String {
    match &r.error {
        Some(e) => format!("error: {e}"),
        None => {
            let norm = r.cycles as f64 / base;
            col.push(norm);
            format!("{norm:.3}")
        }
    }
}

/// Run all 13 bench-scale workloads across `models`, printing execution
/// time normalized to the `baseline` label (lower is better), plus
/// geomeans — the format of Figs. 11/14/15.
pub fn model_sweep(title: &str, models: &[MemoryModel], baseline: &str, paper_note: &str) {
    let opts = BenchOpts::from_env();
    let report = sweep_all_workloads(&opts, models);
    let headers: Vec<String> = models.iter().map(|m| m.label()).collect();
    let mut rows = Vec::new();
    let mut norm_cols: Vec<Vec<f64>> = vec![Vec::new(); models.len()];
    for group in report.records.chunks(models.len()) {
        let base = group
            .iter()
            .find(|r| r.error.is_none() && r.model.label() == baseline)
            .map(|r| r.cycles as f64);
        let cells: Vec<String> = match base {
            Some(base) => group
                .iter()
                .zip(&mut norm_cols)
                .map(|(r, col)| norm_cell(r, base, col))
                .collect(),
            None => vec![format!(
                "error: {}",
                group[0].error.as_deref().unwrap_or("baseline missing")
            )],
        };
        rows.push((group[0].workload.clone(), cells));
    }
    let geo: Vec<String> = norm_cols
        .iter()
        .map(|c| format!("{:.3}", geomean(c)))
        .collect();
    rows.push(("geomean".to_string(), geo));
    println!("{}", render_table(title, &headers, &rows));
    println!("{paper_note}\n");
    opts.finish(&report);
}

/// Fig. 12-style PnR-heuristic ablation over all workloads, every point
/// on the Monaco memory model. Prints speedup over Domain-Unaware
/// (higher is better).
pub fn heuristic_ablation(title: &str, paper_note: &str) {
    let opts = BenchOpts::from_env();
    let hs = [
        Heuristic::DomainUnaware,
        Heuristic::OnlyDomainAware,
        Heuristic::CriticalityAware,
    ];
    let mut runner = ExperimentRunner::new();
    opts.configure(&mut runner);
    let sys = runner.system(SystemConfig::monaco_12x12());
    for spec in all_workloads() {
        let w = runner.workload(spec.build_default(Scale::Bench));
        runner.heuristic_sweep(w, sys, &hs, MemoryModel::Nupea);
    }
    let report = runner.run();

    let headers: Vec<String> = hs.iter().map(|h| h.to_string()).collect();
    let mut rows = Vec::new();
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); hs.len()];
    for group in report.records.chunks(hs.len()) {
        let cells: Vec<String> = match &group[0].error {
            None => {
                let base = group[0].cycles as f64;
                group
                    .iter()
                    .zip(&mut speedups)
                    .map(|(r, col)| match &r.error {
                        Some(e) => format!("error: {e}"),
                        None => {
                            let s = base / r.cycles as f64;
                            col.push(s);
                            format!("{s:.3}")
                        }
                    })
                    .collect()
            }
            Some(e) => vec![format!("error: {e}")],
        };
        rows.push((group[0].workload.clone(), cells));
    }
    let geo: Vec<String> = speedups
        .iter()
        .map(|c| format!("{:.3}", geomean(c)))
        .collect();
    rows.push(("geomean".to_string(), geo));
    println!("{}", render_table(title, &headers, &rows));
    println!("{paper_note}\n");
    opts.finish(&report);
}

/// One measured point of the Figs. 16/17 topology sweep.
#[derive(Debug, Clone)]
pub struct TopoPoint {
    /// Fabric layout.
    pub topology: TopologyKind,
    /// Fabric side (rows = cols).
    pub size: usize,
    /// Data-NoC tracks.
    pub tracks: u32,
    /// Auto-chosen parallelism degree.
    pub par: usize,
    /// Simulated execution time (system cycles); `None` if PnR failed at
    /// every parallelism degree.
    pub cycles: Option<u64>,
    /// Maximum routed path (hops) from PnR.
    pub max_hops: u32,
    /// PnR-chosen clock divider.
    pub divider: u32,
}

/// The fabric-scaling study of §7.2: spmspv (smaller input), auto-
/// parallelized onto Monaco / Clustered-Single / Clustered-Double at
/// 8×8, 16×16, 24×24 with 2 vs 7 NoC tracks. The PnR-chosen divider is
/// used (no override) — fabric timing is the point of the study. The
/// auto-parallelizer's compile-until-failure loop is inherently serial,
/// so this study does not route through the experiment runner.
pub fn topology_sweep() -> Vec<TopoPoint> {
    let mut out = Vec::new();
    for &tracks in &[2u32, 7] {
        for &size in &[8usize, 16, 24] {
            for &topo in &[
                TopologyKind::Monaco,
                TopologyKind::ClusteredSingle,
                TopologyKind::ClusteredDouble,
            ] {
                let fabric =
                    Fabric::of_kind(topo, size, size, tracks).expect("valid scaled fabric");
                // Track-constrained routing rewards placement quality:
                // spend extra annealing effort, as a real flow would for a
                // congested target.
                let sys = SystemConfig::builder()
                    .fabric(fabric)
                    .divider_override(None)
                    .effort(600)
                    .build();
                let spec = nupea_kernels::workloads::WorkloadSpec {
                    name: "spmspv",
                    build: |_, par| nupea_kernels::workloads::sparse::spmspv_custom(96, 0.9, par),
                    default_par: 1,
                };
                match auto_parallelize(&spec, Scale::Bench, &sys, Heuristic::CriticalityAware) {
                    Ok((w, compiled)) => {
                        let cycles = compiled.simulate(MemoryModel::Nupea).ok().map(|s| s.cycles);
                        out.push(TopoPoint {
                            topology: topo,
                            size,
                            tracks,
                            par: w.par,
                            cycles,
                            max_hops: compiled.placed.timing.max_hops,
                            divider: compiled.placed.timing.divider,
                        });
                    }
                    Err(_) => out.push(TopoPoint {
                        topology: topo,
                        size,
                        tracks,
                        par: 0,
                        cycles: None,
                        max_hops: 0,
                        divider: 0,
                    }),
                }
            }
        }
    }
    out
}

/// Render the topology sweep with a caller-chosen metric per point.
pub fn render_topo_table(
    title: &str,
    points: &[TopoPoint],
    metric: impl Fn(&TopoPoint) -> String,
) -> String {
    let headers: Vec<String> = ["monaco", "clustered-single", "clustered-double"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for &tracks in &[2u32, 7] {
        for &size in &[8usize, 16, 24] {
            let cells: Vec<String> = [
                TopologyKind::Monaco,
                TopologyKind::ClusteredSingle,
                TopologyKind::ClusteredDouble,
            ]
            .iter()
            .map(|&t| {
                points
                    .iter()
                    .find(|p| p.topology == t && p.size == size && p.tracks == tracks)
                    .map(&metric)
                    .unwrap_or_else(|| "-".to_string())
            })
            .collect();
            rows.push((format!("{size}x{size} tracks={tracks}"), cells));
        }
    }
    render_table(title, &headers, &rows)
}

/// Compile-and-run helper for the ablation benches: one workload, one
/// config, one model.
///
/// # Errors
///
/// Returns the pipeline error as a string.
pub fn run_once(
    workload: &nupea::Workload,
    sys: &SystemConfig,
    model: MemoryModel,
) -> Result<u64, String> {
    sys.compile(workload, heuristic_for(model))
        .and_then(|c| c.simulate(model))
        .map(|s| s.cycles)
        .map_err(|e| e.to_string())
}

//! Fig. 11: execution time of Monaco (NUPEA) against Ideal, UPEA2, and
//! NUMA-UPEA2 across all 13 workloads, normalized to Monaco.
//!
//! Paper: Monaco improves over UPEA2 by avg 28%, over NUMA-UPEA2 by avg
//! 20%, and is within 21% of Ideal.

use nupea::experiments::primary_models;
use nupea_bench::model_sweep;

fn main() {
    model_sweep(
        "Fig 11: execution time normalized to Monaco (lower is better)",
        &primary_models(),
        "NUPEA",
        "paper: UPEA2 ≈ 1.28x Monaco, NUMA-UPEA2 ≈ 1.20x, Ideal ≈ 0.83x (avg);\n\
         spmspm/spmspv nearly Ideal, dense workloads farther from Ideal",
    );
}

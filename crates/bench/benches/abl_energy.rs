//! Ablation (beyond the paper): energy breakdown. The paper's motivation
//! is that data movement dominates energy; this bench quantifies it in the
//! simulator's energy model, and shows that NUPEA-aware placement cuts
//! fabric-memory NoC (arbitration) energy by keeping critical/hot loads in
//! near-memory domains — at the cost of longer data-NoC wires.

use nupea::experiments::render_table;
use nupea::{Heuristic, MemoryModel, Scale, SystemConfig};
use nupea_kernels::workloads::workload_preset;

fn main() {
    let sys = SystemConfig::monaco_12x12();
    let headers: Vec<String> = [
        "alu", "control", "noc", "fmnoc", "memory", "total", "movement",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for spec in workload_preset("ablation-energy").expect("preset exists") {
        let name = spec.name;
        let w = spec.build_default(Scale::Bench);
        let mut rows = Vec::new();
        for h in [Heuristic::DomainUnaware, Heuristic::CriticalityAware] {
            let c = sys.compile(&w, h).unwrap();
            let s = c.simulate(MemoryModel::Nupea).unwrap();
            let e = s.energy;
            rows.push((
                h.to_string(),
                vec![
                    format!("{:.0}", e.alu),
                    format!("{:.0}", e.control),
                    format!("{:.0}", e.noc),
                    format!("{:.0}", e.fmnoc),
                    format!("{:.0}", e.memory),
                    format!("{:.0}", e.total()),
                    format!("{:.0}%", e.data_movement_fraction() * 100.0),
                ],
            ));
        }
        println!(
            "{}",
            render_table(
                &format!("Energy breakdown on Monaco — {name} (ALU-op equivalents)"),
                &headers,
                &rows
            )
        );
    }
    println!(
        "data movement (NoC + FM-NoC arbitration + memory) dominates total\n\
         energy. NUPEA-aware placement eliminates nearly all FM-NoC\n\
         arbitration energy but pays for it in longer data-NoC wires to\n\
         reach the near-memory columns — a latency-for-wire-energy trade\n\
         that favors performance, as a performance-targeted PnR should.\n"
    );
}

//! Crash-tolerant multi-process campaign execution (DESIGN.md §11).
//!
//!     cargo bench -p nupea-bench --bench shard -- [MODE] [FLAGS]
//!
//! Modes (first positional argument):
//!
//! * `faults` (default) — the smoke fault campaign (all 13 Table 1
//!   workloads at test scale) sharded across worker processes.
//! * `dse` — the smoke DSE grid (spmspv, six candidates) sharded across
//!   worker processes.
//!
//! The harness spawns `--workers` copies of itself (via the hidden
//! `--worker ID` flag); each claims shards through the lease journal in
//! `--dir`, so killing any subset of them mid-run loses no work: the
//! survivors steal the expired leases. With `--chaos K` the harness
//! itself SIGKILLs K seeded-random workers mid-run to prove it. After
//! the run the parent finishes any remainder in-process, merges the
//! per-shard journals, and (with `--check`) asserts that a fresh worker
//! claims nothing — zero re-simulation — and that the merged report is
//! byte-identical to the single-process (`shards = 1`) report.
//!
//! Flags:
//!
//! * `--dir PATH`         coordination + shard journal directory (required
//!   for multi-process runs; a temp dir is used when omitted)
//! * `--shards N`         shard count (default 13; 1 = single-process)
//! * `--workers N`        worker subprocesses to spawn (default 4)
//! * `--chaos K`          SIGKILL K random workers mid-run (default 0)
//! * `--seed N`           chaos schedule seed (default 0xC7A05)
//! * `--ttl-ms N`         lease time-to-live (default 1500)
//! * `--heartbeat-ms N`   lease renewal period (default 150)
//! * `--json PATH`        write the merged report JSON
//! * `--single-json PATH` also run single-process and write its JSON
//! * `--check`            assert zero re-simulation on resume and merged
//!   bytes == single-process bytes

use nupea::shard::ShardOptions;
use nupea::{jsonl, CampaignConfig, FaultCampaign, Scale};
use nupea_dse::{DseConfig, SearchSpace};
use nupea_kernels::workloads::workload_by_name;
use nupea_rng::Xoshiro256;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::Duration;

struct Opts {
    mode: String,
    dir: Option<PathBuf>,
    shards: u32,
    workers: u32,
    chaos: u32,
    seed: u64,
    ttl_ms: u64,
    heartbeat_ms: u64,
    json: Option<PathBuf>,
    single_json: Option<PathBuf>,
    check: bool,
    /// Hidden: run as one worker process of the fleet instead of as the
    /// orchestrating parent.
    worker: Option<String>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        mode: "faults".into(),
        dir: None,
        shards: 13,
        workers: 4,
        chaos: 0,
        seed: 0xC7A05,
        ttl_ms: 1_500,
        heartbeat_ms: 150,
        json: None,
        single_json: None,
        check: false,
        worker: None,
    };
    let mut args = std::env::args().skip(1);
    let value =
        |args: &mut std::iter::Skip<std::env::Args>, flag: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
    let num = |flag: &str, s: String| s.parse::<u64>().map_err(|e| format!("{flag}: {e}"));
    while let Some(a) = args.next() {
        match a.as_str() {
            "--dir" => opts.dir = Some(value(&mut args, "--dir")?.into()),
            "--shards" => opts.shards = num("--shards", value(&mut args, "--shards")?)? as u32,
            "--workers" => opts.workers = num("--workers", value(&mut args, "--workers")?)? as u32,
            "--chaos" => opts.chaos = num("--chaos", value(&mut args, "--chaos")?)? as u32,
            "--seed" => opts.seed = num("--seed", value(&mut args, "--seed")?)?,
            "--ttl-ms" => opts.ttl_ms = num("--ttl-ms", value(&mut args, "--ttl-ms")?)?,
            "--heartbeat-ms" => {
                opts.heartbeat_ms = num("--heartbeat-ms", value(&mut args, "--heartbeat-ms")?)?;
            }
            "--json" => opts.json = Some(value(&mut args, "--json")?.into()),
            "--single-json" => opts.single_json = Some(value(&mut args, "--single-json")?.into()),
            "--check" => opts.check = true,
            "--worker" => opts.worker = Some(value(&mut args, "--worker")?),
            // Ignore flags cargo's bench harness forwards (e.g. --bench).
            s if s.starts_with("--") => {}
            s => opts.mode = s.to_string(),
        }
    }
    Ok(opts)
}

/// The campaign every process of a `faults` run agrees on.
fn campaign() -> FaultCampaign {
    FaultCampaign::new(CampaignConfig::smoke())
}

/// The search space every process of a `dse` run agrees on (the dse
/// bench's smoke preset).
fn space() -> SearchSpace {
    SearchSpace {
        domain_cols: vec![3],
        d0_cols: vec![2, 3],
        cache_words: vec![64 * 1024],
        effort: 64,
        ..SearchSpace::default()
    }
}

fn shard_options(opts: &Opts, worker: String) -> ShardOptions {
    ShardOptions {
        shards: opts.shards,
        worker,
        ttl_ms: opts.ttl_ms,
        heartbeat_ms: opts.heartbeat_ms,
        ..ShardOptions::default()
    }
}

/// Worker-process mode: drain the shard queue, print one stats line.
fn run_as_worker(opts: &Opts, id: &str, dir: &Path) -> Result<(), String> {
    let sopts = shard_options(opts, id.to_string());
    let stats = match opts.mode.as_str() {
        "faults" => campaign()
            .run_shard_worker(dir, &sopts)
            .map_err(|e| e.to_string())?,
        "dse" => {
            let spmspv = workload_by_name("spmspv")
                .expect("spmspv exists")
                .build_default(Scale::Test);
            nupea_dse::run_shard_worker(&space(), &DseConfig::default(), &[spmspv], dir, &sopts)
                .map_err(|e| e.to_string())?
        }
        m => return Err(format!("unknown mode {m:?} (faults|dse)")),
    };
    println!(
        "{{\"claimed\":{},\"completed\":{},\"stolen\":{},\"fenced\":{}}}",
        stats.claimed, stats.completed, stats.stolen, stats.fenced
    );
    Ok(())
}

/// Spawn one worker copy of this binary, forwarding the run config.
fn spawn_worker(opts: &Opts, dir: &Path, id: &str) -> Result<Child, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    Command::new(exe)
        .args([
            opts.mode.as_str(),
            "--worker",
            id,
            "--dir",
            dir.to_str().ok_or("--dir must be valid UTF-8")?,
            "--shards",
            &opts.shards.to_string(),
            "--ttl-ms",
            &opts.ttl_ms.to_string(),
            "--heartbeat-ms",
            &opts.heartbeat_ms.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn worker {id}: {e}"))
}

/// Spawn the fleet, SIGKILL `--chaos` seeded-random members mid-run, and
/// wait for the rest; survivors must exit cleanly.
fn run_fleet(opts: &Opts, dir: &Path) -> Result<(), String> {
    let mut children: Vec<(String, Child)> = (0..opts.workers)
        .map(|i| {
            let id = format!("w{i}");
            spawn_worker(opts, dir, &id).map(|c| (id, c))
        })
        .collect::<Result<_, _>>()?;
    let mut rng = Xoshiro256::seed_from_u64(opts.seed);
    let mut victims: Vec<usize> = (0..children.len()).collect();
    rng.shuffle(&mut victims);
    victims.truncate(opts.chaos.min(opts.workers.saturating_sub(1)) as usize);
    for &v in &victims {
        std::thread::sleep(Duration::from_millis(100 + rng.below(300)));
        let (id, child) = &mut children[v];
        if child.try_wait().map_err(|e| e.to_string())?.is_none() {
            child.kill().map_err(|e| format!("kill {id}: {e}"))?;
            println!("chaos: killed {id} mid-run");
        }
    }
    for (i, (id, child)) in children.into_iter().enumerate() {
        let out = child.wait_with_output().map_err(|e| e.to_string())?;
        if victims.contains(&i) {
            continue;
        }
        if !out.status.success() {
            return Err(format!("worker {id} failed ({})", out.status));
        }
        print!("{id}: {}", String::from_utf8_lossy(&out.stdout));
    }
    Ok(())
}

/// One more worker over the finished run: returns its claim count, which
/// must be zero when every shard is already done.
fn resume_claims(opts: &Opts, dir: &Path, id: &str) -> Result<u64, String> {
    let out = spawn_worker(opts, dir, id)?
        .wait_with_output()
        .map_err(|e| e.to_string())?;
    if !out.status.success() {
        return Err(format!("resume worker failed ({})", out.status));
    }
    let stats = String::from_utf8_lossy(&out.stdout);
    jsonl::u64_field(&stats, "claimed").ok_or_else(|| format!("bad resume stats: {stats}"))
}

/// Single-process baseline for `--single-json` / `--check`.
fn single_process_json(opts: &Opts) -> Result<String, String> {
    match opts.mode.as_str() {
        "faults" => Ok(campaign().run().map_err(|e| e.to_string())?.to_json()),
        "dse" => {
            let spmspv = workload_by_name("spmspv")
                .expect("spmspv exists")
                .build_default(Scale::Test);
            let dir =
                std::env::temp_dir().join(format!("nupea-shard-single-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            let report = nupea_dse::run_sharded(
                &space(),
                &DseConfig::default(),
                &[spmspv],
                &dir,
                &ShardOptions::with_shards(1),
            )
            .map_err(|e| e.to_string())?;
            std::fs::remove_dir_all(&dir).ok();
            Ok(report.to_json())
        }
        m => Err(format!("unknown mode {m:?} (faults|dse)")),
    }
}

/// Merge the per-shard journals into the final report JSON.
fn merged_json(opts: &Opts, dir: &Path) -> Result<String, String> {
    match opts.mode.as_str() {
        "faults" => Ok(campaign()
            .merge_sharded(dir, opts.shards)
            .map_err(|e| e.to_string())?
            .to_json()),
        "dse" => {
            let spmspv = workload_by_name("spmspv")
                .expect("spmspv exists")
                .build_default(Scale::Test);
            Ok(nupea_dse::merge_sharded(
                &space(),
                &DseConfig::default(),
                &[spmspv],
                dir,
                opts.shards,
            )
            .map_err(|e| e.to_string())?
            .to_json())
        }
        m => Err(format!("unknown mode {m:?} (faults|dse)")),
    }
}

fn run() -> Result<(), String> {
    let opts = parse_opts()?;
    let scratch;
    let dir: &Path = match &opts.dir {
        Some(d) => d,
        None => {
            scratch = std::env::temp_dir().join(format!("nupea-shard-{}", std::process::id()));
            std::fs::remove_dir_all(&scratch).ok();
            &scratch
        }
    };
    if let Some(id) = &opts.worker {
        return run_as_worker(&opts, id, dir);
    }

    if opts.shards <= 1 {
        // Degraded single-process path: no fleet, no coordination journal.
        let json = single_process_json(&opts)?;
        if let Some(path) = &opts.json {
            std::fs::write(path, &json).map_err(|e| format!("{}: {e}", path.display()))?;
            println!("report json -> {}", path.display());
        }
        println!("shards=1: single-process run complete");
        return Ok(());
    }

    println!(
        "mode={} shards={} workers={} chaos={} dir={}",
        opts.mode,
        opts.shards,
        opts.workers,
        opts.chaos,
        dir.display()
    );
    run_fleet(&opts, dir)?;
    // Finish any remainder (e.g. every worker was a chaos victim) and
    // measure how much a resumed worker re-claims.
    let claimed = resume_claims(&opts, dir, "resume")?;
    println!("resume: claimed {claimed} shards");

    let merged = merged_json(&opts, dir)?;
    if let Some(path) = &opts.json {
        std::fs::write(path, &merged).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("merged json -> {}", path.display());
    }
    if opts.single_json.is_some() || opts.check {
        let single = single_process_json(&opts)?;
        if let Some(path) = &opts.single_json {
            std::fs::write(path, &single).map_err(|e| format!("{}: {e}", path.display()))?;
            println!("single-process json -> {}", path.display());
        }
        if opts.check {
            if merged != single {
                return Err("check: merged report differs from single-process report".into());
            }
            // `resume` ran after the fleet drained the queue (and finished
            // any chaos remainder itself), so it must have claimed nothing.
            let again = resume_claims(&opts, dir, "resume2")?;
            if again != 0 {
                return Err(format!("check: resumed worker re-claimed {again} shards"));
            }
            println!("check: ok");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("shard: {e}");
            ExitCode::FAILURE
        }
    }
}

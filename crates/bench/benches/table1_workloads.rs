//! Table 1: the workload suite. Prints each application with its (scaled)
//! input, graph statistics, criticality breakdown, chosen parallelism, and
//! an end-to-end validation run on Monaco.

use nupea::experiments::render_table;
use nupea::{Heuristic, MemoryModel, Scale, SystemConfig};
use nupea_ir::graph::Criticality;
use nupea_kernels::workloads::all_workloads;

fn main() {
    let sys = SystemConfig::monaco_12x12();
    let headers: Vec<String> = [
        "nodes",
        "mem",
        "crit",
        "inner",
        "other",
        "par",
        "cycles",
        "firings",
        "validated",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for spec in all_workloads() {
        let w = spec.build_default(Scale::Bench);
        let g = w.kernel.dfg();
        let count = |class: Criticality| {
            g.iter()
                .filter(|(_, n)| n.op.is_memory() && n.meta.criticality == Some(class))
                .count()
        };
        let (crit, inner, other) = (
            count(Criticality::Critical),
            count(Criticality::InnerLoop),
            count(Criticality::Other),
        );
        let outcome = sys
            .compile(&w, Heuristic::CriticalityAware)
            .and_then(|c| c.simulate(MemoryModel::Nupea));
        let (cycles, firings, ok) = match &outcome {
            Ok(s) => (
                s.cycles.to_string(),
                s.firings.to_string(),
                "yes".to_string(),
            ),
            Err(e) => ("-".into(), "-".into(), format!("NO: {e}")),
        };
        rows.push((
            spec.name.to_string(),
            vec![
                g.len().to_string(),
                g.num_memory_ops().to_string(),
                crit.to_string(),
                inner.to_string(),
                other.to_string(),
                w.par.to_string(),
                cycles,
                firings,
                ok,
            ],
        ));
    }
    println!(
        "{}",
        render_table(
            "Table 1: workloads (bench scale; see EXPERIMENTS.md for the paper-size mapping)",
            &headers,
            &rows
        )
    );
}

//! Fig. 15: NUPEA vs a sweep of NUMA-UPEA SDAs with remote-access
//! latencies 0–4 fabric cycles, all workloads, normalized to Monaco.
//!
//! Paper: NUMA recovers some performance vs pure UPEA but still degrades
//! near-linearly; Monaco within 2% of NUMA-UPEA1, 20% over NUMA-UPEA2,
//! 44% over NUMA-UPEA3, 68% over NUMA-UPEA4.

use nupea::MemoryModel;
use nupea_bench::model_sweep;

fn main() {
    let models = [
        MemoryModel::Nupea,
        MemoryModel::NumaUpea(0),
        MemoryModel::NumaUpea(1),
        MemoryModel::NumaUpea(2),
        MemoryModel::NumaUpea(3),
        MemoryModel::NumaUpea(4),
    ];
    model_sweep(
        "Fig 15: NUMA-UPEA latency sweep, normalized to Monaco (lower is better)",
        &models,
        "NUPEA",
        "paper: NUMA-UPEA1 ≈ 1.02x, NUMA-UPEA2 ≈ 1.20x, NUMA-UPEA3 ≈ 1.44x,\n\
         NUMA-UPEA4 ≈ 1.68x (avg)",
    );
}

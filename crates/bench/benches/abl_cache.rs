//! Ablation (beyond the paper): shared memory-side cache size sweep on
//! Monaco, plus cache hit rates.

use nupea::experiments::{heuristic_for, render_table};
use nupea::{MemoryModel, Scale, SystemConfig};
use nupea_kernels::workloads::workload_by_name;

fn main() {
    // Cache sizes in KB (words = KB * 1024 / 4).
    let sizes_kb = [16usize, 64, 256, 1024];
    let headers: Vec<String> = sizes_kb.iter().map(|k| format!("{k}KB")).collect();
    let mut rows = Vec::new();
    for name in ["spmv", "spmspm", "mergsort", "ic"] {
        let w = workload_by_name(name).unwrap().build_default(Scale::Bench);
        let mut cells = Vec::new();
        for &kb in &sizes_kb {
            let mut sys = SystemConfig::monaco_12x12();
            sys.mem.cache_words = kb * 1024 / 4;
            let out = sys
                .compile(&w, heuristic_for(MemoryModel::Nupea))
                .and_then(|c| c.simulate(MemoryModel::Nupea));
            cells.push(match out {
                Ok(s) => format!("{} ({:.0}% hit)", s.cycles, s.cache_hit_rate * 100.0),
                Err(e) => format!("err {e}"),
            });
        }
        rows.push((name.to_string(), cells));
    }
    println!(
        "{}",
        render_table(
            "Ablation: shared cache capacity (cycles on Monaco)",
            &headers,
            &rows
        )
    );
}

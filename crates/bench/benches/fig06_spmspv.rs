//! Fig. 6c: spmspv on NUPEA vs idealized UPEA0 and practical UPEA2.
//!
//! Paper: "NUPEA performs nearly as well as an idealized design with
//! uniform, 0-cycle memory latency (UPEA0), and 32% better than a
//! practical design with uniform, 2-cycle latency (UPEA2)"; UPEA0→UPEA2
//! alone degrades spmspv by 24%.

use nupea::runner::ExperimentRunner;
use nupea::{MemoryModel, Scale, SystemConfig};
use nupea_bench::BenchOpts;
use nupea_kernels::workloads::workload_by_name;

fn main() {
    let opts = BenchOpts::from_env();
    let spec = workload_by_name("spmspv").expect("spmspv registered");
    let models = [
        MemoryModel::Upea(0),
        MemoryModel::Nupea,
        MemoryModel::Upea(2),
    ];

    let mut runner = ExperimentRunner::new();
    opts.configure(&mut runner);
    let sys = runner.system(SystemConfig::monaco_12x12());
    let w = runner.workload(spec.build_default(Scale::Bench));
    runner.model_sweep(w, sys, &models);
    let report = runner.run();

    let cycles_of = |label: &str| {
        report
            .records
            .iter()
            .find(|r| r.model.label() == label && r.error.is_none())
            .unwrap_or_else(|| panic!("{label} point failed"))
            .cycles as f64
    };
    let base = cycles_of("NUPEA");
    println!("== Fig 6c: spmspv execution time (normalized to NUPEA) ==");
    for r in &report.records {
        println!(
            "  {:<8} {:>9} cycles  norm {:.3}  mean-load-latency {:.1}",
            r.model.label(),
            r.cycles,
            r.cycles as f64 / base,
            r.mean_load_latency
        );
    }
    let upea0 = cycles_of("Ideal");
    let upea2 = cycles_of("UPEA2");
    println!(
        "\n  UPEA0 -> UPEA2 degradation: {:+.1}% (paper: ~24%)",
        (upea2 / upea0 - 1.0) * 100.0
    );
    println!(
        "  NUPEA vs UPEA2: {:+.1}% faster (paper: ~32%)",
        (upea2 / base - 1.0) * 100.0
    );
    println!(
        "  NUPEA vs UPEA0 (ideal): within {:.1}% (paper: ~1%)",
        (base / upea0 - 1.0) * 100.0
    );
    opts.finish(&report);
}

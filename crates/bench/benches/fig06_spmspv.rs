//! Fig. 6c: spmspv on NUPEA vs idealized UPEA0 and practical UPEA2.
//!
//! Paper: "NUPEA performs nearly as well as an idealized design with
//! uniform, 0-cycle memory latency (UPEA0), and 32% better than a
//! practical design with uniform, 2-cycle latency (UPEA2)"; UPEA0→UPEA2
//! alone degrades spmspv by 24%.

use nupea::experiments::run_models;
use nupea::{MemoryModel, Scale, SystemConfig};
use nupea_kernels::workloads::workload_by_name;

fn main() {
    let sys = SystemConfig::monaco_12x12();
    let spec = workload_by_name("spmspv").expect("spmspv registered");
    let w = spec.build_default(Scale::Bench);
    let models = [MemoryModel::Upea(0), MemoryModel::Nupea, MemoryModel::Upea(2)];
    let ms = nupea::experiments::run_models(&w, &sys, &models).expect("fig6c runs");
    let base = ms.iter().find(|m| m.config == "NUPEA").unwrap().cycles as f64;
    println!("== Fig 6c: spmspv execution time (normalized to NUPEA) ==");
    for m in &ms {
        println!(
            "  {:<8} {:>9} cycles  norm {:.3}  mean-load-latency {:.1}",
            m.config, m.cycles, m.cycles as f64 / base, m.mean_load_latency
        );
    }
    let upea0 = ms[0].cycles as f64;
    let upea2 = ms[2].cycles as f64;
    println!(
        "\n  UPEA0 -> UPEA2 degradation: {:+.1}% (paper: ~24%)",
        (upea2 / upea0 - 1.0) * 100.0
    );
    println!(
        "  NUPEA vs UPEA2: {:+.1}% faster (paper: ~32%)",
        (upea2 / base - 1.0) * 100.0
    );
    println!(
        "  NUPEA vs UPEA0 (ideal): within {:.1}% (paper: ~1%)",
        (base / upea0 - 1.0) * 100.0
    );
    let _ = run_models; // re-exported helper is the public API under test
}

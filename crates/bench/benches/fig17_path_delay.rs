//! Fig. 17: maximum (critical) routed path delay from PnR for the same
//! topology/size/track sweep as Fig. 16.
//!
//! Paper: at 2 tracks the clustered topologies need significantly longer
//! maximum path delays at 24×24 (worse PnR-chosen clock divider); Monaco's
//! alternating-row topology keeps delays flat.

use nupea_bench::{render_topo_table, topology_sweep};

fn main() {
    let points = topology_sweep();
    println!(
        "{}",
        render_topo_table(
            "Fig 17: maximum routed path (hops) and clock divider",
            &points,
            |p| {
                if p.cycles.is_some() || p.max_hops > 0 {
                    format!("{} hops (div {})", p.max_hops, p.divider)
                } else {
                    "unroutable".to_string()
                }
            },
        )
    );
    println!(
        "paper: CS/CD max path delay grows sharply at 24x24 with 2 tracks;\n\
         Monaco stays competitive, enabling a better clock divider\n"
    );
}

//! Design-space exploration of NUPEA domain geometry (the paper's fourth
//! contribution: "a design space exploration of NUPEA in SDAs to optimize
//! the placement of load-store PEs within Monaco's dataflow fabric").
//!
//! Sweeps the number of direct-port D0 columns and the width of each
//! farther domain on the 12×12 fabric. More D0 columns buy more ports and
//! more zero-hop PEs, but push the remaining domains farther from memory;
//! narrower domains shorten arbiter trees at the cost of more arbitration
//! levels. Monaco ships (3, 3).

use nupea::experiments::render_table;
use nupea::{Heuristic, MemoryModel, Scale, SystemConfig};
use nupea_fabric::Fabric;
use nupea_kernels::workloads::workload_preset;

fn main() {
    let d0_options = [1usize, 2, 3, 4, 6];
    let dcol_options = [2usize, 3, 4];
    for spec in workload_preset("ablation-core").expect("preset exists") {
        let name = spec.name;
        let w = spec.build_default(Scale::Bench);
        let headers: Vec<String> = dcol_options
            .iter()
            .map(|d| format!("domain_cols={d}"))
            .collect();
        let mut rows = Vec::new();
        for &d0 in &d0_options {
            let mut cells = Vec::new();
            for &dc in &dcol_options {
                let fabric =
                    Fabric::monaco_with_domains(12, 12, 3, d0, dc).expect("geometry fits 12x12");
                let ports = fabric.num_ports();
                let domains = fabric.num_domains();
                let sys = SystemConfig::with_fabric(fabric);
                let out = sys
                    .compile(&w, Heuristic::CriticalityAware)
                    .and_then(|c| c.simulate(MemoryModel::Nupea));
                cells.push(match out {
                    Ok(s) => format!("{} cyc ({}p/{}d)", s.cycles, ports, domains),
                    Err(e) => {
                        let msg = e.to_string();
                        format!("err: {}", &msg[..msg.len().min(18)])
                    }
                });
            }
            rows.push((format!("d0_cols={d0}"), cells));
        }
        println!(
            "{}",
            render_table(
                &format!("DSE: NUPEA domain geometry on 12x12 — {name} (ports/domains in parens)"),
                &headers,
                &rows
            )
        );
    }
    println!("shipping Monaco is d0_cols=3, domain_cols=3 (18 ports, 4 domains)\n");
}

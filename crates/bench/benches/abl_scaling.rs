//! Ablation (beyond the paper): input-size sensitivity. The reproduction
//! runs scaled-down inputs (EXPERIMENTS.md); this bench shows the headline
//! spmspv result is stable across a 16x input-size range, supporting the
//! scaling substitution.

use nupea::experiments::{heuristic_for, render_table};
use nupea::{MemoryModel, SystemConfig};
use nupea_kernels::workloads::sparse::spmspv_custom;

fn main() {
    let sys = SystemConfig::monaco_12x12();
    let headers: Vec<String> = ["NUPEA", "UPEA2", "UPEA2/NUPEA"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for n in [48usize, 96, 192, 384] {
        let w = spmspv_custom(n, 0.9, 4);
        let mut cyc = Vec::new();
        for model in [MemoryModel::Nupea, MemoryModel::Upea(2)] {
            let c = sys.compile(&w, heuristic_for(model)).unwrap();
            cyc.push(c.simulate(model).unwrap().cycles);
        }
        rows.push((
            format!("{n}x{n}"),
            vec![
                cyc[0].to_string(),
                cyc[1].to_string(),
                format!("{:.3}", cyc[1] as f64 / cyc[0] as f64),
            ],
        ));
    }
    println!(
        "{}",
        render_table(
            "Input-size sensitivity: spmspv, 90% sparse, par 4",
            &headers,
            &rows
        )
    );
    println!("the NUPEA advantage is stable across input scales\n");
}

//! Fig. 14: NUPEA vs a sweep of UPEA SDAs with uniform access latencies
//! 0–4 fabric cycles, all workloads, normalized to Monaco.
//!
//! Paper: near-linear degradation with latency; Monaco ≈ UPEA1 (3%
//! faster), 28% over UPEA2, 55% over UPEA3, 82% over UPEA4.

use nupea::MemoryModel;
use nupea_bench::model_sweep;

fn main() {
    let models = [
        MemoryModel::Nupea,
        MemoryModel::Upea(0),
        MemoryModel::Upea(1),
        MemoryModel::Upea(2),
        MemoryModel::Upea(3),
        MemoryModel::Upea(4),
    ];
    model_sweep(
        "Fig 14: UPEA latency sweep, normalized to Monaco (lower is better)",
        &models,
        "NUPEA",
        "paper: UPEA1 ≈ 1.03x, UPEA2 ≈ 1.28x, UPEA3 ≈ 1.55x, UPEA4 ≈ 1.82x (avg)",
    );
}

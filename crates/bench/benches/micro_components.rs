//! Micro-benchmarks: wall-clock throughput of the simulator engine, the
//! untimed interpreter, PnR, and criticality analysis. Hand-rolled timing
//! (best of repeated batches) so the workspace builds with no external
//! registry dependencies.

use nupea::{Heuristic, SystemConfig};
use nupea_kernels::interp_kernel;
use nupea_kernels::workloads::{workload_by_name, Scale};
use nupea_pnr::{pnr, PnrConfig};
use nupea_sim::{Engine, SimConfig};
use std::time::Instant;

/// Time `f` over `iters` iterations per batch, repeating batches until
/// ~0.5 s has elapsed; report the best batch (least interference).
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    // Warm-up.
    f();
    let mut best = f64::INFINITY;
    let mut batches = 0u32;
    let deadline = Instant::now() + std::time::Duration::from_millis(500);
    while Instant::now() < deadline || batches < 3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per_iter = t0.elapsed().as_secs_f64() / f64::from(iters);
        best = best.min(per_iter);
        batches += 1;
    }
    let (scaled, unit) = if best >= 1e-3 {
        (best * 1e3, "ms")
    } else {
        (best * 1e6, "us")
    };
    println!("{name:<24} {scaled:>9.3} {unit}/iter  ({batches} batches of {iters})");
}

fn main() {
    let sys = SystemConfig::monaco_12x12();

    let w = workload_by_name("spmspv")
        .unwrap()
        .build_default(Scale::Test);
    bench("interp/spmspv-test", 20, || {
        let mut mem = w.fresh_mem();
        interp_kernel(&w.kernel, mem.words_mut(), &[]).unwrap();
    });

    let compiled = sys
        .compile(&w, Heuristic::CriticalityAware)
        .expect("spmspv compiles");
    bench("engine/spmspv-test", 10, || {
        let mut mem = w.fresh_mem();
        let mut e = Engine::new(
            w.kernel.dfg(),
            &sys.fabric,
            &compiled.placed.pe_of,
            SimConfig::default(),
        );
        for (pid, v) in w.kernel.bindings(&[]) {
            e.bind(pid, v);
        }
        e.run(&mut mem).unwrap();
    });

    let wb = workload_by_name("spmspv")
        .unwrap()
        .build_default(Scale::Bench);
    bench("pnr/spmspv-bench", 2, || {
        pnr(wb.kernel.dfg(), &sys.fabric, &PnrConfig::default()).unwrap();
    });

    let wt = workload_by_name("tc").unwrap().build_default(Scale::Bench);
    bench("criticality/tc", 50, || {
        let mut g = wt.kernel.dfg().clone();
        nupea_ir::criticality::classify(&mut g);
    });
}

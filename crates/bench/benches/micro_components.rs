//! Criterion micro-benchmarks: wall-clock throughput of the simulator
//! engine, the untimed interpreter, PnR, and criticality analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use nupea::{compile_workload, Heuristic, SystemConfig};
use nupea_kernels::interp_kernel;
use nupea_kernels::workloads::{workload_by_name, Scale};
use nupea_pnr::{pnr, PnrConfig};
use nupea_sim::{Engine, SimConfig};

fn bench_interp(c: &mut Criterion) {
    let w = workload_by_name("spmspv").unwrap().build_default(Scale::Test);
    c.bench_function("interp/spmspv-test", |b| {
        b.iter(|| {
            let mut mem = w.fresh_mem();
            interp_kernel(&w.kernel, mem.words_mut(), &[]).unwrap()
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    let w = workload_by_name("spmspv").unwrap().build_default(Scale::Test);
    let sys = SystemConfig::monaco_12x12();
    let compiled = compile_workload(&w, &sys, Heuristic::CriticalityAware).unwrap();
    c.bench_function("engine/spmspv-test", |b| {
        b.iter(|| {
            let mut mem = w.fresh_mem();
            let mut e = Engine::new(
                w.kernel.dfg(),
                &sys.fabric,
                &compiled.placed.pe_of,
                SimConfig::default(),
            );
            for (pid, v) in w.kernel.bindings(&[]) {
                e.bind(pid, v);
            }
            e.run(&mut mem).unwrap()
        })
    });
}

fn bench_pnr(c: &mut Criterion) {
    let w = workload_by_name("spmspv").unwrap().build_default(Scale::Bench);
    let sys = SystemConfig::monaco_12x12();
    c.bench_function("pnr/spmspv-bench", |b| {
        b.iter(|| pnr(w.kernel.dfg(), &sys.fabric, &PnrConfig::default()).unwrap())
    });
}

fn bench_criticality(c: &mut Criterion) {
    let w = workload_by_name("tc").unwrap().build_default(Scale::Bench);
    c.bench_function("criticality/tc", |b| {
        b.iter(|| {
            let mut g = w.kernel.dfg().clone();
            nupea_ir::criticality::classify(&mut g)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_interp, bench_engine, bench_pnr, bench_criticality
}
criterion_main!(benches);

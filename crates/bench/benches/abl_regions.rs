//! Ablation (beyond the paper): multi-region execution. effcc splits
//! programs into fabric-sized regions (§5); this bench measures the cost of
//! running the ad autoencoder one-layer-per-bitstream versus monolithic,
//! across reconfiguration costs.

use nupea::experiments::render_table;
use nupea::{compile_staged, simulate_staged, Heuristic, MemoryModel, Scale, SystemConfig};
use nupea_kernels::workloads::{nn, staged};

fn main() {
    let sys = SystemConfig::monaco_12x12();
    let mono = nn::ad(Scale::Bench, 1);
    let c = sys.compile(&mono, Heuristic::CriticalityAware).unwrap();
    let mono_cycles = c.simulate(MemoryModel::Nupea).unwrap().cycles;

    let sw = staged::ad_staged(Scale::Bench, 1);
    let arts = compile_staged(&sw, &sys, Heuristic::CriticalityAware).unwrap();
    let headers: Vec<String> = ["total cycles", "vs monolithic"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = vec![(
        "monolithic (1 bitstream)".to_string(),
        vec![mono_cycles.to_string(), "1.000".to_string()],
    )];
    for reconfig in [0u64, 500, 2000, 8000] {
        let stats = simulate_staged(&sw, &arts, &sys, MemoryModel::Nupea, reconfig).unwrap();
        rows.push((
            format!("staged, reconfig={reconfig}"),
            vec![
                stats.total_cycles.to_string(),
                format!("{:.3}", stats.total_cycles as f64 / mono_cycles as f64),
            ],
        ));
    }
    println!(
        "{}",
        render_table(
            "Multi-region execution: ad autoencoder, 4 layers",
            &headers,
            &rows
        )
    );
    println!(
        "staged execution loses cross-layer pipelining and pays per-bitstream\n\
         reconfiguration, but each region uses a fraction of the fabric —\n\
         the mechanism that lets programs exceed fabric capacity (§5)\n"
    );
}

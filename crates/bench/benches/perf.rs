//! Engine performance trajectory: wall-clock, cycles/sec, and peak RSS for
//! the full 13-workload suite plus the micro-component benches, written as
//! one `BENCH_*.json` snapshot per PR (see README "Performance").
//!
//! ```text
//! cargo bench -p nupea-bench --bench perf -- --json target/perf/BENCH.json \
//!     [--baseline BENCH_006.json] [--gate 1.10] [--repeats 3]
//! ```
//!
//! With `--baseline`, the run compares its geomean suite wall-clock against
//! the committed snapshot and exits non-zero when it regresses by more than
//! the gate factor (the `perf-gate` CI job).

use nupea::experiments::{geomean, heuristic_for};
use nupea::{Heuristic, MemoryModel, Scale, SystemConfig};
use nupea_kernels::interp_kernel;
use nupea_kernels::workloads::{all_workloads, workload_by_name};
use std::fmt::Write as _;
use std::time::Instant;

struct Entry {
    name: String,
    wall_ms: f64,
    cycles: u64,
    cycles_per_sec: f64,
    peak_rss_kb: u64,
}

/// Reset the kernel's RSS high-water mark (`VmHWM`) to the current RSS
/// so the next [`peak_rss_kb`] reading covers only the phase since this
/// call. Without the reset `VmHWM` is monotone over the process
/// lifetime, so every workload after the hungriest one silently
/// inherited its peak (BENCH_006 reported 53504 kB → 86180 kB for
/// *every* suite entry past the first few). Linux-only; a no-op where
/// `/proc/self/clear_refs` is unavailable or unwritable.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Process high-water RSS from /proc/self/status (kB); 0 where unsupported.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Best-of-`repeats` wall-clock of `f`, which returns the simulated cycle
/// count (0 for micro benches without one).
fn time_best(repeats: u32, mut f: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        cycles = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best * 1e3, cycles)
}

fn entry(name: &str, repeats: u32, f: impl FnMut() -> u64) -> Entry {
    reset_peak_rss();
    let (wall_ms, cycles) = time_best(repeats, f);
    let secs = wall_ms / 1e3;
    Entry {
        name: name.to_string(),
        wall_ms,
        cycles,
        cycles_per_sec: if secs > 0.0 {
            cycles as f64 / secs
        } else {
            0.0
        },
        peak_rss_kb: peak_rss_kb(),
    }
}

fn entries_json(entries: &[Entry]) -> String {
    let mut s = String::new();
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        let _ = write!(
            s,
            "    {{\"name\":\"{}\",\"wall_ms\":{:.3},\"cycles\":{},\
             \"cycles_per_sec\":{:.0},\"peak_rss_kb\":{}}}",
            e.name, e.wall_ms, e.cycles, e.cycles_per_sec, e.peak_rss_kb
        );
    }
    s
}

/// Pull a numeric top-level field out of a previous snapshot (the files are
/// hand-rolled flat-ish JSON; no serde in the workspace).
fn baseline_geomean(text: &str) -> Option<f64> {
    let pat = "\"geomean_wall_ms\":";
    let start = text.find(pat)? + pat.len();
    let rest = text[start..].trim_start();
    let end = rest.find([',', '}', '\n'])?;
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let json_path = flag("--json");
    let baseline_path = flag("--baseline");
    let gate: f64 = flag("--gate").and_then(|v| v.parse().ok()).unwrap_or(1.10);
    let repeats: u32 = flag("--repeats").and_then(|v| v.parse().ok()).unwrap_or(3);

    let sys = SystemConfig::monaco_12x12();

    // The 13-workload suite at bench scale: compile once per workload
    // (PnR excluded from the timing — the trajectory tracks the engine),
    // then time the simulation under the Monaco model.
    let mut suite = Vec::new();
    for spec in all_workloads() {
        let w = spec.build_default(Scale::Bench);
        let compiled = sys
            .compile(&w, heuristic_for(MemoryModel::Nupea))
            .unwrap_or_else(|e| panic!("{}: pnr failed: {e}", spec.name));
        let e = entry(spec.name, repeats, || {
            let stats = compiled
                .simulate(MemoryModel::Nupea)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            stats.cycles
        });
        println!(
            "suite/{:<10} {:>9.2} ms  {:>12.0} cyc/s  rss {:>7} kB",
            e.name, e.wall_ms, e.cycles_per_sec, e.peak_rss_kb
        );
        suite.push(e);
    }
    let geomean_wall_ms = geomean(&suite.iter().map(|e| e.wall_ms).collect::<Vec<_>>());
    println!("suite geomean {geomean_wall_ms:.3} ms");

    // Micro-component benches: engine on a Test-scale kernel (dominated by
    // per-event overhead rather than memory latency), the same kernel under
    // UPEA-2, and the untimed interpreter as the floor.
    let mut micro = Vec::new();
    let w = workload_by_name("spmspv")
        .unwrap()
        .build_default(Scale::Test);
    let monaco = sys.compile(&w, Heuristic::CriticalityAware).unwrap();
    let uniform = sys.compile(&w, Heuristic::DomainUnaware).unwrap();
    micro.push(entry("engine/spmspv-test-nupea", repeats.max(5), || {
        monaco.simulate(MemoryModel::Nupea).unwrap().cycles
    }));
    micro.push(entry("engine/spmspv-test-upea2", repeats.max(5), || {
        uniform.simulate(MemoryModel::Upea(2)).unwrap().cycles
    }));
    micro.push(entry("interp/spmspv-test", repeats.max(5), || {
        let mut mem = w.fresh_mem();
        interp_kernel(&w.kernel, mem.words_mut(), &[]).unwrap();
        0
    }));
    for e in &micro {
        println!(
            "micro/{:<24} {:>9.3} ms  rss {:>7} kB",
            e.name, e.wall_ms, e.peak_rss_kb
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"perf\",\n  \"scale\": \"Bench\",\n  \"model\": \"NUPEA\",\n  \
         \"repeats\": {repeats},\n  \"geomean_wall_ms\": {geomean_wall_ms:.3},\n  \
         \"suite\": [\n{}\n  ],\n  \"micro\": [\n{}\n  ]\n}}\n",
        entries_json(&suite),
        entries_json(&micro)
    );
    if let Some(path) = json_path {
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }

    if let Some(path) = baseline_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let base = baseline_geomean(&text)
            .unwrap_or_else(|| panic!("baseline {path} has no geomean_wall_ms field"));
        let ratio = geomean_wall_ms / base;
        println!(
            "perf-gate: geomean {geomean_wall_ms:.3} ms vs baseline {base:.3} ms \
             (ratio {ratio:.3}, gate {gate:.2})"
        );
        if ratio > gate {
            eprintln!("perf-gate: FAIL — suite wall-clock regressed beyond the gate");
            std::process::exit(1);
        }
        println!("perf-gate: ok");
    }
}

//! Ablation (beyond the paper): token-FIFO depth × outstanding-request
//! limit. Shows how PE buffering hides memory latency — the knob that
//! separates latency-bound from bandwidth-bound behaviour in Figs. 11/14.

use nupea::experiments::render_table;
use nupea::{MemoryModel, Scale, SystemConfig};
use nupea_bench::run_once;
use nupea_kernels::workloads::workload_preset;

fn main() {
    let configs = [(2usize, 1usize), (4, 1), (4, 2), (8, 2), (8, 4), (8, 8)];
    let headers: Vec<String> = configs
        .iter()
        .map(|(f, o)| format!("fifo{f}/out{o}"))
        .collect();
    let mut rows = Vec::new();
    for spec in workload_preset("ablation-core").expect("preset exists") {
        let name = spec.name;
        let w = spec.build_default(Scale::Bench);
        let mut cells = Vec::new();
        for &(fifo, outst) in &configs {
            let mut sys = SystemConfig::monaco_12x12();
            sys.fifo_depth = fifo;
            sys.max_outstanding = outst;
            cells.push(match run_once(&w, &sys, MemoryModel::Nupea) {
                Ok(c) => c.to_string(),
                Err(e) => format!("err {e}"),
            });
        }
        rows.push((name.to_string(), cells));
    }
    println!(
        "{}",
        render_table(
            "Ablation: PE buffering (cycles on Monaco; lower is better)",
            &headers,
            &rows
        )
    );
}

//! Journaled design-space exploration over the joint hardware/compiler
//! space (`nupea-dse`), replacing the one-axis-at-a-time hand sweeps.
//!
//!     cargo bench -p nupea-bench --bench dse -- [PRESET] [FLAGS]
//!
//! Presets (first positional argument):
//!
//! * `domains` (default) — spmspv over the domain-count sensitivity grid:
//!   domain widths × direct-port shares × all three placement heuristics.
//! * `cache`   — spmspv over cache capacities × heuristics at shipping
//!   Monaco geometry (the Fig. 15-style capacity curve).
//! * `fig12`   — the PnR-heuristic ablation (Fig. 12) on spmspv/dmv/fft
//!   at fixed Monaco geometry, via the frontier report.
//! * `smoke`   — tiny test-scale grid for CI: one workload, six points.
//!
//! Flags:
//!
//! * `--workload NAME`    override the preset's workload list with any
//!   registry entry (repeatable) — e.g. `--workload bfs --workload histogram`
//! * `--journal PATH`     append-only JSONL journal; re-invoking with the
//!   same journal resumes — completed points replay with zero simulation.
//! * `--strategy S`       `grid` (default) | `random` | `anneal`
//! * `--samples N`        random-search draws (default 16)
//! * `--steps N`          annealing proposals (default 24)
//! * `--seed N`           strategy seed (default 0xC0FFEE)
//! * `--budget N`         enable successive halving with base budget N
//! * `--rungs N`          capped halving rungs (default 1)
//! * `--eta N`            halving promotion fraction (default 3)
//! * `--threads N`        runner worker threads (0 = all cores)
//! * `--scale S`          `test` | `bench` (preset default otherwise)
//! * `--json PATH`        write the deterministic report JSON
//! * `--trace-dir DIR`    re-simulate frontier points with tracing on
//! * `--check`            assert: non-empty frontier, fully parseable
//!   journal, and effcc at least matching domain-unaware on best cycles
//! * `--expect-no-sim`    assert the whole run was served from the
//!   journal (resume verification; implies a prior completed run)

use nupea::experiments::render_table;
use nupea::{Heuristic, Scale};
use nupea_dse::{
    Annealing, Budget, DseConfig, DseEngine, DseReport, GridSearch, HalvingConfig, Journal,
    RandomSearch, SearchSpace, SearchStrategy,
};
use nupea_kernels::workloads::workload_by_name;
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    preset: String,
    workloads: Vec<String>,
    journal: Option<PathBuf>,
    strategy: String,
    samples: usize,
    steps: usize,
    seed: u64,
    budget: Option<u64>,
    rungs: usize,
    eta: usize,
    threads: usize,
    scale: Option<Scale>,
    json: Option<PathBuf>,
    trace_dir: Option<PathBuf>,
    check: bool,
    expect_no_sim: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        preset: "domains".into(),
        workloads: Vec::new(),
        journal: None,
        strategy: "grid".into(),
        samples: 16,
        steps: 24,
        seed: 0xC0FFEE,
        budget: None,
        rungs: 1,
        eta: 3,
        threads: 0,
        scale: None,
        json: None,
        trace_dir: None,
        check: false,
        expect_no_sim: false,
    };
    let mut args = std::env::args().skip(1);
    let value =
        |args: &mut std::iter::Skip<std::env::Args>, flag: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workload" => opts.workloads.push(value(&mut args, "--workload")?),
            "--journal" => opts.journal = Some(value(&mut args, "--journal")?.into()),
            "--strategy" => opts.strategy = value(&mut args, "--strategy")?,
            "--samples" => {
                opts.samples = value(&mut args, "--samples")?
                    .parse()
                    .map_err(|e| format!("--samples: {e}"))?;
            }
            "--steps" => {
                opts.steps = value(&mut args, "--steps")?
                    .parse()
                    .map_err(|e| format!("--steps: {e}"))?;
            }
            "--seed" => {
                opts.seed = value(&mut args, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--budget" => {
                opts.budget = Some(
                    value(&mut args, "--budget")?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?,
                );
            }
            "--rungs" => {
                opts.rungs = value(&mut args, "--rungs")?
                    .parse()
                    .map_err(|e| format!("--rungs: {e}"))?;
            }
            "--eta" => {
                opts.eta = value(&mut args, "--eta")?
                    .parse()
                    .map_err(|e| format!("--eta: {e}"))?;
            }
            "--threads" => {
                opts.threads = value(&mut args, "--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--scale" => {
                opts.scale = Some(match value(&mut args, "--scale")?.as_str() {
                    "test" => Scale::Test,
                    "bench" => Scale::Bench,
                    s => return Err(format!("--scale: unknown scale {s:?}")),
                });
            }
            "--json" => opts.json = Some(value(&mut args, "--json")?.into()),
            "--trace-dir" => opts.trace_dir = Some(value(&mut args, "--trace-dir")?.into()),
            "--check" => opts.check = true,
            "--expect-no-sim" => opts.expect_no_sim = true,
            // Ignore flags cargo's bench harness forwards (e.g. --bench).
            s if s.starts_with("--") => {}
            s => opts.preset = s.to_string(),
        }
    }
    Ok(opts)
}

/// Preset → (search space, workload names, default scale).
fn preset(name: &str) -> Result<(SearchSpace, Vec<&'static str>, Scale), String> {
    let mut space = SearchSpace::default();
    Ok(match name {
        "domains" => {
            space.cache_words = vec![64 * 1024];
            (space, vec!["spmspv"], Scale::Bench)
        }
        "cache" => {
            space.domain_cols = vec![3];
            space.d0_cols = vec![3];
            space.cache_words = vec![4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024];
            (space, vec!["spmspv"], Scale::Bench)
        }
        "fig12" => {
            space.domain_cols = vec![3];
            space.d0_cols = vec![3];
            space.cache_words = vec![64 * 1024];
            let names = nupea_kernels::workloads::workload_preset("ablation-core")
                .expect("preset exists")
                .iter()
                .map(|s| s.name)
                .collect();
            (space, names, Scale::Bench)
        }
        "smoke" => {
            space.domain_cols = vec![3];
            space.d0_cols = vec![2, 3];
            space.cache_words = vec![64 * 1024];
            space.effort = 64;
            (space, vec!["spmspv"], Scale::Test)
        }
        s => return Err(format!("unknown preset {s:?} (domains|cache|fig12|smoke)")),
    })
}

/// The Fig. 12-style summary: best full-budget cycles per heuristic and
/// the speedup over the Domain-Unaware baseline.
fn heuristic_summary(report: &DseReport, workloads: &[&str]) -> String {
    let heuristics = [
        Heuristic::DomainUnaware,
        Heuristic::OnlyDomainAware,
        Heuristic::CriticalityAware,
    ];
    let headers: Vec<String> = heuristics.iter().map(ToString::to_string).collect();
    let rows: Vec<(String, Vec<String>)> = workloads
        .iter()
        .map(|w| {
            let base = report.best_cycles(w, Heuristic::DomainUnaware);
            let cells = heuristics
                .iter()
                .map(|&h| match (report.best_cycles(w, h), base) {
                    (Some(c), Some(b)) => format!("{c} cyc ({:.2}x)", b as f64 / c as f64),
                    (Some(c), None) => format!("{c} cyc"),
                    (None, _) => "n/a".to_string(),
                })
                .collect();
            ((*w).to_string(), cells)
        })
        .collect();
    render_table(
        "Best cycles per heuristic (speedup vs domain-unaware)",
        &headers,
        &rows,
    )
}

fn run() -> Result<(), String> {
    let opts = parse_opts()?;
    let (space, preset_names, default_scale) = preset(&opts.preset)?;
    let scale = opts.scale.unwrap_or(default_scale);
    // `--workload` overrides the preset's list with any registry entries,
    // so new kernels are explorable without a dedicated preset.
    let workload_names: Vec<&str> = if opts.workloads.is_empty() {
        preset_names
    } else {
        opts.workloads.iter().map(String::as_str).collect()
    };

    let cfg = DseConfig {
        threads: opts.threads,
        halving: opts.budget.map(|base_budget| HalvingConfig {
            base_budget,
            eta: opts.eta.max(2),
            rungs: opts.rungs,
        }),
        ..DseConfig::default()
    };
    let mut engine = DseEngine::new(space.clone(), cfg);
    if let Some(path) = &opts.journal {
        let journal = Journal::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
        println!(
            "journal {}: {} entries replayed, {} corrupt lines skipped",
            path.display(),
            journal.replayed,
            journal.skipped
        );
        engine = engine.with_journal(journal);
    }
    for name in &workload_names {
        let spec = workload_by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
        engine.add_workload(spec.build_default(scale));
    }

    let mut strategy: Box<dyn SearchStrategy> = match opts.strategy.as_str() {
        "grid" => Box::new(GridSearch::new(8)),
        "random" => Box::new(RandomSearch::new(opts.seed, opts.samples, 8)),
        "anneal" => Box::new(Annealing::with_defaults(opts.seed, opts.steps)),
        s => return Err(format!("unknown strategy {s:?} (grid|random|anneal)")),
    };
    let report = engine.run(strategy.as_mut()).map_err(|e| e.to_string())?;

    print!("{}", report.render());
    println!("{}", heuristic_summary(&report, &workload_names));
    if let Some(path) = &opts.json {
        std::fs::write(path, report.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("report json -> {}", path.display());
    }
    if let Some(dir) = &opts.trace_dir {
        let traces = engine.emit_frontier_traces(&report, dir);
        println!("{} frontier traces -> {}", traces.len(), dir.display());
    }

    if opts.expect_no_sim && engine.simulated() != 0 {
        return Err(format!(
            "--expect-no-sim: {} points were re-simulated instead of replaying from the journal",
            engine.simulated()
        ));
    }
    if opts.check {
        check(&opts, &report, &workload_names)?;
        println!("check: ok");
    }
    Ok(())
}

/// `--check`: the acceptance gates the CI smoke job relies on.
fn check(opts: &Opts, report: &DseReport, workloads: &[&str]) -> Result<(), String> {
    for wf in &report.frontiers {
        if wf.frontier.is_empty() {
            return Err(format!("check: empty frontier for {}", wf.workload));
        }
        if !wf.frontier.is_non_dominated() {
            return Err(format!(
                "check: frontier for {} contains a dominated point",
                wf.workload
            ));
        }
    }
    if let Some(path) = &opts.journal {
        let journal = Journal::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
        if journal.replayed == 0 {
            return Err("check: journal has no parseable entries".into());
        }
        if journal.skipped != 0 {
            return Err(format!(
                "check: journal has {} unparseable lines",
                journal.skipped
            ));
        }
        // Every full-budget frontier point must be present in the journal.
        for wf in &report.frontiers {
            for p in wf.frontier.points() {
                if journal.lookup(p.hash, &Budget::Full).is_none() {
                    return Err(format!(
                        "check: frontier point {:#x} missing from journal",
                        p.hash
                    ));
                }
            }
        }
    }
    for w in workloads {
        if let (Some(effcc), Some(unaware)) = (
            report.best_cycles(w, Heuristic::CriticalityAware),
            report.best_cycles(w, Heuristic::DomainUnaware),
        ) {
            if effcc > unaware {
                return Err(format!(
                    "check: {w}: effcc best ({effcc} cyc) is slower than domain-unaware ({unaware} cyc)"
                ));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dse: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Fig. 12: speedup from NUPEA-aware PnR heuristics, all on the Monaco
//! memory model: Domain-Unaware vs Only-Domain-Aware vs effcc
//! (criticality + domain aware).
//!
//! Paper: Only-Domain-Aware gains avg 16% over Domain-Unaware; effcc adds
//! another 9% (total avg 25%), with the largest criticality gains on
//! spmspm/spmspv/tc.

use nupea_bench::heuristic_ablation;

fn main() {
    heuristic_ablation(
        "Fig 12: speedup over Domain-Unaware placement (higher is better)",
        "paper: only-domain-aware ≈ 1.16x, effcc ≈ 1.25x (avg); sparse\n\
         intersection workloads benefit most from criticality awareness",
    );
}

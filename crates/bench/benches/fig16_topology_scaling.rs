//! Fig. 16: spmspv execution time on Monaco vs Clustered-Single vs
//! Clustered-Double across 8×8 / 16×16 / 24×24 fabrics with 2 vs 7 NoC
//! tracks, auto-parallelized per fabric.
//!
//! Paper: with 7 tracks all topologies are competitive; with 2 tracks the
//! clustered topologies hit routing pressure and long cross-fabric paths,
//! while Monaco's interleaved rows keep parallelizing — nearly double the
//! performance at 16×16.

use nupea_bench::{render_topo_table, topology_sweep};

fn main() {
    let points = topology_sweep();
    println!(
        "{}",
        render_topo_table(
            "Fig 16: spmspv execution time (system cycles; auto-par in parens)",
            &points,
            |p| match p.cycles {
                Some(c) => format!("{c} (par {})", p.par),
                None => "unroutable".to_string(),
            },
        )
    );
    println!(
        "paper: Monaco sustains parallelism under 2-track constraint while\n\
         CS/CD degrade at 16x16 and 24x24; all close at 7 tracks\n"
    );
}

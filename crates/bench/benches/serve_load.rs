//! Open-loop load test for `nupea-serve`: boots an in-process server,
//! fires `/simulate` requests on a fixed schedule (open loop — arrival
//! times never wait for responses, so queueing delay is measured, not
//! hidden), and reports the latency distribution and throughput, per
//! criticality tier.
//!
//! ```text
//! cargo bench -p nupea-bench --bench serve_load -- \
//!     [--rate 100] [--duration-secs 2] [--clients 4] \
//!     [--workloads spmv,spmspv] [--queue-cap 64] [--tier-mix 1,2,1] \
//!     [--chaos-seed 7] [--slow-loris N] [--panics N] \
//!     [--deadline-storm N] [--disconnects N] [--json PATH]
//! ```
//!
//! Latencies are aggregated in the same hdrhist-style log-bucketed
//! histogram the server itself reports at `/stats`, so client-observed
//! and server-observed percentiles are directly comparable. Requests
//! carry a `priority` tier in a `--tier-mix` weighted round-robin;
//! `429` responses are split into *shed* (evicted by a higher tier) and
//! *refused* (full queue, nothing lower to shed) — under deliberate
//! overload a healthy run sheds batch-tier load first while critical
//! goodput holds.
//!
//! With any chaos flag set, a seeded [`nupea_serve::chaos`] storm
//! (slow-loris, disconnects, injected panics, deadline storms) runs
//! concurrently with the measured window; the run fails if the server
//! does not contain it.

use nupea_serve::chaos::{self, ChaosConfig};
use nupea_serve::hist::Hist;
use nupea_serve::{client, ServeOptions, Server};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const TIERS: [&str; 3] = ["critical", "normal", "batch"];

struct Shot {
    latency_us: u64,
    status: u16,
    tier: usize,
    shed: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let rate: f64 = flag("--rate").and_then(|v| v.parse().ok()).unwrap_or(100.0);
    let duration_s: f64 = flag("--duration-secs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let clients: usize = flag("--clients").and_then(|v| v.parse().ok()).unwrap_or(4);
    let workloads = flag("--workloads").unwrap_or_else(|| "spmv".to_string());
    let queue_cap: usize = flag("--queue-cap")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let tier_mix = flag("--tier-mix").unwrap_or_else(|| "1,2,1".to_string());
    let json_path = flag("--json");

    // Chaos knobs: any non-zero count arms the concurrent storm.
    let mut chaos_cfg = ChaosConfig::default();
    chaos_cfg.seed = flag("--chaos-seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    chaos_cfg.slow_loris = flag("--slow-loris")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    chaos_cfg.panics = flag("--panics").and_then(|v| v.parse().ok()).unwrap_or(0);
    chaos_cfg.deadline_storm = flag("--deadline-storm")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    chaos_cfg.disconnects = flag("--disconnects")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let chaos_on =
        chaos_cfg.slow_loris + chaos_cfg.panics + chaos_cfg.deadline_storm + chaos_cfg.disconnects
            > 0;

    // Weighted round-robin tier pattern, e.g. "1,2,1" => C N N B.
    let weights: Vec<usize> = tier_mix
        .split(',')
        .map(|w| w.parse().expect("--tier-mix takes WC,WN,WB"))
        .collect();
    assert_eq!(weights.len(), 3, "--tier-mix takes three weights");
    let pattern: Vec<usize> = (0..3)
        .flat_map(|t| std::iter::repeat_n(t, weights[t]))
        .collect();
    assert!(!pattern.is_empty(), "--tier-mix must admit something");

    let mut opts = ServeOptions::default();
    opts.queue_cap = queue_cap;
    if chaos_on {
        // Cut slow-loris connections quickly so the storm resolves
        // within the measured window (1s is still generous on loopback).
        opts.read_timeout_ms = 1_000;
        // The storm's injected panics ride the x_chaos hook, which the
        // server refuses (403) unless explicitly opted in.
        opts.chaos_hooks = true;
    }
    let server = Server::start(&opts).expect("bind load-test server");
    let addr = server.addr();

    // Pre-compile every workload so the measured window exercises the
    // steady state (cache hits + simulation), not one-off PnR.
    let names: Vec<&str> = workloads.split(',').filter(|w| !w.is_empty()).collect();
    assert!(!names.is_empty(), "--workloads must name at least one");
    for name in &names {
        let body = format!("{{\"workload\":\"{name}\",\"effort\":0}}");
        let resp = client::post(addr, "/compile", &body).expect("warmup compile");
        assert_eq!(resp.status, 200, "warmup: {}", resp.body_str());
    }
    // One body per workload × tier.
    let bodies: Vec<Vec<String>> = names
        .iter()
        .map(|name| {
            TIERS
                .iter()
                .map(|tier| {
                    format!("{{\"workload\":\"{name}\",\"effort\":0,\"priority\":\"{tier}\"}}")
                })
                .collect()
        })
        .collect();

    let chaos_thread = chaos_on.then(|| {
        let cfg = chaos_cfg.clone();
        std::thread::spawn(move || chaos::run(addr, &cfg))
    });

    // Open-loop schedule: request i is due at t0 + i/rate, interleaved
    // across client threads; a slow response delays only its own
    // client's next shot, and the deficit shows up as queueing latency.
    let total = (rate * duration_s).ceil().max(1.0) as usize;
    let t0 = Instant::now();
    let shots: Vec<Shot> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients.max(1))
            .map(|c| {
                let bodies = &bodies;
                let pattern = &pattern;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for i in (c..total).step_by(clients.max(1)) {
                        let due = t0 + Duration::from_secs_f64(i as f64 / rate);
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let tier = pattern[i % pattern.len()];
                        let body = &bodies[i % bodies.len()][tier];
                        let sent = Instant::now();
                        let (status, shed) = client::post(addr, "/simulate", body)
                            .map_or((0, false), |r| {
                                (r.status, r.body_str().contains("\"shed\":true"))
                            });
                        out.push(Shot {
                            latency_us: u64::try_from(sent.elapsed().as_micros())
                                .unwrap_or(u64::MAX),
                            status,
                            tier,
                            shed,
                        });
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed_s = t0.elapsed().as_secs_f64();
    let chaos_report = chaos_thread.map(|t| t.join().expect("chaos thread"));

    let mut hist = Hist::new();
    let mut tier_hists = [Hist::new(), Hist::new(), Hist::new()];
    let (mut ok, mut errors) = (0u64, 0u64);
    let mut tier_ok = [0u64; 3];
    let mut tier_shed = [0u64; 3];
    let mut tier_refused = [0u64; 3];
    for shot in &shots {
        match shot.status {
            200 => {
                ok += 1;
                tier_ok[shot.tier] += 1;
                hist.record(shot.latency_us);
                tier_hists[shot.tier].record(shot.latency_us);
            }
            429 if shot.shed => tier_shed[shot.tier] += 1,
            429 => tier_refused[shot.tier] += 1,
            _ => errors += 1,
        }
    }
    let throttled: u64 = tier_shed.iter().chain(tier_refused.iter()).sum();
    let throughput = ok as f64 / elapsed_s;

    println!(
        "serve-load: {} requests over {elapsed_s:.2}s ({rate:.0} rps offered, {clients} clients, mix {tier_mix})",
        shots.len()
    );
    println!("  ok {ok}  throttled(429) {throttled}  errors {errors}  goodput {throughput:.1} rps");
    println!(
        "  latency p50 {} us  p90 {} us  p99 {} us  max {} us",
        hist.percentile(50.0),
        hist.percentile(90.0),
        hist.percentile(99.0),
        hist.max()
    );
    for (t, name) in TIERS.iter().enumerate() {
        println!(
            "  tier {name}: ok {} shed {} refused {} goodput {:.1} rps  p99 {} us",
            tier_ok[t],
            tier_shed[t],
            tier_refused[t],
            tier_ok[t] as f64 / elapsed_s,
            tier_hists[t].percentile(99.0),
        );
    }
    if let Some(report) = &chaos_report {
        println!("  chaos: {}", report.to_json());
    }

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"serve_load\",\n  \"offered_rps\": {rate},\n  \
         \"duration_s\": {elapsed_s:.3},\n  \"clients\": {clients},\n  \
         \"queue_cap\": {queue_cap},\n  \"workloads\": \"{workloads}\",\n  \
         \"tier_mix\": \"{tier_mix}\",\n  \
         \"requests\": {},\n  \"ok\": {ok},\n  \"throttled\": {throttled},\n  \
         \"errors\": {errors},\n  \"goodput_rps\": {throughput:.1},\n  \
         \"latency\": {},\n  \"tiers\": {{",
        shots.len(),
        hist.to_json()
    );
    for (t, name) in TIERS.iter().enumerate() {
        let _ = write!(
            json,
            "{}\n    \"{name}\": {{\"ok\": {}, \"shed\": {}, \"refused\": {}, \
             \"goodput_rps\": {:.1}, \"p99_us\": {}, \"latency\": {}}}",
            if t > 0 { "," } else { "" },
            tier_ok[t],
            tier_shed[t],
            tier_refused[t],
            tier_ok[t] as f64 / elapsed_s,
            tier_hists[t].percentile(99.0),
            tier_hists[t].to_json(),
        );
    }
    let _ = write!(
        json,
        "\n  }},\n  \"chaos\": {}\n}}\n",
        chaos_report
            .as_ref()
            .map_or("null".to_string(), |r| r.to_json())
    );
    if let Some(path) = json_path {
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }

    server.shutdown();
    let final_stats = server.wait();
    println!("server stats: {final_stats}");
    assert_eq!(errors, 0, "load test saw non-200/429 responses");
    if let Some(report) = &chaos_report {
        assert!(report.contained(), "chaos was not contained: {report:?}");
    }
}

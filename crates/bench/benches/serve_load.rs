//! Open-loop load test for `nupea-serve`: boots an in-process server,
//! fires `/simulate` requests on a fixed schedule (open loop — arrival
//! times never wait for responses, so queueing delay is measured, not
//! hidden), and reports the latency distribution and throughput.
//!
//! ```text
//! cargo bench -p nupea-bench --bench serve_load -- \
//!     [--rate 100] [--duration-secs 2] [--clients 4] \
//!     [--workloads spmv,spmspv] [--queue-cap 64] [--json PATH]
//! ```
//!
//! Latencies are aggregated in the same hdrhist-style log-bucketed
//! histogram the server itself reports at `/stats`, so client-observed
//! and server-observed percentiles are directly comparable. `429`
//! responses (backpressure shed) are counted separately from successes
//! — under deliberate overload (`--rate` high, `--queue-cap` low) a
//! healthy run sheds load instead of growing latency without bound.

use nupea_serve::hist::Hist;
use nupea_serve::{client, ServeOptions, Server};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Shot {
    latency_us: u64,
    status: u16,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let rate: f64 = flag("--rate").and_then(|v| v.parse().ok()).unwrap_or(100.0);
    let duration_s: f64 = flag("--duration-secs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let clients: usize = flag("--clients").and_then(|v| v.parse().ok()).unwrap_or(4);
    let workloads = flag("--workloads").unwrap_or_else(|| "spmv".to_string());
    let queue_cap: usize = flag("--queue-cap")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let json_path = flag("--json");

    let mut opts = ServeOptions::default();
    opts.queue_cap = queue_cap;
    let server = Server::start(&opts).expect("bind load-test server");
    let addr = server.addr();

    // Pre-compile every workload so the measured window exercises the
    // steady state (cache hits + simulation), not one-off PnR.
    let bodies: Vec<String> = workloads
        .split(',')
        .filter(|w| !w.is_empty())
        .map(|w| format!("{{\"workload\":\"{w}\",\"effort\":0}}"))
        .collect();
    assert!(!bodies.is_empty(), "--workloads must name at least one");
    for body in &bodies {
        let resp = client::post(addr, "/compile", body).expect("warmup compile");
        assert_eq!(resp.status, 200, "warmup: {}", resp.body_str());
    }

    // Open-loop schedule: request i is due at t0 + i/rate, interleaved
    // across client threads; a slow response delays only its own
    // client's next shot, and the deficit shows up as queueing latency.
    let total = (rate * duration_s).ceil().max(1.0) as usize;
    let t0 = Instant::now();
    let shots: Vec<Shot> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients.max(1))
            .map(|c| {
                let bodies = &bodies;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for i in (c..total).step_by(clients.max(1)) {
                        let due = t0 + Duration::from_secs_f64(i as f64 / rate);
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let sent = Instant::now();
                        let status = client::post(addr, "/simulate", &bodies[i % bodies.len()])
                            .map_or(0, |r| r.status);
                        out.push(Shot {
                            latency_us: u64::try_from(sent.elapsed().as_micros())
                                .unwrap_or(u64::MAX),
                            status,
                        });
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed_s = t0.elapsed().as_secs_f64();

    let mut hist = Hist::new();
    let (mut ok, mut throttled, mut errors) = (0u64, 0u64, 0u64);
    for shot in &shots {
        match shot.status {
            200 => {
                ok += 1;
                hist.record(shot.latency_us);
            }
            429 => throttled += 1,
            _ => errors += 1,
        }
    }
    let throughput = ok as f64 / elapsed_s;

    println!(
        "serve-load: {} requests over {elapsed_s:.2}s ({rate:.0} rps offered, {clients} clients)",
        shots.len()
    );
    println!("  ok {ok}  throttled(429) {throttled}  errors {errors}  goodput {throughput:.1} rps");
    println!(
        "  latency p50 {} us  p90 {} us  p99 {} us  max {} us",
        hist.percentile(50.0),
        hist.percentile(90.0),
        hist.percentile(99.0),
        hist.max()
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"bench\": \"serve_load\",\n  \"offered_rps\": {rate},\n  \
         \"duration_s\": {elapsed_s:.3},\n  \"clients\": {clients},\n  \
         \"queue_cap\": {queue_cap},\n  \"workloads\": \"{workloads}\",\n  \
         \"requests\": {},\n  \"ok\": {ok},\n  \"throttled\": {throttled},\n  \
         \"errors\": {errors},\n  \"goodput_rps\": {throughput:.1},\n  \
         \"latency\": {}\n}}\n",
        shots.len(),
        hist.to_json()
    );
    if let Some(path) = json_path {
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }

    server.shutdown();
    let final_stats = server.wait();
    println!("server stats: {final_stats}");
    assert_eq!(errors, 0, "load test saw non-200/429 responses");
}

//! Fault-injection campaigns with graceful degradation (DESIGN.md §9).
//!
//!     cargo bench -p nupea-bench --bench faults -- [PRESET] [FLAGS]
//!
//! Presets (first positional argument):
//!
//! * `smoke` (default) — PE failures only, one injection per workload,
//!   fixed seed, all 13 Table 1 workloads at test scale. The CI job runs
//!   this twice and byte-compares the JSON reports.
//! * `full` — every fault class (PE, link drop/stuck, token corruption,
//!   bank failure), 24 injections per workload: hundreds of seeded
//!   injections across Table 1.
//!
//! Flags:
//!
//! * `--workload W`    restrict to one Table 1 workload (repeatable)
//! * `--injections N`  override injections per workload
//! * `--seed N`        campaign seed (presets pin one)
//! * `--threads N`     worker threads (0 = all cores)
//! * `--journal PATH`  append-only JSONL journal; re-invoking with the
//!   same journal resumes — classified injections replay with zero
//!   simulation
//! * `--json PATH`     write the deterministic resilience report JSON
//! * `--csv PATH`      write the per-injection CSV
//! * `--check`         assert the smoke acceptance gates: zero SDCs, and
//!   every detected PE failure either recovered with golden-identical
//!   outputs or hit typed `Unplaceable`

use nupea::{CampaignConfig, CampaignReport, FaultCampaign, OutcomeClass, RecoveryOutcome};
use nupea_kernels::workloads::workload_by_name;
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    preset: String,
    workloads: Vec<String>,
    injections: Option<u32>,
    seed: Option<u64>,
    threads: usize,
    journal: Option<PathBuf>,
    json: Option<PathBuf>,
    csv: Option<PathBuf>,
    check: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        preset: "smoke".into(),
        workloads: Vec::new(),
        injections: None,
        seed: None,
        threads: 0,
        journal: None,
        json: None,
        csv: None,
        check: false,
    };
    let mut args = std::env::args().skip(1);
    let value =
        |args: &mut std::iter::Skip<std::env::Args>, flag: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workload" => opts.workloads.push(value(&mut args, "--workload")?),
            "--injections" => {
                opts.injections = Some(
                    value(&mut args, "--injections")?
                        .parse()
                        .map_err(|e| format!("--injections: {e}"))?,
                );
            }
            "--seed" => {
                opts.seed = Some(
                    value(&mut args, "--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                );
            }
            "--threads" => {
                opts.threads = value(&mut args, "--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--journal" => opts.journal = Some(value(&mut args, "--journal")?.into()),
            "--json" => opts.json = Some(value(&mut args, "--json")?.into()),
            "--csv" => opts.csv = Some(value(&mut args, "--csv")?.into()),
            "--check" => opts.check = true,
            // Ignore flags cargo's bench harness forwards (e.g. --bench).
            s if s.starts_with("--") => {}
            s => opts.preset = s.to_string(),
        }
    }
    Ok(opts)
}

fn run() -> Result<(), String> {
    let opts = parse_opts()?;
    let mut cfg = match opts.preset.as_str() {
        "smoke" => CampaignConfig::smoke(),
        "full" => CampaignConfig::full(),
        s => return Err(format!("unknown preset {s:?} (smoke|full)")),
    };
    if let Some(n) = opts.injections {
        cfg.injections = n;
    }
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    cfg.threads = opts.threads;
    cfg.journal = opts.journal.clone();

    let scale = cfg.scale;
    let mut campaign = FaultCampaign::new(cfg);
    for name in &opts.workloads {
        let spec = workload_by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))?;
        campaign.workload(spec.build_default(scale));
    }
    let report = campaign.run().map_err(|e| e.to_string())?;

    print!("{}", report.render());
    if let Some(path) = &opts.json {
        std::fs::write(path, report.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("report json -> {}", path.display());
    }
    if let Some(path) = &opts.csv {
        std::fs::write(path, report.to_csv()).map_err(|e| format!("{}: {e}", path.display()))?;
        println!("report csv -> {}", path.display());
    }
    if opts.check {
        check(&report)?;
        println!("check: ok");
    }
    Ok(())
}

/// `--check`: the acceptance gates the CI fault-smoke job relies on.
fn check(report: &CampaignReport) -> Result<(), String> {
    if report.records.is_empty() {
        return Err("check: campaign produced no records".into());
    }
    let sdc = report.count(OutcomeClass::Sdc);
    if sdc != 0 {
        return Err(format!("check: {sdc} silent data corruptions"));
    }
    for r in &report.records {
        match r.outcome {
            OutcomeClass::Masked => {}
            OutcomeClass::Recovered => {
                if r.recovered_cycles.is_none() || r.slowdown().is_none() {
                    return Err(format!(
                        "check: {}#{} recovered without a degraded slowdown",
                        r.workload, r.index
                    ));
                }
            }
            // Detected-but-unrecovered is acceptable only when capacity
            // was genuinely exhausted (typed Unplaceable) — a PE failure
            // must otherwise re-place around the avoid-set.
            OutcomeClass::Hang => {
                if r.recovery != RecoveryOutcome::Unplaceable {
                    return Err(format!(
                        "check: {}#{} ({}) hung with recovery {}",
                        r.workload,
                        r.index,
                        r.fault.desc(),
                        r.recovery
                    ));
                }
            }
            OutcomeClass::Sdc => unreachable!("zero-SDC gate already checked"),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("faults: {e}");
            ExitCode::FAILURE
        }
    }
}

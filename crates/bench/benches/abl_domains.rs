//! Ablation (beyond the paper): how much each NUPEA domain contributes.
//! Reports the per-domain load-latency profile and memory-instruction
//! placement histogram on Monaco for representative workloads.

use nupea::experiments::render_table;
use nupea::{Heuristic, MemoryModel, Scale, SystemConfig};
use nupea_kernels::workloads::workload_preset;

fn main() {
    let sys = SystemConfig::monaco_12x12();
    let headers: Vec<String> = (0..4).map(|d| format!("D{d}")).collect();
    let mut place_rows = Vec::new();
    let mut lat_rows = Vec::new();
    for spec in workload_preset("ablation-domains").expect("preset exists") {
        let name = spec.name;
        let w = spec.build_default(Scale::Bench);
        let compiled = sys.compile(&w, Heuristic::CriticalityAware).unwrap();
        let hist = compiled
            .placed
            .domain_histogram(w.kernel.dfg(), &sys.fabric);
        place_rows.push((
            name.to_string(),
            hist.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        ));
        let stats = compiled.simulate(MemoryModel::Nupea).unwrap();
        lat_rows.push((
            name.to_string(),
            stats
                .load_latency_by_domain
                .iter()
                .map(|d| {
                    if d.count == 0 {
                        "-".to_string()
                    } else {
                        format!("{:.1} (n={})", d.mean(), d.count)
                    }
                })
                .collect::<Vec<_>>(),
        ));
    }
    println!(
        "{}",
        render_table(
            "Memory instructions placed per NUPEA domain (effcc)",
            &headers,
            &place_rows
        )
    );
    println!(
        "{}",
        render_table(
            "Mean load latency per domain, system cycles (count)",
            &headers,
            &lat_rows
        )
    );
}

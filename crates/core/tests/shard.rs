//! Integration tests for the shard coordination layer: concurrent
//! in-process workers draining one queue, and sharded fault campaigns
//! merging byte-identical to the single-process run.

use nupea::campaign::{CampaignConfig, FaultCampaign};
use nupea::shard::{self, ShardOptions};
use nupea::Scale;
use nupea_kernels::workloads::workload_by_name;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nupea-shard-it-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn concurrent_workers_drain_the_queue_exactly_once() {
    let dir = scratch("concurrent");
    let coord = shard::coord_path(&dir);
    const SHARDS: u32 = 12;
    let runs = AtomicU32::new(0);
    let stats = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|wi| {
                let coord = &coord;
                let runs = &runs;
                scope.spawn(move || {
                    let opts = ShardOptions {
                        shards: SHARDS,
                        worker: format!("t{wi}"),
                        ttl_ms: 60_000, // generous: no false steals under load
                        heartbeat_ms: 5,
                        ..ShardOptions::default()
                    };
                    shard::run_worker(coord.as_path(), &opts, |ctx| {
                        runs.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        assert!(ctx.checkpoint()?);
                        Ok(())
                    })
                    .unwrap()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });
    // Generous TTLs mean no lease ever expired: every shard ran its body
    // exactly once, and completions across workers sum to the shard count.
    assert_eq!(runs.load(Ordering::SeqCst), SHARDS);
    assert_eq!(stats.iter().map(|s| s.completed).sum::<u32>(), SHARDS);
    assert_eq!(stats.iter().map(|s| s.stolen).sum::<u32>(), 0);
    assert_eq!(stats.iter().map(|s| s.fenced).sum::<u32>(), 0);
    // A late worker finds nothing to do.
    let opts = ShardOptions {
        shards: SHARDS,
        worker: "late".into(),
        ..ShardOptions::default()
    };
    let late = shard::run_worker(&coord, &opts, |_| panic!("queue is drained")).unwrap();
    assert_eq!(late.claimed, 0);
    std::fs::remove_dir_all(&dir).ok();
}

fn small_campaign() -> FaultCampaign {
    let mut cfg = CampaignConfig::smoke();
    cfg.injections = 2;
    cfg.threads = 2;
    let mut campaign = FaultCampaign::new(cfg);
    for name in ["spmv", "spmspv"] {
        campaign.workload(workload_by_name(name).unwrap().build_default(Scale::Test));
    }
    campaign
}

#[test]
fn sharded_campaign_merges_byte_identical_to_single_process() {
    let single = small_campaign().run().unwrap().to_json();

    let dir = scratch("campaign");
    let campaign = small_campaign();
    let opts = ShardOptions {
        shards: 3,
        worker: "w-main".into(),
        ..ShardOptions::default()
    };
    let merged = campaign.run_sharded(&dir, &opts).unwrap();
    assert_eq!(merged.to_json(), single, "merged report == shards=1 report");

    // Resume over the finished run: zero claims, zero simulation, and the
    // merge alone reproduces the same bytes.
    let stats = campaign.run_shard_worker(&dir, &opts).unwrap();
    assert_eq!(stats.claimed, 0, "nothing left to claim on resume");
    let remerged = campaign.merge_sharded(&dir, opts.shards).unwrap();
    assert_eq!(remerged.to_json(), single);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sharded_campaign_degrades_to_single_process_at_one_shard() {
    let dir = scratch("degrade");
    let campaign = small_campaign();
    let report = campaign
        .run_sharded(&dir, &ShardOptions::with_shards(1))
        .unwrap();
    assert_eq!(report.to_json(), small_campaign().run().unwrap().to_json());
    assert!(
        !shard::coord_path(&dir).exists(),
        "shards=1 never creates a coordination journal"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_of_unfinished_shards_reports_incomplete() {
    let dir = scratch("incomplete");
    let campaign = small_campaign();
    let err = campaign.merge_sharded(&dir, 3).unwrap_err();
    assert!(
        matches!(err, nupea::campaign::CampaignError::Incomplete { .. }),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

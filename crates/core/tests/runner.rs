//! Integration tests for the parallel experiment runner: deterministic
//! output across thread counts, compile-artifact cache accounting, failed
//! points, and CSV/JSON round-tripping against the in-memory records.

use nupea::experiments::primary_models;
use nupea::runner::ExperimentRunner;
use nupea::{Fabric, Heuristic, MemoryModel, Scale, SystemConfig};
use nupea_kernels::workloads::workload_by_name;

fn declare_small_sweep(runner: &mut ExperimentRunner) {
    let sys = runner.system(SystemConfig::monaco_12x12());
    for name in ["spmv", "spmspv"] {
        let w = runner.workload(workload_by_name(name).unwrap().build_default(Scale::Test));
        runner.model_sweep(w, sys, &primary_models());
    }
}

#[test]
fn output_is_bit_identical_across_thread_counts() {
    let mut serial = ExperimentRunner::new();
    serial.threads(1);
    declare_small_sweep(&mut serial);
    let a = serial.run();

    let mut parallel = ExperimentRunner::new();
    parallel.threads(4);
    declare_small_sweep(&mut parallel);
    let b = parallel.run();

    // Wall-clock timing differs between runs; everything else — including
    // record order — must be identical.
    let strip = |r: &nupea::RunRecord| {
        let mut r = r.clone();
        r.compile_micros = 0;
        r.sim_micros = 0;
        r
    };
    let a_stripped: Vec<_> = a.records.iter().map(strip).collect();
    let b_stripped: Vec<_> = b.records.iter().map(strip).collect();
    assert_eq!(a_stripped, b_stripped);
    // The default exports exclude timing, so they are byte-identical.
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.pnr_compiles, b.pnr_compiles);
    assert_eq!(a.cache_hits, b.cache_hits);
}

#[test]
fn model_sweep_compiles_once_per_heuristic() {
    let mut runner = ExperimentRunner::new();
    let sys = runner.system(SystemConfig::monaco_12x12());
    let w = runner.workload(workload_by_name("spmv").unwrap().build_default(Scale::Test));
    runner.model_sweep(w, sys, &primary_models());
    let report = runner.run();

    // Four models, two heuristics (effcc for NUPEA, domain-unaware shared
    // by Ideal/UPEA2/NUMA-UPEA2): exactly two PnR invocations.
    assert_eq!(report.records.len(), 4);
    assert_eq!(report.pnr_compiles, 2);
    assert_eq!(report.cache_hits, 2);
    let cached: Vec<bool> = report.records.iter().map(|r| r.compile_cached).collect();
    // Declaration order is Ideal, NUPEA, UPEA2, NUMA-UPEA2: the first
    // domain-unaware point (Ideal) and the effcc point (NUPEA) compile;
    // UPEA2 and NUMA-UPEA2 hit the cache.
    assert_eq!(cached, vec![false, false, true, true]);
    for r in &report.records {
        assert!(r.error.is_none(), "{}: {:?}", r.model.label(), r.error);
        assert!(r.cycles > 0);
    }
    // Cached points share the artifact, so they report the same compile
    // wall-clock as the point that paid for it.
    assert_eq!(
        report.records[0].compile_micros,
        report.records[2].compile_micros
    );
}

#[test]
fn failed_points_produce_error_records_and_do_not_abort() {
    let mut runner = ExperimentRunner::new();
    // An 8-PE fabric: far too small for spmv, so PnR must fail...
    let tiny = runner.system(
        SystemConfig::builder()
            .fabric(Fabric::monaco(2, 4, 3).expect("valid tiny fabric"))
            .build(),
    );
    // ...while the same workload still succeeds on the full fabric.
    let full = runner.system(SystemConfig::monaco_12x12());
    let w = runner.workload(workload_by_name("spmv").unwrap().build_default(Scale::Test));
    runner.point(w, tiny, Heuristic::CriticalityAware, MemoryModel::Nupea);
    runner.point(w, full, Heuristic::CriticalityAware, MemoryModel::Nupea);
    let report = runner.run();

    assert_eq!(report.records.len(), 2);
    let failed = &report.records[0];
    assert!(failed.error.as_deref().unwrap_or("").contains("pnr"));
    assert_eq!(failed.cycles, 0);
    let ok = &report.records[1];
    assert!(ok.error.is_none());
    assert!(ok.cycles > 0);
    // The two points use different systems, so no cache sharing.
    assert_eq!(report.pnr_compiles, 2);
    assert_eq!(report.cache_hits, 0);
}

#[test]
fn csv_round_trips_the_records() {
    let mut runner = ExperimentRunner::new();
    declare_small_sweep(&mut runner);
    let report = runner.run();
    let csv = report.to_csv();
    let mut lines = csv.lines();
    let header: Vec<&str> = lines.next().expect("header").split(',').collect();
    let col = |name: &str| {
        header
            .iter()
            .position(|h| *h == name)
            .unwrap_or_else(|| panic!("column {name}"))
    };
    let rows: Vec<Vec<&str>> = lines.map(|l| l.split(',').collect()).collect();
    assert_eq!(rows.len(), report.records.len());
    for (row, rec) in rows.iter().zip(&report.records) {
        assert_eq!(row[col("workload")], rec.workload);
        assert_eq!(row[col("model")], rec.model.label());
        assert_eq!(row[col("heuristic")], rec.heuristic.to_string());
        assert_eq!(row[col("cycles")], rec.cycles.to_string());
        assert_eq!(row[col("divider")], rec.divider.to_string());
        assert_eq!(row[col("compile_cached")], rec.compile_cached.to_string());
    }
}

#[test]
fn json_export_lists_every_point_in_order() {
    let mut runner = ExperimentRunner::new();
    declare_small_sweep(&mut runner);
    let report = runner.run();
    let json = report.to_json();
    // One object per record, ordered as declared.
    let mut cursor = 0;
    for rec in &report.records {
        let needle = format!(
            "\"workload\":\"{}\",\"par\":{},\"heuristic\":\"{}\",\"model\":\"{}\",\"cycles\":{}",
            rec.workload,
            rec.par,
            rec.heuristic,
            rec.model.label(),
            rec.cycles
        );
        let pos = json[cursor..].find(&needle).unwrap_or_else(|| {
            panic!(
                "record for {}/{} missing or out of order",
                rec.workload,
                rec.model.label()
            )
        });
        cursor += pos + needle.len();
    }
    assert!(
        !json.contains("micros"),
        "default export must stay deterministic"
    );
}

/// A point that panics mid-simulation must not take the sweep down: it
/// becomes one structured error record (kind `panicked`, payload message
/// preserved) and every other point still completes.
#[test]
fn panicking_point_is_isolated_to_one_error_record() {
    use nupea_kernels::workloads::Check;

    // A workload whose post-run validation slices far past the end of
    // simulated memory: `SimMemory::slice` panics, exercising the panic
    // path rather than a typed error path.
    let mut bomb = workload_by_name("spmv").unwrap().build_default(Scale::Test);
    bomb.checks = vec![Check::Mem {
        label: "out-of-range reference slice",
        base: i64::MAX / 2,
        expected: vec![0],
    }];

    let mut runner = ExperimentRunner::new();
    let sys = runner.system(SystemConfig::monaco_12x12());
    let b = runner.workload(bomb);
    let ok = runner.workload(workload_by_name("spmv").unwrap().build_default(Scale::Test));
    runner.point(b, sys, Heuristic::CriticalityAware, MemoryModel::Nupea);
    runner.model_sweep(ok, sys, &primary_models());
    let report = runner.run();

    assert_eq!(report.records.len(), 5);
    let failed = &report.records[0];
    assert_eq!(failed.error_kind, Some(nupea::RunErrorKind::Panic));
    assert!(
        failed.error.as_deref().unwrap_or("").contains("panicked"),
        "error is {:?}",
        failed.error
    );
    assert_eq!(failed.cycles, 0);
    for r in &report.records[1..] {
        assert!(r.error.is_none(), "{}: {:?}", r.model.label(), r.error);
        assert!(r.cycles > 0);
    }
    // The structured kind also lands in both export formats.
    assert!(report.to_json().contains("\"error_kind\":\"panicked\""));
    assert!(report.to_csv().contains(",panicked,"));
}

/// A per-point cycle budget that is too small fails the first attempt,
/// and the one-shot retry at `budget * retry_factor` rescues the point,
/// marking the record `retried`. With retry disabled the same budget is a
/// hard `cycle-limit` failure.
#[test]
fn cycle_budget_retry_rescues_slow_points() {
    let declare = |runner: &mut ExperimentRunner| {
        let sys = runner.system(SystemConfig::monaco_12x12());
        let w = runner.workload(workload_by_name("spmv").unwrap().build_default(Scale::Test));
        runner.point(w, sys, Heuristic::CriticalityAware, MemoryModel::Nupea);
    };

    let mut with_retry = ExperimentRunner::new();
    with_retry.cycle_budget(100).retry_factor(1_000_000);
    declare(&mut with_retry);
    let report = with_retry.run();
    let r = &report.records[0];
    assert!(r.error.is_none(), "{:?}", r.error);
    assert!(r.retried, "the raised cap must be recorded");
    assert!(r.cycles > 100, "spmv cannot fit in 100 cycles");

    let mut no_retry = ExperimentRunner::new();
    no_retry.cycle_budget(100).retry_factor(1);
    declare(&mut no_retry);
    let report = no_retry.run();
    let r = &report.records[0];
    assert_eq!(r.error_kind, Some(nupea::RunErrorKind::CycleLimit));
    assert!(!r.retried);

    // An ample budget never retries.
    let mut ample = ExperimentRunner::new();
    ample.cycle_budget(2_000_000_000);
    declare(&mut ample);
    let r = &ample.run().records[0];
    assert!(r.error.is_none());
    assert!(!r.retried);
}

/// Degenerate system configurations are rejected up front with a typed
/// `invalid-config` record instead of wedging or panicking deep in the
/// engine.
#[test]
fn invalid_config_becomes_typed_error_record() {
    let sys = SystemConfig::builder().fifo_depth(0).build();
    assert!(matches!(
        sys.validate(),
        Err(nupea::PipelineError::InvalidConfig(
            nupea::ConfigError::ZeroFifoDepth
        ))
    ));

    let mut runner = ExperimentRunner::new();
    let bad = runner.system(sys);
    let w = runner.workload(workload_by_name("spmv").unwrap().build_default(Scale::Test));
    runner.point(w, bad, Heuristic::CriticalityAware, MemoryModel::Nupea);
    let report = runner.run();

    let r = &report.records[0];
    assert_eq!(r.error_kind, Some(nupea::RunErrorKind::InvalidConfig));
    assert!(
        r.error.as_deref().unwrap_or("").contains("fifo"),
        "error is {:?}",
        r.error
    );
}

#[test]
fn empty_runner_yields_empty_report() {
    let runner = ExperimentRunner::new();
    let report = runner.run();
    assert!(report.records.is_empty());
    assert_eq!(report.pnr_compiles, 0);
    assert_eq!(report.cache_hits, 0);
    assert_eq!(report.to_csv().lines().count(), 1, "header only");
}

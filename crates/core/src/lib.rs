//! # nupea — the complete NUPEA compile-and-simulate pipeline
//!
//! This crate ties the reproduction together (see DESIGN.md at the repo
//! root):
//!
//! * build a workload ([`nupea_kernels`]) — kernel + inputs + validator;
//! * compile it onto a fabric ([`nupea_pnr`]) with one of the three
//!   placement heuristics of Fig. 12;
//! * simulate cycle-accurately ([`nupea_sim`]) under any memory model of §6
//!   (NUPEA / UPEA-n / NUMA-UPEA-n / Ideal);
//! * validate results against the reference implementation.
//!
//! The [`runner`] module holds the parallel experiment runner the benchmark
//! harness uses to regenerate every figure of the paper; [`experiments`]
//! holds the shared model/heuristic selections and table rendering.
//!
//! # Example
//!
//! ```
//! use nupea::SystemConfig;
//! use nupea_kernels::workloads::{sparse, Scale};
//! use nupea_pnr::Heuristic;
//! use nupea_sim::MemoryModel;
//!
//! let workload = sparse::spmv(Scale::Test, 1);
//! let sys = SystemConfig::builder().seed(7).build();
//! let compiled = sys.compile(&workload, Heuristic::CriticalityAware)?;
//! let stats = compiled.simulate(MemoryModel::Nupea)?;
//! assert!(stats.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod campaign;
pub mod experiments;
pub mod jsonl;
pub mod runner;
pub mod shard;

pub use cache::{config_hash, config_key, ArtifactCache, CacheStats};
pub use campaign::{
    CampaignConfig, CampaignReport, FaultCampaign, InjectionRecord, OutcomeClass, RecoveryOutcome,
};
pub use nupea_fabric::{Fabric, PeId, TopologyKind};
pub use nupea_kernels::workloads::{
    all_workloads, table1_workloads, wave2_workloads, workload_preset, Scale, ValidationError,
    Workload, WorkloadSpec, PRESET_NAMES,
};
pub use nupea_pnr::{Heuristic, Placed, PnrError};
pub use nupea_sim::{
    ConfigError, EnergyBreakdown, EnergyParams, FaultClasses, FaultConfig, FaultContext, FaultKind,
    FaultPlan, MemoryModel, PerturbConfig, RunStats, SimError, SimMemory, StallReport, TraceBuffer,
    TraceConfig,
};
pub use runner::{
    ExperimentRunner, RetryPolicy, RunErrorKind, RunRecord, RunnerReport, SystemHandle,
    WorkloadHandle,
};
pub use shard::{Coordinator, Lease, ShardCtx, ShardOptions, ShardState, WorkerStats};

use nupea_pnr::{pnr, PlaceConfig, PnrConfig};
use nupea_sim::{Engine, MemParams, SimConfig};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// System-level configuration: the fabric plus simulator knobs.
///
/// Construct via [`SystemConfig::monaco_12x12`], [`SystemConfig::builder`],
/// or [`SystemConfig::with_fabric`]; individual knobs stay publicly
/// mutable for sweep-style experiments.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SystemConfig {
    /// The fabric (topology, domains, tracks, timing calibration).
    pub fabric: Fabric,
    /// Memory geometry and latencies.
    pub mem: MemParams,
    /// Token FIFO depth per operand.
    pub fifo_depth: usize,
    /// Max outstanding requests per load-store instruction.
    pub max_outstanding: usize,
    /// PnR seed.
    pub seed: u64,
    /// Annealing effort (moves ≈ effort × cells).
    pub effort: u32,
    /// Fixed fabric clock divider for model comparisons (§6: "we set
    /// Monaco's fabric clock divider to 2"). `None` uses the PnR-derived
    /// divider (the right choice for the topology-scaling studies of
    /// Figs. 16–17).
    pub divider_override: Option<u64>,
    /// Latency-perturbation fuzzing (off by default). When enabled,
    /// seeded random extra latency is injected into NoC deliveries and
    /// memory completions; results must not change, only cycle counts.
    pub perturb: PerturbConfig,
    /// Event tracing (off by default). When enabled, the engine records
    /// per-event history into a ring buffer retrievable as a
    /// [`TraceBuffer`] / Chrome trace JSON; timing is unaffected either
    /// way. Per-run tracing is requested via [`SimOptions::trace`].
    pub trace: TraceConfig,
    /// Fault injection (off by default). When armed, exactly one
    /// [`FaultKind`] is injected into every simulation of this system;
    /// campaigns sample and classify these via [`FaultCampaign`]. See
    /// DESIGN.md §9.
    pub fault: FaultConfig,
    /// PEs the placer must not map anything onto (failed resources during
    /// degraded-mode recovery). Empty by default.
    pub avoid: Vec<PeId>,
    /// Watchdog quiescence window in system cycles (0 disables): a run
    /// with no firing, delivery, or completion for this long aborts as
    /// [`SimError::Stalled`]. Fault campaigns shrink it so injected hangs
    /// are detected quickly instead of spinning to the cycle cap.
    pub stall_window: u64,
}

impl SystemConfig {
    /// The evaluated Monaco configuration: 12×12 fabric, 3 NoC tracks,
    /// 8 MB memory with a 256 KB shared cache banked 32× (§4, §6).
    pub fn monaco_12x12() -> Self {
        SystemConfig::with_fabric(
            Fabric::monaco(12, 12, Fabric::DEFAULT_TRACKS).expect("12x12 monaco is valid"),
        )
    }

    /// A configuration around an arbitrary fabric.
    pub fn with_fabric(fabric: Fabric) -> Self {
        SystemConfig {
            fabric,
            mem: MemParams::default(),
            // Shallow PE buffering, as on an energy-minimal SDA: two-deep
            // LS request queues make load latency a first-order effect
            // (calibrated against the paper's Fig. 11/14 shapes).
            fifo_depth: 4,
            max_outstanding: 2,
            seed: 0xC0FFEE,
            effort: 200,
            divider_override: Some(2),
            perturb: PerturbConfig::OFF,
            trace: TraceConfig::OFF,
            fault: FaultConfig::OFF,
            avoid: Vec::new(),
            stall_window: 1_000_000,
        }
    }

    /// A chainable builder starting from the Monaco 12×12 defaults.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder {
            cfg: SystemConfig::monaco_12x12(),
        }
    }

    /// Compile a workload onto this system's fabric with a placement
    /// heuristic. PnR quality and routability are seed-sensitive, so this
    /// runs a few seeds and keeps the best-timing result (smallest divider,
    /// then shortest max path), as multi-seed production flows do.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Pnr`] when the kernel does not fit or
    /// cannot be routed — the auto-parallelizer's stop signal.
    pub fn compile(
        &self,
        workload: &Workload,
        heuristic: Heuristic,
    ) -> Result<Compiled, PipelineError> {
        compile_impl(
            &Arc::new(workload.clone()),
            &Arc::new(self.clone()),
            heuristic,
        )
    }

    /// Reject degenerate configurations (`fifo_depth == 0`,
    /// `max_outstanding == 0`, `divider_override == Some(0)`, bad memory
    /// geometry) with a typed error instead of a deep-in-the-engine panic.
    /// Called automatically at the start of [`SystemConfig::compile`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] naming the first bad knob.
    pub fn validate(&self) -> Result<(), PipelineError> {
        if self.fifo_depth == 0 {
            return Err(ConfigError::ZeroFifoDepth.into());
        }
        if self.max_outstanding == 0 {
            return Err(ConfigError::ZeroMaxOutstanding.into());
        }
        if self.divider_override == Some(0) {
            return Err(ConfigError::ZeroDivider.into());
        }
        if self.fabric.num_domains() == 0 {
            return Err(ConfigError::ZeroDomains.into());
        }
        self.mem.validate()?;
        Ok(())
    }
}

/// Chainable constructor for [`SystemConfig`], seeded with the Monaco
/// 12×12 defaults.
///
/// ```
/// use nupea::SystemConfig;
/// let sys = SystemConfig::builder().fifo_depth(8).seed(42).build();
/// assert_eq!(sys.fifo_depth, 8);
/// ```
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    /// Replace the fabric (topology, domains, tracks).
    #[must_use]
    pub fn fabric(mut self, fabric: Fabric) -> Self {
        self.cfg.fabric = fabric;
        self
    }

    /// Replace the memory geometry and latencies.
    #[must_use]
    pub fn mem(mut self, mem: MemParams) -> Self {
        self.cfg.mem = mem;
        self
    }

    /// Token FIFO depth per operand.
    #[must_use]
    pub fn fifo_depth(mut self, depth: usize) -> Self {
        self.cfg.fifo_depth = depth;
        self
    }

    /// Max outstanding requests per load-store instruction.
    #[must_use]
    pub fn max_outstanding(mut self, n: usize) -> Self {
        self.cfg.max_outstanding = n;
        self
    }

    /// PnR seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Annealing effort (moves ≈ effort × cells).
    #[must_use]
    pub fn effort(mut self, effort: u32) -> Self {
        self.cfg.effort = effort;
        self
    }

    /// Fix the fabric clock divider (`None` = PnR-derived).
    #[must_use]
    pub fn divider_override(mut self, divider: Option<u64>) -> Self {
        self.cfg.divider_override = divider;
        self
    }

    /// Enable latency-perturbation fuzzing (see [`PerturbConfig`]).
    #[must_use]
    pub fn perturb(mut self, perturb: PerturbConfig) -> Self {
        self.cfg.perturb = perturb;
        self
    }

    /// Configure event tracing (see [`TraceConfig`]).
    #[must_use]
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.cfg.trace = trace;
        self
    }

    /// Arm fault injection (see [`FaultConfig`]).
    #[must_use]
    pub fn fault(mut self, fault: FaultConfig) -> Self {
        self.cfg.fault = fault;
        self
    }

    /// PEs the placer must avoid (degraded-mode recovery).
    #[must_use]
    pub fn avoid(mut self, avoid: Vec<PeId>) -> Self {
        self.cfg.avoid = avoid;
        self
    }

    /// Watchdog quiescence window in system cycles (0 disables).
    #[must_use]
    pub fn stall_window(mut self, window: u64) -> Self {
        self.cfg.stall_window = window;
        self
    }

    /// Finish and return the configuration.
    #[must_use]
    pub fn build(self) -> SystemConfig {
        self.cfg
    }
}

/// Per-run simulation options, consumed by [`Compiled::simulate_with`] —
/// the single simulation entry point. Everything that used to be a
/// separate `simulate_*` method (tracing, cycle budgets, raw unvalidated
/// runs, sim-knob overrides) or a [`SystemConfig`] toggle flipped per run
/// (perturbation, fault arming, stall window) is one chainable struct:
///
/// ```
/// use nupea::{MemoryModel, Scale, SimOptions, SystemConfig};
/// use nupea_kernels::workloads::sparse;
/// use nupea_pnr::Heuristic;
///
/// let w = sparse::spmv(Scale::Test, 1);
/// let sys = SystemConfig::monaco_12x12();
/// let compiled = sys.compile(&w, Heuristic::CriticalityAware)?;
/// let out = compiled.simulate_with(
///     &SimOptions::new(MemoryModel::Nupea).trace().keep_memory(),
/// )?;
/// assert!(out.stats.cycles > 0);
/// assert!(out.trace.is_some() && out.memory.is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SimOptions {
    /// Memory model to simulate under (§6: NUPEA / UPEA-n / NUMA-UPEA-n /
    /// Ideal).
    pub model: MemoryModel,
    /// Take every sim-time knob from a different [`SystemConfig`] instead
    /// of the one the artifact was compiled for (the placement is reused
    /// as-is; the fabric must match the one compiled against). `None`
    /// uses the compiled-for system.
    pub system: Option<SystemConfig>,
    /// Cycle budget replacing the default runaway cap
    /// ([`DEFAULT_MAX_CYCLES`]). Used by the fault-tolerant runner to
    /// bound wall-clock per sweep point.
    pub max_cycles: Option<u64>,
    /// Latency-perturbation override for this run (`None` keeps the
    /// system's setting).
    pub perturb: Option<PerturbConfig>,
    /// Fault-injection override for this run (`None` keeps the system's
    /// setting). The campaign primitive: arm exactly one fault without
    /// cloning a whole [`SystemConfig`].
    pub fault: Option<FaultConfig>,
    /// Watchdog quiescence-window override in system cycles (`None`
    /// keeps the system's setting; `Some(0)` disables the watchdog).
    pub stall_window: Option<u64>,
    /// Force event tracing on and return the recorded [`TraceBuffer`] in
    /// [`SimOutcome::trace`]. The system's [`SystemConfig::trace`]
    /// capacity is honoured when tracing was already enabled there;
    /// otherwise the default capacity of [`TraceConfig::on`] is used.
    /// Timing is identical to an untraced run.
    pub trace: bool,
    /// Validate results against the workload's reference implementation
    /// (default `true`). Fault campaigns turn this off: an injected run's
    /// outputs are compared differentially against a golden fault-free
    /// run, not against the reference — a mismatch is an SDC, not a
    /// validation error.
    pub validate: bool,
    /// Return the final memory image in [`SimOutcome::memory`] (for
    /// differential comparison against a golden run).
    pub keep_memory: bool,
}

impl SimOptions {
    /// Defaults for one validated, untraced run under `model` — exactly
    /// what [`Compiled::simulate`] does.
    #[must_use]
    pub fn new(model: MemoryModel) -> Self {
        SimOptions {
            model,
            system: None,
            max_cycles: None,
            perturb: None,
            fault: None,
            stall_window: None,
            trace: false,
            validate: true,
            keep_memory: false,
        }
    }

    /// Take sim-time knobs from `sys` instead of the compiled-for system.
    #[must_use]
    pub fn system(mut self, sys: SystemConfig) -> Self {
        self.system = Some(sys);
        self
    }

    /// Replace the default runaway cap with an explicit cycle budget.
    #[must_use]
    pub fn max_cycles(mut self, cap: u64) -> Self {
        self.max_cycles = Some(cap);
        self
    }

    /// Enable latency-perturbation fuzzing for this run.
    #[must_use]
    pub fn perturb(mut self, perturb: PerturbConfig) -> Self {
        self.perturb = Some(perturb);
        self
    }

    /// Arm fault injection for this run.
    #[must_use]
    pub fn fault(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Override the watchdog quiescence window for this run.
    #[must_use]
    pub fn stall_window(mut self, window: u64) -> Self {
        self.stall_window = Some(window);
        self
    }

    /// Record an event trace and return it in [`SimOutcome::trace`].
    #[must_use]
    pub fn trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Skip reference validation (differential/fault-campaign runs).
    #[must_use]
    pub fn no_validate(mut self) -> Self {
        self.validate = false;
        self
    }

    /// Return the final memory image in [`SimOutcome::memory`].
    #[must_use]
    pub fn keep_memory(mut self) -> Self {
        self.keep_memory = true;
        self
    }
}

/// Everything one simulation run produced. Optional artifacts are present
/// exactly when the corresponding [`SimOptions`] flag requested them.
#[derive(Debug)]
#[non_exhaustive]
pub struct SimOutcome {
    /// Cycle counts, sink streams, energy, and every other aggregate.
    pub stats: RunStats,
    /// The recorded event trace, when [`SimOptions::trace`] was set.
    pub trace: Option<TraceBuffer>,
    /// The final memory image, when [`SimOptions::keep_memory`] was set.
    pub memory: Option<SimMemory>,
}

/// A compiled workload: placement, routing, timing, plus shared handles to
/// the workload and system it was compiled for, so it can be simulated
/// directly via [`Compiled::simulate`] / [`Compiled::simulate_with`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Compiled {
    /// PnR output.
    pub placed: Placed,
    /// Heuristic used.
    pub heuristic: Heuristic,
    workload: Arc<Workload>,
    sys: Arc<SystemConfig>,
    /// Initial memory image, generated lazily once per artifact and
    /// copied per run (shared across clones of the artifact). The
    /// generator is deterministic, and regenerating the multi-megabyte
    /// input image dominated short simulations.
    init_mem: Arc<OnceLock<SimMemory>>,
    /// Recycled run buffers: a fresh multi-megabyte allocation is
    /// page-fault-bound, so finished (unkept) memory images are pooled
    /// and re-imaged with a plain memcpy on the next run.
    scratch: Arc<Mutex<Vec<SimMemory>>>,
}

impl Compiled {
    /// The workload this artifact was compiled from.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The system configuration this artifact was compiled for.
    pub fn system(&self) -> &SystemConfig {
        &self.sys
    }

    /// The cached initial memory image (built on first use).
    fn init_mem(&self) -> &SimMemory {
        self.init_mem.get_or_init(|| self.workload.fresh_mem())
    }

    /// Simulate under a memory model, validating results against the
    /// workload's reference implementation. The compile is reused: calling
    /// this for several models performs PnR exactly once. Thin default
    /// over [`Compiled::simulate_with`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Sim`] on simulator faults and
    /// [`PipelineError::Validation`] when outputs mismatch the reference.
    pub fn simulate(&self, model: MemoryModel) -> Result<RunStats, PipelineError> {
        self.simulate_with(&SimOptions::new(model)).map(|o| o.stats)
    }

    /// Simulate one run under explicit [`SimOptions`] — the single
    /// simulation entry point; every knob (model, tracing, budgets,
    /// perturbation, fault arming, validation, memory capture) rides in
    /// `opts`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Sim`] on simulator faults (including
    /// [`SimError::CycleLimit`] when a [`SimOptions::max_cycles`] budget
    /// is exhausted), [`PipelineError::Validation`] when validation is on
    /// and outputs mismatch the reference, and
    /// [`PipelineError::InvalidConfig`] for degenerate knobs.
    pub fn simulate_with(&self, opts: &SimOptions) -> Result<SimOutcome, PipelineError> {
        let sys = opts.system.as_ref().unwrap_or(&self.sys);
        let mut cfg = sim_config(sys, opts.model, self.placed.timing.divider);
        if let Some(cap) = opts.max_cycles {
            cfg.max_cycles = cap;
        }
        if let Some(perturb) = opts.perturb {
            cfg.perturb = perturb;
        }
        if let Some(fault) = opts.fault {
            cfg.fault = fault;
        }
        if let Some(window) = opts.stall_window {
            cfg.stall_window = window;
        }
        if opts.trace && !cfg.trace.enabled {
            cfg.trace = TraceConfig::on();
        }
        cfg.validate()?;
        let init = self.init_mem();
        let mut mem = match self.scratch.lock().ok().and_then(|mut pool| pool.pop()) {
            Some(mut recycled) if recycled.capacity() == init.capacity() => {
                recycled.copy_from(init);
                recycled
            }
            _ => init.clone(),
        };
        let mut engine = Engine::new(
            self.workload.kernel.dfg(),
            &sys.fabric,
            &self.placed.pe_of,
            cfg,
        );
        for (pid, v) in self.workload.kernel.bindings(&[]) {
            engine.bind(pid, v);
        }
        let stats = engine.run(&mut mem)?;
        let trace = if opts.trace {
            engine.take_trace()
        } else {
            None
        };
        if opts.validate {
            self.workload.validate(&mem, &stats.sinks)?;
        }
        let memory = if opts.keep_memory {
            Some(mem)
        } else {
            if let Ok(mut pool) = self.scratch.lock() {
                if pool.len() < 4 {
                    pool.push(mem);
                }
            }
            None
        };
        Ok(SimOutcome {
            stats,
            trace,
            memory,
        })
    }

    /// Serialize to a bitstream (see [`nupea_pnr::bitstream`]) for caching
    /// or inspection.
    pub fn bitstream(&self) -> String {
        nupea_pnr::write_bitstream(self.workload.kernel.dfg(), &self.sys.fabric, &self.placed)
    }
}

/// Errors from the end-to-end pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// Place-and-route failed (capacity or congestion).
    Pnr(PnrError),
    /// Simulation failed.
    Sim(SimError),
    /// The run finished but outputs did not match the reference.
    Validation(ValidationError),
    /// A bitstream could not be parsed or does not match the workload.
    Bitstream {
        /// What went wrong.
        reason: String,
    },
    /// A degenerate configuration was rejected before reaching the engine.
    InvalidConfig(ConfigError),
    /// A compile or simulate step panicked; the payload message is
    /// preserved. Produced by the fault-tolerant runner, which converts
    /// panics into error records instead of aborting the sweep.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The artifact cache's circuit breaker fast-failed this config:
    /// it has failed to compile repeatedly, so the request was refused
    /// without re-running place-and-route. The serve frontend maps this
    /// to a typed `422`. See [`cache`](crate::cache).
    FastFailed {
        /// Consecutive compile failures recorded for this config.
        failures: u32,
        /// The most recent underlying compile error, as text.
        message: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Pnr(e) => write!(f, "pnr: {e}"),
            PipelineError::Sim(e) => write!(f, "sim: {e}"),
            PipelineError::Validation(e) => write!(f, "validation: {e}"),
            PipelineError::Bitstream { reason } => write!(f, "bitstream: {reason}"),
            PipelineError::InvalidConfig(e) => write!(f, "invalid config: {e}"),
            PipelineError::Panicked { message } => write!(f, "panicked: {message}"),
            PipelineError::FastFailed { failures, message } => write!(
                f,
                "fast-failed after {failures} consecutive compile failures (last: {message})"
            ),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Pnr(e) => Some(e),
            PipelineError::Sim(e) => Some(e),
            PipelineError::Validation(e) => Some(e),
            PipelineError::InvalidConfig(e) => Some(e),
            PipelineError::Bitstream { .. }
            | PipelineError::Panicked { .. }
            | PipelineError::FastFailed { .. } => None,
        }
    }
}

impl From<ConfigError> for PipelineError {
    fn from(e: ConfigError) -> Self {
        PipelineError::InvalidConfig(e)
    }
}

impl From<PnrError> for PipelineError {
    fn from(e: PnrError) -> Self {
        PipelineError::Pnr(e)
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        PipelineError::Sim(e)
    }
}

impl From<ValidationError> for PipelineError {
    fn from(e: ValidationError) -> Self {
        PipelineError::Validation(e)
    }
}

/// Shared compile path: multi-seed best-of PnR over shared handles, so the
/// runner can compile once and fan the artifact out across memory models
/// without cloning workload memory images.
fn compile_impl(
    workload: &Arc<Workload>,
    sys: &Arc<SystemConfig>,
    heuristic: Heuristic,
) -> Result<Compiled, PipelineError> {
    sys.validate()?;
    let mut best: Option<Placed> = None;
    let mut last_err = None;
    for attempt in 0..3u64 {
        let cfg = PnrConfig {
            place: PlaceConfig {
                heuristic,
                seed: sys.seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9)),
                effort: sys.effort,
                avoid: sys.avoid.clone(),
            },
        };
        match pnr(workload.kernel.dfg(), &sys.fabric, &cfg) {
            Ok(placed) => {
                let better = best.as_ref().is_none_or(|b| {
                    (placed.timing.divider, placed.timing.max_hops)
                        < (b.timing.divider, b.timing.max_hops)
                });
                if better {
                    best = Some(placed);
                }
            }
            Err(e @ PnrError::Unplaceable(_)) => return Err(e.into()),
            Err(e) => last_err = Some(e),
        }
    }
    match best {
        Some(placed) => Ok(Compiled {
            placed,
            heuristic,
            workload: Arc::clone(workload),
            sys: Arc::clone(sys),
            init_mem: Arc::new(OnceLock::new()),
            scratch: Arc::new(Mutex::new(Vec::new())),
        }),
        None => Err(last_err.expect("at least one attempt ran").into()),
    }
}

/// Default runaway guard for pipeline simulations, in system cycles. The
/// runner's per-point cycle budget (when set) replaces this cap.
pub const DEFAULT_MAX_CYCLES: u64 = 2_000_000_000;

/// Build the cycle-accurate simulator configuration for one run.
fn sim_config(sys: &SystemConfig, model: MemoryModel, divider_src: u32) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.model = model;
    cfg.mem = sys.mem;
    cfg.divider = sys.divider_override.unwrap_or(u64::from(divider_src));
    cfg.fifo_depth = sys.fifo_depth;
    cfg.max_outstanding = sys.max_outstanding;
    cfg.numa_seed = sys.seed ^ 0x1234;
    cfg.max_cycles = DEFAULT_MAX_CYCLES;
    cfg.stall_window = sys.stall_window;
    cfg.perturb = sys.perturb;
    cfg.trace = sys.trace;
    cfg.fault = sys.fault;
    cfg
}

/// Shared simulate path: engine setup, run, reference validation.
/// `max_cycles` overrides the default runaway cap when set; `want_trace`
/// forces tracing on (keeping the configured capacity when the system
/// already enabled it) and returns the recorded buffer.
#[allow(clippy::too_many_arguments)] // private plumbing behind thin facades
fn simulate_impl(
    workload: &Workload,
    sys: &SystemConfig,
    pe_of: &[PeId],
    divider_src: u32,
    model: MemoryModel,
    max_cycles: Option<u64>,
    want_trace: bool,
) -> Result<(RunStats, Option<TraceBuffer>), PipelineError> {
    let mut cfg = sim_config(sys, model, divider_src);
    if let Some(cap) = max_cycles {
        cfg.max_cycles = cap;
    }
    if want_trace && !cfg.trace.enabled {
        cfg.trace = TraceConfig::on();
    }
    cfg.validate()?;
    let mut mem = workload.fresh_mem();
    let mut engine = Engine::new(workload.kernel.dfg(), &sys.fabric, pe_of, cfg);
    for (pid, v) in workload.kernel.bindings(&[]) {
        engine.bind(pid, v);
    }
    let stats = engine.run(&mut mem)?;
    let trace = if want_trace {
        engine.take_trace()
    } else {
        None
    };
    workload.validate(&mem, &stats.sinks)?;
    Ok((stats, trace))
}

/// Results of a multi-region (staged) run.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct StagedRunStats {
    /// Total execution time, including reconfiguration between regions.
    pub total_cycles: u64,
    /// Per-stage run statistics.
    pub per_stage: Vec<RunStats>,
    /// Cycles spent loading bitstreams (reconfig × number of stages).
    pub reconfig_cycles: u64,
}

/// Compile every region of a staged workload.
///
/// # Errors
///
/// Returns the first region's PnR failure.
pub fn compile_staged(
    staged: &nupea_kernels::workloads::staged::StagedWorkload,
    sys: &SystemConfig,
    heuristic: Heuristic,
) -> Result<Vec<Compiled>, PipelineError> {
    let sys = Arc::new(sys.clone());
    staged
        .stages
        .iter()
        .map(|stage| {
            let shim = Arc::new(Workload {
                name: staged.name,
                kernel: stage.clone(),
                mem: staged.mem.clone(),
                checks: vec![],
                par: staged.par,
            });
            compile_impl(&shim, &sys, heuristic)
        })
        .collect()
}

/// Execute a staged workload: regions run sequentially over shared memory,
/// separated by a bitstream-reconfiguration delay (§5: effcc "splits
/// programs into regions that fit on Monaco's fabric"). Results are
/// validated against the reference at the end.
///
/// # Errors
///
/// Simulation or validation failures from any region.
pub fn simulate_staged(
    staged: &nupea_kernels::workloads::staged::StagedWorkload,
    compiled: &[Compiled],
    sys: &SystemConfig,
    model: MemoryModel,
    reconfig_cycles: u64,
) -> Result<StagedRunStats, PipelineError> {
    assert_eq!(
        compiled.len(),
        staged.stages.len(),
        "one artifact per region"
    );
    let mut mem = staged.fresh_mem();
    let mut per_stage = Vec::with_capacity(staged.stages.len());
    let mut total = 0u64;
    for (stage, art) in staged.stages.iter().zip(compiled) {
        let cfg = sim_config(sys, model, art.placed.timing.divider);
        let mut engine = Engine::new(stage.dfg(), &sys.fabric, &art.placed.pe_of, cfg);
        for (pid, v) in stage.bindings(&[]) {
            engine.bind(pid, v);
        }
        let stats = engine.run(&mut mem)?;
        total += stats.cycles + reconfig_cycles;
        per_stage.push(stats);
    }
    staged.validate(&mem)?;
    Ok(StagedRunStats {
        total_cycles: total,
        reconfig_cycles: reconfig_cycles * staged.stages.len() as u64,
        per_stage,
    })
}

/// Simulate a workload from a previously saved bitstream, skipping PnR.
///
/// # Errors
///
/// Returns [`PipelineError::Bitstream`] if the bitstream does not parse or
/// does not match the workload/fabric, plus the usual simulation and
/// validation errors.
pub fn simulate_bitstream(
    workload: &Workload,
    sys: &SystemConfig,
    bitstream_text: &str,
    model: MemoryModel,
) -> Result<RunStats, PipelineError> {
    let bs = nupea_pnr::parse_bitstream(bitstream_text).map_err(|e| PipelineError::Bitstream {
        reason: e.to_string(),
    })?;
    if !bs.matches(workload.kernel.dfg(), &sys.fabric) {
        return Err(PipelineError::Bitstream {
            reason: "bitstream does not match this workload/fabric".into(),
        });
    }
    simulate_impl(workload, sys, &bs.pe_of, bs.divider, model, None, false).map(|(stats, _)| stats)
}

/// Auto-parallelization (§5): grow the parallelism degree until PnR fails,
/// then pick the degree "that achieved optimal performance" (§6) by
/// simulating every successful candidate under the Monaco memory model.
/// More parallelism is not always faster: a wider design can route only
/// with long detours, inflating the clock divider — exactly the effect the
/// topology-scaling study measures.
///
/// # Errors
///
/// Returns the PnR error if even `par = 1` does not fit.
pub fn auto_parallelize(
    spec: &WorkloadSpec,
    scale: Scale,
    sys: &SystemConfig,
    heuristic: Heuristic,
) -> Result<(Workload, Compiled), PipelineError> {
    let sys_arc = Arc::new(sys.clone());
    let mut candidates: Vec<(Workload, Compiled)> = Vec::new();
    let mut par = 1usize;
    loop {
        let w = Arc::new((spec.build)(scale, par));
        match compile_impl(&w, &sys_arc, heuristic) {
            Ok(c) => {
                candidates.push(((*w).clone(), c));
                par *= 2;
                if par > 64 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    if candidates.is_empty() {
        return Err(PipelineError::Pnr(PnrError::Unplaceable(
            "workload does not fit at parallelism 1".into(),
        )));
    }
    let mut best: Option<(u64, usize)> = None;
    for (i, (_, c)) in candidates.iter().enumerate() {
        let Ok(stats) = c.simulate(MemoryModel::Nupea) else {
            continue;
        };
        if best.is_none_or(|(cyc, _)| stats.cycles < cyc) {
            best = Some((stats.cycles, i));
        }
    }
    let (_, idx) = best.ok_or(PipelineError::Pnr(PnrError::Unplaceable(
        "no parallelization candidate simulated successfully".into(),
    )))?;
    Ok(candidates.swap_remove(idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nupea_kernels::workloads::sparse;

    #[test]
    fn end_to_end_spmv_validates_on_all_models() {
        let w = sparse::spmv(Scale::Test, 2);
        let sys = SystemConfig::monaco_12x12();
        let monaco = sys.compile(&w, Heuristic::CriticalityAware).unwrap();
        let baseline = sys.compile(&w, Heuristic::DomainUnaware).unwrap();
        for (compiled, model) in [
            (&monaco, MemoryModel::Nupea),
            (&baseline, MemoryModel::IDEAL),
            (&baseline, MemoryModel::Upea(2)),
            (&baseline, MemoryModel::NumaUpea(2)),
        ] {
            let stats = compiled.simulate(model).unwrap();
            assert!(stats.cycles > 0, "{model}: must take time");
            assert_eq!(stats.residual_tokens, 0, "{model}: balanced");
        }
    }

    #[test]
    fn traced_run_is_timing_identical_and_aggregates_exactly() {
        let w = sparse::spmv(Scale::Test, 1);
        let sys = SystemConfig::monaco_12x12();
        let c = sys.compile(&w, Heuristic::CriticalityAware).unwrap();
        let plain = c.simulate(MemoryModel::Nupea).unwrap();
        let out = c
            .simulate_with(&SimOptions::new(MemoryModel::Nupea).trace())
            .unwrap();
        let trace = out.trace.expect("trace was requested");
        assert_eq!(
            out.stats.cycles, plain.cycles,
            "tracing must not change timing"
        );
        assert_eq!(out.stats.firings, plain.firings);
        assert_eq!(trace.dropped, 0, "default capacity must hold a Test run");
        assert_eq!(
            trace.load_latency_by_domain(),
            out.stats.load_latency_by_domain
        );
        nupea_sim::validate_chrome_trace(&trace.to_chrome_json()).unwrap();
    }

    #[test]
    fn builder_round_trips_every_knob() {
        let fabric = Fabric::monaco(4, 8, 2).unwrap();
        let sys = SystemConfig::builder()
            .fabric(fabric.clone())
            .fifo_depth(16)
            .max_outstanding(7)
            .seed(99)
            .effort(50)
            .divider_override(None)
            .build();
        assert_eq!(sys.fifo_depth, 16);
        assert_eq!(sys.max_outstanding, 7);
        assert_eq!(sys.seed, 99);
        assert_eq!(sys.effort, 50);
        assert_eq!(sys.divider_override, None);
        assert_eq!(sys.fabric.num_pes(), fabric.num_pes());
    }

    #[test]
    fn validate_rejects_degenerate_knobs_with_typed_errors() {
        let check = |mutate: fn(&mut SystemConfig), want: ConfigError| {
            let mut sys = SystemConfig::monaco_12x12();
            mutate(&mut sys);
            match sys.validate() {
                Err(PipelineError::InvalidConfig(got)) => assert_eq!(got, want),
                other => panic!("expected InvalidConfig({want}), got {other:?}"),
            }
            let w = sparse::spmv(Scale::Test, 1);
            assert!(
                sys.compile(&w, Heuristic::CriticalityAware).is_err(),
                "compile must refuse what validate refuses"
            );
        };
        check(|s| s.fifo_depth = 0, ConfigError::ZeroFifoDepth);
        check(|s| s.max_outstanding = 0, ConfigError::ZeroMaxOutstanding);
        check(|s| s.divider_override = Some(0), ConfigError::ZeroDivider);
        check(|s| s.mem.banks = 0, ConfigError::ZeroBanks);

        // ZeroDomains is defense-in-depth: every public fabric constructor
        // carries at least one memory domain (the engine no longer repairs
        // a zero silently with `.max(1)`), so assert the invariant the
        // validation backstops plus the typed error's rendering.
        for fabric in [
            Fabric::monaco(12, 12, 3).unwrap(),
            Fabric::monaco_with_domains(4, 8, 2, 1, 2).unwrap(),
            Fabric::clustered_single(4, 8, 2).unwrap(),
            Fabric::clustered_double(4, 8, 2).unwrap(),
        ] {
            assert!(fabric.num_domains() >= 1, "constructors guarantee domains");
        }
        assert_eq!(
            ConfigError::ZeroDomains.to_string(),
            "fabric must define at least one memory domain"
        );
        assert!(matches!(
            PipelineError::from(ConfigError::ZeroDomains),
            PipelineError::InvalidConfig(ConfigError::ZeroDomains)
        ));
    }

    #[test]
    fn upea_sweep_is_monotone_end_to_end() {
        let w = sparse::spmspv(Scale::Test, 1);
        let sys = SystemConfig::monaco_12x12();
        let c = sys.compile(&w, Heuristic::DomainUnaware).unwrap();
        let mut prev = 0;
        for n in 0..=4 {
            let stats = c.simulate(MemoryModel::Upea(n)).unwrap();
            assert!(
                stats.cycles >= prev,
                "UPEA{n} ({}) regressed under UPEA{} ({prev})",
                stats.cycles,
                n.saturating_sub(1)
            );
            prev = stats.cycles;
        }
    }

    #[test]
    fn sim_options_cover_the_old_entry_points() {
        let w = sparse::spmv(Scale::Test, 1);
        let sys = SystemConfig::monaco_12x12();
        let c = sys.compile(&w, Heuristic::CriticalityAware).unwrap();
        let plain = c.simulate(MemoryModel::Nupea).unwrap();

        // Defaults agree with the thin wrapper, artifacts absent.
        let out = c
            .simulate_with(&SimOptions::new(MemoryModel::Nupea))
            .unwrap();
        assert_eq!(out.stats.cycles, plain.cycles);
        assert!(out.trace.is_none() && out.memory.is_none());

        // Raw differential run: no validation, final memory captured; a
        // system override with identical knobs changes nothing.
        let raw = c
            .simulate_with(
                &SimOptions::new(MemoryModel::Nupea)
                    .system(sys.clone())
                    .no_validate()
                    .keep_memory(),
            )
            .unwrap();
        assert_eq!(raw.stats.cycles, plain.cycles);
        assert!(raw.memory.is_some());

        // A one-cycle budget must hit the cycle limit, as
        // simulate_budgeted did.
        let err = c
            .simulate_with(&SimOptions::new(MemoryModel::Nupea).max_cycles(1))
            .unwrap_err();
        assert!(matches!(
            err,
            PipelineError::Sim(SimError::CycleLimit { .. })
        ));

        // The cached initial image makes repeat runs identical, not stale:
        // the second run sees fresh memory, not the first run's output.
        let again = c.simulate(MemoryModel::Nupea).unwrap();
        assert_eq!(again.cycles, plain.cycles);
        assert_eq!(again.sinks, plain.sinks);
    }

    #[test]
    fn pipeline_errors_chain_their_sources() {
        use std::error::Error as _;
        let w = sparse::spmv(Scale::Test, 1);
        let sys = SystemConfig::monaco_12x12();
        let err = PipelineError::from(PnrError::Unplaceable("too big".into()));
        assert!(err.source().is_some());
        // A wrong-workload bitstream is a Bitstream error with no source.
        let c = sys.compile(&w, Heuristic::CriticalityAware).unwrap();
        let text = c.bitstream();
        let other = sparse::spmspv(Scale::Test, 1);
        let e = simulate_bitstream(&other, &sys, &text, MemoryModel::Nupea).unwrap_err();
        assert!(matches!(e, PipelineError::Bitstream { .. }));
        assert!(e.source().is_none());
    }

    #[test]
    fn staged_program_runs_and_validates() {
        let sw = nupea_kernels::workloads::staged::ad_staged(Scale::Test, 1);
        let sys = SystemConfig::monaco_12x12();
        let arts = compile_staged(&sw, &sys, Heuristic::CriticalityAware).unwrap();
        let stats = simulate_staged(&sw, &arts, &sys, MemoryModel::Nupea, 500).unwrap();
        assert_eq!(stats.per_stage.len(), 4);
        assert_eq!(stats.reconfig_cycles, 2000);
        let sum: u64 = stats.per_stage.iter().map(|s| s.cycles).sum();
        assert_eq!(stats.total_cycles, sum + stats.reconfig_cycles);
        // Staged result must equal the monolithic kernel's result — both
        // validate against the same reference.
        let mono = nupea_kernels::workloads::nn::ad(Scale::Test, 1);
        let c = sys.compile(&mono, Heuristic::CriticalityAware).unwrap();
        c.simulate(MemoryModel::Nupea).unwrap();
    }

    #[test]
    fn bitstream_round_trip_reproduces_the_run() {
        let w = sparse::spmv(Scale::Test, 1);
        let sys = SystemConfig::monaco_12x12();
        let c = sys.compile(&w, Heuristic::CriticalityAware).unwrap();
        let direct = c.simulate(MemoryModel::Nupea).unwrap();
        let text = c.bitstream();
        let via_bs = simulate_bitstream(&w, &sys, &text, MemoryModel::Nupea).unwrap();
        assert_eq!(direct.cycles, via_bs.cycles);
        assert_eq!(direct.firings, via_bs.firings);
    }

    #[test]
    fn auto_parallelize_grows_until_fabric_full() {
        let spec = nupea_kernels::workloads::workload_by_name("dmv").unwrap();
        let sys = SystemConfig::monaco_12x12();
        let (w, c) =
            auto_parallelize(&spec, Scale::Test, &sys, Heuristic::CriticalityAware).unwrap();
        assert!(w.par >= 2, "dmv should parallelize beyond 1 on 12x12");
        let stats = c.simulate(MemoryModel::Nupea).unwrap();
        assert_eq!(stats.residual_tokens, 0);
    }
}

//! # nupea — the complete NUPEA compile-and-simulate pipeline
//!
//! This crate ties the reproduction together (see DESIGN.md at the repo
//! root):
//!
//! * build a workload ([`nupea_kernels`]) — kernel + inputs + validator;
//! * compile it onto a fabric ([`nupea_pnr`]) with one of the three
//!   placement heuristics of Fig. 12;
//! * simulate cycle-accurately ([`nupea_sim`]) under any memory model of §6
//!   (NUPEA / UPEA-n / NUMA-UPEA-n / Ideal);
//! * validate results against the reference implementation.
//!
//! The [`experiments`] module holds the shared machinery the benchmark
//! harness uses to regenerate every figure of the paper.
//!
//! # Example
//!
//! ```
//! use nupea::{compile_workload, simulate, SystemConfig};
//! use nupea_kernels::workloads::{sparse, Scale};
//! use nupea_pnr::Heuristic;
//! use nupea_sim::MemoryModel;
//!
//! let workload = sparse::spmv(Scale::Test, 1);
//! let sys = SystemConfig::monaco_12x12();
//! let compiled = compile_workload(&workload, &sys, Heuristic::CriticalityAware)?;
//! let stats = simulate(&workload, &compiled, MemoryModel::Nupea)?;
//! assert!(stats.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;

pub use nupea_fabric::{Fabric, TopologyKind};
pub use nupea_kernels::workloads::{all_workloads, Scale, Workload, WorkloadSpec};
pub use nupea_pnr::{Heuristic, Placed, PnrError};
pub use nupea_sim::{MemoryModel, RunStats, SimError};

use nupea_pnr::{pnr, PlaceConfig, PnrConfig};
use nupea_sim::{Engine, MemParams, SimConfig};
use std::fmt;

/// System-level configuration: the fabric plus simulator knobs.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The fabric (topology, domains, tracks, timing calibration).
    pub fabric: Fabric,
    /// Memory geometry and latencies.
    pub mem: MemParams,
    /// Token FIFO depth per operand.
    pub fifo_depth: usize,
    /// Max outstanding requests per load-store instruction.
    pub max_outstanding: usize,
    /// PnR seed.
    pub seed: u64,
    /// Annealing effort (moves ≈ effort × cells).
    pub effort: u32,
    /// Fixed fabric clock divider for model comparisons (§6: "we set
    /// Monaco's fabric clock divider to 2"). `None` uses the PnR-derived
    /// divider (the right choice for the topology-scaling studies of
    /// Figs. 16–17).
    pub divider_override: Option<u64>,
}

impl SystemConfig {
    /// The evaluated Monaco configuration: 12×12 fabric, 3 NoC tracks,
    /// 8 MB memory with a 256 KB shared cache banked 32× (§4, §6).
    pub fn monaco_12x12() -> Self {
        SystemConfig::with_fabric(
            Fabric::monaco(12, 12, Fabric::DEFAULT_TRACKS).expect("12x12 monaco is valid"),
        )
    }

    /// A configuration around an arbitrary fabric.
    pub fn with_fabric(fabric: Fabric) -> Self {
        SystemConfig {
            fabric,
            mem: MemParams::default(),
            // Shallow PE buffering, as on an energy-minimal SDA: two-deep
            // LS request queues make load latency a first-order effect
            // (calibrated against the paper's Fig. 11/14 shapes).
            fifo_depth: 4,
            max_outstanding: 2,
            seed: 0xC0FFEE,
            effort: 200,
            divider_override: Some(2),
        }
    }
}

/// A compiled workload: placement, routing, timing.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// PnR output.
    pub placed: Placed,
    /// Heuristic used.
    pub heuristic: Heuristic,
}

/// Errors from the end-to-end pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Place-and-route failed (capacity or congestion).
    Pnr(PnrError),
    /// Simulation failed.
    Sim(SimError),
    /// The run finished but outputs did not match the reference.
    Validation(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Pnr(e) => write!(f, "pnr: {e}"),
            PipelineError::Sim(e) => write!(f, "sim: {e}"),
            PipelineError::Validation(e) => write!(f, "validation: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<PnrError> for PipelineError {
    fn from(e: PnrError) -> Self {
        PipelineError::Pnr(e)
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        PipelineError::Sim(e)
    }
}

/// Compile a workload onto the system's fabric with a placement heuristic.
///
/// # Errors
///
/// Returns [`PipelineError::Pnr`] when the kernel does not fit or cannot be
/// routed — the auto-parallelizer's stop signal.
pub fn compile_workload(
    workload: &Workload,
    sys: &SystemConfig,
    heuristic: Heuristic,
) -> Result<Compiled, PipelineError> {
    // PnR quality and routability are seed-sensitive. Run a few seeds and
    // keep the best-timing result (smallest divider, then shortest max
    // path), as multi-seed production flows do; declare failure only if
    // every seed fails.
    let mut best: Option<Placed> = None;
    let mut last_err = None;
    for attempt in 0..3u64 {
        let cfg = PnrConfig {
            place: PlaceConfig {
                heuristic,
                seed: sys.seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9)),
                effort: sys.effort,
            },
        };
        match pnr(workload.kernel.dfg(), &sys.fabric, &cfg) {
            Ok(placed) => {
                let better = best.as_ref().map_or(true, |b| {
                    (placed.timing.divider, placed.timing.max_hops)
                        < (b.timing.divider, b.timing.max_hops)
                });
                if better {
                    best = Some(placed);
                }
            }
            Err(e @ PnrError::Unplaceable(_)) => return Err(e.into()),
            Err(e) => last_err = Some(e),
        }
    }
    match best {
        Some(placed) => Ok(Compiled { placed, heuristic }),
        None => Err(last_err.expect("at least one attempt ran").into()),
    }
}

/// Simulate a compiled workload under a memory model, validating the
/// results against the workload's reference implementation.
///
/// # Errors
///
/// Returns [`PipelineError::Sim`] on simulator faults and
/// [`PipelineError::Validation`] when outputs mismatch the reference.
pub fn simulate_on(
    workload: &Workload,
    compiled: &Compiled,
    sys: &SystemConfig,
    model: MemoryModel,
) -> Result<RunStats, PipelineError> {
    let divider = sys
        .divider_override
        .unwrap_or(u64::from(compiled.placed.timing.divider));
    let cfg = SimConfig {
        model,
        mem: sys.mem,
        divider,
        fifo_depth: sys.fifo_depth,
        max_outstanding: sys.max_outstanding,
        numa_seed: sys.seed ^ 0x1234,
        max_cycles: 2_000_000_000,
        energy: nupea_sim::EnergyParams::default(),
    };
    let mut mem = workload.fresh_mem();
    let mut engine = Engine::new(
        workload.kernel.dfg(),
        &sys.fabric,
        &compiled.placed.pe_of,
        cfg,
    );
    for (pid, v) in workload.kernel.bindings(&[]) {
        engine.bind(pid, v);
    }
    let stats = engine.run(&mut mem)?;
    workload
        .validate(&mem, &stats.sinks)
        .map_err(PipelineError::Validation)?;
    Ok(stats)
}

/// Convenience: simulate with the Monaco-default system config implied by
/// the compiled artifact (callers that built their own [`SystemConfig`]
/// should use [`simulate_on`]).
///
/// # Errors
///
/// Same as [`simulate_on`].
pub fn simulate(
    workload: &Workload,
    compiled: &Compiled,
    model: MemoryModel,
) -> Result<RunStats, PipelineError> {
    simulate_on(workload, compiled, &SystemConfig::monaco_12x12(), model)
}

/// Results of a multi-region (staged) run.
#[derive(Debug, Clone)]
pub struct StagedRunStats {
    /// Total execution time, including reconfiguration between regions.
    pub total_cycles: u64,
    /// Per-stage run statistics.
    pub per_stage: Vec<RunStats>,
    /// Cycles spent loading bitstreams (reconfig × number of stages).
    pub reconfig_cycles: u64,
}

/// Compile every region of a staged workload.
///
/// # Errors
///
/// Returns the first region's PnR failure.
pub fn compile_staged(
    staged: &nupea_kernels::workloads::staged::StagedWorkload,
    sys: &SystemConfig,
    heuristic: Heuristic,
) -> Result<Vec<Compiled>, PipelineError> {
    staged
        .stages
        .iter()
        .map(|stage| {
            let shim = Workload {
                name: staged.name,
                kernel: stage.clone(),
                mem: staged.mem.clone(),
                checks: vec![],
                par: staged.par,
            };
            compile_workload(&shim, sys, heuristic)
        })
        .collect()
}

/// Execute a staged workload: regions run sequentially over shared memory,
/// separated by a bitstream-reconfiguration delay (§5: effcc "splits
/// programs into regions that fit on Monaco's fabric"). Results are
/// validated against the reference at the end.
///
/// # Errors
///
/// Simulation or validation failures from any region.
pub fn simulate_staged(
    staged: &nupea_kernels::workloads::staged::StagedWorkload,
    compiled: &[Compiled],
    sys: &SystemConfig,
    model: MemoryModel,
    reconfig_cycles: u64,
) -> Result<StagedRunStats, PipelineError> {
    assert_eq!(compiled.len(), staged.stages.len(), "one artifact per region");
    let mut mem = staged.fresh_mem();
    let mut per_stage = Vec::with_capacity(staged.stages.len());
    let mut total = 0u64;
    for (stage, art) in staged.stages.iter().zip(compiled) {
        let divider = sys
            .divider_override
            .unwrap_or(u64::from(art.placed.timing.divider));
        let cfg = SimConfig {
            model,
            mem: sys.mem,
            divider,
            fifo_depth: sys.fifo_depth,
            max_outstanding: sys.max_outstanding,
            numa_seed: sys.seed ^ 0x1234,
            max_cycles: 2_000_000_000,
            energy: nupea_sim::EnergyParams::default(),
        };
        let mut engine = Engine::new(stage.dfg(), &sys.fabric, &art.placed.pe_of, cfg);
        for (pid, v) in stage.bindings(&[]) {
            engine.bind(pid, v);
        }
        let stats = engine.run(&mut mem)?;
        total += stats.cycles + reconfig_cycles;
        per_stage.push(stats);
    }
    staged.validate(&mem).map_err(PipelineError::Validation)?;
    Ok(StagedRunStats {
        total_cycles: total,
        reconfig_cycles: reconfig_cycles * staged.stages.len() as u64,
        per_stage,
    })
}

/// Serialize a compiled workload to a bitstream (see
/// [`nupea_pnr::bitstream`]) for caching or inspection.
pub fn bitstream_of(workload: &Workload, sys: &SystemConfig, compiled: &Compiled) -> String {
    nupea_pnr::write_bitstream(workload.kernel.dfg(), &sys.fabric, &compiled.placed)
}

/// Simulate a workload from a previously saved bitstream, skipping PnR.
///
/// # Errors
///
/// Returns a validation error if the bitstream does not match the
/// workload/fabric, plus the usual simulation/validation errors.
pub fn simulate_bitstream(
    workload: &Workload,
    sys: &SystemConfig,
    bitstream_text: &str,
    model: MemoryModel,
) -> Result<RunStats, PipelineError> {
    let bs = nupea_pnr::parse_bitstream(bitstream_text)
        .map_err(|e| PipelineError::Validation(format!("bitstream: {e}")))?;
    if !bs.matches(workload.kernel.dfg(), &sys.fabric) {
        return Err(PipelineError::Validation(
            "bitstream does not match this workload/fabric".into(),
        ));
    }
    let divider = sys.divider_override.unwrap_or(u64::from(bs.divider));
    let cfg = SimConfig {
        model,
        mem: sys.mem,
        divider,
        fifo_depth: sys.fifo_depth,
        max_outstanding: sys.max_outstanding,
        numa_seed: sys.seed ^ 0x1234,
        max_cycles: 2_000_000_000,
        energy: nupea_sim::EnergyParams::default(),
    };
    let mut mem = workload.fresh_mem();
    let mut engine = Engine::new(workload.kernel.dfg(), &sys.fabric, &bs.pe_of, cfg);
    for (pid, v) in workload.kernel.bindings(&[]) {
        engine.bind(pid, v);
    }
    let stats = engine.run(&mut mem)?;
    workload
        .validate(&mem, &stats.sinks)
        .map_err(PipelineError::Validation)?;
    Ok(stats)
}

/// Auto-parallelization (§5): grow the parallelism degree until PnR fails,
/// then pick the degree "that achieved optimal performance" (§6) by
/// simulating every successful candidate under the Monaco memory model.
/// More parallelism is not always faster: a wider design can route only
/// with long detours, inflating the clock divider — exactly the effect the
/// topology-scaling study measures.
///
/// # Errors
///
/// Returns the PnR error if even `par = 1` does not fit.
pub fn auto_parallelize(
    spec: &WorkloadSpec,
    scale: Scale,
    sys: &SystemConfig,
    heuristic: Heuristic,
) -> Result<(Workload, Compiled), PipelineError> {
    let mut candidates: Vec<(Workload, Compiled)> = Vec::new();
    let mut par = 1usize;
    loop {
        let w = (spec.build)(scale, par);
        match compile_workload(&w, sys, heuristic) {
            Ok(c) => {
                candidates.push((w, c));
                par *= 2;
                if par > 64 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    if candidates.is_empty() {
        return Err(PipelineError::Pnr(PnrError::Unplaceable(
            "workload does not fit at parallelism 1".into(),
        )));
    }
    let mut best: Option<(u64, usize)> = None;
    for (i, (w, c)) in candidates.iter().enumerate() {
        let Ok(stats) = simulate_on(w, c, sys, MemoryModel::Nupea) else {
            continue;
        };
        if best.map_or(true, |(cyc, _)| stats.cycles < cyc) {
            best = Some((stats.cycles, i));
        }
    }
    let (_, idx) = best.ok_or(PipelineError::Pnr(PnrError::Unplaceable(
        "no parallelization candidate simulated successfully".into(),
    )))?;
    Ok(candidates.swap_remove(idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nupea_kernels::workloads::sparse;

    #[test]
    fn end_to_end_spmv_validates_on_all_models() {
        let w = sparse::spmv(Scale::Test, 2);
        let sys = SystemConfig::monaco_12x12();
        let monaco = compile_workload(&w, &sys, Heuristic::CriticalityAware).unwrap();
        let baseline = compile_workload(&w, &sys, Heuristic::DomainUnaware).unwrap();
        for (compiled, model) in [
            (&monaco, MemoryModel::Nupea),
            (&baseline, MemoryModel::IDEAL),
            (&baseline, MemoryModel::Upea(2)),
            (&baseline, MemoryModel::NumaUpea(2)),
        ] {
            let stats = simulate_on(&w, compiled, &sys, model).unwrap();
            assert!(stats.cycles > 0, "{model}: must take time");
            assert_eq!(stats.residual_tokens, 0, "{model}: balanced");
        }
    }

    #[test]
    fn upea_sweep_is_monotone_end_to_end() {
        let w = sparse::spmspv(Scale::Test, 1);
        let sys = SystemConfig::monaco_12x12();
        let c = compile_workload(&w, &sys, Heuristic::DomainUnaware).unwrap();
        let mut prev = 0;
        for n in 0..=4 {
            let stats = simulate_on(&w, &c, &sys, MemoryModel::Upea(n)).unwrap();
            assert!(
                stats.cycles >= prev,
                "UPEA{n} ({}) regressed under UPEA{} ({prev})",
                stats.cycles,
                n.saturating_sub(1)
            );
            prev = stats.cycles;
        }
    }

    #[test]
    fn staged_program_runs_and_validates() {
        let sw = nupea_kernels::workloads::staged::ad_staged(Scale::Test, 1);
        let sys = SystemConfig::monaco_12x12();
        let arts = compile_staged(&sw, &sys, Heuristic::CriticalityAware).unwrap();
        let stats = simulate_staged(&sw, &arts, &sys, MemoryModel::Nupea, 500).unwrap();
        assert_eq!(stats.per_stage.len(), 4);
        assert_eq!(stats.reconfig_cycles, 2000);
        let sum: u64 = stats.per_stage.iter().map(|s| s.cycles).sum();
        assert_eq!(stats.total_cycles, sum + stats.reconfig_cycles);
        // Staged result must equal the monolithic kernel's result — both
        // validate against the same reference.
        let mono = nupea_kernels::workloads::nn::ad(Scale::Test, 1);
        let c = compile_workload(&mono, &sys, Heuristic::CriticalityAware).unwrap();
        simulate_on(&mono, &c, &sys, MemoryModel::Nupea).unwrap();
    }

    #[test]
    fn bitstream_round_trip_reproduces_the_run() {
        let w = sparse::spmv(Scale::Test, 1);
        let sys = SystemConfig::monaco_12x12();
        let c = compile_workload(&w, &sys, Heuristic::CriticalityAware).unwrap();
        let direct = simulate_on(&w, &c, &sys, MemoryModel::Nupea).unwrap();
        let text = bitstream_of(&w, &sys, &c);
        let via_bs = simulate_bitstream(&w, &sys, &text, MemoryModel::Nupea).unwrap();
        assert_eq!(direct.cycles, via_bs.cycles);
        assert_eq!(direct.firings, via_bs.firings);
        // A bitstream for a different workload is rejected.
        let other = sparse::spmspv(Scale::Test, 1);
        assert!(matches!(
            simulate_bitstream(&other, &sys, &text, MemoryModel::Nupea),
            Err(PipelineError::Validation(_))
        ));
    }

    #[test]
    fn auto_parallelize_grows_until_fabric_full() {
        let spec = nupea_kernels::workloads::workload_by_name("dmv").unwrap();
        let sys = SystemConfig::monaco_12x12();
        let (w, c) = auto_parallelize(&spec, Scale::Test, &sys, Heuristic::CriticalityAware)
            .unwrap();
        assert!(w.par >= 2, "dmv should parallelize beyond 1 on 12x12");
        let stats = simulate_on(&w, &c, &sys, MemoryModel::Nupea).unwrap();
        assert_eq!(stats.residual_tokens, 0);
    }
}

//! Parallel experiment runner with compile-artifact caching.
//!
//! Every figure and ablation in the paper is a sweep: a cross product of
//! workloads × system configurations × placement heuristics × memory
//! models. Compiling (place-and-route with annealing) dominates the cost
//! of a sweep point, but it depends only on `(workload, system,
//! heuristic)` — the memory model is a simulation-time knob. The
//! [`ExperimentRunner`] therefore:
//!
//! 1. deduplicates sweep points into unique compile keys and runs PnR
//!    once per key, fanned out across a scoped thread pool;
//! 2. simulates every sweep point in parallel, sharing the compiled
//!    artifacts (`Arc`-backed, no re-clone of workload memory images);
//! 3. emits one structured [`RunRecord`] per point, in declaration order
//!    regardless of thread interleaving, with hand-rolled JSON and CSV
//!    export.
//!
//! Results are bit-identical for any thread count: compilation and
//! simulation are deterministic per point, and record order is fixed by
//! point declaration order, not completion order.
//!
//! ```no_run
//! use nupea::runner::ExperimentRunner;
//! use nupea::{MemoryModel, Scale, SystemConfig};
//!
//! let mut r = ExperimentRunner::new();
//! let sys = r.system(SystemConfig::monaco_12x12());
//! for spec in nupea::all_workloads() {
//!     let w = r.workload(spec.build_default(Scale::Test));
//!     r.model_sweep(w, sys, &[MemoryModel::IDEAL, MemoryModel::Nupea]);
//! }
//! let report = r.run();
//! println!("{}", report.to_csv());
//! ```

use crate::experiments::heuristic_for;
use crate::{Compiled, PipelineError, SimOptions, SystemConfig, Workload};
use nupea_pnr::Heuristic;
use nupea_sim::{DomainLatency, EnergyBreakdown, MemoryModel, RunStats, SimError, TraceBuffer};
use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Handle to a workload registered with an [`ExperimentRunner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadHandle(usize);

/// Handle to a system configuration registered with an
/// [`ExperimentRunner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemHandle(usize);

/// What must be recompiled: everything except the memory model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CompileKey {
    workload: usize,
    sys: usize,
    heuristic: Heuristic,
}

/// One declared sweep point.
#[derive(Debug, Clone, Copy)]
struct Point {
    workload: usize,
    sys: usize,
    heuristic: Heuristic,
    model: MemoryModel,
}

/// Coarse, machine-filterable classification of a failed sweep point,
/// derived from the underlying [`PipelineError`]. Exported alongside the
/// full error string in JSON/CSV so sweep post-processing can count
/// deadlocks, panics, and infeasible configs without string matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunErrorKind {
    /// Place-and-route failed (capacity or congestion).
    Pnr,
    /// The engine diagnosed a deadlock ([`SimError::Deadlock`]).
    Deadlock,
    /// The stall watchdog fired ([`SimError::Stalled`]).
    Stalled,
    /// The cycle cap / budget was exhausted.
    CycleLimit,
    /// A memory access faulted.
    MemoryFault,
    /// A param node had no bound value.
    UnboundParam,
    /// Another simulator error.
    Sim,
    /// Outputs did not match the reference.
    Validation,
    /// A bitstream failed to parse or match.
    Bitstream,
    /// A degenerate configuration was rejected up front.
    InvalidConfig,
    /// The point panicked and was isolated by the runner.
    Panic,
    /// The artifact cache's circuit breaker refused the compile.
    FastFailed,
}

impl RunErrorKind {
    /// Classify a pipeline error.
    #[must_use]
    pub fn of(e: &PipelineError) -> Self {
        match e {
            PipelineError::Pnr(_) => RunErrorKind::Pnr,
            PipelineError::Sim(SimError::Deadlock(_)) => RunErrorKind::Deadlock,
            PipelineError::Sim(SimError::Stalled { .. }) => RunErrorKind::Stalled,
            PipelineError::Sim(SimError::CycleLimit { .. }) => RunErrorKind::CycleLimit,
            PipelineError::Sim(SimError::Fault { .. }) => RunErrorKind::MemoryFault,
            PipelineError::Sim(SimError::UnboundParam(_)) => RunErrorKind::UnboundParam,
            PipelineError::Sim(_) => RunErrorKind::Sim,
            PipelineError::Validation(_) => RunErrorKind::Validation,
            PipelineError::Bitstream { .. } => RunErrorKind::Bitstream,
            PipelineError::InvalidConfig(_) => RunErrorKind::InvalidConfig,
            PipelineError::Panicked { .. } => RunErrorKind::Panic,
            PipelineError::FastFailed { .. } => RunErrorKind::FastFailed,
        }
    }

    /// The stable kebab-case label used in JSON and CSV exports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RunErrorKind::Pnr => "pnr",
            RunErrorKind::Deadlock => "deadlock",
            RunErrorKind::Stalled => "stalled",
            RunErrorKind::CycleLimit => "cycle-limit",
            RunErrorKind::MemoryFault => "memory-fault",
            RunErrorKind::UnboundParam => "unbound-param",
            RunErrorKind::Sim => "sim",
            RunErrorKind::Validation => "validation",
            RunErrorKind::Bitstream => "bitstream",
            RunErrorKind::InvalidConfig => "invalid-config",
            RunErrorKind::Panic => "panicked",
            RunErrorKind::FastFailed => "fast-failed",
        }
    }

    /// Parse an exported label back into a kind (the inverse of
    /// [`RunErrorKind::label`]).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "pnr" => RunErrorKind::Pnr,
            "deadlock" => RunErrorKind::Deadlock,
            "stalled" => RunErrorKind::Stalled,
            "cycle-limit" => RunErrorKind::CycleLimit,
            "memory-fault" => RunErrorKind::MemoryFault,
            "unbound-param" => RunErrorKind::UnboundParam,
            "sim" => RunErrorKind::Sim,
            "validation" => RunErrorKind::Validation,
            "bitstream" => RunErrorKind::Bitstream,
            "invalid-config" => RunErrorKind::InvalidConfig,
            "panicked" => RunErrorKind::Panic,
            "fast-failed" => RunErrorKind::FastFailed,
            _ => return None,
        })
    }
}

impl fmt::Display for RunErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The structured result of one sweep point.
///
/// `compile_micros` / `sim_micros` are wall-clock and therefore vary run
/// to run; the default JSON/CSV exports exclude them so output is
/// bit-identical across thread counts and machines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct RunRecord {
    /// Workload name (Table 1).
    pub workload: String,
    /// Parallelism degree the workload was built with.
    pub par: usize,
    /// Placement heuristic used for this point's compile.
    pub heuristic: Heuristic,
    /// Memory model simulated.
    pub model: MemoryModel,
    /// Completion time in system cycles (0 when `error` is set).
    pub cycles: u64,
    /// Completion time in fabric cycles.
    pub fabric_cycles: u64,
    /// Clock divider used.
    pub divider: u64,
    /// Total instruction firings.
    pub firings: u64,
    /// Mean completed-load latency in system cycles, over all domains.
    pub mean_load_latency: f64,
    /// Load latency aggregated by the issuing PE's NUPEA domain.
    pub load_latency_by_domain: Vec<DomainLatency>,
    /// Cache hit rate.
    pub cache_hit_rate: f64,
    /// Memory requests issued.
    pub mem_requests: u64,
    /// Requests forwarded by the per-domain arbiters.
    pub arbiter_forwards: u64,
    /// Cycles requests spent waiting on busy banks.
    pub bank_wait_cycles: u64,
    /// Tokens left buffered at quiescence.
    pub residual_tokens: usize,
    /// PEs that fired at least one instruction.
    pub active_pes: usize,
    /// Mean firings per active PE per fabric cycle (0 when nothing ran).
    pub mean_pe_utilization: f64,
    /// Tokens carried by the single busiest NoC link.
    pub peak_link_tokens: u64,
    /// Energy consumed, by component (all zero when `error` is set).
    /// Exported in JSON/CSV so DSE objectives and sweep reports share one
    /// code path with the simulator's accounting.
    pub energy: EnergyBreakdown,
    /// Whether this point reused another point's compile artifact.
    pub compile_cached: bool,
    /// Whether the point exhausted its cycle budget and was re-run once at
    /// the raised cap.
    pub retried: bool,
    /// Path of this point's Chrome trace-event JSON, when the runner was
    /// given a trace directory ([`ExperimentRunner::trace_dir`]).
    pub trace_path: Option<String>,
    /// Wall-clock compile time of the shared artifact (µs).
    pub compile_micros: u64,
    /// Wall-clock simulation time of this point (µs).
    pub sim_micros: u64,
    /// Machine-filterable classification of `error`.
    pub error_kind: Option<RunErrorKind>,
    /// Pipeline failure, if the point did not complete.
    pub error: Option<String>,
}

impl RunRecord {
    fn failed(
        p: &Point,
        workload: &Workload,
        compile_micros: u64,
        cached: bool,
        err: &PipelineError,
    ) -> Self {
        RunRecord {
            workload: workload.name.to_string(),
            par: workload.par,
            heuristic: p.heuristic,
            model: p.model,
            cycles: 0,
            fabric_cycles: 0,
            divider: 0,
            firings: 0,
            mean_load_latency: 0.0,
            load_latency_by_domain: Vec::new(),
            cache_hit_rate: 0.0,
            mem_requests: 0,
            arbiter_forwards: 0,
            bank_wait_cycles: 0,
            residual_tokens: 0,
            active_pes: 0,
            mean_pe_utilization: 0.0,
            peak_link_tokens: 0,
            energy: EnergyBreakdown::default(),
            compile_cached: cached,
            retried: false,
            trace_path: None,
            compile_micros,
            sim_micros: 0,
            error_kind: Some(RunErrorKind::of(err)),
            error: Some(err.to_string()),
        }
    }

    fn completed(
        p: &Point,
        workload: &Workload,
        compile_micros: u64,
        cached: bool,
        stats: &RunStats,
        sim_micros: u64,
    ) -> Self {
        let (total, count) = stats
            .load_latency_by_domain
            .iter()
            .fold((0u64, 0u64), |(t, c), d| (t + d.total_latency, c + d.count));
        RunRecord {
            workload: workload.name.to_string(),
            par: workload.par,
            heuristic: p.heuristic,
            model: p.model,
            cycles: stats.cycles,
            fabric_cycles: stats.fabric_cycles,
            divider: stats.divider,
            firings: stats.firings,
            mean_load_latency: if count == 0 {
                0.0
            } else {
                total as f64 / count as f64
            },
            load_latency_by_domain: stats.load_latency_by_domain.clone(),
            cache_hit_rate: stats.cache_hit_rate,
            mem_requests: stats.mem.requests,
            arbiter_forwards: stats.mem.arbiter_forwards,
            bank_wait_cycles: stats.mem.bank_wait_cycles,
            residual_tokens: stats.residual_tokens,
            active_pes: stats.active_pes(),
            mean_pe_utilization: stats.mean_pe_utilization(),
            peak_link_tokens: stats.peak_link_tokens(),
            energy: stats.energy,
            compile_cached: cached,
            retried: false,
            trace_path: None,
            compile_micros,
            sim_micros,
            error_kind: None,
            error: None,
        }
    }
}

/// Results of an [`ExperimentRunner::run`]: one record per declared point
/// (in declaration order) plus compile-cache accounting.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RunnerReport {
    /// One record per declared sweep point, in declaration order.
    pub records: Vec<RunRecord>,
    /// Unique `(workload, system, heuristic)` compiles performed.
    pub pnr_compiles: usize,
    /// Sweep points that reused a cached compile artifact.
    pub cache_hits: usize,
    /// End-to-end wall-clock time of `run()`.
    pub wall: Duration,
}

impl RunnerReport {
    /// Deterministic JSON export (excludes wall-clock timing fields).
    #[must_use]
    pub fn to_json(&self) -> String {
        records_to_json(&self.records, false)
    }

    /// JSON export including `compile_micros` / `sim_micros`.
    #[must_use]
    pub fn to_json_with_timing(&self) -> String {
        records_to_json(&self.records, true)
    }

    /// Deterministic CSV export (excludes wall-clock timing fields).
    #[must_use]
    pub fn to_csv(&self) -> String {
        records_to_csv(&self.records, false)
    }

    /// CSV export including `compile_micros` / `sim_micros`.
    #[must_use]
    pub fn to_csv_with_timing(&self) -> String {
        records_to_csv(&self.records, true)
    }
}

/// A declarative sweep executor: register workloads and systems, declare
/// points, call [`ExperimentRunner::run`].
///
/// See the [module docs](self) for the execution model.
///
/// Execution is fault-tolerant: every compile and simulate runs under
/// `catch_unwind`, so a panicking point becomes an error record
/// ([`RunErrorKind::Panic`]) instead of aborting the sweep.
#[derive(Debug, Default)]
pub struct ExperimentRunner {
    workloads: Vec<Arc<Workload>>,
    systems: Vec<Arc<SystemConfig>>,
    points: Vec<Point>,
    threads: usize,
    cycle_budget: Option<u64>,
    retry: RetryPolicy,
    trace_dir: Option<PathBuf>,
}

/// How a point that exhausts its [`ExperimentRunner::cycle_budget`] is
/// retried before being recorded as a cycle-limit failure. No effect
/// without a cycle budget (the default runaway cap is never retried).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RetryPolicy {
    /// Record the cycle-limit failure immediately.
    None,
    /// Re-run once at `budget × factor` — the historical behavior and
    /// the default (with `factor` 64). A `factor <= 1` never retries.
    OneShot {
        /// Cap multiplier for the single retry.
        factor: u64,
    },
    /// Capped exponential backoff: re-run up to `max_retries` times,
    /// multiplying the cap by `factor` each time. Fault campaigns use
    /// this for hang re-checks — a genuinely hung injection keeps hitting
    /// the (cheap, watchdog-bounded) limit, while a merely slow one gets
    /// room to finish.
    Backoff {
        /// Cap multiplier per retry (`<= 1` never retries).
        factor: u64,
        /// Retries after the first run.
        max_retries: u32,
    },
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::OneShot { factor: 64 }
    }
}

impl RetryPolicy {
    /// Retries allowed after the first attempt under this policy (zero
    /// when the factor can't raise the cap, so callers never loop on a
    /// policy that re-runs at an unchanged limit).
    #[must_use]
    pub fn max_retries(&self) -> u32 {
        match *self {
            RetryPolicy::None => 0,
            RetryPolicy::OneShot { factor } => u32::from(factor > 1),
            RetryPolicy::Backoff {
                factor,
                max_retries,
            } => {
                if factor > 1 {
                    max_retries
                } else {
                    0
                }
            }
        }
    }

    /// The capped-exponential value for attempt `attempt` starting from
    /// `base` (attempt 0 = `base` itself, attempt n = `base × factorⁿ`).
    /// All arithmetic saturates, so arbitrarily high attempt counts —
    /// e.g. a shard worker backing off on lease contention for hours —
    /// plateau at `u64::MAX` instead of overflowing. Used both for cycle
    /// caps (see `simulate_point`) and for lease-acquisition delays in
    /// `nupea::shard`.
    #[must_use]
    pub fn backoff_cap(&self, base: u64, attempt: u32) -> u64 {
        let factor = match *self {
            RetryPolicy::None => 1,
            RetryPolicy::OneShot { factor } | RetryPolicy::Backoff { factor, .. } => factor,
        };
        base.saturating_mul(factor.max(1).saturating_pow(attempt))
    }
}

impl ExperimentRunner {
    /// An empty runner. Thread count defaults to the machine's available
    /// parallelism.
    #[must_use]
    pub fn new() -> Self {
        ExperimentRunner::default()
    }

    /// Set the worker thread count (`0` = available parallelism).
    pub fn threads(&mut self, n: usize) -> &mut Self {
        self.threads = n;
        self
    }

    /// Bound each point's simulation to `budget` system cycles instead of
    /// the default 2-billion-cycle runaway cap. A point that exhausts the
    /// budget is re-run once at `budget × retry_factor` (see
    /// [`ExperimentRunner::retry_factor`]) before being recorded as a
    /// cycle-limit failure, so one slow outlier costs bounded wall clock
    /// but a mis-sized budget does not silently drop results.
    pub fn cycle_budget(&mut self, budget: u64) -> &mut Self {
        self.cycle_budget = Some(budget);
        self
    }

    /// Cap multiplier for the one-shot retry after a budget-limited run
    /// (default 64; values `<= 1` disable the retry). Has no effect
    /// without [`ExperimentRunner::cycle_budget`]. Shorthand for
    /// [`ExperimentRunner::retry_policy`] with [`RetryPolicy::None`]
    /// (`factor <= 1`) or [`RetryPolicy::OneShot`].
    pub fn retry_factor(&mut self, factor: u64) -> &mut Self {
        self.retry = if factor <= 1 {
            RetryPolicy::None
        } else {
            RetryPolicy::OneShot { factor }
        };
        self
    }

    /// Full retry policy for budget-limited points (see [`RetryPolicy`];
    /// default [`RetryPolicy::OneShot`] with factor 64). Has no effect
    /// without [`ExperimentRunner::cycle_budget`].
    pub fn retry_policy(&mut self, policy: RetryPolicy) -> &mut Self {
        self.retry = policy;
        self
    }

    /// Write one Chrome trace-event JSON per completed point into `dir`
    /// (created on demand); each record's
    /// [`trace_path`](RunRecord::trace_path) then names its file, e.g.
    /// `spmspv-par2-effcc-nupea.trace.json`, loadable in ui.perfetto.dev.
    /// Tracing is forced on for the simulations but does not change
    /// timing, so exported cycle counts stay bit-identical to an untraced
    /// sweep.
    pub fn trace_dir(&mut self, dir: impl Into<PathBuf>) -> &mut Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Register a workload; the handle is valid for this runner only.
    pub fn workload(&mut self, w: Workload) -> WorkloadHandle {
        self.shared_workload(Arc::new(w))
    }

    /// Register an already-shared workload without cloning it.
    pub fn shared_workload(&mut self, w: Arc<Workload>) -> WorkloadHandle {
        self.workloads.push(w);
        WorkloadHandle(self.workloads.len() - 1)
    }

    /// Register a system configuration.
    pub fn system(&mut self, sys: SystemConfig) -> SystemHandle {
        self.shared_system(Arc::new(sys))
    }

    /// Register an already-shared system configuration without cloning it.
    pub fn shared_system(&mut self, sys: Arc<SystemConfig>) -> SystemHandle {
        self.systems.push(sys);
        SystemHandle(self.systems.len() - 1)
    }

    /// Declare one sweep point.
    pub fn point(
        &mut self,
        w: WorkloadHandle,
        s: SystemHandle,
        heuristic: Heuristic,
        model: MemoryModel,
    ) -> &mut Self {
        assert!(w.0 < self.workloads.len(), "unknown workload handle");
        assert!(s.0 < self.systems.len(), "unknown system handle");
        self.points.push(Point {
            workload: w.0,
            sys: s.0,
            heuristic,
            model,
        });
        self
    }

    /// Declare one point per memory model, using the paper's heuristic
    /// pairing ([`heuristic_for`]: effcc under NUPEA, domain-unaware
    /// under the uniform baselines). All points with the same heuristic
    /// share a single compile.
    pub fn model_sweep(
        &mut self,
        w: WorkloadHandle,
        s: SystemHandle,
        models: &[MemoryModel],
    ) -> &mut Self {
        for &m in models {
            self.point(w, s, heuristic_for(m), m);
        }
        self
    }

    /// Declare one point per heuristic under a fixed memory model
    /// (the Fig. 12 ablation shape).
    pub fn heuristic_sweep(
        &mut self,
        w: WorkloadHandle,
        s: SystemHandle,
        heuristics: &[Heuristic],
        model: MemoryModel,
    ) -> &mut Self {
        for &h in heuristics {
            self.point(w, s, h, model);
        }
        self
    }

    /// Number of declared sweep points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether any points have been declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    fn effective_threads(&self, work: usize) -> usize {
        let n = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        };
        n.min(work).max(1)
    }

    /// Execute every declared point and return records in declaration
    /// order. Failed points produce records with `error` set rather than
    /// aborting the sweep.
    #[must_use]
    pub fn run(&self) -> RunnerReport {
        let t_start = Instant::now();

        // Deduplicate points into compile keys; remember which point first
        // declared each key (that point is charged the compile, the rest
        // are cache hits).
        let mut keys: Vec<CompileKey> = Vec::new();
        let mut first_point: Vec<usize> = Vec::new();
        let mut key_of_point: Vec<usize> = Vec::with_capacity(self.points.len());
        for (pi, p) in self.points.iter().enumerate() {
            let k = CompileKey {
                workload: p.workload,
                sys: p.sys,
                heuristic: p.heuristic,
            };
            let ki = keys.iter().position(|&e| e == k).unwrap_or_else(|| {
                keys.push(k);
                first_point.push(pi);
                keys.len() - 1
            });
            key_of_point.push(ki);
        }

        // Phase 1: compile each unique key once, in parallel.
        let artifacts: Vec<(Result<Compiled, PipelineError>, u64)> =
            parallel_map(self.effective_threads(keys.len()), keys.len(), |i| {
                let k = keys[i];
                let t0 = Instant::now();
                // Panic isolation: a panicking compile becomes an error
                // artifact shared by its points, not a crash.
                let r = catch_unwind(AssertUnwindSafe(|| {
                    crate::compile_impl(
                        &self.workloads[k.workload],
                        &self.systems[k.sys],
                        k.heuristic,
                    )
                }))
                .unwrap_or_else(|payload| {
                    Err(PipelineError::Panicked {
                        message: panic_message(payload.as_ref()),
                    })
                });
                (r, t0.elapsed().as_micros() as u64)
            });

        // Phase 2: simulate every point in parallel against the shared
        // artifacts. The trace directory is created once up front; if that
        // fails the sweep still runs, records just carry no trace_path.
        let trace_dir: Option<&Path> = self
            .trace_dir
            .as_deref()
            .filter(|d| std::fs::create_dir_all(d).is_ok());
        let records: Vec<RunRecord> = parallel_map(
            self.effective_threads(self.points.len()),
            self.points.len(),
            |i| {
                let p = &self.points[i];
                let ki = key_of_point[i];
                let cached = first_point[ki] != i;
                let (artifact, compile_micros) = &artifacts[ki];
                let workload = &self.workloads[p.workload];
                match artifact {
                    Err(e) => RunRecord::failed(p, workload, *compile_micros, cached, e),
                    Ok(c) => {
                        let t0 = Instant::now();
                        let (out, retried) = simulate_point(
                            c,
                            p.model,
                            self.cycle_budget,
                            self.retry,
                            trace_dir.is_some(),
                        );
                        let sim_micros = t0.elapsed().as_micros() as u64;
                        let mut r = match out {
                            Ok((stats, trace)) => {
                                let mut r = RunRecord::completed(
                                    p,
                                    workload,
                                    *compile_micros,
                                    cached,
                                    &stats,
                                    sim_micros,
                                );
                                if let (Some(dir), Some(trace)) = (trace_dir, trace) {
                                    let path = dir.join(trace_file_name(&r));
                                    if std::fs::write(&path, trace.to_chrome_json()).is_ok() {
                                        r.trace_path = Some(path.to_string_lossy().into_owned());
                                    }
                                }
                                r
                            }
                            Err(e) => {
                                let mut r =
                                    RunRecord::failed(p, workload, *compile_micros, cached, &e);
                                r.sim_micros = sim_micros;
                                r
                            }
                        };
                        r.retried = retried;
                        r
                    }
                }
            },
        );

        RunnerReport {
            records,
            pnr_compiles: keys.len(),
            cache_hits: self.points.len() - keys.len(),
            wall: t_start.elapsed(),
        }
    }
}

/// Run `f(0)..f(n-1)` across up to `threads` scoped workers, returning
/// results in index order. Workers pull indices off a shared atomic
/// counter and fill fixed slots, so the output order (and everything
/// downstream) is independent of scheduling. This is the runner's fan-out
/// engine, shared with the fault campaign's injection sweep and the
/// serve frontend's batch executor.
pub fn parallel_map<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let nthreads = threads.min(n).max(1);
    std::thread::scope(|sc| {
        for _ in 0..nthreads {
            sc.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                slots.lock().expect("parallel_map worker panicked")[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .expect("parallel_map worker panicked")
        .into_iter()
        .map(|s| s.expect("every index mapped"))
        .collect()
}

/// Extract a human-readable message from a panic payload (the payload is
/// a `&str` or `String` for every `panic!`/`assert!`-style panic).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// The deterministic trace file name of one completed point:
/// `<workload>-par<par>-<heuristic>-<model>.trace.json`, with every
/// component slugged down to `[a-z0-9-]`.
fn trace_file_name(r: &RunRecord) -> String {
    let slug = |s: &str| -> String {
        s.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect()
    };
    format!(
        "{}-par{}-{}-{}.trace.json",
        slug(&r.workload),
        r.par,
        slug(&r.heuristic.to_string()),
        slug(r.model.label().as_str())
    )
}

/// Run one sweep point with panic isolation and the optional cycle
/// budget. Returns the outcome (with the recorded trace when `want_trace`)
/// and whether any budget retry ran (i.e. the point re-ran at a raised
/// cap). The retry policy only applies to budget-limited runs.
fn simulate_point(
    c: &Compiled,
    model: MemoryModel,
    budget: Option<u64>,
    retry: RetryPolicy,
    want_trace: bool,
) -> (SimResult, bool) {
    let base = budget.unwrap_or(crate::DEFAULT_MAX_CYCLES);
    let mut out = catch_sim(c, model, base, want_trace);
    if budget.is_none() {
        return (out, false);
    }
    let mut retried = false;
    for attempt in 1..=retry.max_retries() {
        if !matches!(out, Err(PipelineError::Sim(SimError::CycleLimit { .. }))) {
            break;
        }
        out = catch_sim(c, model, retry.backoff_cap(base, attempt), want_trace);
        retried = true;
    }
    (out, retried)
}

/// Simulate one already-compiled artifact and produce the same
/// [`RunRecord`] a declared sweep point would — the runner's record
/// constructors and retry/budget semantics behind a single-artifact
/// entry point, used by the serve frontend so its per-request responses
/// are byte-identical ([`records_to_json`]) to a batch sweep of the same
/// config. `compile_micros` is recorded as 0 and `compile_cached` as
/// `false`; callers that know better (the artifact cache) overwrite
/// them. The recorded trace is returned alongside when `want_trace`.
#[must_use]
pub fn run_compiled(
    c: &Compiled,
    model: MemoryModel,
    budget: Option<u64>,
    retry: RetryPolicy,
    want_trace: bool,
) -> (RunRecord, Option<TraceBuffer>) {
    let p = Point {
        workload: 0,
        sys: 0,
        heuristic: c.heuristic,
        model,
    };
    let t0 = Instant::now();
    let (out, retried) = simulate_point(c, model, budget, retry, want_trace);
    let sim_micros = t0.elapsed().as_micros() as u64;
    let (mut rec, trace) = match out {
        Ok((stats, trace)) => (
            RunRecord::completed(&p, c.workload(), 0, false, &stats, sim_micros),
            trace,
        ),
        Err(e) => {
            let mut r = RunRecord::failed(&p, c.workload(), 0, false, &e);
            r.sim_micros = sim_micros;
            (r, None)
        }
    };
    rec.retried = retried;
    (rec, trace)
}

type SimResult = Result<(RunStats, Option<TraceBuffer>), PipelineError>;

/// One simulate call under `catch_unwind`.
fn catch_sim(c: &Compiled, model: MemoryModel, cap: u64, want_trace: bool) -> SimResult {
    catch_unwind(AssertUnwindSafe(|| {
        let mut opts = SimOptions::new(model).max_cycles(cap);
        if want_trace {
            opts = opts.trace();
        }
        c.simulate_with(&opts).map(|out| (out.stats, out.trace))
    }))
    .unwrap_or_else(|payload| {
        Err(PipelineError::Panicked {
            message: panic_message(payload.as_ref()),
        })
    })
}

/// Escape a string for a JSON string literal (quotes not included).
fn json_escape(s: &str) -> String {
    crate::jsonl::escape(s)
}

/// Format an `f64` as a JSON number (`null` for non-finite values).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serialize records to a JSON array (one object per record), hand-rolled
/// so the workspace stays dependency-free. With `timing` false the
/// wall-clock fields are omitted and the output is deterministic.
#[must_use]
pub fn records_to_json(records: &[RunRecord], timing: bool) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let domains: Vec<String> = r
            .load_latency_by_domain
            .iter()
            .map(|d| {
                format!(
                    "{{\"total_latency\":{},\"count\":{}}}",
                    d.total_latency, d.count
                )
            })
            .collect();
        let error = r
            .error
            .as_ref()
            .map_or_else(|| "null".to_string(), |e| format!("\"{}\"", json_escape(e)));
        out.push_str(&format!(
            "  {{\"workload\":\"{}\",\"par\":{},\"heuristic\":\"{}\",\"model\":\"{}\",\
             \"cycles\":{},\"fabric_cycles\":{},\"divider\":{},\"firings\":{},\
             \"mean_load_latency\":{},\"load_latency_by_domain\":[{}],\
             \"cache_hit_rate\":{},\"mem_requests\":{},\"arbiter_forwards\":{},\
             \"bank_wait_cycles\":{},\"residual_tokens\":{},\"active_pes\":{},\
             \"mean_pe_utilization\":{},\"peak_link_tokens\":{},\
             \"energy\":{{\"alu\":{},\"control\":{},\"mem_issue\":{},\"noc\":{},\
             \"fmnoc\":{},\"memory\":{},\"total\":{}}},\"compile_cached\":{}",
            json_escape(&r.workload),
            r.par,
            r.heuristic,
            r.model.label(),
            r.cycles,
            r.fabric_cycles,
            r.divider,
            r.firings,
            json_f64(r.mean_load_latency),
            domains.join(","),
            json_f64(r.cache_hit_rate),
            r.mem_requests,
            r.arbiter_forwards,
            r.bank_wait_cycles,
            r.residual_tokens,
            r.active_pes,
            json_f64(r.mean_pe_utilization),
            r.peak_link_tokens,
            json_f64(r.energy.alu),
            json_f64(r.energy.control),
            json_f64(r.energy.mem_issue),
            json_f64(r.energy.noc),
            json_f64(r.energy.fmnoc),
            json_f64(r.energy.memory),
            json_f64(r.energy.total()),
            r.compile_cached,
        ));
        out.push_str(&format!(",\"retried\":{}", r.retried));
        let trace_path = r
            .trace_path
            .as_ref()
            .map_or_else(|| "null".to_string(), |p| format!("\"{}\"", json_escape(p)));
        out.push_str(&format!(",\"trace_path\":{trace_path}"));
        if timing {
            out.push_str(&format!(
                ",\"compile_micros\":{},\"sim_micros\":{}",
                r.compile_micros, r.sim_micros
            ));
        }
        let error_kind = r
            .error_kind
            .map_or_else(|| "null".to_string(), |k| format!("\"{}\"", k.label()));
        out.push_str(&format!(",\"error_kind\":{error_kind},\"error\":{error}}}"));
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Quote a CSV cell if it contains a delimiter, quote, or newline.
fn csv_cell(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serialize records to CSV with a header row. Per-domain latency is
/// packed into one cell as `total:count` pairs joined by `|`. With
/// `timing` false the wall-clock columns are omitted and the output is
/// deterministic.
#[must_use]
pub fn records_to_csv(records: &[RunRecord], timing: bool) -> String {
    let mut out = String::from(
        "workload,par,heuristic,model,cycles,fabric_cycles,divider,firings,\
         mean_load_latency,cache_hit_rate,mem_requests,arbiter_forwards,\
         bank_wait_cycles,residual_tokens,active_pes,mean_pe_utilization,\
         peak_link_tokens,energy_alu,energy_control,energy_mem_issue,energy_noc,\
         energy_fmnoc,energy_memory,energy_total,load_latency_by_domain,\
         compile_cached,retried,trace_path",
    );
    if timing {
        out.push_str(",compile_micros,sim_micros");
    }
    out.push_str(",error_kind,error\n");
    for r in records {
        let domains: Vec<String> = r
            .load_latency_by_domain
            .iter()
            .map(|d| format!("{}:{}", d.total_latency, d.count))
            .collect();
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            csv_cell(&r.workload),
            r.par,
            r.heuristic,
            csv_cell(r.model.label().as_str()),
            r.cycles,
            r.fabric_cycles,
            r.divider,
            r.firings,
            json_f64(r.mean_load_latency),
            json_f64(r.cache_hit_rate),
            r.mem_requests,
            r.arbiter_forwards,
            r.bank_wait_cycles,
            r.residual_tokens,
            r.active_pes,
            json_f64(r.mean_pe_utilization),
            r.peak_link_tokens,
            json_f64(r.energy.alu),
            json_f64(r.energy.control),
            json_f64(r.energy.mem_issue),
            json_f64(r.energy.noc),
            json_f64(r.energy.fmnoc),
            json_f64(r.energy.memory),
            json_f64(r.energy.total()),
            csv_cell(&domains.join("|")),
            r.compile_cached,
        ));
        out.push_str(&format!(",{}", r.retried));
        out.push(',');
        out.push_str(&csv_cell(r.trace_path.as_deref().unwrap_or("")));
        if timing {
            out.push_str(&format!(",{},{}", r.compile_micros, r.sim_micros));
        }
        out.push(',');
        out.push_str(r.error_kind.map_or("", |k| k.label()));
        out.push(',');
        out.push_str(&csv_cell(r.error.as_deref().unwrap_or("")));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> RunRecord {
        RunRecord {
            workload: "spmv".to_string(),
            par: 2,
            heuristic: Heuristic::CriticalityAware,
            model: MemoryModel::Nupea,
            cycles: 1234,
            fabric_cycles: 617,
            divider: 2,
            firings: 999,
            mean_load_latency: 12.5,
            load_latency_by_domain: vec![
                DomainLatency {
                    total_latency: 80,
                    count: 8,
                },
                DomainLatency {
                    total_latency: 20,
                    count: 1,
                },
            ],
            cache_hit_rate: 0.75,
            mem_requests: 40,
            arbiter_forwards: 11,
            bank_wait_cycles: 7,
            residual_tokens: 0,
            active_pes: 3,
            mean_pe_utilization: 0.5,
            peak_link_tokens: 42,
            energy: EnergyBreakdown {
                alu: 10.0,
                control: 1.5,
                mem_issue: 20.0,
                noc: 6.0,
                fmnoc: 2.5,
                memory: 60.0,
            },
            compile_cached: false,
            retried: false,
            trace_path: None,
            compile_micros: 5000,
            sim_micros: 300,
            error_kind: None,
            error: None,
        }
    }

    #[test]
    fn json_golden_matches() {
        let want = "[\n  {\"workload\":\"spmv\",\"par\":2,\"heuristic\":\"effcc\",\
                    \"model\":\"NUPEA\",\"cycles\":1234,\"fabric_cycles\":617,\
                    \"divider\":2,\"firings\":999,\"mean_load_latency\":12.5,\
                    \"load_latency_by_domain\":[{\"total_latency\":80,\"count\":8},\
                    {\"total_latency\":20,\"count\":1}],\"cache_hit_rate\":0.75,\
                    \"mem_requests\":40,\"arbiter_forwards\":11,\"bank_wait_cycles\":7,\
                    \"residual_tokens\":0,\"active_pes\":3,\"mean_pe_utilization\":0.5,\
                    \"peak_link_tokens\":42,\"energy\":{\"alu\":10,\"control\":1.5,\
                    \"mem_issue\":20,\"noc\":6,\"fmnoc\":2.5,\"memory\":60,\"total\":100},\
                    \"compile_cached\":false,\"retried\":false,\
                    \"trace_path\":null,\"error_kind\":null,\"error\":null}\n]";
        assert_eq!(records_to_json(&[sample_record()], false), want);
    }

    #[test]
    fn json_timing_adds_wall_clock_fields() {
        let with = records_to_json(&[sample_record()], true);
        assert!(with.contains("\"compile_micros\":5000"));
        assert!(with.contains("\"sim_micros\":300"));
        assert!(!records_to_json(&[sample_record()], false).contains("micros"));
    }

    #[test]
    fn csv_golden_matches() {
        let want = "workload,par,heuristic,model,cycles,fabric_cycles,divider,firings,\
             mean_load_latency,cache_hit_rate,mem_requests,arbiter_forwards,\
             bank_wait_cycles,residual_tokens,active_pes,mean_pe_utilization,\
             peak_link_tokens,energy_alu,energy_control,energy_mem_issue,energy_noc,\
             energy_fmnoc,energy_memory,energy_total,load_latency_by_domain,\
             compile_cached,retried,trace_path,error_kind,error\n\
             spmv,2,effcc,NUPEA,1234,617,2,999,12.5,0.75,40,11,7,0,3,0.5,42,\
             10,1.5,20,6,2.5,60,100,80:8|20:1,false,false,,,\n";
        assert_eq!(records_to_csv(&[sample_record()], false), want);
    }

    #[test]
    fn retry_factor_shim_maps_onto_retry_policy() {
        let mut runner = ExperimentRunner::new();
        assert_eq!(runner.retry, RetryPolicy::OneShot { factor: 64 });
        runner.retry_factor(1);
        assert_eq!(runner.retry, RetryPolicy::None, "factor <= 1 never retries");
        runner.retry_factor(0);
        assert_eq!(runner.retry, RetryPolicy::None);
        runner.retry_factor(8);
        assert_eq!(runner.retry, RetryPolicy::OneShot { factor: 8 });
        runner.retry_policy(RetryPolicy::Backoff {
            factor: 4,
            max_retries: 3,
        });
        assert_eq!(
            runner.retry,
            RetryPolicy::Backoff {
                factor: 4,
                max_retries: 3
            }
        );
    }

    #[test]
    fn retry_policies_govern_budget_limited_reruns() {
        let w = nupea_kernels::workloads::sparse::spmv(crate::Scale::Test, 1);
        let sys = SystemConfig::monaco_12x12();
        let c = sys.compile(&w, Heuristic::CriticalityAware).unwrap();
        // A 10-cycle budget cannot complete spmv.
        let (out, retried) =
            simulate_point(&c, MemoryModel::Nupea, Some(10), RetryPolicy::None, false);
        assert!(
            matches!(out, Err(PipelineError::Sim(SimError::CycleLimit { .. }))),
            "None records the limit immediately"
        );
        assert!(!retried);
        // Backoff with a big enough factor climbs to a workable cap.
        let (out, retried) = simulate_point(
            &c,
            MemoryModel::Nupea,
            Some(10),
            RetryPolicy::Backoff {
                factor: 100,
                max_retries: 4,
            },
            false,
        );
        assert!(out.is_ok(), "10 * 100^4 cycles is plenty for Test spmv");
        assert!(retried, "the backoff path must mark the record retried");
        // Without a budget the policy never applies: the default runaway
        // cap is never retried.
        let (out, retried) = simulate_point(
            &c,
            MemoryModel::Nupea,
            None,
            RetryPolicy::Backoff {
                factor: 100,
                max_retries: 4,
            },
            false,
        );
        assert!(out.is_ok());
        assert!(!retried);
    }

    #[test]
    fn error_kind_labels_round_trip() {
        let kinds = [
            RunErrorKind::Pnr,
            RunErrorKind::Deadlock,
            RunErrorKind::Stalled,
            RunErrorKind::CycleLimit,
            RunErrorKind::MemoryFault,
            RunErrorKind::UnboundParam,
            RunErrorKind::Sim,
            RunErrorKind::Validation,
            RunErrorKind::Bitstream,
            RunErrorKind::InvalidConfig,
            RunErrorKind::Panic,
        ];
        for k in kinds {
            assert_eq!(RunErrorKind::parse(k.label()), Some(k), "{k}");
        }
        assert_eq!(RunErrorKind::parse("nonsense"), None);
    }

    #[test]
    fn error_kind_round_trips_through_csv_and_json() {
        let mut r = sample_record();
        r.cycles = 0;
        r.retried = true;
        r.error_kind = Some(RunErrorKind::Deadlock);
        r.error = Some("deadlock at cycle 42: 2 stalled node(s)".to_string());

        let json = records_to_json(&[r.clone()], false);
        assert!(json.contains("\"error_kind\":\"deadlock\""), "{json}");
        assert!(json.contains("\"retried\":true"), "{json}");

        let csv = records_to_csv(&[r], false);
        let mut lines = csv.lines();
        let header: Vec<&str> = lines.next().unwrap().split(',').collect();
        let kind_col = header.iter().position(|&h| h == "error_kind").unwrap();
        let retried_col = header.iter().position(|&h| h == "retried").unwrap();
        let row: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(
            RunErrorKind::parse(row[kind_col]),
            Some(RunErrorKind::Deadlock)
        );
        assert_eq!(row[retried_col], "true");
    }

    #[test]
    fn error_kind_classifies_pipeline_errors() {
        use nupea_sim::ConfigError;
        let e = PipelineError::Panicked {
            message: "boom".to_string(),
        };
        assert_eq!(RunErrorKind::of(&e), RunErrorKind::Panic);
        let e = PipelineError::InvalidConfig(ConfigError::ZeroFifoDepth);
        assert_eq!(RunErrorKind::of(&e), RunErrorKind::InvalidConfig);
        let e = PipelineError::Sim(SimError::CycleLimit { limit: 5 });
        assert_eq!(RunErrorKind::of(&e), RunErrorKind::CycleLimit);
    }

    #[test]
    fn trace_dir_writes_chrome_traces_and_records_paths() {
        let dir = std::env::temp_dir().join(format!("nupea-runner-trace-{}", std::process::id()));
        let mut runner = ExperimentRunner::new();
        let sys = runner.system(SystemConfig::monaco_12x12());
        let w = runner.workload(nupea_kernels::workloads::sparse::spmv(
            crate::Scale::Test,
            1,
        ));
        runner.model_sweep(w, sys, &[MemoryModel::Nupea]);
        runner.trace_dir(&dir);
        let report = runner.run();
        let rec = &report.records[0];
        assert!(rec.error.is_none(), "{:?}", rec.error);
        assert!(rec.active_pes > 0);
        assert!(rec.mean_pe_utilization > 0.0);
        assert!(rec.energy.total() > 0.0, "runner surfaces energy");
        let path = rec.trace_path.as_ref().expect("trace file recorded");
        assert!(path.ends_with("spmv-par1-effcc-nupea.trace.json"), "{path}");
        let text = std::fs::read_to_string(path).unwrap();
        nupea_sim::validate_chrome_trace(&text).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_quotes_cells_with_delimiters() {
        let mut r = sample_record();
        r.error = Some("bad, \"quoted\" thing".to_string());
        let csv = records_to_csv(&[r], false);
        assert!(csv.ends_with(",\"bad, \"\"quoted\"\" thing\"\n"));
    }

    /// A minimal RFC-4180 reader for the round-trip tests: handles
    /// quoted cells with embedded commas, doubled quotes, and newlines.
    fn parse_csv(text: &str) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        let mut row = Vec::new();
        let mut cell = String::new();
        let mut in_quotes = false;
        let mut chars = text.chars().peekable();
        while let Some(c) = chars.next() {
            if in_quotes {
                if c == '"' {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cell.push('"');
                    } else {
                        in_quotes = false;
                    }
                } else {
                    cell.push(c);
                }
            } else {
                match c {
                    '"' => in_quotes = true,
                    ',' => row.push(std::mem::take(&mut cell)),
                    '\n' => {
                        row.push(std::mem::take(&mut cell));
                        rows.push(std::mem::take(&mut row));
                    }
                    '\r' => {}
                    _ => cell.push(c),
                }
            }
        }
        if !cell.is_empty() || !row.is_empty() {
            row.push(cell);
            rows.push(row);
        }
        rows
    }

    #[test]
    fn csv_round_trips_hostile_error_strings_field_by_field() {
        let mut r = sample_record();
        r.cycles = 0;
        r.error_kind = Some(RunErrorKind::Panic);
        r.error = Some("line one,\nline two with \"quotes\", a comma, and\r\na CRLF".to_string());
        r.trace_path = Some("/tmp/traces/spmv,par2 \"x\".trace.json".to_string());
        let clean = sample_record();

        let csv = records_to_csv(&[r.clone(), clean.clone()], false);
        let rows = parse_csv(&csv);
        assert_eq!(
            rows.len(),
            3,
            "header + 2 records despite embedded newlines"
        );
        let header = &rows[0];
        let col = |name: &str| {
            header
                .iter()
                .position(|h| h == name)
                .unwrap_or_else(|| panic!("column {name}"))
        };

        // Hostile record: every escaped cell comes back verbatim.
        let row = &rows[1];
        assert_eq!(row.len(), header.len());
        assert_eq!(row[col("workload")], r.workload);
        assert_eq!(row[col("error")], r.error.as_deref().unwrap());
        assert_eq!(row[col("trace_path")], r.trace_path.as_deref().unwrap());
        assert_eq!(row[col("error_kind")], "panicked");
        assert_eq!(row[col("cycles")], "0");
        assert_eq!(row[col("par")], "2");
        assert_eq!(row[col("model")], "NUPEA");
        assert_eq!(row[col("load_latency_by_domain")], "80:8|20:1");

        // Clean record: empty optionals stay empty, numbers unharmed.
        let row = &rows[2];
        assert_eq!(row.len(), header.len());
        assert_eq!(row[col("error")], "");
        assert_eq!(row[col("error_kind")], "");
        assert_eq!(row[col("trace_path")], "");
        assert_eq!(row[col("cycles")], "1234");
        assert_eq!(row[col("energy_total")], "100");
        assert_eq!(row[col("compile_cached")], "false");
    }

    #[test]
    fn csv_cell_quotes_exactly_the_hostile_cells() {
        assert_eq!(csv_cell("plain"), "plain");
        assert_eq!(csv_cell(""), "");
        assert_eq!(csv_cell("a,b"), "\"a,b\"");
        assert_eq!(csv_cell("a\"b"), "\"a\"\"b\"");
        assert_eq!(csv_cell("a\nb"), "\"a\nb\"");
        assert_eq!(csv_cell("a\rb"), "\"a\rb\"");
        for s in ["a,b", "he said \"no\"", "x\ny", "mix,\"of\"\nall\r"] {
            let parsed = parse_csv(&format!("{}\n", csv_cell(s)));
            assert_eq!(parsed[0][0], s, "round-trip of {s:?}");
        }
    }

    #[test]
    fn run_compiled_matches_the_batch_runner_record() {
        let w = nupea_kernels::workloads::sparse::spmv(crate::Scale::Test, 1);
        let sys = SystemConfig::monaco_12x12();
        let c = sys.compile(&w, Heuristic::CriticalityAware).unwrap();
        let (rec, trace) = run_compiled(&c, MemoryModel::Nupea, None, RetryPolicy::None, false);
        assert!(trace.is_none());

        let mut runner = ExperimentRunner::new();
        let sh = runner.system(sys);
        let wh = runner.workload(w);
        runner.point(wh, sh, Heuristic::CriticalityAware, MemoryModel::Nupea);
        let batch = runner.run().records.into_iter().next().unwrap();

        // The deterministic export (which excludes wall-clock micros)
        // must agree byte for byte — the serve frontend's contract.
        assert_eq!(
            records_to_json(&[rec], false),
            records_to_json(&[batch], false)
        );
    }

    #[test]
    fn json_escapes_control_and_quote_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn backoff_cap_saturates_at_high_attempt_counts() {
        let p = RetryPolicy::Backoff {
            factor: 4,
            max_retries: u32::MAX,
        };
        assert_eq!(p.backoff_cap(1_000, 0), 1_000);
        assert_eq!(p.backoff_cap(1_000, 1), 4_000);
        assert_eq!(p.backoff_cap(1_000, 3), 64_000);
        // 4^32 overflows u64; the cap must plateau, not wrap or panic —
        // a lease-contention loop can legitimately reach huge attempts.
        assert_eq!(p.backoff_cap(1_000, 32), u64::MAX);
        assert_eq!(p.backoff_cap(1_000, 10_000), u64::MAX);
        assert_eq!(p.backoff_cap(u64::MAX, 1), u64::MAX);
        assert_eq!(p.backoff_cap(0, 10_000), 0);
    }

    #[test]
    fn backoff_cap_degenerate_policies() {
        assert_eq!(RetryPolicy::None.backoff_cap(500, 7), 500);
        assert_eq!(RetryPolicy::None.max_retries(), 0);
        let one = RetryPolicy::OneShot { factor: 64 };
        assert_eq!(one.max_retries(), 1);
        assert_eq!(one.backoff_cap(10, 1), 640);
        // factor <= 1 can't raise the cap: no retries, identity cap.
        let flat = RetryPolicy::Backoff {
            factor: 1,
            max_retries: 9,
        };
        assert_eq!(flat.max_retries(), 0);
        assert_eq!(flat.backoff_cap(10, 10_000), 10);
        assert_eq!(RetryPolicy::OneShot { factor: 0 }.max_retries(), 0);
        assert_eq!(RetryPolicy::OneShot { factor: 0 }.backoff_cap(10, 3), 10);
    }
}

//! Torn-tail-safe append-only JSONL files, shared by the DSE journal,
//! the fault-campaign journal, and the shard coordination journal.
//!
//! The workspace's resumable subsystems (design-space searches, fault
//! campaigns, multi-process shard coordination) persist progress as one
//! flat JSON object per line. Three invariants make that kill-and-resume
//! safe:
//!
//! - **Append repair.** A `kill -9` mid-append leaves the file ending
//!   mid-line. [`JsonlFile::open`] detects the torn tail (no trailing
//!   newline) and the next [`JsonlFile::append`] starts on a fresh line,
//!   so the torn record corrupts nothing that follows it.
//! - **Replay tolerance.** [`JsonlFile::open`] hands back every
//!   non-blank line; callers parse each and simply skip (and count) the
//!   unparseable ones — a torn tail costs at most one record, never the
//!   file.
//! - **Corruption detection.** Lines written through
//!   [`with_checksum`] carry a trailing FNV-1a checksum field.
//!   [`JsonlFile::open`] verifies every checksummed line, drops the
//!   corrupt ones from replay, and reports them via
//!   [`JsonlFile::corruption`] — so a flipped bit in the *middle* of a
//!   journal (disk rot, partial overwrite) is detected instead of being
//!   replayed as a plausible-looking record. Unchecksummed lines pass
//!   through untouched, keeping old journals readable.
//!
//! Appends are built as a single buffer and issued as one `write_all`,
//! so concurrent multi-process appenders (the shard coordination
//! journal) in `O_APPEND` mode never interleave bytes of two records.
//! [`JsonlFile::append_durable`] additionally fsyncs before returning,
//! which the lease protocol uses to make claims durable before they are
//! acted on.
//!
//! The module also hosts the flat-object field helpers ([`field`],
//! [`string_field`], [`format_f64`], [`escape`]) used to hand-roll and
//! re-parse those lines; the workspace is dependency-free, so there is
//! no serde. [`field`] understands backslash escapes inside string
//! values (worker ids and hostnames in lease records may contain quotes).

use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// 64-bit FNV-1a — the workspace's stable hash for journal keys, shard
/// assignment, and per-line checksums. The constants are load-bearing:
/// journals persist these hashes across releases.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Integrity of one journal line with respect to its optional trailing
/// checksum field (see [`with_checksum`] / [`verify_checksum`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integrity {
    /// The line carries no checksum field (pre-checksum journals).
    Absent,
    /// The checksum matches the line content.
    Valid,
    /// The line carries a checksum that does not match — the line was
    /// altered after it was written.
    Corrupt,
}

/// Append a trailing `"cksum"` field to a flat JSON object line: the
/// FNV-1a hash of the line *without* the field. [`verify_checksum`]
/// (and [`JsonlFile::open`]) can then detect any later alteration.
#[must_use]
pub fn with_checksum(line: &str) -> String {
    let Some(body) = line.strip_suffix('}') else {
        return line.to_string();
    };
    format!("{body},\"cksum\":{}}}", fnv1a(line.as_bytes()))
}

/// Verify a line's trailing checksum, if it has one. The checksum must
/// be the final field (which is where [`with_checksum`] puts it).
#[must_use]
pub fn verify_checksum(line: &str) -> Integrity {
    let Some(idx) = line.rfind(",\"cksum\":") else {
        return Integrity::Absent;
    };
    let Some(num) = line[idx + ",\"cksum\":".len()..].strip_suffix('}') else {
        // A line that mentions cksum but does not end with the field —
        // either torn mid-append (handled by tail-torn skipping) or
        // mangled; both are corrupt as far as the checksum goes.
        return Integrity::Corrupt;
    };
    let Ok(want) = num.parse::<u64>() else {
        return Integrity::Corrupt;
    };
    let original = format!("{}}}", &line[..idx]);
    if fnv1a(original.as_bytes()) == want {
        Integrity::Valid
    } else {
        Integrity::Corrupt
    }
}

/// Mid-file corruption found at [`JsonlFile::open`]: checksummed lines
/// whose content no longer matches their checksum. (A torn *tail* is
/// expected after a kill and tracked separately; corruption in the
/// middle of a journal is not — it means the file was altered after it
/// was written.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corruption {
    /// 1-based line number of the first corrupt line.
    pub first_line: usize,
    /// Total corrupt lines dropped from replay.
    pub count: usize,
}

/// An append-only JSONL file with torn-tail repair and checksum
/// verification, or an in-memory stand-in that accepts appends and
/// discards them (tests, throwaway runs).
#[derive(Debug)]
pub struct JsonlFile {
    path: Option<PathBuf>,
    /// The file ends mid-line (kill during append); the next record must
    /// start on a fresh line or it would merge with the torn tail.
    tail_torn: bool,
    /// Checksummed lines that failed verification at open.
    corruption: Option<Corruption>,
}

impl JsonlFile {
    /// A purely in-memory file: [`JsonlFile::append`] is a no-op.
    #[must_use]
    pub fn in_memory() -> Self {
        JsonlFile {
            path: None,
            tail_torn: false,
            corruption: None,
        }
    }

    /// Open (or create) an on-disk JSONL file, returning it together
    /// with every existing non-blank line for the caller to replay. The
    /// parent directory is created on demand. A file ending without a
    /// trailing newline is marked torn; the next append repairs it.
    ///
    /// Checksummed lines (see [`with_checksum`]) are verified: corrupt
    /// ones are dropped from the returned lines and reported through
    /// [`JsonlFile::corruption`]. A truncated final line without a
    /// trailing newline is torn, not corrupt, and is handed back for the
    /// caller's parser to skip as before.
    ///
    /// # Errors
    ///
    /// I/O errors creating the parent directory or reading the file.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<(Self, Vec<String>)> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = JsonlFile {
            path: Some(path.clone()),
            tail_torn: false,
            corruption: None,
        };
        let mut lines = Vec::new();
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                file.tail_torn = !text.is_empty() && !text.ends_with('\n');
                let complete = text
                    .lines()
                    .count()
                    .saturating_sub(usize::from(file.tail_torn));
                for (i, l) in text.lines().enumerate() {
                    if l.trim().is_empty() {
                        continue;
                    }
                    // The torn tail is exempt from checksum verification:
                    // it is an expected kill artifact, reported via the
                    // torn flag and skipped by the caller's parser.
                    if i < complete && verify_checksum(l) == Integrity::Corrupt {
                        let c = file.corruption.get_or_insert(Corruption {
                            first_line: i + 1,
                            count: 0,
                        });
                        c.count += 1;
                        continue;
                    }
                    lines.push(l.to_string());
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok((file, lines))
    }

    /// The on-disk path, if any.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Checksummed lines that failed verification at open (dropped from
    /// the replayed lines). `None` when the file was clean.
    #[must_use]
    pub fn corruption(&self) -> Option<&Corruption> {
        self.corruption.as_ref()
    }

    /// Append one line (the trailing newline is added here). If the file
    /// was opened with a torn tail, a repair newline is prepended so this
    /// record starts fresh. The whole record is issued as one `O_APPEND`
    /// write, so concurrent appenders never interleave bytes. A kill
    /// loses at most this final line.
    ///
    /// # Errors
    ///
    /// I/O errors appending to the file.
    pub fn append(&mut self, line: &str) -> io::Result<()> {
        self.append_impl(line, false)
    }

    /// [`JsonlFile::append`], then fsync before returning: the record is
    /// durable — not just visible — once this returns. Lease records use
    /// this so a claim another worker can observe survives a host crash.
    ///
    /// # Errors
    ///
    /// I/O errors appending to or syncing the file.
    pub fn append_durable(&mut self, line: &str) -> io::Result<()> {
        self.append_impl(line, true)
    }

    fn append_impl(&mut self, line: &str, durable: bool) -> io::Result<()> {
        if let Some(path) = &self.path {
            let mut f = OpenOptions::new().create(true).append(true).open(path)?;
            let mut buf = Vec::with_capacity(line.len() + 2);
            if std::mem::take(&mut self.tail_torn) {
                buf.push(b'\n');
            }
            buf.extend_from_slice(line.as_bytes());
            buf.push(b'\n');
            f.write_all(&buf)?;
            if durable {
                f.sync_all()?;
            }
        }
        Ok(())
    }

    /// Flush previously appended records to stable storage (fsync). A
    /// no-op for in-memory files and files never appended to.
    ///
    /// # Errors
    ///
    /// I/O errors opening or syncing the file.
    pub fn sync(&self) -> io::Result<()> {
        if let Some(path) = &self.path {
            match OpenOptions::new().append(true).open(path) {
                Ok(f) => f.sync_all()?,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// Format an f64 the way the runner's JSON does (plain `{v}`; `null` for
/// non-finite).
#[must_use]
pub fn format_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escape a string for inclusion in a JSON string literal (quotes not
/// included). Writers of journal lines with free-form string values
/// (worker ids, hostnames) must escape them so [`field`]'s scanning and
/// the checksum layer see well-formed lines.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Undo [`escape`] (the subset of JSON string escapes it emits, plus
/// `\uXXXX`, including UTF-16 surrogate pairs for astral-plane
/// characters such as emoji). Returns `None` for malformed escapes and
/// unpaired surrogates.
#[must_use]
pub fn unescape(s: &str) -> Option<String> {
    fn hex4(chars: &mut std::str::Chars<'_>) -> Option<u32> {
        let hex: String = chars.by_ref().take(4).collect();
        if hex.len() != 4 {
            return None;
        }
        u32::from_str_radix(&hex, 16).ok()
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let code = hex4(&mut chars)?;
                if (0xD800..0xDC00).contains(&code) {
                    // High surrogate: JSON encodes astral-plane characters
                    // as a \uXXXX\uXXXX pair; the pair decodes to one char.
                    // A high surrogate not followed by a low one is
                    // malformed JSON, not a decodable character.
                    if chars.next()? != '\\' || chars.next()? != 'u' {
                        return None;
                    }
                    let low = hex4(&mut chars)?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return None;
                    }
                    let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    out.push(char::from_u32(c)?);
                } else if (0xDC00..0xE000).contains(&code) {
                    return None; // unpaired low surrogate
                } else {
                    out.push(char::from_u32(code)?);
                }
            }
            _ => return None,
        }
    }
    Some(out)
}

/// The raw text of field `k` (between `"k":` and the end of the value).
/// Only valid for the flat single-level objects this module's users
/// write. String values are scanned with backslash-escape awareness, so
/// `\"` inside a value does not terminate it; non-string values end at
/// the next `,` or `}`.
#[must_use]
pub fn field(line: &str, k: &str) -> Option<String> {
    let pat = format!("\"{k}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(quoted) = rest.strip_prefix('"') {
        // Scan for the closing quote, honoring backslash escapes.
        let mut escaped = false;
        for (i, c) in quoted.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                return Some(rest[..i + 2].to_string());
            }
        }
        None
    } else {
        let end = rest.find([',', '}'])?;
        Some(rest[..end].to_string())
    }
}

/// Field `k` as a string (quotes stripped, escapes undone).
#[must_use]
pub fn string_field(line: &str, k: &str) -> Option<String> {
    let v = field(line, k)?;
    unescape(v.strip_prefix('"')?.strip_suffix('"')?)
}

/// Field `k` as a u64.
#[must_use]
pub fn u64_field(line: &str, k: &str) -> Option<u64> {
    field(line, k)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nupea-jsonl-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn in_memory_accepts_appends_without_a_path() {
        let mut f = JsonlFile::in_memory();
        assert!(f.path().is_none());
        f.append("{\"a\":1}").unwrap();
        f.append_durable("{\"a\":2}").unwrap();
        f.sync().unwrap();
    }

    #[test]
    fn field_helpers_parse_flat_objects() {
        let line = "{\"hash\":7,\"name\":\"spmv\",\"x\":null,\"last\":9}";
        assert_eq!(field(line, "hash").as_deref(), Some("7"));
        assert_eq!(field(line, "x").as_deref(), Some("null"));
        assert_eq!(field(line, "last").as_deref(), Some("9"));
        assert_eq!(string_field(line, "name").as_deref(), Some("spmv"));
        assert_eq!(u64_field(line, "hash"), Some(7));
        assert_eq!(field(line, "missing"), None);
        assert_eq!(string_field(line, "hash"), None);
    }

    #[test]
    fn field_handles_escaped_quotes_inside_strings() {
        // A worker id containing quotes, backslashes, and a comma — the
        // lease-record case the shard layer writes.
        let worker = "host\"7\",rack\\2";
        let line = format!(
            "{{\"worker\":\"{}\",\"epoch\":3,\"note\":\"tab\\there\"}}",
            escape(worker)
        );
        assert_eq!(string_field(&line, "worker").as_deref(), Some(worker));
        assert_eq!(u64_field(&line, "epoch"), Some(3));
        assert_eq!(string_field(&line, "note").as_deref(), Some("tab\there"));
        // The raw field text keeps the escapes.
        assert_eq!(
            field(&line, "worker").as_deref(),
            Some("\"host\\\"7\\\",rack\\\\2\"")
        );
    }

    #[test]
    fn field_rejects_unterminated_strings() {
        assert_eq!(field("{\"a\":\"unterminated", "a"), None);
        assert_eq!(field("{\"a\":\"ends-in-escape\\", "a"), None);
    }

    #[test]
    fn escape_round_trips() {
        for s in ["plain", "q\"q", "b\\b", "n\nn", "t\tt", "\u{1}", "héllo"] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s), "{s:?}");
        }
        assert_eq!(unescape("\\u0041").as_deref(), Some("A"));
        assert_eq!(unescape("\\q"), None, "unknown escape is malformed");
        assert_eq!(unescape("\\u00"), None, "short unicode escape");
        assert_eq!(unescape("dangling\\"), None);
    }

    #[test]
    fn unescape_decodes_surrogate_pairs() {
        // External JSON (the serve endpoints) encodes astral-plane chars
        // as UTF-16 surrogate pairs.
        assert_eq!(unescape("\\ud83d\\ude00").as_deref(), Some("😀"));
        assert_eq!(unescape("\\uD83D\\uDE00").as_deref(), Some("😀"));
        assert_eq!(unescape("a\\ud83d\\ude00b").as_deref(), Some("a😀b"));
        // Raw astral chars (what `escape` emits) still round-trip.
        for s in ["😀", "mixed 😀 and \\u0041 🚀", "𝔘𝔫𝔦"] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s), "{s:?}");
        }
        // Unpaired or malformed surrogates are rejected, not mangled.
        assert_eq!(unescape("\\ud83d"), None, "lone high surrogate");
        assert_eq!(unescape("\\ude00"), None, "lone low surrogate");
        assert_eq!(unescape("\\ud83dx"), None, "high then raw char");
        assert_eq!(unescape("\\ud83d\\n"), None, "high then other escape");
        assert_eq!(unescape("\\ud83d\\ud83d"), None, "high then high");
        assert_eq!(unescape("\\ud83d\\u0041"), None, "high then non-surrogate");
        assert_eq!(unescape("\\ud83d\\ude0"), None, "truncated low half");
    }

    #[test]
    fn format_f64_matches_runner_json() {
        assert_eq!(format_f64(1.5), "1.5");
        assert_eq!(format_f64(f64::NAN), "null");
        assert_eq!(format_f64(f64::INFINITY), "null");
    }

    #[test]
    fn checksums_round_trip_and_detect_tampering() {
        let line = "{\"shard\":3,\"epoch\":1,\"worker\":\"w0\"}";
        let checked = with_checksum(line);
        assert!(checked.starts_with("{\"shard\":3,"), "{checked}");
        assert_eq!(verify_checksum(&checked), Integrity::Valid);
        assert_eq!(verify_checksum(line), Integrity::Absent);
        let tampered = checked.replace("\"epoch\":1", "\"epoch\":2");
        assert_eq!(verify_checksum(&tampered), Integrity::Corrupt);
        // A truncated checksum field is corrupt, not valid.
        assert_eq!(
            verify_checksum(&checked[..checked.len() - 2]),
            Integrity::Corrupt
        );
    }

    #[test]
    fn torn_tail_is_repaired_on_next_append() {
        let dir = scratch("torn");
        let path = dir.join("t.jsonl");
        {
            let (mut f, lines) = JsonlFile::open(&path).unwrap();
            assert!(lines.is_empty());
            f.append("{\"a\":1}").unwrap();
        }
        // Kill mid-append: a torn tail with no newline.
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(b"{\"a\":2,\"tr")
            .unwrap();
        {
            let (mut f, lines) = JsonlFile::open(&path).unwrap();
            // The torn tail is still handed back; callers skip it at parse.
            assert_eq!(lines, vec!["{\"a\":1}", "{\"a\":2,\"tr"]);
            assert!(f.corruption().is_none(), "a torn tail is not corruption");
            f.append("{\"a\":3}").unwrap();
        }
        let (_, lines) = JsonlFile::open(&path).unwrap();
        assert_eq!(lines, vec!["{\"a\":1}", "{\"a\":2,\"tr", "{\"a\":3}"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_file_corruption_is_detected_and_dropped() {
        let dir = scratch("corrupt");
        let path = dir.join("c.jsonl");
        {
            let (mut f, _) = JsonlFile::open(&path).unwrap();
            f.append(&with_checksum("{\"k\":1,\"v\":10}")).unwrap();
            f.append(&with_checksum("{\"k\":2,\"v\":20}")).unwrap();
            f.append(&with_checksum("{\"k\":3,\"v\":30}")).unwrap();
        }
        // Flip a value in the *middle* of the file, keeping it parseable
        // JSON — exactly the damage a plain parser would replay happily.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches('\n').count(), 3);
        std::fs::write(&path, text.replace("\"v\":20", "\"v\":99")).unwrap();

        let (f, lines) = JsonlFile::open(&path).unwrap();
        assert_eq!(lines.len(), 2, "the corrupt line is dropped");
        assert!(lines.iter().all(|l| !l.contains("\"v\":99")));
        let c = f.corruption().expect("corruption reported");
        assert_eq!(c.first_line, 2);
        assert_eq!(c.count, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_checksummed_tail_is_torn_not_corrupt() {
        let dir = scratch("torn-cksum");
        let path = dir.join("t.jsonl");
        {
            let (mut f, _) = JsonlFile::open(&path).unwrap();
            f.append(&with_checksum("{\"k\":1}")).unwrap();
        }
        let full = std::fs::read_to_string(&path).unwrap();
        // Truncate mid-checksum, no trailing newline: a kill artifact.
        std::fs::write(&path, &full[..full.len() - 4]).unwrap();
        let (f, lines) = JsonlFile::open(&path).unwrap();
        assert!(f.corruption().is_none(), "torn tails are not corruption");
        assert_eq!(lines.len(), 1, "handed back for the parser to skip");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_durable_survives_reopen() {
        let dir = scratch("durable");
        let path = dir.join("d.jsonl");
        {
            let (mut f, _) = JsonlFile::open(&path).unwrap();
            f.append_durable(&with_checksum("{\"claim\":1}")).unwrap();
            f.sync().unwrap();
        }
        let (_, lines) = JsonlFile::open(&path).unwrap();
        assert_eq!(lines.len(), 1);
        assert_eq!(verify_checksum(&lines[0]), Integrity::Valid);
        std::fs::remove_dir_all(&dir).ok();
    }
}

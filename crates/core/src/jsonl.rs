//! Torn-tail-safe append-only JSONL files, shared by the DSE journal and
//! the fault-campaign journal.
//!
//! The workspace's resumable subsystems (design-space searches, fault
//! campaigns) persist progress as one flat JSON object per line. Two
//! invariants make that kill-and-resume safe:
//!
//! - **Append repair.** A `kill -9` mid-append leaves the file ending
//!   mid-line. [`JsonlFile::open`] detects the torn tail (no trailing
//!   newline) and the next [`JsonlFile::append`] starts on a fresh line,
//!   so the torn record corrupts nothing that follows it.
//! - **Replay tolerance.** [`JsonlFile::open`] hands back every
//!   non-blank line; callers parse each and simply skip (and count) the
//!   unparseable ones — a torn tail costs at most one record, never the
//!   file.
//!
//! The module also hosts the flat-object field helpers ([`field`],
//! [`string_field`], [`format_f64`]) used to hand-roll and re-parse those
//! lines; the workspace is dependency-free, so there is no serde.

use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// An append-only JSONL file with torn-tail repair, or an in-memory
/// stand-in that accepts appends and discards them (tests, throwaway
/// runs).
#[derive(Debug)]
pub struct JsonlFile {
    path: Option<PathBuf>,
    /// The file ends mid-line (kill during append); the next record must
    /// start on a fresh line or it would merge with the torn tail.
    tail_torn: bool,
}

impl JsonlFile {
    /// A purely in-memory file: [`JsonlFile::append`] is a no-op.
    #[must_use]
    pub fn in_memory() -> Self {
        JsonlFile {
            path: None,
            tail_torn: false,
        }
    }

    /// Open (or create) an on-disk JSONL file, returning it together
    /// with every existing non-blank line for the caller to replay. The
    /// parent directory is created on demand. A file ending without a
    /// trailing newline is marked torn; the next append repairs it.
    ///
    /// # Errors
    ///
    /// I/O errors creating the parent directory or reading the file.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<(Self, Vec<String>)> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = JsonlFile {
            path: Some(path.clone()),
            tail_torn: false,
        };
        let mut lines = Vec::new();
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                file.tail_torn = !text.is_empty() && !text.ends_with('\n');
                lines.extend(
                    text.lines()
                        .filter(|l| !l.trim().is_empty())
                        .map(str::to_string),
                );
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok((file, lines))
    }

    /// The on-disk path, if any.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Append one line (the trailing newline is added here). If the file
    /// was opened with a torn tail, a repair newline is written first so
    /// this record starts fresh. A kill loses at most this final line.
    ///
    /// # Errors
    ///
    /// I/O errors appending to the file.
    pub fn append(&mut self, line: &str) -> io::Result<()> {
        if let Some(path) = &self.path {
            let mut f = OpenOptions::new().create(true).append(true).open(path)?;
            if std::mem::take(&mut self.tail_torn) {
                f.write_all(b"\n")?;
            }
            f.write_all(line.as_bytes())?;
            f.write_all(b"\n")?;
        }
        Ok(())
    }
}

/// Format an f64 the way the runner's JSON does (plain `{v}`; `null` for
/// non-finite).
#[must_use]
pub fn format_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The raw text of field `k` (between `"k":` and the next `,"` or `}`).
/// Only valid for the flat single-level objects this module's users
/// write: string values must not contain `"` or `,`.
#[must_use]
pub fn field(line: &str, k: &str) -> Option<String> {
    let pat = format!("\"{k}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = if let Some(quoted) = rest.strip_prefix('"') {
        quoted.find('"')? + 2
    } else {
        rest.find([',', '}'])?
    };
    Some(rest[..end].to_string())
}

/// Field `k` as a string (quotes stripped).
#[must_use]
pub fn string_field(line: &str, k: &str) -> Option<String> {
    let v = field(line, k)?;
    v.strip_prefix('"')?.strip_suffix('"').map(str::to_string)
}

/// Field `k` as a u64.
#[must_use]
pub fn u64_field(line: &str, k: &str) -> Option<u64> {
    field(line, k)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_accepts_appends_without_a_path() {
        let mut f = JsonlFile::in_memory();
        assert!(f.path().is_none());
        f.append("{\"a\":1}").unwrap();
    }

    #[test]
    fn field_helpers_parse_flat_objects() {
        let line = "{\"hash\":7,\"name\":\"spmv\",\"x\":null,\"last\":9}";
        assert_eq!(field(line, "hash").as_deref(), Some("7"));
        assert_eq!(field(line, "x").as_deref(), Some("null"));
        assert_eq!(field(line, "last").as_deref(), Some("9"));
        assert_eq!(string_field(line, "name").as_deref(), Some("spmv"));
        assert_eq!(u64_field(line, "hash"), Some(7));
        assert_eq!(field(line, "missing"), None);
        assert_eq!(string_field(line, "hash"), None);
    }

    #[test]
    fn format_f64_matches_runner_json() {
        assert_eq!(format_f64(1.5), "1.5");
        assert_eq!(format_f64(f64::NAN), "null");
        assert_eq!(format_f64(f64::INFINITY), "null");
    }

    #[test]
    fn torn_tail_is_repaired_on_next_append() {
        let dir = std::env::temp_dir().join(format!("nupea-jsonl-{}", std::process::id()));
        let path = dir.join("t.jsonl");
        std::fs::remove_file(&path).ok();
        {
            let (mut f, lines) = JsonlFile::open(&path).unwrap();
            assert!(lines.is_empty());
            f.append("{\"a\":1}").unwrap();
        }
        // Kill mid-append: a torn tail with no newline.
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(b"{\"a\":2,\"tr")
            .unwrap();
        {
            let (mut f, lines) = JsonlFile::open(&path).unwrap();
            // The torn tail is still handed back; callers skip it at parse.
            assert_eq!(lines, vec!["{\"a\":1}", "{\"a\":2,\"tr"]);
            f.append("{\"a\":3}").unwrap();
        }
        let (_, lines) = JsonlFile::open(&path).unwrap();
        assert_eq!(lines, vec!["{\"a\":1}", "{\"a\":2,\"tr", "{\"a\":3}"]);
        std::fs::remove_dir_all(&dir).ok();
    }
}

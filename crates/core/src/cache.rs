//! Shared content-addressed compile-artifact cache.
//!
//! Compiling (multi-seed place-and-route) dominates the cost of a
//! request, but depends only on `(workload, system, heuristic)` — the
//! same observation the [`crate::runner`] exploits *within* one sweep.
//! This cache extends the reuse *across* independent requests (the serve
//! frontend, repeated CLI invocations in one process): artifacts are
//! keyed by the FNV-1a hash of a canonical config string
//! ([`config_key`] / [`config_hash`] — the same [`jsonl::fnv1a`] the DSE
//! and shard journals use for content addressing), shared as
//! [`Arc<Compiled>`], and evicted least-recently-used past a fixed
//! capacity.
//!
//! Concurrent requests for the same key are **single-flighted**: the
//! first takes a pending slot and compiles outside the lock; the rest
//! block on a condvar and receive the shared artifact, so a burst of
//! identical requests costs one PnR, not N. Failed compiles are *not*
//! cached (errors are config-dependent but cheap to rediscover relative
//! to the risk of pinning a transient failure), and every waiter of a
//! failed flight retries the compile itself.
//!
//! A per-key **circuit breaker** contains configs that fail compile
//! repeatedly: after [`BREAKER_THRESHOLD`] consecutive failures the key
//! is *open* and lookups fast-fail with a typed
//! [`PipelineError::FastFailed`] (the serve frontend's `422`) instead of
//! re-running PnR under single-flight — without it, a hostile or buggy
//! client replaying one bad config would burn a full multi-seed PnR per
//! request. The breaker is counter-based (deterministic, no wall
//! clock): every [`BREAKER_PROBE_EVERY`] fast-fails one probe compile is
//! let through (half-open); a success closes the breaker, a failure
//! re-opens it.

use crate::jsonl;
use crate::{Compiled, Heuristic, PipelineError, SystemConfig, Workload};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Canonical, human-readable config string an artifact is addressed by.
/// Every knob that can change the compile result is included; the
/// workload is identified structurally (name, parallelism, graph size,
/// memory allocation watermark) so the same kernel at different scales —
/// identical graph, bigger input image — keys differently.
#[must_use]
pub fn config_key(workload: &Workload, sys: &SystemConfig, heuristic: Heuristic) -> String {
    let dfg = workload.kernel.dfg();
    format!(
        "w={};par={};nodes={};edges={};memused={};fab={}x{}x{}t;topo={:?};domains={};\
         mem={},{},{},{},{},{},{};fifo={};outst={};seed={};effort={};div={:?};\
         stall={};avoid={:?};h={heuristic}",
        workload.name,
        workload.par,
        dfg.len(),
        dfg.num_edges(),
        workload.mem.used(),
        sys.fabric.rows(),
        sys.fabric.cols(),
        sys.fabric.tracks,
        sys.fabric.topology(),
        sys.fabric.num_domains(),
        sys.mem.mem_words,
        sys.mem.cache_words,
        sys.mem.line_words,
        sys.mem.ways,
        sys.mem.banks,
        sys.mem.hit_latency,
        sys.mem.miss_latency,
        sys.fifo_depth,
        sys.max_outstanding,
        sys.seed,
        sys.effort,
        sys.divider_override,
        sys.stall_window,
        sys.avoid,
    )
}

/// FNV-1a hash of [`config_key`] — the cache address of one artifact.
#[must_use]
pub fn config_hash(workload: &Workload, sys: &SystemConfig, heuristic: Heuristic) -> u64 {
    jsonl::fnv1a(config_key(workload, sys, heuristic).as_bytes())
}

/// Consecutive compile failures that open a key's circuit breaker.
pub const BREAKER_THRESHOLD: u32 = 3;
/// Fast-fails between half-open probe compiles on an open breaker.
pub const BREAKER_PROBE_EVERY: u64 = 32;

/// Counters describing the cache's life so far (reported at `/stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Lookups answered from a cached artifact (including waiters that
    /// received a single-flighted compile another request started).
    pub hits: u64,
    /// Lookups that found no artifact and triggered (or joined a failed)
    /// compile.
    pub misses: u64,
    /// Place-and-route runs actually performed.
    pub compiles: u64,
    /// Artifacts evicted by the LRU cap.
    pub evictions: u64,
    /// Artifacts currently resident.
    pub entries: usize,
    /// Lookups refused by an open circuit breaker without compiling.
    pub fast_fails: u64,
    /// Keys whose breaker is currently open.
    pub open_breakers: usize,
}

#[derive(Debug)]
struct Slot {
    artifact: Arc<Compiled>,
    last_used: u64,
}

/// Consecutive-failure record for one key (the circuit breaker).
#[derive(Debug, Default)]
struct FailState {
    /// Consecutive compile failures; the breaker is open at
    /// [`BREAKER_THRESHOLD`].
    consecutive: u32,
    /// Fast-fails since the last half-open probe.
    since_probe: u64,
    /// The most recent failure, preserved for fast-fail messages.
    last_error: String,
}

#[derive(Debug, Default)]
struct Inner {
    slots: HashMap<u64, Slot>,
    /// Keys with a compile in flight; waiters sleep on the condvar.
    pending: Vec<u64>,
    /// Logical LRU clock, bumped per lookup.
    tick: u64,
    /// Per-key consecutive-failure records (the circuit breakers).
    failures: HashMap<u64, FailState>,
    stats: CacheStats,
}

/// A bounded, thread-safe artifact cache. See the [module docs](self).
#[derive(Debug)]
pub struct ArtifactCache {
    inner: Mutex<Inner>,
    flight_done: Condvar,
    cap: usize,
}

impl ArtifactCache {
    /// A cache holding at most `cap` artifacts (minimum 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        ArtifactCache {
            inner: Mutex::new(Inner::default()),
            flight_done: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Look up the artifact for `hash` (from [`config_hash`]), compiling
    /// `(workload, sys, heuristic)` on a miss. Returns the artifact plus
    /// whether it was served from cache. Concurrent misses on one key
    /// are single-flighted; see the [module docs](self).
    ///
    /// # Errors
    ///
    /// Returns the [`PipelineError`] of a failed compile. Failures are
    /// never cached.
    pub fn get_or_compile(
        &self,
        hash: u64,
        workload: &Arc<Workload>,
        sys: &Arc<SystemConfig>,
        heuristic: Heuristic,
    ) -> (Result<Arc<Compiled>, PipelineError>, bool) {
        let mut inner = self.inner.lock().expect("artifact cache poisoned");
        loop {
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(slot) = inner.slots.get_mut(&hash) {
                slot.last_used = tick;
                let artifact = Arc::clone(&slot.artifact);
                inner.stats.hits += 1;
                return (Ok(artifact), true);
            }
            if inner.pending.contains(&hash) {
                // Another request is compiling this key: wait for it and
                // re-check (a hit if it succeeded, our own flight if not).
                inner = self
                    .flight_done
                    .wait(inner)
                    .expect("artifact cache poisoned");
                continue;
            }
            // Circuit breaker: a key with BREAKER_THRESHOLD consecutive
            // compile failures fast-fails instead of re-running PnR,
            // except for one half-open probe every BREAKER_PROBE_EVERY
            // refusals.
            if let Some(fail) = inner.failures.get_mut(&hash) {
                if fail.consecutive >= BREAKER_THRESHOLD {
                    if fail.since_probe < BREAKER_PROBE_EVERY {
                        fail.since_probe += 1;
                        let err = PipelineError::FastFailed {
                            failures: fail.consecutive,
                            message: fail.last_error.clone(),
                        };
                        inner.stats.fast_fails += 1;
                        return (Err(err), false);
                    }
                    // Probe slot: fall through to a real compile.
                    fail.since_probe = 0;
                }
            }
            inner.stats.misses += 1;
            inner.pending.push(hash);
            drop(inner);
            let result = crate::compile_impl(workload, sys, heuristic);
            let mut inner = self.inner.lock().expect("artifact cache poisoned");
            inner.pending.retain(|&k| k != hash);
            let out = match result {
                Ok(compiled) => {
                    inner.stats.compiles += 1;
                    inner.failures.remove(&hash); // breaker closes on success
                    let artifact = Arc::new(compiled);
                    let tick = inner.tick;
                    inner.slots.insert(
                        hash,
                        Slot {
                            artifact: Arc::clone(&artifact),
                            last_used: tick,
                        },
                    );
                    self.evict_past_cap(&mut inner);
                    Ok(artifact)
                }
                Err(e) => {
                    let fail = inner.failures.entry(hash).or_default();
                    fail.consecutive = fail.consecutive.saturating_add(1);
                    fail.since_probe = 0;
                    fail.last_error = e.to_string();
                    Err(e)
                }
            };
            self.flight_done.notify_all();
            return (out, false);
        }
    }

    /// Drop least-recently-used slots until at most `cap` remain.
    fn evict_past_cap(&self, inner: &mut Inner) {
        while inner.slots.len() > self.cap {
            let Some((&victim, _)) = inner.slots.iter().min_by_key(|(_, s)| s.last_used) else {
                return;
            };
            inner.slots.remove(&victim);
            inner.stats.evictions += 1;
        }
    }

    /// A snapshot of the cache counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("artifact cache poisoned");
        CacheStats {
            entries: inner.slots.len(),
            open_breakers: inner
                .failures
                .values()
                .filter(|f| f.consecutive >= BREAKER_THRESHOLD)
                .count(),
            ..inner.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use nupea_kernels::workloads::sparse;

    fn fixture(par: usize, seed: u64) -> (Arc<Workload>, Arc<SystemConfig>) {
        (
            Arc::new(sparse::spmv(Scale::Test, par)),
            Arc::new(SystemConfig::builder().seed(seed).effort(20).build()),
        )
    }

    #[test]
    fn config_key_separates_every_axis() {
        let (w1, s1) = fixture(1, 7);
        let (w2, s2) = fixture(2, 8);
        let h = Heuristic::CriticalityAware;
        assert_eq!(config_key(&w1, &s1, h), config_key(&w1, &s1, h));
        let base = config_hash(&w1, &s1, h);
        assert_ne!(base, config_hash(&w2, &s1, h), "par must key");
        assert_ne!(base, config_hash(&w1, &s2, h), "seed must key");
        assert_ne!(
            base,
            config_hash(&w1, &s1, Heuristic::DomainUnaware),
            "heuristic must key"
        );
        let big = Arc::new(sparse::spmv(Scale::Bench, 1));
        assert_ne!(base, config_hash(&big, &s1, h), "scale must key");
    }

    #[test]
    fn hit_miss_and_lru_eviction_accounting() {
        let cache = ArtifactCache::new(2);
        let (w, sys) = fixture(1, 1);
        let h = Heuristic::DomainUnaware;
        let k1 = config_hash(&w, &sys, h);

        let (a, cached) = cache.get_or_compile(k1, &w, &sys, h);
        assert!(a.is_ok() && !cached, "first lookup compiles");
        let (b, cached) = cache.get_or_compile(k1, &w, &sys, h);
        assert!(cached, "second lookup hits");
        assert!(
            Arc::ptr_eq(&a.unwrap(), &b.unwrap()),
            "hits share one artifact"
        );
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                compiles: 1,
                evictions: 0,
                entries: 1,
                fast_fails: 0,
                open_breakers: 0,
            }
        );

        // Two more distinct keys overflow cap 2; k1 (least recently
        // used after we touch k2) is evicted.
        let (w2, sys2) = fixture(1, 2);
        let k2 = config_hash(&w2, &sys2, h);
        let _ = cache.get_or_compile(k2, &w2, &sys2, h);
        let _ = cache.get_or_compile(k1, &w, &sys, h); // k1 now most recent
        let (w3, sys3) = fixture(1, 3);
        let k3 = config_hash(&w3, &sys3, h);
        let _ = cache.get_or_compile(k3, &w3, &sys3, h);
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        let (_, k1_cached) = cache.get_or_compile(k1, &w, &sys, h);
        assert!(k1_cached, "recently-used key survived eviction");
        let (_, k2_cached) = cache.get_or_compile(k2, &w2, &sys2, h);
        assert!(!k2_cached, "LRU key was the victim");
    }

    #[test]
    fn failed_compiles_are_not_cached() {
        let cache = ArtifactCache::new(4);
        let (w, _) = fixture(1, 1);
        // A degenerate config fails validation inside compile_impl.
        let bad = Arc::new(SystemConfig::builder().fifo_depth(0).build());
        let h = Heuristic::DomainUnaware;
        let k = config_hash(&w, &bad, h);
        let (r, cached) = cache.get_or_compile(k, &w, &bad, h);
        assert!(r.is_err() && !cached);
        let (r, cached) = cache.get_or_compile(k, &w, &bad, h);
        assert!(r.is_err() && !cached, "failure was not pinned");
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.compiles, 0, "only successful PnR counts");
    }

    #[test]
    fn breaker_opens_after_repeated_failures_and_probes_half_open() {
        let cache = ArtifactCache::new(4);
        let (w, _) = fixture(1, 1);
        let bad = Arc::new(SystemConfig::builder().fifo_depth(0).build());
        let h = Heuristic::DomainUnaware;
        let k = config_hash(&w, &bad, h);

        // Below the threshold every lookup really compiles (and fails).
        for i in 0..BREAKER_THRESHOLD {
            let (r, _) = cache.get_or_compile(k, &w, &bad, h);
            assert!(
                !matches!(r, Err(PipelineError::FastFailed { .. })),
                "attempt {i} still compiles"
            );
        }
        assert_eq!(cache.stats().open_breakers, 1, "breaker open at threshold");

        // Open: lookups fast-fail with the typed error, zero PnR cost.
        let misses_before = cache.stats().misses;
        let (r, cached) = cache.get_or_compile(k, &w, &bad, h);
        assert!(!cached);
        match r {
            Err(PipelineError::FastFailed { failures, message }) => {
                assert_eq!(failures, BREAKER_THRESHOLD);
                assert!(!message.is_empty(), "carries the last compile error");
            }
            other => panic!("expected FastFailed, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!(stats.fast_fails, 1);
        assert_eq!(stats.misses, misses_before, "no compile was attempted");

        // After BREAKER_PROBE_EVERY refusals one probe compile runs
        // (still failing here, so the breaker stays open).
        for _ in 1..BREAKER_PROBE_EVERY {
            let (r, _) = cache.get_or_compile(k, &w, &bad, h);
            assert!(matches!(r, Err(PipelineError::FastFailed { .. })));
        }
        let (probe, _) = cache.get_or_compile(k, &w, &bad, h);
        assert!(
            !matches!(probe, Err(PipelineError::FastFailed { .. })),
            "probe slot reaches the real compile"
        );
        assert_eq!(cache.stats().open_breakers, 1, "failed probe re-opens");

        // A success on a *different* key is unaffected, and success
        // closes that key's breaker state entirely.
        let (w2, good) = fixture(1, 2);
        let k2 = config_hash(&w2, &good, h);
        let (r, _) = cache.get_or_compile(k2, &w2, &good, h);
        assert!(r.is_ok(), "healthy keys bypass the breaker");
        assert_eq!(cache.stats().open_breakers, 1, "only the bad key is open");
    }

    #[test]
    fn concurrent_identical_requests_compile_once() {
        let cache = Arc::new(ArtifactCache::new(4));
        let (w, sys) = fixture(1, 5);
        let h = Heuristic::CriticalityAware;
        let k = config_hash(&w, &sys, h);
        std::thread::scope(|sc| {
            for _ in 0..8 {
                let (cache, w, sys) = (Arc::clone(&cache), Arc::clone(&w), Arc::clone(&sys));
                sc.spawn(move || {
                    let (r, _) = cache.get_or_compile(k, &w, &sys, h);
                    assert!(r.is_ok());
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.compiles, 1, "burst single-flighted into one PnR");
        assert_eq!(stats.hits + stats.misses, 8);
        assert_eq!(stats.entries, 1);
    }
}

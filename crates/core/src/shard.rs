//! Crash-tolerant multi-process sharding over the JSONL journals.
//!
//! The DSE and fault-campaign subsystems already survive `kill -9` inside
//! one process: every result is journaled append-only and replayed on
//! restart. This module removes the remaining single point of failure —
//! one process owning the whole candidate/injection space — by turning
//! the journals into a lease-based work queue that any number of worker
//! processes can drain concurrently, with work stealing when a worker
//! dies and a deterministic merge at the end.
//!
//! # Protocol
//!
//! The unit of work is a **shard**: a stable partition of the work-item
//! space by FNV-1a hash ([`shard_of`]). Workers coordinate exclusively
//! through an append-only **coordination journal** of lease records:
//!
//! - `claim(shard, epoch, worker, deadline)` — a worker proposes to own
//!   `shard` at `epoch`. The fold accepts a claim iff its epoch is
//!   strictly greater than the shard's current epoch; when two workers
//!   race to the same epoch, **file order** decides (the journal is
//!   `O_APPEND`, so concurrent appends serialize), and the loser observes
//!   it lost on re-read.
//! - `renew(shard, epoch, worker, deadline)` — heartbeat: extends the
//!   lease deadline. Accepted iff the epoch *and* worker match the
//!   shard's current owner — a stale worker's late renew is ignored
//!   (**epoch fencing**).
//! - `done(shard, epoch, worker)` — the shard's results are fully
//!   journaled. Same fencing rule; a done shard ignores all later
//!   records.
//!
//! A shard is **claimable** when it is not done and either was never
//! claimed or its lease deadline has passed — so a SIGKILLed worker's
//! shards are stolen one TTL after its last heartbeat, at a higher
//! epoch. The stale worker (if merely stalled, not dead) discovers the
//! fence on its next [`ShardCtx::checkpoint`] and abandons the shard.
//!
//! Claims and dones are written with [`JsonlFile::append_durable`]
//! (fsync before visible): a claim another worker may act on must
//! survive a host crash, or two workers could both believe they own a
//! shard after recovery.
//!
//! # Merge determinism
//!
//! Result-journal lines are tagged with their shard and epoch
//! ([`tag_line`]) and checksummed. [`merge_by_key`] folds any multiset
//! of per-shard journal lines into one winner per key: highest epoch
//! wins, ties go to the lexicographically smallest line. That rule is a
//! pure function of the *set* of records — permutation-invariant and
//! duplicate-proof — so a stolen-and-reexecuted shard (same rows twice,
//! possibly at two epochs) merges to exactly what a single-process run
//! produces, regardless of worker count, death order, or steal
//! interleaving. Callers then emit winners in their canonical order
//! (workload declaration order × injection index for campaigns; frontier
//! sort for DSE), which makes the merged reports byte-identical to the
//! `shards = 1` outputs.
//!
//! See `DESIGN.md` §11 for the full protocol rationale and timing rules.

use std::collections::HashMap;
use std::hash::Hash;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::jsonl::{self, JsonlFile};
use crate::runner::RetryPolicy;

/// Milliseconds since the Unix epoch — the protocol's wall clock. Lease
/// deadlines compare wall-clock times across processes on one host;
/// sub-second skew is absorbed by the TTL.
#[must_use]
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
}

/// The two clocks the lease protocol needs, kept deliberately separate:
///
/// * **wall** milliseconds go into journal records (claim/renew
///   deadlines), because deadlines are compared *across processes* and a
///   file is the only shared medium;
/// * **monotonic** milliseconds drive *local* elapsed-interval decisions
///   (the heartbeat cadence in [`ShardCtx::checkpoint`]).
///
/// Using the wall clock for the local decisions was a bug: a backwards
/// NTP step made `now - last_beat` saturate to zero, silently suppressing
/// renewals until the wall clock caught back up — long enough for the
/// lease to expire and a live shard to be spuriously stolen. Injectable
/// for tests; live code uses [`SystemClock`].
pub trait LeaseClock: std::fmt::Debug {
    /// Milliseconds since the Unix epoch (journal deadlines only).
    fn wall_ms(&self) -> u64;
    /// Milliseconds on a monotonic, never-backwards clock (local
    /// elapsed-interval decisions only). The origin is arbitrary.
    fn mono_ms(&self) -> u64;
}

/// The live clock: `SystemTime` for wall time, `Instant` for monotonic.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose monotonic origin is now.
    #[must_use]
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl LeaseClock for SystemClock {
    fn wall_ms(&self) -> u64 {
        now_ms()
    }

    fn mono_ms(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// The shard a work item with stable hash `hash` belongs to.
#[must_use]
pub fn shard_of(hash: u64, shards: u32) -> u32 {
    let n = u64::from(shards.max(1));
    u32::try_from(hash % n).expect("shard index < shards fits u32")
}

/// The coordination journal of a sharded run rooted at `dir`.
#[must_use]
pub fn coord_path(dir: &Path) -> PathBuf {
    dir.join("coord.jsonl")
}

/// Shard `shard`'s result journal in a sharded run rooted at `dir`.
#[must_use]
pub fn shard_journal(dir: &Path, shard: u32) -> PathBuf {
    dir.join(format!("shard-{shard:04}.jsonl"))
}

/// Tag a result-journal line with the shard and epoch that produced it
/// and append a checksum. Parsers ignore the extra fields; the merge
/// layer ([`merge_by_key`]) uses the epoch to fence out stale writers.
#[must_use]
pub fn tag_line(line: &str, shard: u32, epoch: u64) -> String {
    let Some(body) = line.strip_suffix('}') else {
        return line.to_string();
    };
    jsonl::with_checksum(&format!("{body},\"shard\":{shard},\"epoch\":{epoch}}}"))
}

/// The epoch a journal line was written at (0 for untagged lines, which
/// sorts below every real epoch — single-process journals merge fine).
#[must_use]
pub fn line_epoch(line: &str) -> u64 {
    jsonl::u64_field(line, "epoch").unwrap_or(0)
}

/// Fold journal lines (from any number of shard journals, in any order,
/// with duplicates) into one winning line per key: highest epoch wins,
/// ties go to the lexicographically smallest line. Pure function of the
/// line multiset — permutation-invariant, so merged outputs cannot
/// depend on worker count or death order. Lines `key_of` cannot key
/// (torn tails, foreign records) are skipped.
pub fn merge_by_key<K: Hash + Eq>(
    lines: impl IntoIterator<Item = String>,
    mut key_of: impl FnMut(&str) -> Option<K>,
) -> HashMap<K, String> {
    let mut best: HashMap<K, String> = HashMap::new();
    for line in lines {
        let Some(key) = key_of(&line) else { continue };
        match best.entry(key) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(line);
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let (have, new) = (line_epoch(o.get()), line_epoch(&line));
                if new > have || (new == have && line.as_str() < o.get().as_str()) {
                    o.insert(line);
                }
            }
        }
    }
    best
}

/// Knobs for a sharded run: how the space is partitioned and how leases
/// are timed. The defaults suit multi-minute shards on one host; tests
/// and the chaos harness shrink the TTL to keep steal latency low.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Number of shards the work-item space is partitioned into.
    /// `shards <= 1` means the sharded entry points degrade to the
    /// single-process path (no coordination journal at all).
    pub shards: u32,
    /// Unique worker id (unique per *live* process — the protocol fences
    /// by `(worker, epoch)`, so a reused id from a dead worker is safe,
    /// but two live workers must never share one). The CLIs derive it
    /// from the pid.
    pub worker: String,
    /// Lease time-to-live: a shard whose lease is this old (since the
    /// last heartbeat) is considered abandoned and may be stolen.
    pub ttl_ms: u64,
    /// Heartbeat interval — how often a running worker renews its lease
    /// via [`ShardCtx::checkpoint`]. Keep well under `ttl_ms`.
    pub heartbeat_ms: u64,
    /// Backoff for lease-acquisition contention: after losing a claim
    /// race, the worker sleeps `backoff_cap(2ms, attempt)` (capped at one
    /// heartbeat) before rescanning. Saturating arithmetic, so unbounded
    /// contention plateaus instead of overflowing.
    pub retry: RetryPolicy,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            shards: 1,
            worker: format!("w{}", std::process::id()),
            ttl_ms: 10_000,
            heartbeat_ms: 2_500,
            retry: RetryPolicy::Backoff {
                factor: 2,
                max_retries: 10,
            },
        }
    }
}

impl ShardOptions {
    /// Options for an `n`-shard run with default lease timing.
    #[must_use]
    pub fn with_shards(n: u32) -> Self {
        ShardOptions {
            shards: n,
            ..ShardOptions::default()
        }
    }
}

/// Folded coordination state of one shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardState {
    /// Highest accepted claim epoch (0 = never claimed).
    pub epoch: u64,
    /// Worker holding the current lease.
    pub owner: String,
    /// Lease deadline (ms since epoch); past it the shard is stealable.
    pub deadline_ms: u64,
    /// The shard's results are fully journaled.
    pub done: bool,
}

/// A lease one worker holds on one shard at one epoch. Appends to the
/// shard's result journal should be tagged `tag_line(line, shard, epoch)`
/// so the merge can fence out records written after the lease was lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// The leased shard.
    pub shard: u32,
    /// The claim epoch — strictly increases across steals.
    pub epoch: u64,
    /// The holder's worker id.
    pub worker: String,
}

/// The coordination journal plus its folded per-shard state. All methods
/// that consult deadlines take an explicit `now_ms` so the protocol is
/// unit-testable with a synthetic clock; live callers pass [`now_ms`]`()`.
#[derive(Debug)]
pub struct Coordinator {
    path: PathBuf,
    file: JsonlFile,
    shards: u32,
    states: Vec<ShardState>,
}

impl Coordinator {
    /// Open (or create) the coordination journal at `path` for an
    /// `shards`-way partition and fold the existing records.
    ///
    /// # Errors
    ///
    /// I/O errors opening or reading the journal.
    pub fn open(path: impl Into<PathBuf>, shards: u32) -> io::Result<Self> {
        let path = path.into();
        let mut c = Coordinator {
            path,
            file: JsonlFile::in_memory(),
            shards: shards.max(1),
            states: Vec::new(),
        };
        c.reload()?;
        Ok(c)
    }

    /// Re-read the journal and re-fold all shard states. Call before any
    /// decision that depends on other workers' appends.
    ///
    /// # Errors
    ///
    /// I/O errors re-reading the journal.
    pub fn reload(&mut self) -> io::Result<()> {
        let (file, lines) = JsonlFile::open(&self.path)?;
        self.file = file;
        self.states = vec![ShardState::default(); self.shards as usize];
        for line in &lines {
            self.fold(line);
        }
        Ok(())
    }

    /// Apply one lease record to the folded state (file order = arrival
    /// order; see the module docs for the acceptance rules).
    fn fold(&mut self, line: &str) {
        let Some(rec) = jsonl::string_field(line, "rec") else {
            return; // torn tail or foreign line
        };
        let Some(shard) = jsonl::u64_field(line, "shard") else {
            return;
        };
        let Some(st) = self.states.get_mut(shard as usize) else {
            return; // out-of-range shard (journal from a different split)
        };
        let (Some(epoch), Some(worker)) = (
            jsonl::u64_field(line, "epoch"),
            jsonl::string_field(line, "worker"),
        ) else {
            return;
        };
        if st.done {
            return; // a done shard ignores everything after
        }
        match rec.as_str() {
            "claim" if epoch > st.epoch => {
                st.epoch = epoch;
                st.owner = worker;
                st.deadline_ms = jsonl::u64_field(line, "deadline").unwrap_or(0);
            }
            "renew" if epoch == st.epoch && worker == st.owner => {
                st.deadline_ms = jsonl::u64_field(line, "deadline").unwrap_or(st.deadline_ms);
            }
            "done" if epoch == st.epoch && worker == st.owner => {
                st.done = true;
            }
            _ => {} // fenced (stale epoch / usurped owner) or unknown rec
        }
    }

    /// Number of shards this coordinator partitions over.
    #[must_use]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Folded state of `shard` (as of the last [`Coordinator::reload`]).
    #[must_use]
    pub fn state(&self, shard: u32) -> &ShardState {
        &self.states[shard as usize]
    }

    /// Every shard is done (as of the last reload).
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.states.iter().all(|s| s.done)
    }

    /// Shards not yet done (as of the last reload).
    #[must_use]
    pub fn remaining(&self) -> u32 {
        u32::try_from(self.states.iter().filter(|s| !s.done).count()).unwrap_or(u32::MAX)
    }

    /// `shard` may be claimed at `now`: not done, and never claimed or
    /// lease-expired.
    #[must_use]
    pub fn claimable(&self, shard: u32, now: u64) -> bool {
        let st = &self.states[shard as usize];
        !st.done && (st.epoch == 0 || now > st.deadline_ms)
    }

    /// Attempt to claim `shard` for `worker` with a `ttl_ms` lease.
    /// Durably appends a claim at the next epoch, then re-reads to see
    /// who won the race (file order decides). Returns the lease on win,
    /// `None` on a lost race or a shard that stopped being claimable.
    ///
    /// # Errors
    ///
    /// I/O errors appending to or re-reading the journal.
    pub fn try_claim(
        &mut self,
        shard: u32,
        worker: &str,
        ttl_ms: u64,
        now: u64,
    ) -> io::Result<Option<Lease>> {
        self.reload()?;
        if !self.claimable(shard, now) {
            return Ok(None);
        }
        let epoch = self.states[shard as usize].epoch + 1;
        let deadline = now.saturating_add(ttl_ms);
        self.append_record("claim", shard, epoch, worker, Some(deadline))?;
        self.reload()?;
        let st = &self.states[shard as usize];
        if st.epoch == epoch && st.owner == worker {
            Ok(Some(Lease {
                shard,
                epoch,
                worker: worker.to_string(),
            }))
        } else {
            Ok(None)
        }
    }

    /// Renew `lease` with a fresh `ttl_ms` deadline. Returns `false` —
    /// without appending — when the lease has been fenced (another
    /// worker claimed a higher epoch): the caller must abandon the shard.
    ///
    /// # Errors
    ///
    /// I/O errors appending to or re-reading the journal.
    pub fn renew(&mut self, lease: &Lease, ttl_ms: u64, now: u64) -> io::Result<bool> {
        self.reload()?;
        if !self.holds(lease) {
            return Ok(false);
        }
        let deadline = now.saturating_add(ttl_ms);
        self.append_record(
            "renew",
            lease.shard,
            lease.epoch,
            &lease.worker,
            Some(deadline),
        )?;
        self.reload()?;
        Ok(true)
    }

    /// Record `lease`'s shard as done (its results are fully journaled
    /// and synced). Returns `false` when the lease was fenced first — the
    /// usurper owns the shard now and will finish it itself.
    ///
    /// # Errors
    ///
    /// I/O errors appending to or re-reading the journal.
    pub fn mark_done(&mut self, lease: &Lease) -> io::Result<bool> {
        self.reload()?;
        if !self.holds(lease) {
            return Ok(false);
        }
        self.append_record("done", lease.shard, lease.epoch, &lease.worker, None)?;
        self.reload()?;
        Ok(true)
    }

    /// `lease` still matches the folded owner/epoch of its shard.
    fn holds(&self, lease: &Lease) -> bool {
        let st = &self.states[lease.shard as usize];
        !st.done && st.epoch == lease.epoch && st.owner == lease.worker
    }

    fn append_record(
        &mut self,
        rec: &str,
        shard: u32,
        epoch: u64,
        worker: &str,
        deadline: Option<u64>,
    ) -> io::Result<()> {
        let deadline = deadline.map_or(String::new(), |d| format!(",\"deadline\":{d}"));
        let line = format!(
            "{{\"rec\":\"{rec}\",\"shard\":{shard},\"epoch\":{epoch},\"worker\":\"{}\"{deadline}}}",
            jsonl::escape(worker)
        );
        // Durability before visibility: another worker acting on this
        // record must never outlive it across a crash.
        self.file.append_durable(&jsonl::with_checksum(&line))
    }
}

/// What one [`run_worker`] invocation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Leases won (first claims and steals).
    pub claimed: u32,
    /// Shards run to completion and marked done.
    pub completed: u32,
    /// Claims at epoch > 1 — shards stolen from a dead or stalled worker.
    pub stolen: u32,
    /// Shards abandoned mid-run because the lease was fenced.
    pub fenced: u32,
    /// Claim races lost to another worker.
    pub lost_races: u32,
}

/// Handle a shard body uses to heartbeat while it works. Call
/// [`ShardCtx::checkpoint`] at every convenient boundary (per work item);
/// it renews the lease when a heartbeat is due and reports fencing.
#[derive(Debug)]
pub struct ShardCtx<'a> {
    coord: &'a mut Coordinator,
    clock: &'a dyn LeaseClock,
    lease: Lease,
    ttl_ms: u64,
    heartbeat_ms: u64,
    /// Monotonic time of the last renewal — compared against `mono_ms`,
    /// never against wall time, so NTP steps can't stretch or shrink the
    /// heartbeat cadence.
    last_beat_mono: u64,
    fenced: bool,
}

impl ShardCtx<'_> {
    /// The leased shard index.
    #[must_use]
    pub fn shard(&self) -> u32 {
        self.lease.shard
    }

    /// The lease epoch — tag every result-journal line with it
    /// ([`tag_line`]).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.lease.epoch
    }

    /// Renew the lease if a heartbeat interval has elapsed. Returns
    /// `false` once the lease is fenced — the body must stop writing for
    /// this shard and return (its tagged records will lose the merge).
    ///
    /// # Errors
    ///
    /// I/O errors renewing the lease.
    pub fn checkpoint(&mut self) -> io::Result<bool> {
        if self.fenced {
            return Ok(false);
        }
        // Elapsed-interval decision on the monotonic clock; only the
        // journaled deadline uses wall time.
        let mono = self.clock.mono_ms();
        if mono.saturating_sub(self.last_beat_mono) < self.heartbeat_ms {
            return Ok(true);
        }
        let held = self
            .coord
            .renew(&self.lease, self.ttl_ms, self.clock.wall_ms())?;
        self.fenced = !held;
        self.last_beat_mono = mono;
        Ok(held)
    }
}

/// Drain the shard queue: repeatedly claim a claimable shard, run `body`
/// on it, and mark it done, until every shard is done. Blocks (sleeping
/// one heartbeat between scans) while other live workers hold unfinished
/// shards, and steals their shards if their leases expire. Returns when
/// [`Coordinator::all_done`] — so any single surviving worker finishes
/// the whole queue.
///
/// `body` receives a [`ShardCtx`] and must: replay/append the shard's
/// result journal idempotently, call [`ShardCtx::checkpoint`] between
/// work items, and return early (Ok) if checkpoint reports fencing.
///
/// # Errors
///
/// I/O errors from the coordination journal, or the first error `body`
/// returns.
pub fn run_worker(
    coord_path: &Path,
    opts: &ShardOptions,
    mut body: impl FnMut(&mut ShardCtx) -> io::Result<()>,
) -> io::Result<WorkerStats> {
    let mut coord = Coordinator::open(coord_path, opts.shards)?;
    let clock = SystemClock::new();
    let mut stats = WorkerStats::default();
    // Start the scan at a worker-dependent offset so a fleet starting
    // simultaneously doesn't stampede shard 0.
    let offset = shard_of(jsonl::fnv1a(opts.worker.as_bytes()), opts.shards);
    let mut contention: u32 = 0;
    loop {
        coord.reload()?;
        if coord.all_done() {
            return Ok(stats);
        }
        let now = clock.wall_ms();
        let claimable = (0..opts.shards)
            .map(|i| (i + offset) % opts.shards)
            .find(|&s| coord.claimable(s, now));
        let Some(shard) = claimable else {
            // Other workers hold every unfinished shard: wait for one to
            // finish or for a lease to expire.
            std::thread::sleep(Duration::from_millis(opts.heartbeat_ms.max(1)));
            continue;
        };
        let Some(lease) = coord.try_claim(shard, &opts.worker, opts.ttl_ms, now)? else {
            // Lost the race: back off (capped at one heartbeat) and rescan.
            stats.lost_races += 1;
            contention = contention.saturating_add(1);
            let delay = opts.retry.backoff_cap(2, contention).min(opts.heartbeat_ms);
            std::thread::sleep(Duration::from_millis(delay.max(1)));
            continue;
        };
        contention = 0;
        stats.claimed += 1;
        if lease.epoch > 1 {
            stats.stolen += 1;
        }
        let mut ctx = ShardCtx {
            coord: &mut coord,
            clock: &clock,
            lease: lease.clone(),
            ttl_ms: opts.ttl_ms,
            heartbeat_ms: opts.heartbeat_ms,
            last_beat_mono: clock.mono_ms(),
            fenced: false,
        };
        body(&mut ctx)?;
        let fenced = ctx.fenced;
        if fenced {
            stats.fenced += 1;
            continue;
        }
        if coord.mark_done(&lease)? {
            stats.completed += 1;
        } else {
            stats.fenced += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nupea-shard-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn shard_of_partitions_stably() {
        assert_eq!(shard_of(10, 4), 2);
        assert_eq!(shard_of(10, 1), 0);
        assert_eq!(shard_of(10, 0), 0, "0 shards treated as 1");
        let h = jsonl::fnv1a(b"spmv;i3;s64");
        assert_eq!(shard_of(h, 13), shard_of(h, 13), "deterministic");
    }

    #[test]
    fn tag_line_round_trips_epoch_and_stays_parseable() {
        let tagged = tag_line("{\"k\":1,\"v\":2}", 3, 7);
        assert_eq!(jsonl::u64_field(&tagged, "k"), Some(1));
        assert_eq!(jsonl::u64_field(&tagged, "shard"), Some(3));
        assert_eq!(line_epoch(&tagged), 7);
        assert_eq!(jsonl::verify_checksum(&tagged), jsonl::Integrity::Valid);
        assert_eq!(line_epoch("{\"k\":1}"), 0, "untagged lines are epoch 0");
    }

    #[test]
    fn merge_by_key_is_permutation_invariant_and_epoch_fenced() {
        let a = tag_line("{\"k\":1,\"v\":10}", 0, 1); // stale epoch, divergent
        let b = tag_line("{\"k\":1,\"v\":11}", 0, 2); // winner: higher epoch
        let c = tag_line("{\"k\":2,\"v\":20}", 1, 1);
        let dup = c.clone(); // stolen-and-reexecuted duplicate row
        let torn = "{\"k\":".to_string(); // unkeyable (torn before the value)
        let perms: [Vec<&String>; 3] = [
            vec![&a, &b, &c, &dup, &torn],
            vec![&torn, &dup, &c, &b, &a],
            vec![&b, &dup, &a, &torn, &c],
        ];
        for p in perms {
            let merged = merge_by_key(p.into_iter().cloned(), |l| jsonl::u64_field(l, "k"));
            assert_eq!(merged.len(), 2);
            assert_eq!(merged[&1], b, "higher epoch wins over stale divergent");
            assert_eq!(merged[&2], c);
        }
        // Same epoch, divergent content: lexicographically smallest wins,
        // independent of encounter order.
        let x = tag_line("{\"k\":9,\"v\":1}", 0, 3);
        let y = tag_line("{\"k\":9,\"v\":2}", 0, 3);
        let w = x.clone().min(y.clone());
        for pair in [[&x, &y], [&y, &x]] {
            let merged = merge_by_key(pair.into_iter().cloned(), |l| jsonl::u64_field(l, "k"));
            assert_eq!(merged[&9], w);
        }
    }

    #[test]
    fn claim_renew_done_fold_with_synthetic_clock() {
        let dir = scratch("fold");
        let path = dir.join("coord.jsonl");
        let mut c = Coordinator::open(&path, 2).unwrap();
        assert!(c.claimable(0, 100), "fresh shard is claimable");
        assert!(!c.all_done());

        let lease = c.try_claim(0, "w1", 1_000, 100).unwrap().expect("won");
        assert_eq!(lease.epoch, 1);
        assert!(!c.claimable(0, 500), "leased and in TTL");
        assert!(c.claimable(0, 1_101), "past deadline: stealable");
        assert!(c.claimable(1, 0), "other shard untouched");

        assert!(c.renew(&lease, 1_000, 900).unwrap());
        assert!(!c.claimable(0, 1_500), "renew extended the deadline");

        assert!(c.mark_done(&lease).unwrap());
        assert!(c.state(0).done);
        assert!(!c.claimable(0, u64::MAX), "done shards are never claimable");
        assert_eq!(c.remaining(), 1);

        // A second coordinator over the same file folds identically.
        let c2 = Coordinator::open(&path, 2).unwrap();
        assert_eq!(c2.state(0), c.state(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn steal_fences_the_stale_worker() {
        let dir = scratch("fence");
        let path = dir.join("coord.jsonl");
        let mut c = Coordinator::open(&path, 1).unwrap();
        let stale = c.try_claim(0, "w1", 1_000, 0).unwrap().expect("w1 claims");

        // w1 stalls past its deadline; w2 steals at epoch 2.
        let thief = c.try_claim(0, "w2", 1_000, 2_000).unwrap().expect("steal");
        assert_eq!(thief.epoch, 2);
        assert_eq!(c.state(0).owner, "w2");

        // w1 wakes up: its renew and done are fenced, without appending.
        assert!(!c.renew(&stale, 1_000, 2_100).unwrap());
        assert!(!c.mark_done(&stale).unwrap());
        assert!(!c.state(0).done, "stale done was ignored");

        // And even a *directly appended* stale record is ignored at fold
        // (the late-append case: w1 raced its record in before noticing).
        c.append_record("renew", 0, 1, "w1", Some(9_999_999))
            .unwrap();
        c.reload().unwrap();
        assert_eq!(c.state(0).deadline_ms, 3_000, "stale renew fenced");

        assert!(c.mark_done(&thief).unwrap());
        assert!(c.state(0).done);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn claim_race_is_decided_by_file_order() {
        let dir = scratch("race");
        let path = dir.join("coord.jsonl");
        let mut a = Coordinator::open(&path, 1).unwrap();
        let mut b = Coordinator::open(&path, 1).unwrap();
        // Both see the shard claimable and append claims at epoch 1; the
        // coordinator that appended first wins, the other observes loss.
        a.append_record("claim", 0, 1, "wa", Some(1_000)).unwrap();
        let lost = b.try_claim(0, "wb", 1_000, 0).unwrap();
        assert!(lost.is_none(), "wb's same-epoch claim is fenced");
        a.reload().unwrap();
        assert_eq!(a.state(0).owner, "wa");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_worker_drains_all_shards_single_process() {
        let dir = scratch("drain");
        let path = dir.join("coord.jsonl");
        let opts = ShardOptions {
            shards: 5,
            worker: "solo".into(),
            ttl_ms: 5_000,
            heartbeat_ms: 1,
            ..ShardOptions::default()
        };
        let mut seen = Vec::new();
        let stats = run_worker(&path, &opts, |ctx| {
            seen.push(ctx.shard());
            assert!(ctx.checkpoint().unwrap(), "solo worker is never fenced");
            Ok(())
        })
        .unwrap();
        assert_eq!(stats.claimed, 5);
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.stolen, 0);
        assert_eq!(stats.fenced, 0);
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        // A second worker over the finished queue does nothing.
        let stats2 = run_worker(&path, &opts, |_| panic!("no work left")).unwrap();
        assert_eq!(stats2.claimed, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_worker_steals_expired_leases() {
        let dir = scratch("steal");
        let path = dir.join("coord.jsonl");
        // A "dead" worker claimed shard 0 long ago and never heartbeat:
        // fabricate an expired lease.
        {
            let mut c = Coordinator::open(&path, 2).unwrap();
            c.append_record("claim", 0, 1, "dead", Some(0)).unwrap();
        }
        let opts = ShardOptions {
            shards: 2,
            worker: "live".into(),
            ttl_ms: 5_000,
            heartbeat_ms: 1,
            ..ShardOptions::default()
        };
        let stats = run_worker(&path, &opts, |ctx| {
            if ctx.shard() == 0 {
                assert_eq!(ctx.epoch(), 2, "steal bumps the epoch");
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.stolen, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Test clock whose wall and monotonic readings are set directly.
    #[derive(Debug)]
    struct FakeClock {
        wall: std::cell::Cell<u64>,
        mono: std::cell::Cell<u64>,
    }

    impl LeaseClock for FakeClock {
        fn wall_ms(&self) -> u64 {
            self.wall.get()
        }
        fn mono_ms(&self) -> u64 {
            self.mono.get()
        }
    }

    #[test]
    fn heartbeats_survive_backwards_wall_clock_steps() {
        let dir = scratch("ntp");
        let path = dir.join("coord.jsonl");
        let mut coord = Coordinator::open(&path, 1).unwrap();
        let clock = FakeClock {
            wall: std::cell::Cell::new(100_000),
            mono: std::cell::Cell::new(50),
        };
        let lease = coord
            .try_claim(0, "w1", 1_000, clock.wall_ms())
            .unwrap()
            .expect("w1 claims");
        let mut ctx = ShardCtx {
            coord: &mut coord,
            clock: &clock,
            lease,
            ttl_ms: 1_000,
            heartbeat_ms: 100,
            last_beat_mono: clock.mono_ms(),
            fenced: false,
        };

        // Within a heartbeat interval: no renewal due.
        clock.mono.set(100);
        assert!(ctx.checkpoint().unwrap());
        assert_eq!(ctx.coord.state(0).deadline_ms, 101_000, "no renew yet");

        // NTP steps the wall clock back 30s while the monotonic clock
        // crosses the heartbeat interval. The old wall-clock cadence
        // (`wall - last_beat` saturating to 0) would suppress this
        // renewal — and every subsequent one for 30s, letting the 1s TTL
        // lapse and the live shard be stolen. The monotonic cadence must
        // renew on schedule.
        clock.wall.set(70_000);
        clock.mono.set(151);
        assert!(ctx.checkpoint().unwrap());
        assert_eq!(
            ctx.coord.state(0).deadline_ms,
            71_000,
            "renewed: journal deadline follows the (stepped) wall clock"
        );

        // Cadence stays monotonic after the step: the next beat is due
        // one interval of *monotonic* time later, not when the wall
        // clock recovers.
        clock.mono.set(200);
        assert!(ctx.checkpoint().unwrap());
        assert_eq!(ctx.coord.state(0).deadline_ms, 71_000, "within interval");
        clock.wall.set(70_001);
        clock.mono.set(252);
        assert!(ctx.checkpoint().unwrap());
        assert_eq!(ctx.coord.state(0).deadline_ms, 71_001, "renewed again");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn worker_ids_with_quotes_survive_the_journal() {
        let dir = scratch("quote");
        let path = dir.join("coord.jsonl");
        let worker = "host\"a\",1";
        let mut c = Coordinator::open(&path, 1).unwrap();
        let lease = c.try_claim(0, worker, 1_000, 0).unwrap().expect("claims");
        assert_eq!(c.state(0).owner, worker);
        assert!(c.renew(&lease, 1_000, 10).unwrap());
        let c2 = Coordinator::open(&path, 1).unwrap();
        assert_eq!(c2.state(0).owner, worker);
        std::fs::remove_dir_all(&dir).ok();
    }
}

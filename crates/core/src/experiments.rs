//! Shared experiment machinery for the benchmark harness: the memory-model
//! matrix of §6, normalization, geometric means, and table rendering.

use crate::{Compiled, Workload};
use nupea_kernels::workloads::{all_workloads, Scale, WorkloadSpec};
use nupea_pnr::Heuristic;
use nupea_sim::MemoryModel;

/// Geometric mean of a slice (1.0 for empty input).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// The baselines of Fig. 11: Ideal, UPEA2, NUMA-UPEA2 (plus Monaco itself).
pub fn primary_models() -> Vec<MemoryModel> {
    vec![
        MemoryModel::IDEAL,
        MemoryModel::Nupea,
        MemoryModel::Upea(2),
        MemoryModel::NumaUpea(2),
    ]
}

/// Compile a workload for a memory model: Monaco uses the
/// criticality-aware heuristic (effcc); UPEA/NUMA baselines have no
/// domains to exploit, so they compile domain-unaware (§6).
pub fn heuristic_for(model: MemoryModel) -> Heuristic {
    match model {
        MemoryModel::Nupea => Heuristic::CriticalityAware,
        MemoryModel::Upea(_) | MemoryModel::NumaUpea(_) => Heuristic::DomainUnaware,
    }
}

/// The standard bench-scale workload suite.
pub fn bench_suite() -> Vec<(WorkloadSpec, Workload)> {
    all_workloads()
        .into_iter()
        .map(|spec| {
            let w = spec.build_default(Scale::Bench);
            (spec, w)
        })
        .collect()
}

/// Per-PE activity: `(pe, firings)` sorted busiest-first, from a run's
/// per-node firing counts and the placement. Useful for spotting
/// utilization hot spots (e.g. saturated D0 columns).
pub fn pe_utilization(
    workload: &Workload,
    compiled: &Compiled,
    stats: &nupea_sim::RunStats,
) -> Vec<(nupea_fabric::PeId, u64)> {
    let mut per_pe: std::collections::HashMap<nupea_fabric::PeId, u64> =
        std::collections::HashMap::new();
    for (i, &f) in stats.firings_per_node.iter().enumerate() {
        *per_pe.entry(compiled.placed.pe_of[i]).or_default() += f;
    }
    let _ = workload;
    let mut v: Vec<_> = per_pe.into_iter().collect();
    v.sort_by_key(|&(pe, f)| (std::cmp::Reverse(f), pe.0));
    v
}

/// Render an aligned text table; `rows` are (label, cells).
pub fn render_table(title: &str, headers: &[String], rows: &[(String, Vec<String>)]) -> String {
    use std::fmt::Write;
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    let label_w = rows
        .iter()
        .map(|(l, _)| l.len())
        .chain([8])
        .max()
        .unwrap_or(8);
    for (_, cells) in rows {
        for (i, cell) in cells.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut s = String::new();
    let _ = writeln!(s, "== {title} ==");
    let _ = write!(s, "{:label_w$}", "");
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(s, "  {h:>w$}");
    }
    let _ = writeln!(s);
    for (label, cells) in rows {
        let _ = write!(s, "{label:label_w$}");
        for (cell, w) in cells.iter().zip(&widths) {
            let _ = write!(s, "  {cell:>w$}");
        }
        let _ = writeln!(s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn heuristic_mapping_matches_paper() {
        assert_eq!(
            heuristic_for(MemoryModel::Nupea),
            Heuristic::CriticalityAware
        );
        assert_eq!(
            heuristic_for(MemoryModel::Upea(2)),
            Heuristic::DomainUnaware
        );
        assert_eq!(
            heuristic_for(MemoryModel::NumaUpea(3)),
            Heuristic::DomainUnaware
        );
    }

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            "demo",
            &["a".into(), "longheader".into()],
            &[("row1".into(), vec!["1".into(), "2".into()])],
        );
        assert!(t.contains("demo"));
        assert!(t.contains("longheader"));
    }

    #[test]
    fn pe_utilization_accounts_for_all_firings() {
        let w = nupea_kernels::workloads::sparse::spmv(Scale::Test, 1);
        let sys = crate::SystemConfig::monaco_12x12();
        let c = sys.compile(&w, Heuristic::CriticalityAware).unwrap();
        let stats = c.simulate(MemoryModel::Nupea).unwrap();
        let util = pe_utilization(&w, &c, &stats);
        let total: u64 = util.iter().map(|&(_, f)| f).sum();
        assert_eq!(total, stats.firings);
        assert!(
            util.windows(2).all(|w| w[0].1 >= w[1].1),
            "sorted busiest-first"
        );
    }
}

//! Fault-injection campaigns with graceful degradation (DESIGN.md §9).
//!
//! A [`FaultCampaign`] closes the resilience loop that PR 2's detection
//! machinery opened: it samples hundreds of seeded injections from a
//! [`FaultPlan`], runs each against the compiled workload, classifies
//! what the system did about it, and — for detected resource faults —
//! exercises **spare-PE recovery**: the failed resources become a
//! [`crate::SystemConfig::avoid`] set, placement re-runs around them
//! (critical loads keep their NUPEA domain when spare slots exist, and
//! fall back to the next-best domain with a logged criticality
//! downgrade), and the recovered run's degraded-mode slowdown is
//! measured against the fault-free golden run.
//!
//! Outcome classes, per injection:
//!
//! - [`OutcomeClass::Masked`] — the injected run completed and its sink
//!   streams *and* final memory are bit-identical to the golden run.
//! - [`OutcomeClass::Recovered`] — the fault was detected (watchdog
//!   stall, deadlock, memory fault, exhausted cycle budget, or a
//!   differential output mismatch) and recovery produced golden-identical
//!   outputs: re-place-and-route around the avoid-set for resource
//!   faults, plain re-execution for transients.
//! - [`OutcomeClass::Hang`] — detected but not recovered: the avoid-set
//!   does not fit ([`nupea_pnr::PnrError::Unplaceable`]), the recovered
//!   run still mismatched, or the fault has no spare resource (a failed
//!   memory bank).
//! - [`OutcomeClass::Sdc`] — silent data corruption: a *transient* fault
//!   completed with no error signal but wrong outputs, caught only by
//!   the campaign's differential sink/memory comparison. Resource faults
//!   that complete with wrong outputs are *detected* by that same
//!   comparison (it is one of the deployment-side detectors), so only
//!   transients can land here — which is why the PE-failures-only smoke
//!   preset asserts zero SDCs.
//!
//! Determinism: the injection set is a pure function of `(seed,
//! workload, index)` and every simulation is deterministic, so the same
//! seed and plan reproduce a byte-identical resilience report. Campaigns
//! journal per-injection records through [`crate::jsonl`], making long
//! sweeps kill-and-resume safe exactly like DSE searches.

use crate::jsonl::{self, JsonlFile};
use crate::runner::{parallel_map, RetryPolicy, RunErrorKind};
use crate::shard::{self, ShardOptions, WorkerStats};
use crate::{Compiled, Heuristic, PipelineError, SimOptions, SystemConfig};
use nupea_fabric::{DomainId, Fabric, PeId};
use nupea_kernels::workloads::{all_workloads, Scale, Workload};
use nupea_sim::{
    FaultClasses, FaultConfig, FaultContext, FaultKind, FaultPlan, MemoryModel, RunStats, SimError,
    SimMemory,
};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// What the system did about one injected fault (see the
/// [module docs](self) for the full semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutcomeClass {
    /// Completed with golden-identical outputs.
    Masked,
    /// Detected, and recovery reproduced the golden outputs.
    Recovered,
    /// Detected, but not recovered.
    Hang,
    /// Completed silently with wrong outputs (transient corruption).
    Sdc,
}

impl OutcomeClass {
    /// All classes, in report order.
    pub const ALL: [OutcomeClass; 4] = [
        OutcomeClass::Masked,
        OutcomeClass::Recovered,
        OutcomeClass::Hang,
        OutcomeClass::Sdc,
    ];

    /// Stable journal/CSV label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            OutcomeClass::Masked => "masked",
            OutcomeClass::Recovered => "recovered",
            OutcomeClass::Hang => "hang",
            OutcomeClass::Sdc => "sdc",
        }
    }

    /// Inverse of [`OutcomeClass::label`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        OutcomeClass::ALL.into_iter().find(|c| c.label() == s)
    }
}

impl fmt::Display for OutcomeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How the recovery attempt for one detected fault went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryOutcome {
    /// No recovery was attempted (masked or silent outcomes, or a fault
    /// with no spare resource to fall back on).
    NotApplicable,
    /// Re-placed around the avoid-set; outputs matched golden.
    Replaced,
    /// Transient fault; plain re-execution matched golden.
    Retried,
    /// The avoid-set exhausted fabric capacity
    /// ([`nupea_pnr::PnrError::Unplaceable`]).
    Unplaceable,
    /// Recovery ran but its outputs still mismatched golden.
    StillWrong,
}

impl RecoveryOutcome {
    /// All outcomes, in a stable order.
    pub const ALL: [RecoveryOutcome; 5] = [
        RecoveryOutcome::NotApplicable,
        RecoveryOutcome::Replaced,
        RecoveryOutcome::Retried,
        RecoveryOutcome::Unplaceable,
        RecoveryOutcome::StillWrong,
    ];

    /// Stable journal/CSV label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryOutcome::NotApplicable => "none",
            RecoveryOutcome::Replaced => "replaced",
            RecoveryOutcome::Retried => "retried",
            RecoveryOutcome::Unplaceable => "unplaceable",
            RecoveryOutcome::StillWrong => "still-wrong",
        }
    }

    /// Inverse of [`RecoveryOutcome::label`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        RecoveryOutcome::ALL.into_iter().find(|r| r.label() == s)
    }
}

impl fmt::Display for RecoveryOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Campaign parameters. Start from [`CampaignConfig::smoke`] or
/// [`CampaignConfig::full`] and adjust fields directly.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CampaignConfig {
    /// Master seed for the [`FaultPlan`] (and the journal guard).
    pub seed: u64,
    /// Fault classes the plan samples from.
    pub classes: FaultClasses,
    /// Injections per workload.
    pub injections: u32,
    /// Placement heuristic for golden compiles and recovery re-places.
    pub heuristic: Heuristic,
    /// Memory model for every run.
    pub model: MemoryModel,
    /// Workload scale (campaigns default to `Scale::Test`).
    pub scale: Scale,
    /// Watchdog quiescence window for *injected* runs — small, so hangs
    /// are detected quickly instead of spinning to the cycle budget.
    pub stall_window: u64,
    /// Injected-run cycle budget as a multiple of the golden run's
    /// cycles (plus one stall window of slack).
    pub budget_factor: u64,
    /// Capped-backoff re-checks when an injected run exhausts its budget
    /// (each re-check multiplies the budget by 4): distinguishes "very
    /// slow but alive" from a genuine hang.
    pub max_rechecks: u32,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Journal path for kill-and-resume campaigns (None = in-memory).
    pub journal: Option<PathBuf>,
}

impl CampaignConfig {
    /// The CI smoke preset: PE failures only (always detectable, always
    /// placement-recoverable, never an SDC), one injection per workload,
    /// fixed seed.
    #[must_use]
    pub fn smoke() -> Self {
        CampaignConfig {
            seed: 0xFA_017,
            classes: FaultClasses::PE_FAILURES,
            injections: 1,
            heuristic: Heuristic::CriticalityAware,
            model: MemoryModel::Nupea,
            scale: Scale::Test,
            stall_window: 20_000,
            budget_factor: 4,
            max_rechecks: 2,
            threads: 0,
            journal: None,
        }
    }

    /// The full preset: every fault class, a couple dozen injections per
    /// workload — hundreds of seeded injections across Table 1.
    #[must_use]
    pub fn full() -> Self {
        CampaignConfig {
            classes: FaultClasses::ALL,
            injections: 24,
            ..CampaignConfig::smoke()
        }
    }
}

/// One classified injection. Every field is journal-stable (labels and
/// integers only, no free-text error strings), so a journal-resumed
/// campaign reproduces a byte-identical report.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionRecord {
    /// Workload name.
    pub workload: String,
    /// Injection index within the workload (plan input).
    pub index: u32,
    /// The injected fault.
    pub fault: FaultKind,
    /// Classified outcome.
    pub outcome: OutcomeClass,
    /// The detection signal's error kind, when detection was an error
    /// (None for masked/SDC outcomes and differential-mismatch
    /// detections).
    pub error: Option<RunErrorKind>,
    /// How the recovery attempt went.
    pub recovery: RecoveryOutcome,
    /// Fault-free golden completion time (system cycles).
    pub golden_cycles: u64,
    /// Injected-run completion time, when it completed.
    pub injected_cycles: Option<u64>,
    /// Recovered-run completion time, for recovered outcomes.
    pub recovered_cycles: Option<u64>,
    /// Critical loads whose recovered placement landed in a slower
    /// NUPEA domain than the original (logged criticality downgrades).
    pub downgrades: u32,
}

impl InjectionRecord {
    /// Degraded-mode cycle ratio vs the golden run: recovered/golden for
    /// recovered outcomes, injected/golden for runs that completed,
    /// None for hangs.
    #[must_use]
    pub fn slowdown(&self) -> Option<f64> {
        let num = match self.outcome {
            OutcomeClass::Recovered => self.recovered_cycles?,
            OutcomeClass::Masked | OutcomeClass::Sdc => self.injected_cycles?,
            OutcomeClass::Hang => return None,
        };
        // golden_cycles > 0 for any run that produced work.
        Some(num as f64 / self.golden_cycles.max(1) as f64)
    }

    /// One flat JSON object, also the journal line format. `seed` guards
    /// journal replay against stale files from a different plan.
    #[must_use]
    pub fn to_line(&self, seed: u64) -> String {
        let opt = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |x| x.to_string());
        format!(
            concat!(
                "{{\"workload\":\"{}\",\"index\":{},\"seed\":{},\"fault\":\"{}\",",
                "\"outcome\":\"{}\",\"error\":{},\"recovery\":\"{}\",",
                "\"golden_cycles\":{},\"injected_cycles\":{},\"recovered_cycles\":{},",
                "\"downgrades\":{}}}"
            ),
            self.workload,
            self.index,
            seed,
            self.fault.desc(),
            self.outcome.label(),
            self.error
                .map_or_else(|| "null".to_string(), |e| format!("\"{}\"", e.label())),
            self.recovery.label(),
            self.golden_cycles,
            opt(self.injected_cycles),
            opt(self.recovered_cycles),
            self.downgrades,
        )
    }

    /// Parse a journal line back into `(seed, record)`. None for
    /// anything malformed (torn tails must not be fatal).
    #[must_use]
    pub fn parse_line(line: &str) -> Option<(u64, InjectionRecord)> {
        let seed = jsonl::u64_field(line, "seed")?;
        let opt = |k: &str| -> Option<Option<u64>> {
            match jsonl::field(line, k)?.as_str() {
                "null" => Some(None),
                v => Some(Some(v.parse().ok()?)),
            }
        };
        let error = match jsonl::field(line, "error")?.as_str() {
            "null" => None,
            _ => Some(RunErrorKind::parse(&jsonl::string_field(line, "error")?)?),
        };
        Some((
            seed,
            InjectionRecord {
                workload: jsonl::string_field(line, "workload")?,
                index: u32::try_from(jsonl::u64_field(line, "index")?).ok()?,
                fault: FaultKind::parse_desc(&jsonl::string_field(line, "fault")?)?,
                outcome: OutcomeClass::parse(&jsonl::string_field(line, "outcome")?)?,
                error,
                recovery: RecoveryOutcome::parse(&jsonl::string_field(line, "recovery")?)?,
                golden_cycles: jsonl::u64_field(line, "golden_cycles")?,
                injected_cycles: opt("injected_cycles")?,
                recovered_cycles: opt("recovered_cycles")?,
                downgrades: u32::try_from(jsonl::u64_field(line, "downgrades")?).ok()?,
            },
        ))
    }
}

/// The resilience report: every classified injection plus aggregates.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The plan seed the campaign ran with.
    pub seed: u64,
    /// Classified injections, in (workload, index) order.
    pub records: Vec<InjectionRecord>,
}

impl CampaignReport {
    /// Number of injections classified as `class`.
    #[must_use]
    pub fn count(&self, class: OutcomeClass) -> usize {
        self.records.iter().filter(|r| r.outcome == class).count()
    }

    /// Mean degraded-mode slowdown over recovered injections (None when
    /// nothing recovered).
    #[must_use]
    pub fn mean_degraded_slowdown(&self) -> Option<f64> {
        let s: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.outcome == OutcomeClass::Recovered)
            .filter_map(InjectionRecord::slowdown)
            .collect();
        if s.is_empty() {
            None
        } else {
            Some(s.iter().sum::<f64>() / s.len() as f64)
        }
    }

    /// Worst degraded-mode slowdown over recovered injections.
    #[must_use]
    pub fn max_degraded_slowdown(&self) -> Option<f64> {
        self.records
            .iter()
            .filter(|r| r.outcome == OutcomeClass::Recovered)
            .filter_map(InjectionRecord::slowdown)
            .fold(None, |m, x| Some(m.map_or(x, |m: f64| m.max(x))))
    }

    /// The whole report as one JSON document (deterministic bytes for a
    /// given seed + plan — the CI smoke job compares two runs with
    /// `cmp`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let fmt_opt = |v: Option<f64>| v.map_or_else(|| "null".to_string(), jsonl::format_f64);
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!(
            "  \"counts\": {{\"masked\": {}, \"recovered\": {}, \"hang\": {}, \"sdc\": {}}},\n",
            self.count(OutcomeClass::Masked),
            self.count(OutcomeClass::Recovered),
            self.count(OutcomeClass::Hang),
            self.count(OutcomeClass::Sdc),
        ));
        out.push_str(&format!(
            "  \"mean_degraded_slowdown\": {},\n",
            fmt_opt(self.mean_degraded_slowdown())
        ));
        out.push_str(&format!(
            "  \"max_degraded_slowdown\": {},\n",
            fmt_opt(self.max_degraded_slowdown())
        ));
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 == self.records.len() { "" } else { "," };
            out.push_str(&format!("    {}{comma}\n", r.to_line(self.seed)));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// CSV export, one row per injection.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "workload,index,fault,outcome,error,recovery,golden_cycles,\
             injected_cycles,recovered_cycles,slowdown,downgrades\n",
        );
        let opt = |v: Option<u64>| v.map_or_else(String::new, |x| x.to_string());
        for r in &self.records {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}\n",
                r.workload,
                r.index,
                r.fault.desc(),
                r.outcome.label(),
                r.error.map_or("", |e| e.label()),
                r.recovery.label(),
                r.golden_cycles,
                opt(r.injected_cycles),
                opt(r.recovered_cycles),
                r.slowdown().map_or_else(String::new, |s| format!("{s:.4}")),
                r.downgrades,
            ));
        }
        out
    }

    /// Human-readable summary table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fault campaign: {} injections, seed {:#x}\n",
            self.records.len(),
            self.seed
        ));
        out.push_str(&format!(
            "{:<10} {:>7} {:>9} {:>5} {:>4}  worst-slowdown\n",
            "workload", "masked", "recovered", "hang", "sdc"
        ));
        let mut names: Vec<&str> = Vec::new();
        for r in &self.records {
            if !names.contains(&r.workload.as_str()) {
                names.push(&r.workload);
            }
        }
        for name in names {
            let rows: Vec<&InjectionRecord> =
                self.records.iter().filter(|r| r.workload == name).collect();
            let n = |c: OutcomeClass| rows.iter().filter(|r| r.outcome == c).count();
            let worst = rows
                .iter()
                .filter(|r| r.outcome == OutcomeClass::Recovered)
                .filter_map(|r| r.slowdown())
                .fold(None::<f64>, |m, x| Some(m.map_or(x, |m| m.max(x))));
            out.push_str(&format!(
                "{name:<10} {:>7} {:>9} {:>5} {:>4}  {}\n",
                n(OutcomeClass::Masked),
                n(OutcomeClass::Recovered),
                n(OutcomeClass::Hang),
                n(OutcomeClass::Sdc),
                worst.map_or_else(|| "-".to_string(), |w| format!("{w:.2}x")),
            ));
        }
        out.push_str(&format!(
            "total: {} masked, {} recovered, {} hang, {} sdc\n",
            self.count(OutcomeClass::Masked),
            self.count(OutcomeClass::Recovered),
            self.count(OutcomeClass::Hang),
            self.count(OutcomeClass::Sdc),
        ));
        out
    }
}

/// Campaign failures. Per-injection problems never abort a campaign
/// (they classify as outcomes); only a broken golden baseline or journal
/// I/O does.
#[derive(Debug)]
pub enum CampaignError {
    /// A workload's fault-free golden compile or run failed — there is
    /// no baseline to classify against.
    Golden {
        /// The workload that failed.
        workload: String,
        /// What went wrong.
        error: PipelineError,
    },
    /// Journal I/O failed.
    Io(std::io::Error),
    /// A sharded merge found no record for an injection — the shard set
    /// was merged before every shard finished (see
    /// [`FaultCampaign::merge_sharded`]).
    Incomplete {
        /// The workload missing a record.
        workload: String,
        /// The injection index missing a record.
        index: u32,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Golden { workload, error } => {
                write!(f, "golden run failed for {workload}: {error}")
            }
            CampaignError::Io(e) => write!(f, "journal i/o: {e}"),
            CampaignError::Incomplete { workload, index } => {
                write!(
                    f,
                    "sharded merge incomplete: no record for {workload} injection {index}"
                )
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Golden { error, .. } => Some(error),
            CampaignError::Io(e) => Some(e),
            CampaignError::Incomplete { .. } => None,
        }
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}

/// A workload's fault-free baseline: the artifact, its golden outputs,
/// and the resource context the plan samples against.
struct Golden {
    workload: Workload,
    compiled: Compiled,
    stats: RunStats,
    mem: SimMemory,
    ctx: FaultContext,
}

/// The campaign runner: samples, injects, classifies, recovers.
pub struct FaultCampaign {
    cfg: CampaignConfig,
    sys: SystemConfig,
    workloads: Vec<Workload>,
}

impl FaultCampaign {
    /// A campaign over the Monaco 12×12 system. With no explicit
    /// [`FaultCampaign::workload`] calls, [`FaultCampaign::run`] covers
    /// all 13 Table 1 workloads at the configured scale.
    #[must_use]
    pub fn new(cfg: CampaignConfig) -> Self {
        FaultCampaign {
            cfg,
            sys: SystemConfig::monaco_12x12(),
            workloads: Vec::new(),
        }
    }

    /// Replace the base system configuration (golden runs use it as-is;
    /// injected runs override `fault` and `stall_window`).
    #[must_use]
    pub fn with_system(mut self, sys: SystemConfig) -> Self {
        self.sys = sys;
        self
    }

    /// Add one workload (default: all 13 of Table 1).
    pub fn workload(&mut self, w: Workload) -> &mut Self {
        self.workloads.push(w);
        self
    }

    /// Run the whole campaign: golden baselines in parallel, then every
    /// injection in parallel, journaling each as it classifies.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Golden`] when a fault-free baseline fails,
    /// [`CampaignError::Io`] on journal I/O errors.
    pub fn run(&self) -> Result<CampaignReport, CampaignError> {
        let workloads = self.resolved_workloads();
        let threads = if self.cfg.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.cfg.threads
        };

        // Phase 1: fault-free goldens, one per workload.
        let goldens = parallel_map(threads, workloads.len(), |i| self.golden(&workloads[i]));
        let mut baselines = Vec::with_capacity(goldens.len());
        for g in goldens {
            baselines.push(g?);
        }

        // Journal replay: records keyed (workload, index), guarded by
        // seed and by the planned fault (a stale journal from a
        // different plan must not poison the report).
        let plan = FaultPlan::new(self.cfg.seed, self.cfg.classes);
        let (journal, lines) = match &self.cfg.journal {
            Some(path) => JsonlFile::open(path)?,
            None => (JsonlFile::in_memory(), Vec::new()),
        };
        let mut replayed: HashMap<(String, u32), InjectionRecord> = HashMap::new();
        for line in &lines {
            if let Some((seed, rec)) = InjectionRecord::parse_line(line) {
                if seed == self.cfg.seed {
                    replayed.insert((rec.workload.clone(), rec.index), rec);
                }
            }
        }

        // Phase 2: fan every (workload, index) injection out. Fresh
        // records journal from inside the workers — kill-and-resume
        // loses at most the in-flight injections, and replay is keyed,
        // so the unordered interleaving is harmless.
        let mut jobs: Vec<(usize, u32, FaultKind)> = Vec::new();
        for (wi, g) in baselines.iter().enumerate() {
            for index in 0..self.cfg.injections {
                jobs.push((wi, index, plan.sample(g.workload.name, index, &g.ctx)));
            }
        }
        let journal = Mutex::new(journal);
        let records = parallel_map(threads, jobs.len(), |j| {
            let (wi, index, kind) = jobs[j];
            let g = &baselines[wi];
            if let Some(rec) = replayed.get(&(g.workload.name.to_string(), index)) {
                if rec.fault == kind {
                    return rec.clone();
                }
            }
            let rec = self.classify(g, index, kind);
            let line = rec.to_line(self.cfg.seed);
            journal
                .lock()
                .expect("journal lock poisoned")
                .append(&line)
                .ok();
            rec
        });
        Ok(CampaignReport {
            seed: self.cfg.seed,
            records,
        })
    }

    /// The campaign's workload set (explicit, or all 13 of Table 1).
    fn resolved_workloads(&self) -> Vec<Workload> {
        if self.workloads.is_empty() {
            all_workloads()
                .iter()
                .map(|spec| spec.build_default(self.cfg.scale))
                .collect()
        } else {
            self.workloads.clone()
        }
    }

    /// The stable shard of one injection: FNV-1a over
    /// `"{workload};i{index};s{seed}"` mod the shard count — a pure
    /// function of the plan, so every worker partitions identically.
    fn injection_shard(&self, workload: &str, index: u32, shards: u32) -> u32 {
        let key = format!("{workload};i{index};s{}", self.cfg.seed);
        shard::shard_of(jsonl::fnv1a(key.as_bytes()), shards)
    }

    /// Run one worker against a sharded campaign rooted at `dir`
    /// (coordination journal plus one result journal per shard — see
    /// [`crate::shard`]). Any number of processes may call this
    /// concurrently with the same config and distinct
    /// [`ShardOptions::worker`] ids; each returns once every shard is
    /// done. Goldens are computed lazily per workload per worker, so a
    /// worker that finds all shards done — or only replays journaled
    /// records — performs zero simulation. Within a shard, records are
    /// replayed keyed `(workload, index)` guarded by the plan seed; a
    /// shard directory belongs to one campaign configuration.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Golden`] when a fault-free baseline fails,
    /// [`CampaignError::Io`] on journal I/O errors.
    pub fn run_shard_worker(
        &self,
        dir: &Path,
        opts: &ShardOptions,
    ) -> Result<WorkerStats, CampaignError> {
        let workloads = self.resolved_workloads();
        let plan = FaultPlan::new(self.cfg.seed, self.cfg.classes);
        let mut goldens: Vec<Option<Golden>> = (0..workloads.len()).map(|_| None).collect();
        let mut golden_err: Option<CampaignError> = None;
        let stats = shard::run_worker(&shard::coord_path(dir), opts, |ctx| {
            let s = ctx.shard();
            let (mut jf, lines) = JsonlFile::open(shard::shard_journal(dir, s))?;
            let mut have: HashMap<(String, u32), ()> = HashMap::new();
            for line in &lines {
                if let Some((seed, rec)) = InjectionRecord::parse_line(line) {
                    if seed == self.cfg.seed {
                        have.insert((rec.workload, rec.index), ());
                    }
                }
            }
            for (wi, w) in workloads.iter().enumerate() {
                for index in 0..self.cfg.injections {
                    if self.injection_shard(w.name, index, opts.shards) != s
                        || have.contains_key(&(w.name.to_string(), index))
                    {
                        continue;
                    }
                    if goldens[wi].is_none() {
                        match self.golden(w) {
                            Ok(g) => goldens[wi] = Some(g),
                            Err(e) => {
                                golden_err = Some(e);
                                return Err(io::Error::other("golden baseline failed"));
                            }
                        }
                    }
                    let g = goldens[wi].as_ref().expect("golden just computed");
                    let kind = plan.sample(g.workload.name, index, &g.ctx);
                    let rec = self.classify(g, index, kind);
                    jf.append(&shard::tag_line(
                        &rec.to_line(self.cfg.seed),
                        s,
                        ctx.epoch(),
                    ))?;
                    if !ctx.checkpoint()? {
                        // Fenced: another worker owns this shard now; our
                        // stale-epoch rows lose the merge. Stop writing.
                        return Ok(());
                    }
                }
            }
            jf.sync()
        });
        match stats {
            Ok(st) => Ok(st),
            Err(e) => Err(golden_err.unwrap_or(CampaignError::Io(e))),
        }
    }

    /// Merge a sharded campaign's per-shard journals into the resilience
    /// report. Pure journal I/O — zero simulation. The merge is a
    /// deterministic fold ([`crate::shard::merge_by_key`]): per
    /// `(workload, index)` the highest-epoch record wins (fencing out
    /// stale workers' rows), and records are emitted in the same
    /// canonical order the single-process [`FaultCampaign::run`] uses —
    /// so for the same seed the merged report is byte-identical to the
    /// `shards = 1` report, regardless of worker count, death order, or
    /// steal interleaving.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Incomplete`] when an injection has no record
    /// (some shard has not finished), [`CampaignError::Io`] on journal
    /// I/O errors.
    pub fn merge_sharded(&self, dir: &Path, shards: u32) -> Result<CampaignReport, CampaignError> {
        let workloads = self.resolved_workloads();
        let mut all = Vec::new();
        for s in 0..shards.max(1) {
            let (_, lines) = JsonlFile::open(shard::shard_journal(dir, s))?;
            all.extend(lines);
        }
        let merged = shard::merge_by_key(all, |l| {
            let (seed, rec) = InjectionRecord::parse_line(l)?;
            (seed == self.cfg.seed).then_some((rec.workload, rec.index))
        });
        let mut records = Vec::new();
        for w in &workloads {
            for index in 0..self.cfg.injections {
                let line = merged.get(&(w.name.to_string(), index)).ok_or_else(|| {
                    CampaignError::Incomplete {
                        workload: w.name.to_string(),
                        index,
                    }
                })?;
                let (_, rec) = InjectionRecord::parse_line(line).expect("keyed lines parse");
                records.push(rec);
            }
        }
        Ok(CampaignReport {
            seed: self.cfg.seed,
            records,
        })
    }

    /// The sharded campaign entry point: degrade to the single-process
    /// [`FaultCampaign::run`] when `opts.shards <= 1`; otherwise work as
    /// one worker until every shard is done (joining or resuming any
    /// workers already running against `dir`), then merge.
    ///
    /// # Errors
    ///
    /// As [`FaultCampaign::run_shard_worker`] and
    /// [`FaultCampaign::merge_sharded`].
    pub fn run_sharded(
        &self,
        dir: &Path,
        opts: &ShardOptions,
    ) -> Result<CampaignReport, CampaignError> {
        if opts.shards <= 1 {
            return self.run();
        }
        self.run_shard_worker(dir, opts)?;
        self.merge_sharded(dir, opts.shards)
    }

    /// Compile and run one workload fault-free; derive the plan context
    /// from what the run actually used.
    fn golden(&self, w: &Workload) -> Result<Golden, CampaignError> {
        let fail = |error| CampaignError::Golden {
            workload: w.name.to_string(),
            error,
        };
        let compiled = self.sys.compile(w, self.cfg.heuristic).map_err(fail)?;
        let out = compiled
            .simulate_with(&SimOptions::new(self.cfg.model).no_validate().keep_memory())
            .map_err(fail)?;
        let (stats, mem) = (out.stats, out.memory.expect("memory was requested"));
        let mut used_pes: Vec<u32> = compiled.placed.pe_of.iter().map(|pe| pe.0).collect();
        used_pes.sort_unstable();
        used_pes.dedup();
        let ctx = FaultContext {
            used_pes,
            links: stats
                .link_traffic
                .iter()
                .map(|l| (l.src_pe, l.dst_pe))
                .collect(),
            tokens: stats.link_traffic.iter().map(|l| l.tokens).sum(),
            banks: self.sys.mem.banks as u32,
            horizon: stats.cycles,
        };
        Ok(Golden {
            workload: w.clone(),
            compiled,
            stats,
            mem,
            ctx,
        })
    }

    /// Inject one fault, classify the outcome, and attempt recovery for
    /// detected faults.
    fn classify(&self, g: &Golden, index: u32, kind: FaultKind) -> InjectionRecord {
        let golden_cycles = g.stats.cycles;
        let mut rec = InjectionRecord {
            workload: g.workload.name.to_string(),
            index,
            fault: kind,
            outcome: OutcomeClass::Hang,
            error: None,
            recovery: RecoveryOutcome::NotApplicable,
            golden_cycles,
            injected_cycles: None,
            recovered_cycles: None,
            downgrades: 0,
        };

        let inj_opts = SimOptions::new(self.cfg.model)
            .fault(FaultConfig::inject(kind))
            .stall_window(self.cfg.stall_window)
            .no_validate()
            .keep_memory();
        let budget = golden_cycles
            .saturating_mul(self.cfg.budget_factor.max(1))
            .saturating_add(self.cfg.stall_window);
        // Capped exponential backoff on the budget before calling a run
        // hung — the campaign's RetryPolicy (satellite: hang re-checks).
        let policy = RetryPolicy::Backoff {
            factor: 4,
            max_retries: self.cfg.max_rechecks,
        };
        let mut result = g
            .compiled
            .simulate_with(&inj_opts.clone().max_cycles(budget));
        for attempt in 1..=policy.max_retries() {
            if !matches!(result, Err(PipelineError::Sim(SimError::CycleLimit { .. }))) {
                break;
            }
            let cap = policy.backoff_cap(budget, attempt);
            result = g.compiled.simulate_with(&inj_opts.clone().max_cycles(cap));
        }

        match result {
            Ok(out) => {
                let (stats, mem) = (out.stats, out.memory.expect("memory was requested"));
                rec.injected_cycles = Some(stats.cycles);
                if stats.sinks == g.stats.sinks && mem.words() == g.mem.words() {
                    rec.outcome = OutcomeClass::Masked;
                } else if kind.is_transient() {
                    // No error signal and wrong outputs: the corruption
                    // escaped silently. Only the campaign's differential
                    // oracle sees it.
                    rec.outcome = OutcomeClass::Sdc;
                } else {
                    // A resource fault that completed with wrong outputs
                    // is *detected* by the differential comparison —
                    // recovery proceeds exactly as for an error signal.
                    self.recover(g, kind, &mut rec);
                }
            }
            Err(e) => {
                rec.error = Some(RunErrorKind::of(&e));
                self.recover(g, kind, &mut rec);
            }
        }
        rec
    }

    /// Recovery for a detected fault: spare-PE re-place for resource
    /// faults, re-execution for transients, nothing for bank failures.
    fn recover(&self, g: &Golden, kind: FaultKind, rec: &mut InjectionRecord) {
        if kind.is_transient() {
            // Deterministic engine: a fault-free re-execution is the
            // golden run, bit for bit. Recovery costs one clean re-run.
            rec.outcome = OutcomeClass::Recovered;
            rec.recovery = RecoveryOutcome::Retried;
            rec.recovered_cycles = Some(g.stats.cycles);
            return;
        }
        let Some(avoid) = kind.avoid_pes() else {
            // A failed memory bank has no spare resource to re-place
            // onto: detected, not recoverable.
            rec.outcome = OutcomeClass::Hang;
            return;
        };
        let mut rec_sys = self.sys.clone();
        rec_sys.avoid = avoid.into_iter().map(PeId).collect();
        let recompiled = match rec_sys.compile(&g.workload, self.cfg.heuristic) {
            Ok(c) => c,
            Err(_) => {
                rec.outcome = OutcomeClass::Hang;
                rec.recovery = RecoveryOutcome::Unplaceable;
                return;
            }
        };
        match recompiled.simulate_with(&SimOptions::new(self.cfg.model).no_validate().keep_memory())
        {
            Ok(out)
                if out.stats.sinks == g.stats.sinks
                    && out.memory.as_ref().expect("memory was requested").words()
                        == g.mem.words() =>
            {
                let stats = out.stats;
                rec.outcome = OutcomeClass::Recovered;
                rec.recovery = RecoveryOutcome::Replaced;
                rec.recovered_cycles = Some(stats.cycles);
                rec.downgrades = criticality_downgrades(
                    &g.workload,
                    &self.sys.fabric,
                    &g.compiled.placed.pe_of,
                    &recompiled.placed.pe_of,
                );
            }
            _ => {
                rec.outcome = OutcomeClass::Hang;
                rec.recovery = RecoveryOutcome::StillWrong;
            }
        }
    }
}

/// Critical loads whose recovered placement sits in a slower NUPEA
/// domain than their original one (the fallback-to-next-best-domain the
/// avoid-set can force; the domain id *is* the arbitration hop count).
fn criticality_downgrades(
    workload: &Workload,
    fabric: &Fabric,
    old_pe_of: &[PeId],
    new_pe_of: &[PeId],
) -> u32 {
    let rank = |pe: PeId| fabric.domain(pe).map_or(u8::MAX, |DomainId(d)| d);
    workload
        .kernel
        .critical_loads()
        .into_iter()
        .filter(|id| rank(new_pe_of[id.index()]) > rank(old_pe_of[id.index()]))
        .count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use nupea_kernels::workloads::sparse;

    fn record(outcome: OutcomeClass) -> InjectionRecord {
        InjectionRecord {
            workload: "spmv".to_string(),
            index: 3,
            fault: FaultKind::PeFail { pe: 17, at: 0 },
            outcome,
            error: Some(RunErrorKind::Stalled),
            recovery: RecoveryOutcome::Replaced,
            golden_cycles: 1000,
            injected_cycles: None,
            recovered_cycles: Some(1250),
            downgrades: 1,
        }
    }

    #[test]
    fn labels_round_trip() {
        for c in OutcomeClass::ALL {
            assert_eq!(OutcomeClass::parse(c.label()), Some(c));
        }
        for r in RecoveryOutcome::ALL {
            assert_eq!(RecoveryOutcome::parse(r.label()), Some(r));
        }
        assert_eq!(OutcomeClass::parse("warp-core"), None);
        assert_eq!(RecoveryOutcome::parse(""), None);
    }

    #[test]
    fn record_lines_round_trip() {
        let mut r = record(OutcomeClass::Recovered);
        assert_eq!(
            InjectionRecord::parse_line(&r.to_line(7)),
            Some((7, r.clone()))
        );
        r.error = None;
        r.injected_cycles = Some(4000);
        r.recovered_cycles = None;
        assert_eq!(InjectionRecord::parse_line(&r.to_line(9)), Some((9, r)));
        assert_eq!(InjectionRecord::parse_line("{\"a\":1"), None);
        assert_eq!(InjectionRecord::parse_line(""), None);
    }

    #[test]
    fn slowdown_follows_the_outcome_class() {
        let mut r = record(OutcomeClass::Recovered);
        assert_eq!(r.slowdown(), Some(1.25));
        r.outcome = OutcomeClass::Hang;
        assert_eq!(r.slowdown(), None);
        r.outcome = OutcomeClass::Masked;
        r.injected_cycles = Some(1000);
        assert_eq!(r.slowdown(), Some(1.0));
    }

    #[test]
    fn report_aggregates_and_exports() {
        let mut masked = record(OutcomeClass::Masked);
        masked.injected_cycles = Some(1000);
        masked.error = None;
        masked.recovery = RecoveryOutcome::NotApplicable;
        let report = CampaignReport {
            seed: 42,
            records: vec![masked, record(OutcomeClass::Recovered)],
        };
        assert_eq!(report.count(OutcomeClass::Masked), 1);
        assert_eq!(report.count(OutcomeClass::Recovered), 1);
        assert_eq!(report.count(OutcomeClass::Sdc), 0);
        assert_eq!(report.mean_degraded_slowdown(), Some(1.25));
        assert_eq!(report.max_degraded_slowdown(), Some(1.25));
        let json = report.to_json();
        assert!(json.contains("\"recovered\": 1"));
        assert_eq!(json, report.to_json(), "export is deterministic");
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(2).unwrap().contains("pe-fail:17@0"));
        assert!(report.render().contains("spmv"));
    }

    #[test]
    fn single_workload_campaign_classifies_and_replays_identically() {
        let mut campaign = FaultCampaign::new(CampaignConfig::smoke());
        campaign.workload(sparse::spmv(Scale::Test, 1));
        let a = campaign.run().unwrap();
        let b = campaign.run().unwrap();
        assert_eq!(a.to_json(), b.to_json(), "same seed, same report bytes");
        assert_eq!(a.records.len(), 1);
        let r = &a.records[0];
        // A PE-failure injection on a used PE is never silent.
        assert_ne!(r.outcome, OutcomeClass::Sdc);
        if r.outcome == OutcomeClass::Recovered {
            assert_eq!(r.recovery, RecoveryOutcome::Replaced);
            assert!(r.recovered_cycles.is_some());
            assert!(r.slowdown().is_some());
        }
    }
}

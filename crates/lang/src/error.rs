//! Typed diagnostics for eDSL programs.

/// A program-level error reported by [`ProgramBuilder::finish`]
/// (structural checks) or [`Program::lower`] (post-lowering checks).
///
/// [`ProgramBuilder::finish`]: crate::ProgramBuilder::finish
/// [`Program::lower`]: crate::Program::lower
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Two runtime parameters share a name.
    DuplicateParam {
        /// The offending parameter name.
        name: String,
    },
    /// A variable was referenced outside any scope that declares it, or
    /// an assignment targeted something that is not a variable.
    UnknownName {
        /// The unknown identifier (or a placeholder description).
        name: String,
    },
    /// Assignment to a variable not declared `mut` (loop induction
    /// variables are always immutable).
    ImmutableAssign {
        /// The variable's declared name.
        name: String,
    },
    /// A `while`/`if` condition folds to a compile-time constant; the
    /// dataflow builder cannot gate on an immediate.
    ConstantCondition {
        /// Which construct had the constant condition (`"while"`/`"if"`).
        construct: &'static str,
    },
    /// A `while` condition depends on no variable assigned in its body:
    /// the loop state can never change, so the recurrence is vacuous.
    /// (Memory-mediated progress is intentionally unsupported; carry the
    /// governing value in a `mut` variable instead.)
    CyclicDependency {
        /// Human-readable description of the degenerate dependence.
        detail: String,
    },
    /// A loop shape the lowering cannot express: non-positive step,
    /// non-constant `par` bounds, `par` exceeding the trip count,
    /// carried state or `seq` under `par`, and similar.
    ShapeMismatch {
        /// Human-readable description of the bad shape.
        detail: String,
    },
    /// A `sink` appears inside a `par(..)` loop; replicated chunks would
    /// interleave sink tokens nondeterministically.
    SinkInParallel {
        /// The sink's name.
        name: String,
    },
    /// Two sinks share a name.
    DuplicateSink {
        /// The duplicated sink name.
        name: String,
    },
    /// `ld_crit` loads that the post-lowering classifier did **not**
    /// mark critical — the author's criticality annotation is wrong.
    CriticalityHintViolated {
        /// How many annotated loads failed to classify as critical.
        count: usize,
    },
    /// The program has no `st` and no `sink`: it computes nothing
    /// observable and would be dead-code-eliminated whole.
    EmptyProgram,
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LangError::DuplicateParam { name } => {
                write!(f, "duplicate parameter `{name}`")
            }
            LangError::UnknownName { name } => {
                write!(f, "unknown or out-of-scope name `{name}`")
            }
            LangError::ImmutableAssign { name } => {
                write!(
                    f,
                    "assignment to immutable variable `{name}` (declare it `mut`)"
                )
            }
            LangError::ConstantCondition { construct } => {
                write!(
                    f,
                    "`{construct}` condition is a compile-time constant; \
                     dataflow gates need a runtime-varying decider"
                )
            }
            LangError::CyclicDependency { detail } => {
                write!(f, "degenerate loop recurrence: {detail}")
            }
            LangError::ShapeMismatch { detail } => {
                write!(f, "unsupported loop/program shape: {detail}")
            }
            LangError::SinkInParallel { name } => {
                write!(
                    f,
                    "sink `{name}` inside a par(..) loop: replicated chunks would \
                     interleave sink tokens nondeterministically"
                )
            }
            LangError::DuplicateSink { name } => {
                write!(f, "duplicate sink `{name}`")
            }
            LangError::CriticalityHintViolated { count } => {
                write!(
                    f,
                    "{count} ld_crit load(s) were not classified Critical by the \
                     recurrence analysis; drop the annotation or put the load on \
                     a loop-governing recurrence"
                )
            }
            LangError::EmptyProgram => {
                write!(f, "program has no store and no sink; nothing observable")
            }
        }
    }
}

impl std::error::Error for LangError {}

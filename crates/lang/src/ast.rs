//! Surface AST and the arena-backed program builder behind the
//! [`kernel!`](crate::kernel) macro.
//!
//! Expressions are handles ([`Expr`], a `Copy` index) into a thread-local
//! arena installed by [`ProgramBuilder::new`] and torn down by
//! [`ProgramBuilder::finish`]. The arena makes operator overloading
//! ergonomic (`a + b * 2` with no clones or borrows) and lets the finished
//! [`Program`] renumber the expression DAG in a canonical statement-order
//! walk, so the FNV-1a program hash is independent of construction
//! detours (dead subexpressions, evaluation-order noise).

use crate::error::LangError;
use nupea_ir::op::{BinOpKind, CmpKind, UnOpKind};
use std::cell::RefCell;
use std::collections::HashMap;

/// A handle to an expression node in the program under construction.
///
/// `Expr` is `Copy`: reuse a bound subexpression freely. Arithmetic and
/// bit operators are overloaded (`+ - * / % & | ^ << >>`, with `i64`
/// on either side); comparisons are methods ([`Expr::lt`], [`Expr::eq`],
/// ...) because Rust's comparison operators must return `bool`.
///
/// # Panics
///
/// All `Expr` operations panic unless a [`ProgramBuilder`] (usually via
/// [`kernel!`](crate::kernel)) is live on the current thread.
#[derive(Debug, Clone, Copy)]
pub struct Expr(pub(crate) u32);

/// One expression node. Operand fields index the owning program's arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ExprKind {
    /// An integer literal (folded to an immediate during lowering).
    Const(i64),
    /// A named runtime parameter (index into [`Program::params`]).
    Param(u32),
    /// A variable read (index into the program's variable table).
    Var(u32),
    /// Binary arithmetic/logic.
    Bin(BinOpKind, u32, u32),
    /// Comparison producing 0/1.
    Cmp(CmpKind, u32, u32),
    /// Unary op.
    Un(UnOpKind, u32),
    /// Eager conditional `cond ? t : f` (both sides always evaluated).
    Select(u32, u32, u32),
    /// Memory load; `critical` asserts the classifier will mark it
    /// critical (checked after lowering).
    Load { addr: u32, critical: bool },
    /// Force materialization as a real token stream (maps to the
    /// builder's `as_stream`); used when a constant must occupy a PE.
    Stream(u32),
}

/// One statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Stmt {
    /// Bind a (possibly mutable) variable.
    Let { var: u32, init: u32 },
    /// Reassign a mutable variable.
    Assign { var: u32, value: u32 },
    /// Store `value` to `addr`.
    Store { addr: u32, value: u32 },
    /// Record `value` into the named sink stream.
    Sink { name: String, value: u32 },
    /// Counted loop over `range(lo, hi)` with optional step/par/seq.
    For {
        var: u32,
        lo: u32,
        hi: u32,
        step: i64,
        par: usize,
        seq: bool,
        body: Vec<Stmt>,
    },
    /// While loop; `seq` chains all memory in program order.
    While {
        cond: u32,
        seq: bool,
        body: Vec<Stmt>,
    },
    /// Conditional (else branch may be empty).
    If {
        cond: u32,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct VarInfo {
    pub name: String,
    pub mutable: bool,
}

#[derive(Default)]
struct Arena {
    exprs: Vec<ExprKind>,
    vars: Vec<VarInfo>,
    params: Vec<String>,
}

thread_local! {
    static ARENA: RefCell<Option<Arena>> = const { RefCell::new(None) };
}

pub(crate) fn alloc(kind: ExprKind) -> Expr {
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        let arena = a.as_mut().expect(
            "nupea-lang Expr operations are only valid while a kernel! {} \
             program is being built on this thread",
        );
        let id = arena.exprs.len() as u32;
        arena.exprs.push(kind);
        Expr(id)
    })
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        alloc(ExprKind::Const(v))
    }
}

macro_rules! bin_impl {
    ($trait:ident, $method:ident, $kind:ident) => {
        impl std::ops::$trait<Expr> for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                alloc(ExprKind::Bin(BinOpKind::$kind, self.0, rhs.0))
            }
        }
        impl std::ops::$trait<i64> for Expr {
            type Output = Expr;
            fn $method(self, rhs: i64) -> Expr {
                let r = Expr::from(rhs);
                alloc(ExprKind::Bin(BinOpKind::$kind, self.0, r.0))
            }
        }
        impl std::ops::$trait<Expr> for i64 {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                let l = Expr::from(self);
                alloc(ExprKind::Bin(BinOpKind::$kind, l.0, rhs.0))
            }
        }
    };
}

bin_impl!(Add, add, Add);
bin_impl!(Sub, sub, Sub);
bin_impl!(Mul, mul, Mul);
bin_impl!(Div, div, Div);
bin_impl!(Rem, rem, Rem);
bin_impl!(BitAnd, bitand, And);
bin_impl!(BitOr, bitor, Or);
bin_impl!(BitXor, bitxor, Xor);
bin_impl!(Shl, shl, Shl);
bin_impl!(Shr, shr, Shr);

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        alloc(ExprKind::Un(UnOpKind::Neg, self.0))
    }
}

impl std::ops::Not for Expr {
    type Output = Expr;
    fn not(self) -> Expr {
        alloc(ExprKind::Un(UnOpKind::Not, self.0))
    }
}

macro_rules! cmp_method {
    ($method:ident, $kind:ident, $doc:literal) => {
        #[doc = $doc]
        #[must_use]
        pub fn $method(self, rhs: impl Into<Expr>) -> Expr {
            let r = rhs.into();
            alloc(ExprKind::Cmp(CmpKind::$kind, self.0, r.0))
        }
    };
}

impl Expr {
    cmp_method!(lt, Lt, "`self < rhs` as 0/1.");
    cmp_method!(le, Le, "`self <= rhs` as 0/1.");
    cmp_method!(gt, Gt, "`self > rhs` as 0/1.");
    cmp_method!(ge, Ge, "`self >= rhs` as 0/1.");
    cmp_method!(eq, Eq, "`self == rhs` as 0/1.");
    cmp_method!(ne, Ne, "`self != rhs` as 0/1.");

    /// `min(self, rhs)`.
    #[must_use]
    pub fn min(self, rhs: impl Into<Expr>) -> Expr {
        let r = rhs.into();
        alloc(ExprKind::Bin(BinOpKind::Min, self.0, r.0))
    }

    /// `max(self, rhs)`.
    #[must_use]
    pub fn max(self, rhs: impl Into<Expr>) -> Expr {
        let r = rhs.into();
        alloc(ExprKind::Bin(BinOpKind::Max, self.0, r.0))
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Expr {
        alloc(ExprKind::Un(UnOpKind::Abs, self.0))
    }
}

/// Load from address `addr` (one load per occurrence; a reused `Expr`
/// handle is one shared load).
pub fn ld(addr: impl Into<Expr>) -> Expr {
    let a = addr.into();
    alloc(ExprKind::Load {
        addr: a.0,
        critical: false,
    })
}

/// Load from `addr` annotated as **critical**: the author asserts it sits
/// on a loop-governing recurrence. Lowering fails with
/// [`LangError::CriticalityHintViolated`] if the classifier disagrees.
pub fn ld_crit(addr: impl Into<Expr>) -> Expr {
    let a = addr.into();
    alloc(ExprKind::Load {
        addr: a.0,
        critical: true,
    })
}

/// Eager conditional `cond ? t : f` (both sides are computed every
/// activation; use an `if` statement for conditional memory effects).
pub fn select(cond: impl Into<Expr>, t: impl Into<Expr>, f: impl Into<Expr>) -> Expr {
    let (c, t, f) = (cond.into(), t.into(), f.into());
    alloc(ExprKind::Select(c.0, t.0, f.0))
}

/// Force `e` to materialize as a real token stream (a PE producing one
/// token per activation) instead of folding into an immediate operand.
/// Matches hand-written builder code that calls `as_stream`; mostly
/// useful when porting kernels node-for-node.
pub fn stream(e: impl Into<Expr>) -> Expr {
    let e = e.into();
    alloc(ExprKind::Stream(e.0))
}

enum Frame {
    For {
        var: u32,
        lo: u32,
        hi: u32,
        step: i64,
        par: usize,
        seq: bool,
    },
    While {
        cond: u32,
        seq: bool,
    },
    IfThen {
        cond: u32,
    },
    IfElse {
        cond: u32,
        then_body: Vec<Stmt>,
    },
}

/// Incrementally builds a [`Program`]; the [`kernel!`](crate::kernel)
/// macro drives this API, and it can also be called directly for
/// programmatic construction (e.g. fuzzers).
///
/// # Panics
///
/// `new` panics if another builder is already live on this thread;
/// structural misuse (unbalanced `begin_*`/`end_*`) also panics. All
/// *program-level* problems (unknown names, shape mismatches, constant
/// conditions, ...) are reported as typed [`LangError`]s from
/// [`ProgramBuilder::finish`].
pub struct ProgramBuilder {
    name: String,
    blocks: Vec<Vec<Stmt>>,
    frames: Vec<Frame>,
    deferred: Option<LangError>,
}

impl ProgramBuilder {
    /// Start a program; installs the thread-local expression arena.
    pub fn new(name: &str) -> ProgramBuilder {
        ARENA.with(|a| {
            let mut a = a.borrow_mut();
            assert!(
                a.is_none(),
                "nested kernel! {{}} program construction on one thread"
            );
            *a = Some(Arena::default());
        });
        ProgramBuilder {
            name: name.to_string(),
            blocks: vec![Vec::new()],
            frames: Vec::new(),
            deferred: None,
        }
    }

    fn with_arena<R>(&mut self, f: impl FnOnce(&mut Arena) -> R) -> R {
        ARENA.with(|a| f(a.borrow_mut().as_mut().expect("builder arena live")))
    }

    fn push(&mut self, s: Stmt) {
        self.blocks.last_mut().expect("open block").push(s);
    }

    /// An integer literal expression.
    pub fn lit(&mut self, v: i64) -> Expr {
        Expr::from(v)
    }

    /// Declare a named runtime parameter (bound at run time).
    pub fn param(&mut self, name: &str) -> Expr {
        let idx = self.with_arena(|a| {
            a.params.push(name.to_string());
            a.params.len() as u32 - 1
        });
        alloc(ExprKind::Param(idx))
    }

    /// Bind `name` to `init`; returns the variable-read handle.
    pub fn let_(&mut self, name: &str, mutable: bool, init: Expr) -> Expr {
        let var = self.with_arena(|a| {
            a.vars.push(VarInfo {
                name: name.to_string(),
                mutable,
            });
            a.vars.len() as u32 - 1
        });
        self.push(Stmt::Let { var, init: init.0 });
        alloc(ExprKind::Var(var))
    }

    /// Reassign the variable behind `target` (must be a variable handle
    /// returned by [`ProgramBuilder::let_`] or a loop induction binding).
    pub fn assign(&mut self, target: Expr, value: Expr) {
        let kind = self.with_arena(|a| a.exprs[target.0 as usize].clone());
        match kind {
            ExprKind::Var(var) => self.push(Stmt::Assign {
                var,
                value: value.0,
            }),
            _ => {
                self.deferred.get_or_insert(LangError::UnknownName {
                    name: "<assignment target is not a variable>".into(),
                });
            }
        }
    }

    /// Store `value` to `addr`.
    pub fn store(&mut self, addr: Expr, value: Expr) {
        self.push(Stmt::Store {
            addr: addr.0,
            value: value.0,
        });
    }

    /// Record `value` into the named sink stream.
    pub fn sink(&mut self, name: &str, value: Expr) {
        self.push(Stmt::Sink {
            name: name.to_string(),
            value: value.0,
        });
    }

    /// Open a counted loop; returns the induction-variable handle.
    pub fn begin_for(
        &mut self,
        var: &str,
        lo: Expr,
        hi: Expr,
        step: i64,
        par: usize,
        seq: bool,
    ) -> Expr {
        let v = self.with_arena(|a| {
            a.vars.push(VarInfo {
                name: var.to_string(),
                mutable: false,
            });
            a.vars.len() as u32 - 1
        });
        self.frames.push(Frame::For {
            var: v,
            lo: lo.0,
            hi: hi.0,
            step,
            par,
            seq,
        });
        self.blocks.push(Vec::new());
        alloc(ExprKind::Var(v))
    }

    /// Close the innermost `for`.
    pub fn end_for(&mut self) {
        let body = self.blocks.pop().expect("for body block");
        match self.frames.pop() {
            Some(Frame::For {
                var,
                lo,
                hi,
                step,
                par,
                seq,
            }) => self.push(Stmt::For {
                var,
                lo,
                hi,
                step,
                par,
                seq,
                body,
            }),
            _ => panic!("end_for without begin_for"),
        }
    }

    /// Open a while loop.
    pub fn begin_while(&mut self, cond: Expr, seq: bool) {
        self.frames.push(Frame::While { cond: cond.0, seq });
        self.blocks.push(Vec::new());
    }

    /// Close the innermost `while`.
    pub fn end_while(&mut self) {
        let body = self.blocks.pop().expect("while body block");
        match self.frames.pop() {
            Some(Frame::While { cond, seq }) => self.push(Stmt::While { cond, seq, body }),
            _ => panic!("end_while without begin_while"),
        }
    }

    /// Open a conditional's then-branch.
    pub fn begin_if(&mut self, cond: Expr) {
        self.frames.push(Frame::IfThen { cond: cond.0 });
        self.blocks.push(Vec::new());
    }

    /// Switch to the else-branch.
    pub fn begin_else(&mut self) {
        let then_body = self.blocks.pop().expect("then block");
        match self.frames.pop() {
            Some(Frame::IfThen { cond }) => {
                self.frames.push(Frame::IfElse { cond, then_body });
                self.blocks.push(Vec::new());
            }
            _ => panic!("begin_else without begin_if"),
        }
    }

    /// Close the innermost `if`.
    pub fn end_if(&mut self) {
        let tail = self.blocks.pop().expect("branch block");
        match self.frames.pop() {
            Some(Frame::IfThen { cond }) => self.push(Stmt::If {
                cond,
                then_body: tail,
                else_body: Vec::new(),
            }),
            Some(Frame::IfElse { cond, then_body }) => self.push(Stmt::If {
                cond,
                then_body,
                else_body: tail,
            }),
            _ => panic!("end_if without begin_if"),
        }
    }

    /// Finish: canonicalize the expression DAG, run the semantic checks,
    /// and compute the program hash.
    ///
    /// # Errors
    ///
    /// Any [`LangError`] found by the check pass (see the crate docs for
    /// the diagnostic taxonomy).
    pub fn finish(mut self) -> Result<Program, LangError> {
        assert!(
            self.frames.is_empty() && self.blocks.len() == 1,
            "unbalanced control-flow construction"
        );
        let arena = ARENA.with(|a| a.borrow_mut().take()).expect("arena live");
        if let Some(e) = self.deferred.take() {
            return Err(e);
        }
        let body = self.blocks.pop().expect("top block");
        let mut canon = Canonicalizer {
            old: &arena.exprs,
            map: HashMap::new(),
            exprs: Vec::new(),
        };
        let body = canon.stmts(&body);
        let mut program = Program {
            name: self.name.clone(),
            params: arena.params,
            vars: arena.vars,
            exprs: canon.exprs,
            body,
            hash: 0,
        };
        crate::check::validate(&program)?;
        program.hash = program.compute_hash();
        Ok(program)
    }
}

impl Drop for ProgramBuilder {
    fn drop(&mut self) {
        // Clear the arena even if finish() was never reached (panic paths),
        // so the thread can build another program later.
        ARENA.with(|a| {
            a.borrow_mut().take();
        });
    }
}

/// Renumbers the expression DAG in statement-order DFS (post-order), so
/// hashes ignore dead subexpressions and construction order.
struct Canonicalizer<'a> {
    old: &'a [ExprKind],
    map: HashMap<u32, u32>,
    exprs: Vec<ExprKind>,
}

impl Canonicalizer<'_> {
    fn expr(&mut self, e: u32) -> u32 {
        if let Some(&n) = self.map.get(&e) {
            return n;
        }
        let kind = match self.old[e as usize].clone() {
            k @ (ExprKind::Const(_) | ExprKind::Param(_) | ExprKind::Var(_)) => k,
            ExprKind::Bin(k, a, b) => {
                let (a, b) = (self.expr(a), self.expr(b));
                ExprKind::Bin(k, a, b)
            }
            ExprKind::Cmp(k, a, b) => {
                let (a, b) = (self.expr(a), self.expr(b));
                ExprKind::Cmp(k, a, b)
            }
            ExprKind::Un(k, a) => {
                let a = self.expr(a);
                ExprKind::Un(k, a)
            }
            ExprKind::Select(c, t, f) => {
                let (c, t, f) = (self.expr(c), self.expr(t), self.expr(f));
                ExprKind::Select(c, t, f)
            }
            ExprKind::Load { addr, critical } => {
                let addr = self.expr(addr);
                ExprKind::Load { addr, critical }
            }
            ExprKind::Stream(x) => {
                let x = self.expr(x);
                ExprKind::Stream(x)
            }
        };
        let id = self.exprs.len() as u32;
        self.exprs.push(kind);
        self.map.insert(e, id);
        id
    }

    fn stmts(&mut self, body: &[Stmt]) -> Vec<Stmt> {
        body.iter()
            .map(|s| match s {
                Stmt::Let { var, init } => Stmt::Let {
                    var: *var,
                    init: self.expr(*init),
                },
                Stmt::Assign { var, value } => Stmt::Assign {
                    var: *var,
                    value: self.expr(*value),
                },
                Stmt::Store { addr, value } => {
                    let addr = self.expr(*addr);
                    let value = self.expr(*value);
                    Stmt::Store { addr, value }
                }
                Stmt::Sink { name, value } => Stmt::Sink {
                    name: name.clone(),
                    value: self.expr(*value),
                },
                Stmt::For {
                    var,
                    lo,
                    hi,
                    step,
                    par,
                    seq,
                    body,
                } => {
                    let lo = self.expr(*lo);
                    let hi = self.expr(*hi);
                    let body = self.stmts(body);
                    Stmt::For {
                        var: *var,
                        lo,
                        hi,
                        step: *step,
                        par: *par,
                        seq: *seq,
                        body,
                    }
                }
                Stmt::While { cond, seq, body } => {
                    let cond = self.expr(*cond);
                    let body = self.stmts(body);
                    Stmt::While {
                        cond,
                        seq: *seq,
                        body,
                    }
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let cond = self.expr(*cond);
                    let then_body = self.stmts(then_body);
                    let else_body = self.stmts(else_body);
                    Stmt::If {
                        cond,
                        then_body,
                        else_body,
                    }
                }
            })
            .collect()
    }
}

/// A finished, validated eDSL program: immutable AST plus a stable
/// FNV-1a hash suitable for cache and journal keys.
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) name: String,
    pub(crate) params: Vec<String>,
    pub(crate) vars: Vec<VarInfo>,
    pub(crate) exprs: Vec<ExprKind>,
    pub(crate) body: Vec<Stmt>,
    pub(crate) hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
    fn u8(&mut self, v: u8) {
        self.write(&[v]);
    }
    fn i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.write(s.as_bytes());
    }
}

impl Program {
    /// Program name (becomes the kernel/DFG name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared runtime parameter names, in declaration order.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Sink names in declaration order (matches the lowered kernel's
    /// `SinkId` order and the scalar interpreter's result order).
    pub fn sink_names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'a>(body: &'a [Stmt], out: &mut Vec<&'a str>) {
            for s in body {
                match s {
                    Stmt::Sink { name, .. } => out.push(name.as_str()),
                    Stmt::For { body, .. } | Stmt::While { body, .. } => walk(body, out),
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        walk(then_body, out);
                        walk(else_body, out);
                    }
                    _ => {}
                }
            }
        }
        walk(&self.body, &mut out);
        out
    }

    /// Stable FNV-1a hash of the canonical AST: identical programs hash
    /// identically across runs, platforms, and construction detours.
    /// Suitable for compile-cache and journal keys.
    pub fn fnv1a_hash(&self) -> u64 {
        self.hash
    }

    pub(crate) fn compute_hash(&self) -> u64 {
        let mut h = Fnv(FNV_OFFSET);
        h.str(&self.name);
        h.u32(self.params.len() as u32);
        for p in &self.params {
            h.str(p);
        }
        h.u32(self.vars.len() as u32);
        for v in &self.vars {
            h.str(&v.name);
            h.u8(u8::from(v.mutable));
        }
        h.u32(self.exprs.len() as u32);
        for e in &self.exprs {
            match e {
                ExprKind::Const(v) => {
                    h.u8(0);
                    h.i64(*v);
                }
                ExprKind::Param(i) => {
                    h.u8(1);
                    h.u32(*i);
                }
                ExprKind::Var(i) => {
                    h.u8(2);
                    h.u32(*i);
                }
                ExprKind::Bin(k, a, b) => {
                    h.u8(3);
                    h.u8(*k as u8);
                    h.u32(*a);
                    h.u32(*b);
                }
                ExprKind::Cmp(k, a, b) => {
                    h.u8(4);
                    h.u8(*k as u8);
                    h.u32(*a);
                    h.u32(*b);
                }
                ExprKind::Un(k, a) => {
                    h.u8(5);
                    h.u8(*k as u8);
                    h.u32(*a);
                }
                ExprKind::Select(c, t, f) => {
                    h.u8(6);
                    h.u32(*c);
                    h.u32(*t);
                    h.u32(*f);
                }
                ExprKind::Load { addr, critical } => {
                    h.u8(7);
                    h.u32(*addr);
                    h.u8(u8::from(*critical));
                }
                ExprKind::Stream(x) => {
                    h.u8(8);
                    h.u32(*x);
                }
            }
        }
        fn stmts(h: &mut Fnv, body: &[Stmt]) {
            h.u32(body.len() as u32);
            for s in body {
                match s {
                    Stmt::Let { var, init } => {
                        h.u8(0);
                        h.u32(*var);
                        h.u32(*init);
                    }
                    Stmt::Assign { var, value } => {
                        h.u8(1);
                        h.u32(*var);
                        h.u32(*value);
                    }
                    Stmt::Store { addr, value } => {
                        h.u8(2);
                        h.u32(*addr);
                        h.u32(*value);
                    }
                    Stmt::Sink { name, value } => {
                        h.u8(3);
                        h.str(name);
                        h.u32(*value);
                    }
                    Stmt::For {
                        var,
                        lo,
                        hi,
                        step,
                        par,
                        seq,
                        body,
                    } => {
                        h.u8(4);
                        h.u32(*var);
                        h.u32(*lo);
                        h.u32(*hi);
                        h.i64(*step);
                        h.u32(*par as u32);
                        h.u8(u8::from(*seq));
                        stmts(h, body);
                    }
                    Stmt::While { cond, seq, body } => {
                        h.u8(5);
                        h.u32(*cond);
                        h.u8(u8::from(*seq));
                        stmts(h, body);
                    }
                    Stmt::If {
                        cond,
                        then_body,
                        else_body,
                    } => {
                        h.u8(6);
                        h.u32(*cond);
                        stmts(h, then_body);
                        stmts(h, else_body);
                    }
                }
            }
        }
        stmts(&mut h, &self.body);
        h.0
    }
}

//! The `kernel!` macro front end.
//!
//! A token-munching statement grammar over [`ProgramBuilder`]
//! (see the crate docs for the full surface syntax). Because
//! `macro_rules!` hygiene only covers locals, user-written expressions
//! see the [`prelude`](crate::prelude) items (`ld`, `ld_crit`, `select`,
//! `stream`) and the identifiers bound by `let`/`for` as ordinary local
//! variables of type [`Expr`](crate::Expr).
//!
//! [`ProgramBuilder`]: crate::ProgramBuilder

/// Build a [`Program`](crate::Program) from surface syntax.
///
/// ```
/// use nupea_lang::kernel;
///
/// let program = kernel! {
///     name: "axpy";
///     param n;
///     for i in range(0, n) {
///         st(i + 200, ld(i) * 3 + ld(i + 100));
///     }
/// }
/// .expect("valid program");
/// let kernel = program.lower().expect("lowers");
/// assert_eq!(kernel.name(), "axpy");
/// ```
///
/// # Statements
///
/// * `param n;` — declare a runtime parameter.
/// * `let x = expr;` / `let mut x = expr;` — bind a variable.
/// * `x = expr;` — reassign a `mut` variable.
/// * `st(addr, value);` — store.
/// * `sink "name" = expr;` — record a value into a named sink stream.
/// * `for i in range(lo, hi) [step(k)] [par(p)] [seq] { ... }` — counted
///   loop; `par(p)` replicates over `p` chunks, `seq` chains memory.
/// * `while (cond) [seq] { ... }` — condition must be parenthesized.
/// * `if (cond) { ... } [else { ... }]` — condition must be
///   parenthesized.
///
/// # Expressions
///
/// Plain Rust expressions over [`Expr`](crate::Expr) handles: integer
/// literals, `+ - * / % & | ^ << >>`, comparisons as methods
/// (`a.lt(b)`, `a.eq(b)`, ...), `ld(addr)`, `ld_crit(addr)`,
/// `select(c, t, f)`, `stream(e)`, and any surrounding Rust `i64`
/// variables (they fold to constants).
///
/// Returns `Result<Program, LangError>`.
#[macro_export]
macro_rules! kernel {
    (name: $name:expr; $($body:tt)*) => {{
        #[allow(unused_imports)]
        use $crate::prelude::*;
        let mut __nupea_lang_p = $crate::ProgramBuilder::new($name);
        $crate::__lang_stmts!(__nupea_lang_p, $($body)*);
        __nupea_lang_p.finish()
    }};
}

/// Statement muncher behind [`kernel!`] — not for direct use.
#[doc(hidden)]
#[macro_export]
macro_rules! __lang_stmts {
    ($p:ident,) => {};
    // param n;
    ($p:ident, param $x:ident; $($rest:tt)*) => {
        let $x = $p.param(stringify!($x));
        $crate::__lang_stmts!($p, $($rest)*);
    };
    // let mut x = expr;
    ($p:ident, let mut $x:ident = $e:expr; $($rest:tt)*) => {
        let $x = {
            let __nupea_lang_v = $crate::Expr::from($e);
            $p.let_(stringify!($x), true, __nupea_lang_v)
        };
        $crate::__lang_stmts!($p, $($rest)*);
    };
    // let x = expr;
    ($p:ident, let $x:ident = $e:expr; $($rest:tt)*) => {
        let $x = {
            let __nupea_lang_v = $crate::Expr::from($e);
            $p.let_(stringify!($x), false, __nupea_lang_v)
        };
        $crate::__lang_stmts!($p, $($rest)*);
    };
    // st(addr, value);
    ($p:ident, st($a:expr, $v:expr); $($rest:tt)*) => {
        {
            let __nupea_lang_a = $crate::Expr::from($a);
            let __nupea_lang_v = $crate::Expr::from($v);
            $p.store(__nupea_lang_a, __nupea_lang_v);
        }
        $crate::__lang_stmts!($p, $($rest)*);
    };
    // sink "name" = expr;
    ($p:ident, sink $n:literal = $e:expr; $($rest:tt)*) => {
        {
            let __nupea_lang_v = $crate::Expr::from($e);
            $p.sink($n, __nupea_lang_v);
        }
        $crate::__lang_stmts!($p, $($rest)*);
    };
    // for i in range(lo, hi) [modifiers...] { body }
    ($p:ident, for $i:ident in range($lo:expr, $hi:expr) $($rest:tt)*) => {
        $crate::__lang_for!($p, $i, ($lo), ($hi), 1, 1, false, $($rest)*);
    };
    // while (cond) seq { body }
    ($p:ident, while ($c:expr) seq { $($body:tt)* } $($rest:tt)*) => {
        {
            let __nupea_lang_c = $crate::Expr::from($c);
            $p.begin_while(__nupea_lang_c, true);
        }
        $crate::__lang_stmts!($p, $($body)*);
        $p.end_while();
        $crate::__lang_stmts!($p, $($rest)*);
    };
    // while (cond) { body }
    ($p:ident, while ($c:expr) { $($body:tt)* } $($rest:tt)*) => {
        {
            let __nupea_lang_c = $crate::Expr::from($c);
            $p.begin_while(__nupea_lang_c, false);
        }
        $crate::__lang_stmts!($p, $($body)*);
        $p.end_while();
        $crate::__lang_stmts!($p, $($rest)*);
    };
    // if (cond) { then } else { else }
    ($p:ident, if ($c:expr) { $($then:tt)* } else { $($else:tt)* } $($rest:tt)*) => {
        {
            let __nupea_lang_c = $crate::Expr::from($c);
            $p.begin_if(__nupea_lang_c);
        }
        $crate::__lang_stmts!($p, $($then)*);
        $p.begin_else();
        $crate::__lang_stmts!($p, $($else)*);
        $p.end_if();
        $crate::__lang_stmts!($p, $($rest)*);
    };
    // if (cond) { then }
    ($p:ident, if ($c:expr) { $($then:tt)* } $($rest:tt)*) => {
        {
            let __nupea_lang_c = $crate::Expr::from($c);
            $p.begin_if(__nupea_lang_c);
        }
        $crate::__lang_stmts!($p, $($then)*);
        $p.end_if();
        $crate::__lang_stmts!($p, $($rest)*);
    };
    // x = expr;  (last: `let`/`for`/... are keywords, so no ambiguity)
    ($p:ident, $x:ident = $e:expr; $($rest:tt)*) => {
        {
            let __nupea_lang_v = $crate::Expr::from($e);
            $p.assign($x, __nupea_lang_v);
        }
        $crate::__lang_stmts!($p, $($rest)*);
    };
}

/// `for`-modifier muncher behind [`kernel!`] — not for direct use.
/// Accumulates `step(k)`, `par(p)`, and `seq` before the body block.
#[doc(hidden)]
#[macro_export]
macro_rules! __lang_for {
    ($p:ident, $i:ident, ($lo:expr), ($hi:expr), $step:expr, $par:expr, $seq:expr, step($s:expr) $($rest:tt)*) => {
        $crate::__lang_for!($p, $i, ($lo), ($hi), $s, $par, $seq, $($rest)*);
    };
    ($p:ident, $i:ident, ($lo:expr), ($hi:expr), $step:expr, $par:expr, $seq:expr, par($n:expr) $($rest:tt)*) => {
        $crate::__lang_for!($p, $i, ($lo), ($hi), $step, $n, $seq, $($rest)*);
    };
    ($p:ident, $i:ident, ($lo:expr), ($hi:expr), $step:expr, $par:expr, $seq:expr, seq $($rest:tt)*) => {
        $crate::__lang_for!($p, $i, ($lo), ($hi), $step, $par, true, $($rest)*);
    };
    ($p:ident, $i:ident, ($lo:expr), ($hi:expr), $step:expr, $par:expr, $seq:expr, { $($body:tt)* } $($rest:tt)*) => {
        let $i = {
            let __nupea_lang_lo = $crate::Expr::from($lo);
            let __nupea_lang_hi = $crate::Expr::from($hi);
            $p.begin_for(
                stringify!($i),
                __nupea_lang_lo,
                __nupea_lang_hi,
                $step,
                $par,
                $seq,
            )
        };
        $crate::__lang_stmts!($p, $($body)*);
        $p.end_for();
        $crate::__lang_stmts!($p, $($rest)*);
    };
}

//! Semantic validation of finished programs.
//!
//! Runs at [`ProgramBuilder::finish`](crate::ProgramBuilder::finish) time,
//! before any lowering. The pass mirrors the builder's constant folding
//! with a small abstract interpreter so that "condition folds to a
//! constant" is diagnosed here as a typed [`LangError`] instead of a
//! panic deep inside graph construction.

use crate::ast::{ExprKind, Program, Stmt};
use crate::error::LangError;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Slot index for a variable or parameter (params live after vars).
pub(crate) fn param_slot(p: &Program, idx: u32) -> u32 {
    p.vars.len() as u32 + idx
}

/// Collect every variable/parameter slot read anywhere in `e`.
pub(crate) fn expr_slots(p: &Program, e: u32, out: &mut BTreeSet<u32>) {
    match &p.exprs[e as usize] {
        ExprKind::Const(_) => {}
        ExprKind::Param(i) => {
            out.insert(param_slot(p, *i));
        }
        ExprKind::Var(v) => {
            out.insert(*v);
        }
        ExprKind::Bin(_, a, b) | ExprKind::Cmp(_, a, b) => {
            expr_slots(p, *a, out);
            expr_slots(p, *b, out);
        }
        ExprKind::Un(_, a) | ExprKind::Stream(a) => expr_slots(p, *a, out),
        ExprKind::Select(c, t, f) => {
            expr_slots(p, *c, out);
            expr_slots(p, *t, out);
            expr_slots(p, *f, out);
        }
        ExprKind::Load { addr, .. } => expr_slots(p, *addr, out),
    }
}

/// Does `e` contain a load?
pub(crate) fn expr_has_load(p: &Program, e: u32) -> bool {
    match &p.exprs[e as usize] {
        ExprKind::Const(_) | ExprKind::Param(_) | ExprKind::Var(_) => false,
        ExprKind::Bin(_, a, b) | ExprKind::Cmp(_, a, b) => {
            expr_has_load(p, *a) || expr_has_load(p, *b)
        }
        ExprKind::Un(_, a) | ExprKind::Stream(a) => expr_has_load(p, *a),
        ExprKind::Select(c, t, f) => {
            expr_has_load(p, *c) || expr_has_load(p, *t) || expr_has_load(p, *f)
        }
        ExprKind::Load { .. } => true,
    }
}

/// Variable slots assigned anywhere in `body`, excluding variables
/// declared within `body` itself (those are iteration-local, not carried).
pub(crate) fn carried_writes(body: &[Stmt]) -> BTreeSet<u32> {
    let mut writes = BTreeSet::new();
    let mut declared = BTreeSet::new();
    collect_writes(body, &mut writes, &mut declared);
    writes.retain(|w| !declared.contains(w));
    writes
}

fn collect_writes(body: &[Stmt], writes: &mut BTreeSet<u32>, declared: &mut BTreeSet<u32>) {
    for s in body {
        match s {
            Stmt::Let { var, .. } => {
                declared.insert(*var);
            }
            Stmt::Assign { var, .. } => {
                writes.insert(*var);
            }
            Stmt::Store { .. } | Stmt::Sink { .. } => {}
            Stmt::For { var, body, .. } => {
                declared.insert(*var);
                collect_writes(body, writes, declared);
            }
            Stmt::While { body, .. } => collect_writes(body, writes, declared),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_writes(then_body, writes, declared);
                collect_writes(else_body, writes, declared);
            }
        }
    }
}

/// Slots *read* anywhere in `body` (conditions, bounds, expressions),
/// excluding slots declared within `body`.
pub(crate) fn free_reads(p: &Program, body: &[Stmt]) -> BTreeSet<u32> {
    let mut reads = BTreeSet::new();
    let mut declared = BTreeSet::new();
    collect_reads(p, body, &mut reads, &mut declared);
    reads.retain(|r| !declared.contains(r));
    reads
}

fn collect_reads(
    p: &Program,
    body: &[Stmt],
    reads: &mut BTreeSet<u32>,
    declared: &mut BTreeSet<u32>,
) {
    for s in body {
        match s {
            Stmt::Let { var, init } => {
                expr_slots(p, *init, reads);
                declared.insert(*var);
            }
            Stmt::Assign { value, .. } => expr_slots(p, *value, reads),
            Stmt::Store { addr, value } => {
                expr_slots(p, *addr, reads);
                expr_slots(p, *value, reads);
            }
            Stmt::Sink { value, .. } => expr_slots(p, *value, reads),
            Stmt::For {
                var, lo, hi, body, ..
            } => {
                expr_slots(p, *lo, reads);
                expr_slots(p, *hi, reads);
                declared.insert(*var);
                collect_reads(p, body, reads, declared);
            }
            Stmt::While { cond, body, .. } => {
                expr_slots(p, *cond, reads);
                collect_reads(p, body, reads, declared);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                expr_slots(p, *cond, reads);
                collect_reads(p, then_body, reads, declared);
                collect_reads(p, else_body, reads, declared);
            }
        }
    }
}

/// Abstract constant evaluation mirroring the builder's immediate
/// folding: `Some(v)` means the lowered value is guaranteed to be the
/// immediate `v`; `None` means it is (or may be) a runtime token stream.
/// `env` maps in-scope slots to their abstract values.
pub(crate) fn aeval(p: &Program, env: &HashMap<u32, Option<i64>>, e: u32) -> Option<i64> {
    match &p.exprs[e as usize] {
        ExprKind::Const(v) => Some(*v),
        ExprKind::Param(_) => None,
        ExprKind::Var(v) => env.get(v).copied().flatten(),
        ExprKind::Bin(k, a, b) => match (aeval(p, env, *a), aeval(p, env, *b)) {
            (Some(x), Some(y)) => Some(k.eval(x, y)),
            _ => None,
        },
        ExprKind::Cmp(k, a, b) => match (aeval(p, env, *a), aeval(p, env, *b)) {
            (Some(x), Some(y)) => Some(k.eval(x, y)),
            _ => None,
        },
        ExprKind::Un(k, a) => aeval(p, env, *a).map(|x| k.eval(x)),
        // The builder never folds selects, loads, or explicit streams.
        ExprKind::Select(..) | ExprKind::Load { .. } | ExprKind::Stream(_) => None,
    }
}

struct Checker<'p> {
    p: &'p Program,
    /// In-scope slots → abstract constant value.
    env: HashMap<u32, Option<i64>>,
    in_par: bool,
    in_seq: bool,
    sink_names: HashSet<String>,
    has_observable: bool,
}

pub(crate) fn validate(p: &Program) -> Result<(), LangError> {
    let mut seen = HashSet::new();
    for name in &p.params {
        if !seen.insert(name.clone()) {
            return Err(LangError::DuplicateParam { name: name.clone() });
        }
    }
    let mut ck = Checker {
        p,
        env: (0..p.params.len())
            .map(|j| (param_slot(p, j as u32), None))
            .collect(),
        in_par: false,
        in_seq: false,
        sink_names: HashSet::new(),
        has_observable: false,
    };
    ck.block(&p.body)?;
    if !ck.has_observable {
        return Err(LangError::EmptyProgram);
    }
    Ok(())
}

impl Checker<'_> {
    fn slot_name(&self, slot: u32) -> String {
        let nvars = self.p.vars.len() as u32;
        if slot < nvars {
            self.p.vars[slot as usize].name.clone()
        } else {
            self.p.params[(slot - nvars) as usize].clone()
        }
    }

    fn scope(&self, e: u32) -> Result<(), LangError> {
        let mut slots = BTreeSet::new();
        expr_slots(self.p, e, &mut slots);
        for s in slots {
            if !self.env.contains_key(&s) {
                return Err(LangError::UnknownName {
                    name: self.slot_name(s),
                });
            }
        }
        Ok(())
    }

    /// Invalidate assigned slots that are visible in the current scope
    /// (loop-carried / branch-merged values become runtime streams).
    fn smudge(&mut self, writes: &BTreeSet<u32>) {
        for w in writes {
            if let Some(v) = self.env.get_mut(w) {
                *v = None;
            }
        }
    }

    fn block(&mut self, body: &[Stmt]) -> Result<(), LangError> {
        let mut declared_here = Vec::new();
        for s in body {
            match s {
                Stmt::Let { var, init } => {
                    self.scope(*init)?;
                    self.env.insert(*var, aeval(self.p, &self.env, *init));
                    declared_here.push(*var);
                }
                Stmt::Assign { var, value } => {
                    self.scope(*value)?;
                    if !self.env.contains_key(var) {
                        return Err(LangError::UnknownName {
                            name: self.slot_name(*var),
                        });
                    }
                    if !self.p.vars[*var as usize].mutable {
                        return Err(LangError::ImmutableAssign {
                            name: self.slot_name(*var),
                        });
                    }
                    let v = aeval(self.p, &self.env, *value);
                    self.env.insert(*var, v);
                }
                Stmt::Store { addr, value } => {
                    self.scope(*addr)?;
                    self.scope(*value)?;
                    self.has_observable = true;
                }
                Stmt::Sink { name, value } => {
                    self.scope(*value)?;
                    if self.in_par {
                        return Err(LangError::SinkInParallel { name: name.clone() });
                    }
                    if !self.sink_names.insert(name.clone()) {
                        return Err(LangError::DuplicateSink { name: name.clone() });
                    }
                    self.has_observable = true;
                }
                Stmt::For {
                    var,
                    lo,
                    hi,
                    step,
                    par,
                    seq,
                    body,
                } => self.check_for(*var, *lo, *hi, *step, *par, *seq, body)?,
                Stmt::While { cond, seq, body } => self.check_while(*cond, *seq, body)?,
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => self.check_if(*cond, then_body, else_body)?,
            }
        }
        for v in declared_here {
            self.env.remove(&v);
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn check_for(
        &mut self,
        var: u32,
        lo: u32,
        hi: u32,
        step: i64,
        par: usize,
        seq: bool,
        body: &[Stmt],
    ) -> Result<(), LangError> {
        self.scope(lo)?;
        self.scope(hi)?;
        if step <= 0 {
            return Err(LangError::ShapeMismatch {
                detail: format!("for step must be positive, got {step}"),
            });
        }
        if par == 0 {
            return Err(LangError::ShapeMismatch {
                detail: "par(0) makes no chunks".into(),
            });
        }
        let writes = carried_writes(body);
        if par > 1 {
            if seq {
                return Err(LangError::ShapeMismatch {
                    detail: "a loop cannot be both par(..) and seq".into(),
                });
            }
            if self.in_seq {
                return Err(LangError::ShapeMismatch {
                    detail: "par(..) loop inside a seq loop would break the memory order".into(),
                });
            }
            if step != 1 {
                return Err(LangError::ShapeMismatch {
                    detail: "par(..) loops require step 1".into(),
                });
            }
            let (Some(l), Some(h)) = (aeval(self.p, &self.env, lo), aeval(self.p, &self.env, hi))
            else {
                return Err(LangError::ShapeMismatch {
                    detail: "par(..) loop bounds must be compile-time constants".into(),
                });
            };
            if h - l < par as i64 {
                return Err(LangError::ShapeMismatch {
                    detail: format!("par({par}) exceeds trip count {}", h - l),
                });
            }
            if let Some(w) = writes.iter().find(|w| self.env.contains_key(w)) {
                return Err(LangError::ShapeMismatch {
                    detail: format!(
                        "par(..) loop cannot carry state across chunks \
                         (assignment to outer variable `{}`)",
                        self.slot_name(*w)
                    ),
                });
            }
        }
        let saved_env = self.env.clone();
        let (saved_par, saved_seq) = (self.in_par, self.in_seq);
        self.env.insert(var, None);
        self.smudge(&writes);
        self.in_par |= par > 1;
        self.in_seq |= seq;
        self.block(body)?;
        self.env = saved_env;
        self.in_par = saved_par;
        self.in_seq = saved_seq;
        self.smudge(&writes);
        Ok(())
    }

    fn check_while(&mut self, cond: u32, seq: bool, body: &[Stmt]) -> Result<(), LangError> {
        self.scope(cond)?;
        let ordered = seq || self.in_seq;
        let writes = carried_writes(body);
        // Fold the condition the way the header region will see it:
        // loop-carried slots are runtime streams there.
        let mut hdr_env = self.env.clone();
        for w in &writes {
            if let Some(v) = hdr_env.get_mut(w) {
                *v = None;
            }
        }
        if aeval(self.p, &hdr_env, cond).is_some() {
            return Err(LangError::ConstantCondition { construct: "while" });
        }
        let mut cond_slots = BTreeSet::new();
        expr_slots(self.p, cond, &mut cond_slots);
        if cond_slots.is_disjoint(&writes) {
            return Err(LangError::CyclicDependency {
                detail: "while condition depends on no variable assigned in the loop \
                         body, so the loop state can never change; carry the \
                         governing value in a `mut` variable"
                    .into(),
            });
        }
        if ordered && expr_has_load(self.p, cond) {
            return Err(LangError::ShapeMismatch {
                detail: "loads are not allowed in the condition of an ordered (seq) \
                         while loop; load into a `mut` variable in the body instead"
                    .into(),
            });
        }
        let saved_env = self.env.clone();
        let saved_seq = self.in_seq;
        self.smudge(&writes);
        self.in_seq = ordered;
        self.block(body)?;
        self.env = saved_env;
        self.in_seq = saved_seq;
        self.smudge(&writes);
        Ok(())
    }

    fn check_if(
        &mut self,
        cond: u32,
        then_body: &[Stmt],
        else_body: &[Stmt],
    ) -> Result<(), LangError> {
        self.scope(cond)?;
        if aeval(self.p, &self.env, cond).is_some() {
            return Err(LangError::ConstantCondition { construct: "if" });
        }
        let mut writes = carried_writes(then_body);
        writes.extend(carried_writes(else_body));
        let saved_env = self.env.clone();
        self.block(then_body)?;
        self.env = saved_env.clone();
        self.block(else_body)?;
        self.env = saved_env;
        self.smudge(&writes);
        Ok(())
    }
}

//! Scalar reference interpreter over the surface AST.
//!
//! Executes a [`Program`] directly — no dataflow graph, no tokens — and
//! is the ground truth the lowered kernel is differentially tested
//! against. It mirrors the lowering's evaluation rules exactly:
//!
//! * per-statement expression memoization (a shared `Expr` handle — one
//!   load — evaluates once per statement);
//! * `select` is eager (both arms evaluate, including their loads);
//! * `if` statements execute only the taken branch (the dataflow steers
//!   deliver tokens only to the taken side);
//! * `par(n)` loops run as `n` sequential chunks (bit-identical to any
//!   interleaving for the race-free programs the checker admits);
//! * `seq` only constrains dataflow timing, so it is a no-op here.

use crate::ast::{ExprKind, Program, Stmt};
use std::collections::HashMap;

/// Why scalar execution stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScalarError {
    /// A load or store address fell outside the memory image.
    OutOfBounds {
        /// The faulting address.
        addr: i64,
    },
    /// A `while` loop exceeded the step budget (likely non-terminating).
    StepBudgetExhausted,
    /// A parameter the program declares was not bound.
    MissingParam {
        /// The unbound parameter's name.
        name: String,
    },
}

impl std::fmt::Display for ScalarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalarError::OutOfBounds { addr } => write!(f, "address {addr} out of bounds"),
            ScalarError::StepBudgetExhausted => write!(f, "step budget exhausted"),
            ScalarError::MissingParam { name } => write!(f, "parameter `{name}` not bound"),
        }
    }
}

impl std::error::Error for ScalarError {}

/// Result of a scalar run: sink streams (in sink declaration order,
/// matching the lowered kernel's `SinkId` order) and a step count.
#[derive(Debug, Clone)]
pub struct ScalarRun {
    /// One value stream per sink, in declaration order.
    pub sinks: Vec<Vec<i64>>,
    /// Sink names parallel to `sinks`.
    pub sink_names: Vec<String>,
    /// Statements executed (loop iterations included).
    pub steps: u64,
}

const STEP_BUDGET: u64 = 200_000_000;

struct Scalar<'p> {
    p: &'p Program,
    env: Vec<Option<i64>>,
    sinks: Vec<Vec<i64>>,
    sink_index: HashMap<String, usize>,
    steps: u64,
}

impl Program {
    /// Execute the program scalar-style over `mem`, with named parameter
    /// bindings.
    ///
    /// # Errors
    ///
    /// [`ScalarError`] on out-of-bounds access, an unbound parameter, or
    /// a blown step budget.
    pub fn interpret(
        &self,
        mem: &mut [i64],
        params: &[(&str, i64)],
    ) -> Result<ScalarRun, ScalarError> {
        let nslots = self.vars.len() + self.params.len();
        let mut env = vec![None; nslots];
        for (j, name) in self.params.iter().enumerate() {
            let bound = params
                .iter()
                .find(|(n, _)| n == name)
                .ok_or_else(|| ScalarError::MissingParam { name: name.clone() })?;
            env[self.vars.len() + j] = Some(bound.1);
        }
        let names = self.sink_names();
        let sink_index: HashMap<String, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.to_string(), i))
            .collect();
        let mut s = Scalar {
            p: self,
            env,
            sinks: vec![Vec::new(); names.len()],
            sink_index,
            steps: 0,
        };
        s.block(&self.body, mem)?;
        Ok(ScalarRun {
            sinks: s.sinks,
            sink_names: names.into_iter().map(str::to_string).collect(),
            steps: s.steps,
        })
    }
}

impl Scalar<'_> {
    fn eval(
        &mut self,
        memo: &mut HashMap<u32, i64>,
        e: u32,
        mem: &mut [i64],
    ) -> Result<i64, ScalarError> {
        if let Some(&v) = memo.get(&e) {
            return Ok(v);
        }
        let kind = self.p.exprs[e as usize].clone();
        let v = match kind {
            ExprKind::Const(v) => v,
            ExprKind::Param(j) => {
                self.env[self.p.vars.len() + j as usize].expect("param bound (checked)")
            }
            ExprKind::Var(x) => self.env[x as usize].expect("var in scope (validated)"),
            ExprKind::Bin(k, a, b) => {
                let x = self.eval(memo, a, mem)?;
                let y = self.eval(memo, b, mem)?;
                k.eval(x, y)
            }
            ExprKind::Cmp(k, a, b) => {
                let x = self.eval(memo, a, mem)?;
                let y = self.eval(memo, b, mem)?;
                k.eval(x, y)
            }
            ExprKind::Un(k, a) => {
                let x = self.eval(memo, a, mem)?;
                k.eval(x)
            }
            ExprKind::Select(c, t, f) => {
                // Eager, like the dataflow Select node: both arms run.
                let cv = self.eval(memo, c, mem)?;
                let tv = self.eval(memo, t, mem)?;
                let fv = self.eval(memo, f, mem)?;
                if cv != 0 {
                    tv
                } else {
                    fv
                }
            }
            ExprKind::Load { addr, .. } => {
                let a = self.eval(memo, addr, mem)?;
                *usize::try_from(a)
                    .ok()
                    .and_then(|a| mem.get(a))
                    .ok_or(ScalarError::OutOfBounds { addr: a })?
            }
            ExprKind::Stream(x) => self.eval(memo, x, mem)?,
        };
        memo.insert(e, v);
        Ok(v)
    }

    fn stmt_exprs(&mut self, mem: &mut [i64], exprs: &[u32]) -> Result<Vec<i64>, ScalarError> {
        let mut memo = HashMap::new();
        exprs
            .iter()
            .map(|&e| self.eval(&mut memo, e, mem))
            .collect()
    }

    fn block(&mut self, body: &[Stmt], mem: &mut [i64]) -> Result<(), ScalarError> {
        for s in body {
            self.steps += 1;
            if self.steps > STEP_BUDGET {
                return Err(ScalarError::StepBudgetExhausted);
            }
            match s {
                Stmt::Let { var, init } => {
                    let v = self.stmt_exprs(mem, &[*init])?[0];
                    self.env[*var as usize] = Some(v);
                }
                Stmt::Assign { var, value } => {
                    let v = self.stmt_exprs(mem, &[*value])?[0];
                    self.env[*var as usize] = Some(v);
                }
                Stmt::Store { addr, value } => {
                    let vals = self.stmt_exprs(mem, &[*addr, *value])?;
                    let (a, v) = (vals[0], vals[1]);
                    let slot = usize::try_from(a)
                        .ok()
                        .filter(|&i| i < mem.len())
                        .ok_or(ScalarError::OutOfBounds { addr: a })?;
                    mem[slot] = v;
                }
                Stmt::Sink { name, value } => {
                    let v = self.stmt_exprs(mem, &[*value])?[0];
                    let i = self.sink_index[name];
                    self.sinks[i].push(v);
                }
                Stmt::For {
                    var,
                    lo,
                    hi,
                    step,
                    par,
                    body,
                    ..
                } => {
                    let bounds = self.stmt_exprs(mem, &[*lo, *hi])?;
                    let (lo_v, hi_v) = (bounds[0], bounds[1]);
                    if *par > 1 {
                        // Mirror the lowering's chunk replication; chunks
                        // run in order (race-free by construction).
                        let total = hi_v - lo_v;
                        let chunk = ((total + *par as i64 - 1) / *par as i64).max(1);
                        let mut start = lo_v;
                        while start < hi_v {
                            let end = (start + chunk).min(hi_v);
                            self.run_for(*var, start, end, *step, body, mem)?;
                            start = end;
                        }
                    } else {
                        self.run_for(*var, lo_v, hi_v, *step, body, mem)?;
                    }
                }
                Stmt::While { cond, body, .. } => loop {
                    self.steps += 1;
                    if self.steps > STEP_BUDGET {
                        return Err(ScalarError::StepBudgetExhausted);
                    }
                    let c = self.stmt_exprs(mem, &[*cond])?[0];
                    if c == 0 {
                        break;
                    }
                    self.block(body, mem)?;
                },
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let c = self.stmt_exprs(mem, &[*cond])?[0];
                    if c != 0 {
                        self.block(then_body, mem)?;
                    } else {
                        self.block(else_body, mem)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn run_for(
        &mut self,
        var: u32,
        lo: i64,
        hi: i64,
        step: i64,
        body: &[Stmt],
        mem: &mut [i64],
    ) -> Result<(), ScalarError> {
        let mut i = lo;
        while i < hi {
            self.steps += 1;
            if self.steps > STEP_BUDGET {
                return Err(ScalarError::StepBudgetExhausted);
            }
            self.env[var as usize] = Some(i);
            self.block(body, mem)?;
            i += step;
        }
        Ok(())
    }
}

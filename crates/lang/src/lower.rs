//! Deterministic lowering from the surface AST to the ordered-dataflow
//! IR via [`nupea_ir::builder`].
//!
//! The lowering is a structural recursion over the statement tree:
//!
//! * variables and parameters live in a slot environment mapping to
//!   builder [`Val`]s; immediates flow through as immediates (the
//!   builder folds them), streams as region-tagged tokens;
//! * `for`/`while` become [`Ctx::for_range`]/[`Ctx::while_loop`] with
//!   carried variables = slots assigned in the body (in slot order,
//!   i.e. declaration order) and invariants = stream-valued slots read
//!   by the body or condition;
//! * `par(n)` loops replicate their body over `n` contiguous chunks
//!   using the same chunk formula as the hand-written workloads'
//!   `parallel_chunks` helper;
//! * `seq` loops thread a memory-order token through every load and
//!   store in program order, as a hidden last carried variable.
//!   Consecutive `seq` loops in one scope chain through the exit token,
//!   so a build loop and a probe loop stay ordered relative to each
//!   other;
//! * each statement evaluates its expression DAG with a per-statement
//!   memo, so a shared subexpression (one `Expr` handle used twice)
//!   becomes one node — in particular one *load* — while textual
//!   repetition stays separate (and is then CSE'd if pure).
//!
//! The scalar interpreter ([`crate::interp`]) mirrors these rules
//! exactly (same memoization, same evaluation order), which is what the
//! differential test suite leans on.

use crate::ast::{ExprKind, Program, Stmt};
use crate::check::{carried_writes, expr_slots, free_reads, param_slot};
use crate::error::LangError;
use nupea_ir::builder::{Ctx, Kernel, Val};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};

struct Lower<'p> {
    p: &'p Program,
    /// Slot → current builder value (vars then params); `None` = not yet
    /// bound in this region.
    env: Vec<Option<Val>>,
    /// Running memory-order token for the current `seq` chain.
    ord: Option<Val>,
    /// True inside a loop marked `seq` (all memory ops chain through
    /// `ord`).
    in_seq: bool,
    /// First lowering-time error (checked again after build).
    err: Option<LangError>,
}

impl Program {
    /// Lower to a finished [`Kernel`]: build the token-balanced dataflow
    /// graph, run the builder's CSE/DCE/criticality pipeline, and check
    /// the author's `ld_crit` annotations against the classifier.
    ///
    /// # Errors
    ///
    /// [`LangError::CriticalityHintViolated`] when a `ld_crit` load did
    /// not classify as critical, or a residual [`LangError`] the static
    /// checker could not prove absent (e.g. a condition that folds to a
    /// constant only after lowering).
    pub fn lower(&self) -> Result<Kernel, LangError> {
        let nslots = self.vars.len() + self.params.len();
        let lower = RefCell::new(Lower {
            p: self,
            env: vec![None; nslots],
            ord: None,
            in_seq: false,
            err: None,
        });
        let kernel = Kernel::build(&self.name, |c| {
            {
                let mut l = lower.borrow_mut();
                for (j, name) in self.params.iter().enumerate() {
                    let v = c.param(name);
                    let slot = param_slot(self, j as u32) as usize;
                    l.env[slot] = Some(v);
                }
            }
            block(&lower, c, &self.body);
        });
        if let Some(e) = lower.into_inner().err {
            return Err(e);
        }
        let violations = kernel.criticality_hint_violations();
        if !violations.is_empty() {
            return Err(LangError::CriticalityHintViolated {
                count: violations.len(),
            });
        }
        Ok(kernel)
    }
}

/// Evaluate expression `e` into the current region, memoized per root
/// statement so a shared `Expr` handle lowers once.
fn eval(l: &RefCell<Lower<'_>>, c: &mut Ctx, memo: &mut HashMap<u32, Val>, e: u32) -> Val {
    if let Some(&v) = memo.get(&e) {
        return v;
    }
    let kind = l.borrow().p.exprs[e as usize].clone();
    let v = match kind {
        ExprKind::Const(v) => c.imm(v),
        ExprKind::Param(j) => {
            let slot = param_slot(l.borrow().p, j) as usize;
            l.borrow().env[slot].expect("param in scope (validated)")
        }
        ExprKind::Var(v) => l.borrow().env[v as usize].expect("var in scope (validated)"),
        ExprKind::Bin(k, a, b) => {
            let a = eval(l, c, memo, a);
            let b = eval(l, c, memo, b);
            c.bin(k, a, b)
        }
        ExprKind::Cmp(k, a, b) => {
            let a = eval(l, c, memo, a);
            let b = eval(l, c, memo, b);
            c.cmp(k, a, b)
        }
        ExprKind::Un(k, a) => {
            let a = eval(l, c, memo, a);
            c.un(k, a)
        }
        ExprKind::Select(cond, t, f) => {
            let cond = eval(l, c, memo, cond);
            let t = eval(l, c, memo, t);
            let f = eval(l, c, memo, f);
            c.select(cond, t, f)
        }
        ExprKind::Load { addr, critical } => {
            let addr = eval(l, c, memo, addr);
            let in_seq = l.borrow().in_seq;
            if in_seq {
                let ord = l.borrow().ord.expect("seq context has an order token");
                let (v, ord2) = if critical {
                    c.load_ordered_expect_critical(addr, ord)
                } else {
                    c.load_ordered(addr, ord)
                };
                l.borrow_mut().ord = Some(ord2);
                v
            } else if critical {
                c.load_expect_critical(addr)
            } else {
                c.load(addr)
            }
        }
        ExprKind::Stream(x) => {
            let x = eval(l, c, memo, x);
            c.as_stream(x)
        }
    };
    memo.insert(e, v);
    v
}

fn block(l: &RefCell<Lower<'_>>, c: &mut Ctx, body: &[Stmt]) {
    for s in body {
        if l.borrow().err.is_some() {
            return; // bail out cheaply; the kernel is discarded anyway
        }
        let mut memo = HashMap::new();
        match s {
            Stmt::Let { var, init } => {
                let v = eval(l, c, &mut memo, *init);
                l.borrow_mut().env[*var as usize] = Some(v);
            }
            Stmt::Assign { var, value } => {
                let v = eval(l, c, &mut memo, *value);
                l.borrow_mut().env[*var as usize] = Some(v);
            }
            Stmt::Store { addr, value } => {
                let a = eval(l, c, &mut memo, *addr);
                let v = eval(l, c, &mut memo, *value);
                let in_seq = l.borrow().in_seq;
                if in_seq {
                    let ord = l.borrow().ord.expect("seq context has an order token");
                    let tok = c.store_ordered(a, v, ord);
                    l.borrow_mut().ord = Some(tok);
                } else {
                    c.store(a, v);
                }
            }
            Stmt::Sink { name, value } => {
                let v = eval(l, c, &mut memo, *value);
                c.sink(v, name);
            }
            Stmt::For {
                var,
                lo,
                hi,
                step,
                par,
                seq,
                body,
            } => {
                let lo_v = eval(l, c, &mut memo, *lo);
                let hi_v = eval(l, c, &mut memo, *hi);
                if *par > 1 {
                    // Replicate the body over contiguous chunks; bounds are
                    // compile-time constants (validated). Same chunking as
                    // the workloads' `parallel_chunks` helper.
                    let (lo_c, hi_c) = (
                        lo_v.as_imm().expect("par bounds fold (validated)"),
                        hi_v.as_imm().expect("par bounds fold (validated)"),
                    );
                    let total = hi_c - lo_c;
                    let chunk = (total + *par as i64 - 1) / (*par as i64);
                    let chunk = chunk.max(1);
                    let mut start = lo_c;
                    while start < hi_c {
                        let end = (start + chunk).min(hi_c);
                        lower_loop(
                            l,
                            c,
                            *var,
                            Val::from(start),
                            Val::from(end),
                            *step,
                            false,
                            body,
                        );
                        start = end;
                    }
                } else {
                    lower_loop(l, c, *var, lo_v, hi_v, *step, *seq, body);
                }
            }
            Stmt::While { cond, seq, body } => lower_while(l, c, *cond, *seq, body),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let cond_v = eval(l, c, &mut memo, *cond);
                lower_if(l, c, cond_v, then_body, else_body);
            }
        }
    }
}

/// Carried slots (assigned, declared outside) and invariant slots
/// (read, stream-valued, not carried) for a loop body + condition.
fn loop_slots(
    l: &RefCell<Lower<'_>>,
    body: &[Stmt],
    cond: Option<u32>,
    exclude: &[u32],
) -> (Vec<u32>, Vec<u32>) {
    let lb = l.borrow();
    let carried: Vec<u32> = carried_writes(body).into_iter().collect();
    let mut reads: BTreeSet<u32> = free_reads(lb.p, body);
    if let Some(e) = cond {
        expr_slots(lb.p, e, &mut reads);
    }
    let invs: Vec<u32> = reads
        .into_iter()
        .filter(|s| {
            !carried.contains(s)
                && !exclude.contains(s)
                // Immediate-valued slots flow through region boundaries for
                // free; only token streams need an Invariant gate.
                && matches!(lb.env[*s as usize], Some(v) if !v.is_imm())
        })
        .collect();
    (carried, invs)
}

#[allow(clippy::too_many_arguments)]
fn lower_loop(
    l: &RefCell<Lower<'_>>,
    c: &mut Ctx,
    var: u32,
    lo: Val,
    hi: Val,
    step: i64,
    seq: bool,
    body: &[Stmt],
) {
    let (carried, invs) = loop_slots(l, body, None, &[var]);
    let ordered = seq || l.borrow().in_seq;
    let (saved_env, saved_ord, saved_seq) = {
        let lb = l.borrow();
        (lb.env.clone(), lb.ord, lb.in_seq)
    };
    if ordered && saved_ord.is_none() {
        let t = c.as_stream(c.imm(0));
        l.borrow_mut().ord = Some(t);
    }
    let mut carried_vals: Vec<Val> = carried
        .iter()
        .map(|&s| l.borrow().env[s as usize].expect("carried slot bound"))
        .collect();
    if ordered {
        carried_vals.push(l.borrow().ord.expect("order token just ensured"));
    }
    let inv_vals: Vec<Val> = invs
        .iter()
        .map(|&s| l.borrow().env[s as usize].expect("invariant slot bound"))
        .collect();
    let exits = c.for_range(lo, hi, step, &carried_vals, &inv_vals, |c, i, vars, ivs| {
        {
            let mut lb = l.borrow_mut();
            lb.env[var as usize] = Some(i);
            for (k, &s) in carried.iter().enumerate() {
                lb.env[s as usize] = Some(vars[k]);
            }
            for (k, &s) in invs.iter().enumerate() {
                lb.env[s as usize] = Some(ivs[k]);
            }
            lb.in_seq = ordered;
            lb.ord = if ordered { vars.last().copied() } else { None };
        }
        block(l, c, body);
        let lb = l.borrow();
        let mut nexts: Vec<Val> = carried
            .iter()
            .map(|&s| lb.env[s as usize].expect("carried slot still bound"))
            .collect();
        if ordered {
            nexts.push(lb.ord.expect("order token maintained"));
        }
        nexts
    });
    let mut lb = l.borrow_mut();
    lb.env = saved_env;
    lb.in_seq = saved_seq;
    for (k, &s) in carried.iter().enumerate() {
        lb.env[s as usize] = Some(exits[k]);
    }
    lb.ord = if ordered {
        exits.last().copied()
    } else {
        saved_ord
    };
}

fn lower_while(l: &RefCell<Lower<'_>>, c: &mut Ctx, cond: u32, seq: bool, body: &[Stmt]) {
    let (carried, invs) = loop_slots(l, body, Some(cond), &[]);
    let ordered = seq || l.borrow().in_seq;
    let (saved_env, saved_ord, saved_seq) = {
        let lb = l.borrow();
        (lb.env.clone(), lb.ord, lb.in_seq)
    };
    if ordered && saved_ord.is_none() {
        let t = c.as_stream(c.imm(0));
        l.borrow_mut().ord = Some(t);
    }
    let mut carried_vals: Vec<Val> = carried
        .iter()
        .map(|&s| l.borrow().env[s as usize].expect("carried slot bound"))
        .collect();
    if ordered {
        carried_vals.push(l.borrow().ord.expect("order token just ensured"));
    }
    let inv_vals: Vec<Val> = invs
        .iter()
        .map(|&s| l.borrow().env[s as usize].expect("invariant slot bound"))
        .collect();
    let exits = c.while_loop(
        &carried_vals,
        &inv_vals,
        |c, vars, ivs| {
            {
                let mut lb = l.borrow_mut();
                for (k, &s) in carried.iter().enumerate() {
                    lb.env[s as usize] = Some(vars[k]);
                }
                for (k, &s) in invs.iter().enumerate() {
                    lb.env[s as usize] = Some(ivs[k]);
                }
                // Header evaluation: loads in an ordered condition are
                // rejected by the checker, so `ord` stays untouched here.
            }
            let mut memo = HashMap::new();
            let d = eval(l, c, &mut memo, cond);
            if d.is_imm() {
                // Residual safety net: the static fold missed this (should
                // not happen — the checker mirrors the builder's folding).
                l.borrow_mut().err = Some(LangError::ConstantCondition { construct: "while" });
                c.as_stream(d) // keep the builder happy; kernel is discarded
            } else {
                d
            }
        },
        |c, vars, ivs| {
            {
                let mut lb = l.borrow_mut();
                for (k, &s) in carried.iter().enumerate() {
                    lb.env[s as usize] = Some(vars[k]);
                }
                for (k, &s) in invs.iter().enumerate() {
                    lb.env[s as usize] = Some(ivs[k]);
                }
                lb.in_seq = ordered;
                lb.ord = if ordered { vars.last().copied() } else { None };
            }
            block(l, c, body);
            let lb = l.borrow();
            let mut nexts: Vec<Val> = carried
                .iter()
                .map(|&s| lb.env[s as usize].expect("carried slot still bound"))
                .collect();
            if ordered {
                nexts.push(lb.ord.expect("order token maintained"));
            }
            nexts
        },
    );
    let mut lb = l.borrow_mut();
    lb.env = saved_env;
    lb.in_seq = saved_seq;
    for (k, &s) in carried.iter().enumerate() {
        lb.env[s as usize] = Some(exits[k]);
    }
    lb.ord = if ordered {
        exits.last().copied()
    } else {
        saved_ord
    };
}

fn lower_if(
    l: &RefCell<Lower<'_>>,
    c: &mut Ctx,
    cond_v: Val,
    then_body: &[Stmt],
    else_body: &[Stmt],
) {
    if cond_v.is_imm() {
        l.borrow_mut().err = Some(LangError::ConstantCondition { construct: "if" });
        return;
    }
    let (res_slots, input_slots, in_seq) = {
        let lb = l.borrow();
        let mut writes = carried_writes(then_body);
        writes.extend(carried_writes(else_body));
        // Only slots visible outside the branches are merge results.
        let res: Vec<u32> = writes
            .iter()
            .copied()
            .filter(|&s| lb.env[s as usize].is_some())
            .collect();
        let mut reads = free_reads(lb.p, then_body);
        reads.extend(free_reads(lb.p, else_body));
        reads.extend(res.iter().copied());
        let inputs: Vec<u32> = reads
            .into_iter()
            .filter(|&s| matches!(lb.env[s as usize], Some(v) if !v.is_imm()))
            .collect();
        (res, inputs, lb.in_seq)
    };
    let (saved_env, saved_ord) = {
        let lb = l.borrow();
        (lb.env.clone(), lb.ord)
    };
    let mut input_vals: Vec<Val> = input_slots
        .iter()
        .map(|&s| l.borrow().env[s as usize].expect("input slot bound"))
        .collect();
    if in_seq {
        input_vals.push(l.borrow().ord.expect("seq context has an order token"));
    }
    let run_branch =
        |l: &RefCell<Lower<'_>>, c: &mut Ctx, gated: &[Val], body: &[Stmt]| -> Vec<Val> {
            {
                let mut lb = l.borrow_mut();
                lb.env = saved_env.clone();
                for (k, &s) in input_slots.iter().enumerate() {
                    lb.env[s as usize] = Some(gated[k]);
                }
                lb.ord = if in_seq { gated.last().copied() } else { None };
            }
            block(l, c, body);
            let lb = l.borrow();
            let mut outs: Vec<Val> = res_slots
                .iter()
                .map(|&s| lb.env[s as usize].expect("result slot bound"))
                .collect();
            if in_seq {
                outs.push(lb.ord.expect("order token maintained"));
            }
            outs
        };
    let merged = c.if_else(
        cond_v,
        &input_vals,
        |c, gated| run_branch(l, c, gated, then_body),
        |c, gated| run_branch(l, c, gated, else_body),
    );
    let mut lb = l.borrow_mut();
    lb.env = saved_env;
    for (k, &s) in res_slots.iter().enumerate() {
        lb.env[s as usize] = Some(merged[k]);
    }
    lb.ord = if in_seq {
        merged.last().copied()
    } else {
        saved_ord
    };
}

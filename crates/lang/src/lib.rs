//! # nupea-lang — macro-based kernel front end for the NUPEA stack
//!
//! A small embedded DSL for authoring dataflow kernels as structured
//! imperative programs. The [`kernel!`] macro parses a surface syntax of
//! streams, element-wise arithmetic, gather/scatter loads with explicit
//! criticality annotations (`ld_crit`), stateful accumulators (`mut`
//! variables), and loop attributes (`par`, `seq`) into a [`Program`]
//! AST; [`Program::lower`] then lowers it **deterministically** to the
//! token-balanced ordered-dataflow IR of [`nupea_ir::builder`], so every
//! downstream subsystem — place-and-route, the cycle-accurate engine,
//! tracing, perturbation, fault campaigns, DSE, sharding, and
//! `nupea-serve` — consumes eDSL kernels unchanged.
//!
//! Three layers:
//!
//! 1. **Surface AST + macro front end** ([`kernel!`],
//!    [`ProgramBuilder`]) with typed [`LangError`] diagnostics (unknown
//!    names, shape mismatches, constant conditions, degenerate
//!    recurrences) and a stable FNV-1a [`Program::fnv1a_hash`].
//! 2. **Scalar reference interpreter** ([`Program::interpret`]) defining
//!    ground-truth semantics, used by the differential test suite
//!    (AST interpreter vs. IR interpreter on the lowered graph vs. the
//!    timed engine — sinks and memory byte-identical).
//! 3. **Workload authoring**: the production workloads in
//!    `nupea-kernels::workloads::wave2` (BFS frontier expansion, 2-D
//!    stencil, streaming hash join, histogram, ELLPACK SpMV) are written
//!    in this eDSL and registered in the standard workload table.
//!
//! # Example
//!
//! A gather-reduce with a critical pointer-chase load:
//!
//! ```
//! use nupea_lang::kernel;
//!
//! const N: i64 = 8;
//! let program = kernel! {
//!     name: "chase-sum";
//!     // Pointer chase: next = mem[cur]; the load governs the loop
//!     // recurrence, so it must classify as Critical.
//!     let mut cur = stream(0);
//!     let mut total = stream(0);
//!     let mut hops = stream(0);
//!     while (hops.lt(N)) {
//!         total = total + cur;
//!         cur = ld_crit(cur + 16);
//!         hops = hops + 1;
//!     }
//!     sink "total" = total;
//! }
//! .expect("valid program");
//!
//! // Scalar ground truth…
//! let mut mem = vec![0i64; 32];
//! for i in 0..8 {
//!     mem[16 + i] = (i as i64 + 3) % 8; // a permutation cycle
//! }
//! let run = program.interpret(&mut mem.clone(), &[]).unwrap();
//!
//! // …matches the lowered dataflow kernel run under the IR interpreter.
//! let kernel = program.lower().expect("lowers with the hint satisfied");
//! assert!(!kernel.critical_loads().is_empty());
//! # assert_eq!(run.sinks.len(), 1);
//! ```
//!
//! The macro surface is documented on [`kernel!`]; programmatic
//! construction (fuzzers, generators) can use [`ProgramBuilder`]
//! directly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ast;
mod check;
mod error;
mod interp;
mod lower;
mod macros;

pub use ast::{ld, ld_crit, select, stream, Expr, Program, ProgramBuilder};
pub use error::LangError;
pub use interp::{ScalarError, ScalarRun};

/// Items the [`kernel!`] macro brings into scope for user expressions.
pub mod prelude {
    pub use crate::ast::{ld, ld_crit, select, stream, Expr};
}

use nupea_lang::kernel;

#[test]
fn const_only_if_branches() {
    let p = kernel! {
        name: "flagsel";
        param n;
        let mut x = 0;
        if (n.gt(0)) {
            x = 1;
        } else {
            x = 2;
        }
        sink "x" = x;
    }
    .expect("validates");
    let r = p.lower();
    eprintln!("lower result ok? {}", r.is_ok());
}

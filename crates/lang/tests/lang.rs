//! Unit tests for the eDSL front end: diagnostics, hash stability, and
//! scalar-vs-IR-interpreter differentials (the engine leg of the
//! differential suite lives in the workspace-level `lang_diff` test,
//! which has access to the simulator).

use nupea_ir::interp::Interp;
use nupea_lang::{kernel, LangError, Program, ProgramBuilder};
use nupea_rng::Xoshiro256;

/// Run the lowered kernel under the untimed IR interpreter.
fn run_ir(p: &Program, mem: &mut [i64], params: &[(&str, i64)]) -> Vec<Vec<i64>> {
    let k = p.lower().expect("lowers");
    let mut it = Interp::new(k.dfg());
    for (pid, v) in k.bindings(params) {
        it.bind(pid, v);
    }
    let r = it.run(mem).expect("ir interp ok");
    assert!(r.is_balanced(), "residual tokens in {}", p.name());
    r.sinks
}

/// Assert scalar interpreter and IR interpreter agree on sinks + memory.
fn differential(p: &Program, mem: &[i64], params: &[(&str, i64)]) {
    let mut m_scalar = mem.to_vec();
    let run = p.interpret(&mut m_scalar, params).expect("scalar ok");
    let mut m_ir = mem.to_vec();
    let sinks = run_ir(p, &mut m_ir, params);
    assert_eq!(run.sinks, sinks, "sink mismatch in {}", p.name());
    assert_eq!(m_scalar, m_ir, "memory mismatch in {}", p.name());
}

// ---------------------------------------------------------------- errors

#[test]
fn duplicate_param_rejected() {
    let r = kernel! {
        name: "dup";
        param n;
        param n;
        st(0, n);
    };
    assert_eq!(
        r.unwrap_err(),
        LangError::DuplicateParam { name: "n".into() }
    );
}

#[test]
fn out_of_scope_read_rejected() {
    let r = kernel! {
        name: "scope";
        for i in range(0, 4) {
            let x = i + 1;
            st(i, x);
        }
        st(9, x); // `x` left the loop scope
    };
    assert_eq!(r.unwrap_err(), LangError::UnknownName { name: "x".into() });
}

#[test]
fn immutable_assign_rejected() {
    let r = kernel! {
        name: "immut";
        param n;
        let x = n + 1;
        x = x + 1;
        st(0, x);
    };
    assert_eq!(
        r.unwrap_err(),
        LangError::ImmutableAssign { name: "x".into() }
    );
}

#[test]
fn constant_condition_rejected() {
    let r = kernel! {
        name: "constif";
        param n;
        let x = 5;
        let y = 6;
        if (x.lt(y)) {
            st(0, n);
        }
    };
    assert_eq!(
        r.unwrap_err(),
        LangError::ConstantCondition { construct: "if" }
    );
}

#[test]
fn vacuous_while_rejected() {
    let r = kernel! {
        name: "vacuous";
        param n;
        let mut s = stream(0);
        while (n.gt(0)) {
            s = s + 1;
        }
        st(0, s);
    };
    assert!(matches!(r.unwrap_err(), LangError::CyclicDependency { .. }));
}

#[test]
fn par_with_runtime_bounds_rejected() {
    let r = kernel! {
        name: "parbounds";
        param n;
        for i in range(0, n) par(2) {
            st(i, i);
        }
    };
    assert!(matches!(r.unwrap_err(), LangError::ShapeMismatch { .. }));
}

#[test]
fn par_carrying_state_rejected() {
    let r = kernel! {
        name: "parcarry";
        let mut acc = stream(0);
        for i in range(0, 8) par(2) {
            acc = acc + i;
        }
        st(0, acc);
    };
    assert!(matches!(r.unwrap_err(), LangError::ShapeMismatch { .. }));
}

#[test]
fn sink_in_parallel_rejected() {
    let r = kernel! {
        name: "parsink";
        for i in range(0, 8) par(2) {
            sink "vals" = i;
        }
    };
    assert_eq!(
        r.unwrap_err(),
        LangError::SinkInParallel {
            name: "vals".into()
        }
    );
}

#[test]
fn duplicate_sink_rejected() {
    let r = kernel! {
        name: "dupsink";
        param n;
        sink "x" = n;
        sink "x" = n + 1;
    };
    assert_eq!(
        r.unwrap_err(),
        LangError::DuplicateSink { name: "x".into() }
    );
}

#[test]
fn empty_program_rejected() {
    let r = kernel! {
        name: "empty";
        param n;
        let _x = n + 1;
    };
    assert_eq!(r.unwrap_err(), LangError::EmptyProgram);
}

#[test]
fn wrong_criticality_hint_rejected_at_lowering() {
    // A plain affine gather is NOT on a loop-governing recurrence, so the
    // author's ld_crit assertion must be rejected after classification.
    let p = kernel! {
        name: "badhint";
        for i in range(0, 4) {
            st(i + 8, ld_crit(i));
        }
    }
    .expect("builds fine");
    assert_eq!(
        p.lower().unwrap_err(),
        LangError::CriticalityHintViolated { count: 1 }
    );
}

// ------------------------------------------------------------------ hash

fn axpy_program(scale: i64) -> Program {
    kernel! {
        name: "axpy";
        param n;
        for i in range(0, n) {
            st(i + 200, ld(i) * scale + ld(i + 100));
        }
    }
    .expect("valid")
}

#[test]
fn hash_is_stable_across_builds() {
    let a = axpy_program(3);
    let b = axpy_program(3);
    assert_eq!(a.fnv1a_hash(), b.fnv1a_hash());
}

#[test]
fn hash_distinguishes_programs() {
    assert_ne!(axpy_program(3).fnv1a_hash(), axpy_program(4).fnv1a_hash());
}

#[test]
fn hash_ignores_dead_expressions() {
    let clean = {
        let mut p = ProgramBuilder::new("h");
        let a = p.lit(5);
        let v = p.let_("v", false, a);
        p.store(v, v);
        p.finish().expect("valid")
    };
    let with_dead = {
        let mut p = ProgramBuilder::new("h");
        let a = p.lit(5);
        let _dead = a + 77; // allocated in the arena, referenced by nothing
        let v = p.let_("v", false, a);
        p.store(v, v);
        p.finish().expect("valid")
    };
    assert_eq!(clean.fnv1a_hash(), with_dead.fnv1a_hash());
}

// ---------------------------------------------------- differential (2-way)

#[test]
fn gather_scale_matches_ir_interp() {
    let p = axpy_program(3);
    let mut rng = Xoshiro256::seed_from_u64(11);
    let mut mem = vec![0i64; 300];
    for m in mem.iter_mut().take(200) {
        *m = rng.range_i64(-50, 50);
    }
    // x addresses are gathered from mem[0..n], keep them in-bounds.
    for m in mem.iter_mut().take(16) {
        *m = rng.range_i64(0, 100);
    }
    differential(&p, &mem, &[("n", 16)]);
}

#[test]
fn conditional_accumulate_matches_ir_interp() {
    let p = kernel! {
        name: "cond-acc";
        param n;
        let mut pos = stream(0);
        let mut neg = stream(0);
        for i in range(0, n) {
            let v = ld(i);
            if (v.ge(0)) {
                pos = pos + v;
            } else {
                neg = neg + v;
            }
        }
        sink "pos" = pos;
        sink "neg" = neg;
    }
    .expect("valid");
    let mut rng = Xoshiro256::seed_from_u64(7);
    let mem: Vec<i64> = (0..64).map(|_| rng.range_i64(-9, 10)).collect();
    differential(&p, &mem, &[("n", 64)]);
}

#[test]
fn seq_histogram_matches_ir_interp() {
    // Read-modify-write histogram: without `seq` the dataflow engine may
    // reorder the load/store pairs; with it the chain is total.
    let p = kernel! {
        name: "seq-hist";
        param n;
        for i in range(0, n) seq {
            let b = ld(i) + 32;
            st(b, ld(b) + 1);
        }
    }
    .expect("valid");
    let mut rng = Xoshiro256::seed_from_u64(3);
    let mut mem = vec![0i64; 41];
    for m in mem.iter_mut().take(32) {
        *m = rng.range_i64(0, 8);
    }
    differential(&p, &mem, &[("n", 32)]);
}

#[test]
fn chained_seq_loops_match_ir_interp() {
    // Build then probe: the second seq loop must observe the first's
    // stores (the order chain threads across both loops).
    let p = kernel! {
        name: "build-probe";
        for i in range(0, 8) seq {
            st(i + 16, ld(i) * 2);
        }
        let mut total = stream(0);
        for i in range(0, 8) seq {
            total = total + ld(i + 16);
        }
        sink "total" = total;
    }
    .expect("valid");
    let mem: Vec<i64> = (0..32).map(|i| i as i64).collect();
    differential(&p, &mem, &[]);
}

#[test]
fn while_pointer_chase_matches_ir_interp() {
    let p = kernel! {
        name: "chase";
        param hops;
        let mut cur = stream(0);
        let mut seen = stream(0);
        let mut k = stream(0);
        while (k.lt(hops)) {
            seen = seen + cur;
            cur = ld_crit(cur + 8);
            k = k + 1;
        }
        sink "seen" = seen;
    }
    .expect("valid");
    let mut mem = vec![0i64; 16];
    for i in 0..8 {
        mem[8 + i] = ((i + 5) % 8) as i64;
    }
    differential(&p, &mem, &[("hops", 6)]);
}

#[test]
fn par_replication_matches_ir_interp() {
    let p = kernel! {
        name: "par-scale";
        for i in range(0, 24) par(4) {
            st(i + 24, ld(i) * 5 - 1);
        }
    }
    .expect("valid");
    let mut rng = Xoshiro256::seed_from_u64(23);
    let mem: Vec<i64> = (0..48).map(|_| rng.range_i64(-20, 20)).collect();
    differential(&p, &mem, &[]);
}

#[test]
fn select_is_eager_in_both_semantics() {
    let p = kernel! {
        name: "select-eager";
        param n;
        let mut lo = stream(0);
        for i in range(0, n) {
            lo = lo + select(ld(i).lt(0), 0 - ld(i), ld(i));
        }
        sink "l1" = lo;
    }
    .expect("valid");
    let mut rng = Xoshiro256::seed_from_u64(99);
    let mem: Vec<i64> = (0..32).map(|_| rng.range_i64(-30, 30)).collect();
    differential(&p, &mem, &[("n", 32)]);
}

#[test]
fn sink_order_matches_declaration_order() {
    let p = kernel! {
        name: "sinks";
        param n;
        let mut a = stream(0);
        for i in range(0, n) {
            a = a + ld(i);
            sink "running" = a;
        }
        sink "final" = a;
    }
    .expect("valid");
    assert_eq!(p.sink_names(), vec!["running", "final"]);
    let mem: Vec<i64> = (0..8).map(|i| i as i64 + 1).collect();
    differential(&p, &mem, &[("n", 8)]);
}

#[test]
fn scalar_reports_out_of_bounds() {
    let p = kernel! {
        name: "oob";
        st(99, 1);
    }
    .expect("valid");
    let mut mem = vec![0i64; 4];
    let e = p.interpret(&mut mem, &[]).unwrap_err();
    assert_eq!(e, nupea_lang::ScalarError::OutOfBounds { addr: 99 });
}

#[test]
fn scalar_reports_missing_param() {
    let p = axpy_program(2);
    let mut mem = vec![0i64; 300];
    let e = p.interpret(&mut mem, &[]).unwrap_err();
    assert_eq!(
        e,
        nupea_lang::ScalarError::MissingParam { name: "n".into() }
    );
}

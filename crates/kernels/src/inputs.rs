//! Seeded input generation for the evaluation workloads (Table 1 of the
//! paper: "inputs are random and chosen such that they fit in memory").
//!
//! Everything is deterministic given a seed so experiments are exactly
//! reproducible.

use nupea_rng::Xoshiro256;

/// A dense row-major matrix of small integers.
pub fn dense_matrix(rows: usize, cols: usize, seed: u64) -> Vec<i64> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..rows * cols).map(|_| rng.range_i64(-8, 8)).collect()
}

/// A dense vector of small integers.
pub fn dense_vector(len: usize, seed: u64) -> Vec<i64> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..len).map(|_| rng.range_i64(-8, 8)).collect()
}

/// A sparse matrix in compressed sparse row (CSR) form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row pointers, length `rows + 1`.
    pub row_ptr: Vec<i64>,
    /// Column indices of nonzeros, sorted within each row.
    pub col_idx: Vec<i64>,
    /// Nonzero values.
    pub values: Vec<i64>,
}

impl Csr {
    /// Number of nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Dense row-major expansion (for reference computations).
    pub fn to_dense(&self) -> Vec<i64> {
        let mut d = vec![0i64; self.rows * self.cols];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let k = k as usize;
                d[r * self.cols + self.col_idx[k] as usize] = self.values[k];
            }
        }
        d
    }
}

/// Generate a random CSR matrix with roughly `1 - sparsity` fill
/// (`sparsity` in [0,1], e.g. 0.9 per Table 1). Values are small nonzero
/// integers; column indices are sorted per row.
pub fn sparse_csr(rows: usize, cols: usize, sparsity: f64, seed: u64) -> Csr {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut row_ptr = Vec::with_capacity(rows + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    row_ptr.push(0);
    for _ in 0..rows {
        for c in 0..cols {
            if rng.next_f64() >= sparsity {
                col_idx.push(c as i64);
                let mut v = rng.range_i64(-4, 4);
                if v == 0 {
                    v = 1;
                }
                values.push(v);
            }
        }
        row_ptr.push(col_idx.len() as i64);
    }
    Csr {
        rows,
        cols,
        row_ptr,
        col_idx,
        values,
    }
}

/// A sparse vector as sorted (index, value) pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseVec {
    /// Logical length.
    pub len: usize,
    /// Sorted indices of nonzeros.
    pub nz_idx: Vec<i64>,
    /// Values of nonzeros.
    pub values: Vec<i64>,
}

impl SparseVec {
    /// Dense expansion.
    pub fn to_dense(&self) -> Vec<i64> {
        let mut d = vec![0i64; self.len];
        for (i, &ix) in self.nz_idx.iter().enumerate() {
            d[ix as usize] = self.values[i];
        }
        d
    }
}

/// Generate a random sparse vector with roughly `1 - sparsity` fill.
pub fn sparse_vector(len: usize, sparsity: f64, seed: u64) -> SparseVec {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut nz_idx = Vec::new();
    let mut values = Vec::new();
    for i in 0..len {
        if rng.next_f64() >= sparsity {
            nz_idx.push(i as i64);
            let mut v = rng.range_i64(-4, 4);
            if v == 0 {
                v = 2;
            }
            values.push(v);
        }
    }
    SparseVec {
        len,
        nz_idx,
        values,
    }
}

/// An undirected graph in CSR adjacency form with sorted neighbor lists
/// (for triangle counting, GAPBS-style).
pub fn random_graph(nodes: usize, edge_prob: f64, seed: u64) -> Csr {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut adj = vec![Vec::new(); nodes];
    for u in 0..nodes {
        for v in (u + 1)..nodes {
            if rng.chance(edge_prob) {
                adj[u].push(v as i64);
                adj[v].push(u as i64);
            }
        }
    }
    let mut row_ptr = Vec::with_capacity(nodes + 1);
    let mut col_idx = Vec::new();
    row_ptr.push(0);
    for list in &mut adj {
        list.sort_unstable();
        col_idx.extend_from_slice(list);
        row_ptr.push(col_idx.len() as i64);
    }
    let nnz = col_idx.len();
    Csr {
        rows: nodes,
        cols: nodes,
        row_ptr,
        col_idx,
        values: vec![1; nnz],
    }
}

/// An unsorted list for mergesort.
pub fn random_list(len: usize, seed: u64) -> Vec<i64> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..len).map(|_| rng.range_i64(-1000, 1000)).collect()
}

/// Fixed-point (Q15) samples for the FFT workload.
pub fn random_signal(len: usize, seed: u64) -> Vec<i64> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..len)
        .map(|_| rng.range_i64(-(1 << 12), (1 << 12) - 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(dense_matrix(4, 4, 1), dense_matrix(4, 4, 1));
        assert_eq!(sparse_csr(8, 8, 0.9, 2), sparse_csr(8, 8, 0.9, 2));
        assert_eq!(sparse_vector(32, 0.9, 3), sparse_vector(32, 0.9, 3));
        assert_ne!(dense_vector(16, 1), dense_vector(16, 2));
    }

    #[test]
    fn csr_round_trips_through_dense() {
        let m = sparse_csr(10, 12, 0.8, 7);
        let d = m.to_dense();
        let nnz_dense = d.iter().filter(|&&v| v != 0).count();
        assert_eq!(nnz_dense, m.nnz());
        assert_eq!(m.row_ptr.len(), 11);
        // Indices sorted per row.
        for r in 0..m.rows {
            let s = &m.col_idx[m.row_ptr[r] as usize..m.row_ptr[r + 1] as usize];
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn sparsity_is_roughly_respected() {
        let m = sparse_csr(64, 64, 0.9, 11);
        let fill = m.nnz() as f64 / (64.0 * 64.0);
        assert!(fill > 0.05 && fill < 0.2, "fill {fill} should be ~0.1");
    }

    #[test]
    fn graph_is_symmetric_and_sorted() {
        let g = random_graph(24, 0.2, 5);
        let d = g.to_dense();
        for u in 0..24 {
            for v in 0..24 {
                assert_eq!(d[u * 24 + v], d[v * 24 + u], "symmetry {u},{v}");
            }
            assert_eq!(d[u * 24 + u], 0, "no self loops");
        }
    }
}

//! # nupea-kernels — kernel builder and the evaluation workloads
//!
//! Two layers:
//!
//! * [`builder`] — a structured kernel-construction DSL (`for_range`,
//!   `while_loop`, `if_else`, loads/stores, memory-ordering tokens) that
//!   lowers to token-balanced ordered dataflow, standing in for effcc's
//!   MLIR lowering (§5 of the paper). This is the low-level target; new
//!   workloads are authored in the `nupea-lang` eDSL, which lowers onto
//!   it (DESIGN.md §13).
//! * [`workloads`] — the registry: the paper's 13 Table 1 applications
//!   (dmv, jacobi2d, heat3d, spmv, spmspv, spmspm, spadd, tc, mergesort,
//!   fft, ad, ic, vww) plus the eDSL-authored wave-2 set
//!   ([`workloads::wave2`]: bfs, stencil2d, hashjoin, histogram,
//!   spmvell), each bundling seeded input generation, the kernel, and a
//!   validator backed by a plain-Rust reference implementation. Named
//!   subsets come from [`workloads::workload_preset`].
//!
//! # Example
//!
//! ```
//! use nupea_kernels::builder::Kernel;
//! use nupea_kernels::interp_kernel;
//!
//! // sum = Σ i for i in 0..10, collected via a sink.
//! let k = Kernel::build("sum", |c| {
//!     let zero = c.imm(0);
//!     let sums = c.for_range(0, 10, 1, &[zero], &[], |c, i, carried, _| {
//!         vec![c.add(carried[0], i)]
//!     });
//!     c.sink(sums[0], "sum");
//! });
//! let mut mem = vec![0i64; 16];
//! let result = interp_kernel(&k, &mut mem, &[]).unwrap();
//! assert_eq!(result.sinks[0], vec![45]);
//! assert!(result.is_balanced());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// The structured kernel builder, re-exported from its home in
/// [`nupea_ir`] (it moved there so front ends like `nupea-lang` can
/// target it without depending on the workload layer). Existing
/// `nupea_kernels::builder::...` paths keep working.
pub use nupea_ir::builder;
pub mod inputs;
pub mod workloads;

pub use builder::{Ctx, Kernel, Val};
pub use workloads::{all_workloads, Scale, ValidationError, Workload, WorkloadSpec};

use nupea_ir::interp::{Interp, InterpError, InterpResult};

/// Run a kernel under the untimed reference interpreter.
///
/// # Errors
///
/// Propagates [`InterpError`] (out-of-bounds access, missing binding,
/// budget exhaustion).
pub fn interp_kernel(
    kernel: &Kernel,
    mem: &mut [i64],
    user: &[(&str, i64)],
) -> Result<InterpResult, InterpError> {
    let mut it = Interp::new(kernel.dfg());
    for (pid, v) in kernel.bindings(user) {
        it.bind(pid, v);
    }
    it.run(mem)
}

#[cfg(test)]
mod builder_tests {
    use super::*;
    use crate::builder::Kernel;
    use nupea_ir::graph::Criticality;

    fn run(k: &Kernel, mem: &mut [i64]) -> InterpResult {
        let r = interp_kernel(k, mem, &[]).expect("interp ok");
        assert!(
            r.is_balanced(),
            "kernel {} left residual={:?} unsettled={:?}",
            k.name(),
            r.residual,
            r.unsettled
        );
        r
    }

    #[test]
    fn counted_loop_accumulates() {
        for n in [0i64, 1, 7, 100] {
            let k = Kernel::build("sum", |c| {
                let zero = c.imm(0);
                let s = c.for_range(0, n, 1, &[zero], &[], |c, i, carried, _| {
                    vec![c.add(carried[0], i)]
                });
                c.sink(s[0], "sum");
            });
            let mut mem = vec![0i64; 4];
            let r = run(&k, &mut mem);
            assert_eq!(r.sinks[0], vec![(0..n).sum::<i64>()], "n={n}");
        }
    }

    #[test]
    fn strided_loop_respects_step() {
        let k = Kernel::build("stride", |c| {
            let zero = c.imm(0);
            let s = c.for_range(0, 10, 3, &[zero], &[], |c, i, carried, _| {
                vec![c.add(carried[0], i)]
            });
            c.sink(s[0], "sum");
        });
        let mut mem = vec![0i64; 4];
        let r = run(&k, &mut mem);
        assert_eq!(r.sinks[0], vec![3 + 6 + 9]);
    }

    #[test]
    fn nested_loops_compute_2d_sum() {
        let (rows, cols) = (5i64, 7i64);
        let k = Kernel::build("sum2d", |c| {
            let zero = c.imm(0);
            let s = c.for_range(0, rows, 1, &[zero], &[], |c, i, carried, _| {
                let inner = c.for_range(0, cols, 1, &[carried[0]], &[i], |c, j, inner_c, invs| {
                    let prod = c.mul(invs[0], j);
                    vec![c.add(inner_c[0], prod)]
                });
                vec![inner[0]]
            });
            c.sink(s[0], "sum");
        });
        let mut mem = vec![0i64; 4];
        let r = run(&k, &mut mem);
        let expected: i64 = (0..rows)
            .map(|i| (0..cols).map(|j| i * j).sum::<i64>())
            .sum();
        assert_eq!(r.sinks[0], vec![expected]);
    }

    #[test]
    fn zero_trip_inner_loops_are_balanced() {
        // Inner loop bound j < i is zero-trip on the first outer iteration.
        let k = Kernel::build("tri", |c| {
            let zero = c.imm(0);
            let s = c.for_range(0, 6, 1, &[zero], &[], |c, i, carried, _| {
                let inner = c.for_range(0, i, 1, &[carried[0]], &[], |c, j, ic, _| {
                    vec![c.add(ic[0], j)]
                });
                vec![inner[0]]
            });
            c.sink(s[0], "sum");
        });
        let mut mem = vec![0i64; 4];
        let r = run(&k, &mut mem);
        let expected: i64 = (0..6).map(|i| (0..i).sum::<i64>()).sum();
        assert_eq!(r.sinks[0], vec![expected]);
    }

    #[test]
    fn loads_and_stores_in_loops() {
        // out[i] = in[i] * 2 + 1
        let n = 9usize;
        let src = 0i64;
        let dst = 16i64;
        let k = Kernel::build("scale", |c| {
            c.for_range(0, n as i64, 1, &[], &[], |c, i, _, _| {
                let a = c.add(i, src);
                let v = c.load(a);
                let scaled = c.mul(v, 2);
                let scaled = c.add(scaled, 1);
                let d = c.add(i, dst);
                c.store(d, scaled);
                vec![]
            });
        });
        let mut mem = vec![0i64; 32];
        for (i, slot) in mem.iter_mut().enumerate().take(n) {
            *slot = (i * i) as i64;
        }
        run(&k, &mut mem);
        for i in 0..n {
            assert_eq!(mem[16 + i], (i * i) as i64 * 2 + 1);
        }
    }

    #[test]
    fn while_loop_pointer_chase_marks_critical_load() {
        // Walk a linked list: next = mem[cur], until next == -1.
        let k = Kernel::build("chase", |c| {
            let head = c.imm(0);
            let head = c.as_stream(head);
            let count0 = c.imm(0);
            let exits = c.while_loop(
                &[head, count0],
                &[],
                |c, vars, _| c.ne(vars[0], -1),
                |c, vars, _| {
                    let next = c.load(vars[0]);
                    let cnt = c.add(vars[1], 1);
                    vec![next, cnt]
                },
            );
            c.sink(exits[1], "len");
        });
        // list: 0 -> 3 -> 1 -> -1
        let mut mem = vec![0i64; 8];
        mem[0] = 3;
        mem[3] = 1;
        mem[1] = -1;
        let r = run(&k, &mut mem);
        assert_eq!(r.sinks[0], vec![3]);
        // The load is on the recurrence: Critical.
        let crit = k
            .dfg()
            .iter()
            .filter(|(_, n)| n.op.is_memory())
            .map(|(_, n)| n.meta.criticality)
            .collect::<Vec<_>>();
        assert_eq!(crit, vec![Some(Criticality::Critical)]);
    }

    #[test]
    fn streaming_loads_are_inner_loop_class() {
        let k = Kernel::build("stream", |c| {
            let zero = c.imm(0);
            let s = c.for_range(0, 8, 1, &[zero], &[], |c, i, carried, _| {
                let v = c.load(i);
                vec![c.add(carried[0], v)]
            });
            c.sink(s[0], "sum");
        });
        let mem_classes: Vec<_> = k
            .dfg()
            .iter()
            .filter(|(_, n)| n.op.is_memory())
            .map(|(_, n)| n.meta.criticality)
            .collect();
        assert_eq!(mem_classes, vec![Some(Criticality::InnerLoop)]);
        let mut mem = (0..8).collect::<Vec<i64>>();
        mem.resize(16, 0);
        let r = run(&k, &mut mem);
        assert_eq!(r.sinks[0], vec![28]);
    }

    #[test]
    fn if_else_routes_memory_conditionally() {
        // out[i] = in[i] >= 0 ? in[i] : 0 (relu via branches, storing from
        // both branches).
        let n = 8;
        let k = Kernel::build("relu", |c| {
            c.for_range(0, n, 1, &[], &[], |c, i, _, _| {
                let v = c.load(i);
                let cnd = c.ge(v, 0);
                let out = c.if_else(
                    cnd,
                    &[v],
                    |_, ins| vec![ins[0]],
                    |c, ins| {
                        // consume the gated value, produce zero
                        let z = c.and(ins[0], 0);
                        vec![z]
                    },
                );
                let d = c.add(i, n);
                c.store(d, out[0]);
                vec![]
            });
        });
        let mut mem = vec![0i64; 32];
        let input = [3, -1, 0, -7, 9, -2, 5, -4];
        mem[..8].copy_from_slice(&input);
        run(&k, &mut mem);
        for (i, &v) in input.iter().enumerate() {
            assert_eq!(mem[8 + i], v.max(0), "i={i}");
        }
    }

    #[test]
    fn stream_join_intersects_sorted_lists() {
        // The paper's core example (Fig. 5): sparse intersection via
        // stream-join. Counts matches between two sorted arrays.
        let a: Vec<i64> = vec![1, 3, 4, 7, 9, 12];
        let b: Vec<i64> = vec![2, 3, 7, 8, 12, 15, 20];
        let a_base = 0i64;
        let b_base = 16i64;
        let (a_len, b_len) = (a.len() as i64, b.len() as i64);
        let k = Kernel::build("join", |c| {
            let ia0 = c.imm(0);
            let ib0 = c.imm(0);
            let cnt0 = c.imm(0);
            let exits = c.while_loop(
                &[ia0, ib0, cnt0],
                &[],
                |c, vars, _| {
                    let ca = c.lt(vars[0], a_len);
                    let cb = c.lt(vars[1], b_len);
                    c.and(ca, cb)
                },
                |c, vars, _| {
                    let (ia, ib, cnt) = (vars[0], vars[1], vars[2]);
                    let aa = c.add(ia, a_base);
                    let av = c.load(aa); // critical: governs the recurrence
                    let ba = c.add(ib, b_base);
                    let bv = c.load(ba);
                    let eq = c.eq(av, bv);
                    let cnt_next = c.add(cnt, eq);
                    let a_le = c.le(av, bv);
                    let b_le = c.ge(av, bv);
                    let ia_next = c.add(ia, a_le);
                    let ib_next = c.add(ib, b_le);
                    vec![ia_next, ib_next, cnt_next]
                },
            );
            c.sink(exits[2], "matches");
        });
        let mut mem = vec![0i64; 32];
        mem[..a.len()].copy_from_slice(&a);
        mem[16..16 + b.len()].copy_from_slice(&b);
        let r = run(&k, &mut mem);
        assert_eq!(r.sinks[0], vec![3]); // {3, 7, 12}
                                         // Both loads govern the loop condition through the index
                                         // recurrences: both must be Critical.
        let crit_count = k
            .dfg()
            .iter()
            .filter(|(_, n)| n.op.is_memory() && n.meta.criticality == Some(Criticality::Critical))
            .count();
        assert_eq!(crit_count, 2);
        // critical_loads() is the public accessor for the same set; the
        // trace exporter uses it to tag fire slices.
        let loads = k.critical_loads();
        assert_eq!(loads.len(), 2);
        for id in loads {
            let n = k.dfg().node(id);
            assert!(n.op.is_memory());
            assert_eq!(n.meta.criticality, Some(Criticality::Critical));
        }
    }

    #[test]
    fn memory_ordering_chains_serialize_raw_hazards() {
        // x = 5; y = load(x_addr): the load must observe the store.
        let k = Kernel::build("raw", |c| {
            let addr = c.stream_const(3);
            let tok = c.store(addr, c.imm(5));
            let addr2 = c.stream_const(3);
            let (v, _tok2) = c.load_ordered(addr2, tok);
            c.sink(v, "v");
        });
        let mut mem = vec![0i64; 8];
        let r = run(&k, &mut mem);
        assert_eq!(r.sinks[0], vec![5]);
        assert_eq!(mem[3], 5);
    }

    #[test]
    #[should_panic(expected = "tokens must cross regions")]
    fn region_violation_is_caught_at_build_time() {
        Kernel::build("bad", |c| {
            let outer = c.stream_const(7);
            c.for_range(0, 4, 1, &[], &[], |c, i, _, _| {
                // BUG: `outer` used inside the loop without being declared
                // an invariant.
                let x = c.add(outer, i);
                c.sink(x, "x");
                vec![]
            });
        });
    }

    #[test]
    fn join_order_merges_tokens() {
        let n = 5;
        let k = Kernel::build("barrier", |c| {
            // Store to n slots, then store a flag only after all complete.
            let toks = c.for_range(0, n, 1, &[], &[], |c, i, _, _| {
                let t = c.store(i, i);
                // fold tokens via carried var? simpler: sink count
                let _ = t;
                vec![]
            });
            let _ = toks;
            // Single-region barrier: two stores then a flag store.
            let a10 = c.stream_const(10);
            let t1 = c.store(a10, c.imm(1));
            let a11 = c.stream_const(11);
            let t2 = c.store(a11, c.imm(2));
            let all = c.join_order(&[t1, t2]);
            let a12 = c.stream_const(12);
            c.store_ordered(a12, c.imm(99), all);
        });
        let mut mem = vec![0i64; 16];
        run(&k, &mut mem);
        assert_eq!(&mem[10..13], &[1, 2, 99]);
    }

    #[test]
    fn dce_removes_unused_exit_steers() {
        let k = Kernel::build("dce", |c| {
            let zero = c.imm(0);
            // Carried var whose exit is unused: the exit steer should be
            // dropped by DCE.
            c.for_range(0, 4, 1, &[zero], &[], |c, i, carried, _| {
                let s = c.add(carried[0], i);
                c.store(i, s);
                vec![s]
            });
        });
        // No steer.F nodes feeding nothing should remain.
        let dead_steers = k
            .dfg()
            .iter()
            .filter(|(id, n)| n.op.is_control() && k.dfg().outs(*id).is_empty())
            .count();
        assert_eq!(dead_steers, 0, "DCE must drop unused control outputs");
        let mut mem = vec![0i64; 8];
        run(&k, &mut mem);
        assert_eq!(&mem[0..4], &[0, 1, 3, 6]);
    }

    #[test]
    fn select_evaluates_eagerly() {
        let k = Kernel::build("sel", |c| {
            c.for_range(0, 6, 1, &[], &[], |c, i, _, _| {
                let odd = c.and(i, 1);
                let v = c.select(odd, i, c.imm(-1));
                c.store(i, v);
                vec![]
            });
        });
        let mut mem = vec![0i64; 8];
        run(&k, &mut mem);
        assert_eq!(&mem[0..6], &[-1, 1, -1, 3, -1, 5]);
    }

    #[test]
    fn constant_folding_keeps_graphs_small() {
        let k = Kernel::build("fold", |c| {
            let a = c.add(2, 3);
            assert_eq!(a.as_imm(), Some(5));
            let b = c.mul(a, 4);
            assert_eq!(b.as_imm(), Some(20));
            let addr = c.stream_const(0);
            c.store(addr, b);
        });
        let mut mem = vec![0i64; 4];
        run(&k, &mut mem);
        assert_eq!(mem[0], 20);
    }
}

#[cfg(test)]
mod cse_tests {
    use super::*;
    use crate::builder::Kernel;

    #[test]
    fn duplicate_expressions_share_one_node() {
        // The same address expression appears three times; CSE must leave
        // exactly one add for it.
        let k = Kernel::build("dup", |c| {
            c.for_range(0, 4, 1, &[], &[], |c, i, _, _| {
                let a1 = c.add(i, 100);
                let a2 = c.add(i, 100);
                let a3 = c.add(i, 100);
                let v1 = c.load(a1);
                let v2 = c.load(a2);
                let s = c.add(v1, v2);
                c.store(a3, s);
                vec![]
            });
        });
        let adds_to_100 = k
            .dfg()
            .iter()
            .filter(|(_, n)| {
                matches!(n.op, nupea_ir::op::Op::BinOp(nupea_ir::op::BinOpKind::Add))
                    && n.inputs
                        .iter()
                        .any(|ip| matches!(ip, nupea_ir::graph::InPort::Imm(100)))
            })
            .count();
        assert_eq!(adds_to_100, 1, "CSE must merge the three address adds");
        // Loads share the merged address; still two loads (memory ops are
        // never merged).
        let loads = k
            .dfg()
            .iter()
            .filter(|(_, n)| matches!(n.op, nupea_ir::op::Op::Load))
            .count();
        assert_eq!(loads, 2);
        // And it still runs correctly.
        let mut mem = vec![0i64; 128];
        for i in 0..8 {
            mem[100 + i] = (i as i64) * 3 + 1;
        }
        let r = interp_kernel(&k, &mut mem, &[]).unwrap();
        assert!(r.is_balanced());
        for i in 0..4 {
            assert_eq!(mem[100 + i], 2 * ((i as i64) * 3 + 1));
        }
    }

    #[test]
    fn cse_chains_collapse_to_fixpoint() {
        // b1/b2 depend on a1/a2; after a1==a2 merge, b1==b2 must also merge.
        let k = Kernel::build("chain", |c| {
            c.for_range(0, 2, 1, &[], &[], |c, i, _, _| {
                let a1 = c.mul(i, 7);
                let a2 = c.mul(i, 7);
                let b1 = c.add(a1, 1);
                let b2 = c.add(a2, 1);
                let s = c.add(b1, b2);
                let addr = c.add(i, 50);
                c.store(addr, s);
                vec![]
            });
        });
        let muls = k
            .dfg()
            .iter()
            .filter(|(_, n)| matches!(n.op, nupea_ir::op::Op::BinOp(nupea_ir::op::BinOpKind::Mul)))
            .count();
        assert_eq!(muls, 1);
        let mut mem = vec![0i64; 64];
        let r = interp_kernel(&k, &mut mem, &[]).unwrap();
        assert!(r.is_balanced());
        assert_eq!(mem[50], 2); // i=0: (0*7+1)*2
        assert_eq!(mem[51], 16); // i=1: (7+1)*2
    }
}

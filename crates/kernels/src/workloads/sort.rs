//! Sorting workload: bottom-up mergesort (`mergsort` in Table 1).
//!
//! The pass loop is a *dataflow* loop (width doubles each pass, buffers
//! ping-pong by parity), so the merge machinery exists once on the fabric
//! regardless of input size. Each pass's loads are gated on the previous
//! pass's stores through a carried memory-ordering token — the same
//! inter-region ordering pattern the paper highlights for fft/jacobi2d.
//! Parallelism 2 sorts the two halves on replicated machinery and merges
//! them with a final fused merge pass.

use super::{standard_memory, Check, Scale, Workload};
use crate::builder::{Ctx, Kernel, Val};
use crate::inputs;

/// Merge `src[ia0..mid)` and `src[ib0..end)` into `dst[k0..)`. Loads are
/// gated on `gate`; returns the or-accumulated store token (joined onto
/// `acc0`). All values must be in the current region.
#[allow(clippy::too_many_arguments)]
fn merge_runs(
    c: &mut Ctx,
    src: Val,
    dst: Val,
    ia0: Val,
    ib0: Val,
    k0: Val,
    mid: Val,
    end: Val,
    gate: Val,
    acc0: Val,
) -> Val {
    // Main merge while both runs are nonempty.
    let exits = c.while_loop(
        &[ia0, ib0, k0, acc0],
        &[mid, end, src, dst, gate],
        |c, vars, invs| {
            let ca = c.lt(vars[0], invs[0]);
            let cb = c.lt(vars[1], invs[1]);
            c.and(ca, cb)
        },
        |c, vars, invs| {
            let (ia, ib, k, acc) = (vars[0], vars[1], vars[2], vars[3]);
            let (_, _, src, dst, gate) = (invs[0], invs[1], invs[2], invs[3], invs[4]);
            let aa = c.add(src, ia);
            let (av, _) = c.load_ordered(aa, gate); // critical: merge decision
            let ba = c.add(src, ib);
            let (bv, _) = c.load_ordered(ba, gate); // critical
            let take = c.le(av, bv);
            let v = c.select(take, av, bv);
            let ka = c.add(dst, k);
            let st = c.store(ka, v);
            let not_take = c.sub(1, take);
            let ia_next = c.add(ia, take);
            let ib_next = c.add(ib, not_take);
            let k_next = c.add(k, 1);
            vec![ia_next, ib_next, k_next, c.or(acc, st)]
        },
    );
    // Drain the remaining run (only one of these loops iterates).
    let tail_a = drain(c, src, dst, exits[0], mid, exits[2], gate, exits[3]);
    drain(c, src, dst, exits[1], end, tail_a.0, gate, tail_a.1).1
}

/// Copy `src[i0..end)` to `dst[k0..)`; returns `(k_exit, token)`.
#[allow(clippy::too_many_arguments)]
fn drain(
    c: &mut Ctx,
    src: Val,
    dst: Val,
    i0: Val,
    end: Val,
    k0: Val,
    gate: Val,
    acc0: Val,
) -> (Val, Val) {
    let exits = c.while_loop(
        &[i0, k0, acc0],
        &[end, src, dst, gate],
        |c, vars, invs| c.lt(vars[0], invs[0]),
        |c, vars, invs| {
            let (i, k, acc) = (vars[0], vars[1], vars[2]);
            let (_, src, dst, gate) = (invs[0], invs[1], invs[2], invs[3]);
            let sa = c.add(src, i);
            let (v, _) = c.load_ordered(sa, gate);
            let ka = c.add(dst, k);
            let st = c.store(ka, v);
            vec![c.add(i, 1), c.add(k, 1), c.or(acc, st)]
        },
    );
    (exits[1], exits[2])
}

/// Emit a full bottom-up sort of `[off, off+len)` (len a power of two)
/// between buffers `a_base`/`b_base`. Returns the completion token; the
/// sorted data ends in `a_base` when `log2(len)` is even, else `b_base`.
fn emit_sort(c: &mut Ctx, a_base: i64, b_base: i64, off: i64, len: i64) -> Val {
    let tok0 = c.stream_const(0);
    let one = c.stream_const(1);
    let exits = c.while_loop(
        &[one, tok0],
        &[],
        // width < len ⇔ more passes remain
        |c, vars, _| c.lt(vars[0], len),
        |c, vars, _| {
            let (width, tok) = (vars[0], vars[1]);
            // Parity of the pass: pass p has width 2^p. Buffers ping-pong:
            // even-width passes read A, odd read B. width is a power of
            // two; (width & 0x5555...) != 0 ⇔ even p.
            let even_mask = 0x5555_5555_5555_5555u64 as i64;
            let is_even = c.and(width, even_mask);
            let is_even = c.ne(is_even, 0);
            let src = c.select(is_even, c.imm(a_base), c.imm(b_base));
            let dst = c.select(is_even, c.imm(b_base), c.imm(a_base));
            let two_w = c.shl(width, 1);
            let lo0 = c.stream_const(off);
            let acc0 = c.stream_const(0);
            let blocks = c.while_loop(
                &[lo0, acc0],
                &[width, two_w, src, dst, tok],
                |c, vars, _| c.lt(vars[0], off + len),
                |c, vars, invs| {
                    let (lo, acc) = (vars[0], vars[1]);
                    let (width, two_w, src, dst, gate) =
                        (invs[0], invs[1], invs[2], invs[3], invs[4]);
                    let mid = c.add(lo, width);
                    let end = c.add(lo, two_w);
                    let acc_next = merge_runs(c, src, dst, lo, mid, lo, mid, end, gate, acc);
                    vec![c.add(lo, two_w), acc_next]
                },
            );
            vec![c.shl(width, 1), blocks[1]]
        },
    );
    exits[1]
}

/// Bottom-up mergesort. `par == 1` sorts in one machine; `par >= 2` sorts
/// two halves on replicated machinery and fuses them with a final merge.
pub fn mergesort(scale: Scale, par: usize) -> Workload {
    let n: i64 = match scale {
        Scale::Test => 16,
        Scale::Bench => 256,
    };
    let data = inputs::random_list(n as usize, 0x50F7);
    let mut mem = standard_memory();
    let a_base = mem.alloc_init(&data);
    let b_base = mem.alloc(n as usize);

    let two_way = par >= 2;
    let kernel = Kernel::build("mergsort", |c| {
        if !two_way {
            emit_sort(c, a_base, b_base, 0, n);
        } else {
            let half = n / 2;
            let t0 = emit_sort(c, a_base, b_base, 0, half);
            let t1 = emit_sort(c, a_base, b_base, half, half);
            let gate = c.join_order(&[t0, t1]);
            // Halves ended in A if log2(half) even, else B.
            let (src, dst) = if half.trailing_zeros().is_multiple_of(2) {
                (a_base, b_base)
            } else {
                (b_base, a_base)
            };
            let src = c.stream_const(src);
            let dst = c.stream_const(dst);
            let lo = c.stream_const(0);
            let mid = c.stream_const(half);
            let end = c.stream_const(n);
            let acc0 = c.stream_const(0);
            merge_runs(c, src, dst, lo, mid, lo, mid, end, gate, acc0);
        }
    });

    let mut expected = data.clone();
    expected.sort_unstable();
    // Where did the result land?
    let passes = n.trailing_zeros();
    let final_base = if two_way {
        let half_passes = (n / 2).trailing_zeros();
        if half_passes.is_multiple_of(2) {
            b_base // halves in A, merged into B
        } else {
            a_base // halves in B, merged into A
        }
    } else if passes.is_multiple_of(2) {
        a_base
    } else {
        b_base
    };
    Workload {
        name: "mergsort",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "sorted",
            base: final_base,
            expected,
        }],
        par,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::harness::check_workload;

    #[test]
    fn mergesort_sorts() {
        check_workload(&mergesort(Scale::Test, 1));
    }

    #[test]
    fn mergesort_two_way_sorts() {
        check_workload(&mergesort(Scale::Test, 2));
    }

    #[test]
    fn merge_loads_are_critical() {
        let w = mergesort(Scale::Test, 1);
        let crit = w
            .kernel
            .dfg()
            .iter()
            .filter(|(_, n)| {
                n.op.is_memory()
                    && n.meta.criticality == Some(nupea_ir::graph::Criticality::Critical)
            })
            .count();
        assert!(crit >= 2, "merge head loads must be critical, got {crit}");
    }
}

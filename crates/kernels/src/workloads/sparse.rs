//! Sparse workloads (TACO-generated in the paper): `spmv`, `spmspv`,
//! `spmspm`, and `spadd`.
//!
//! `spmspv`/`spmspm` implement the paper's running example: inner-product
//! sparse products whose ∩ operation is an irregular stream-join (Fig. 5).
//! The index loads along the `iA`/`iV` recurrences govern the loop
//! condition and are classified **Critical** by the criticality analysis —
//! exactly the loads NUPEA-aware PnR pushes into domain D0.

use super::{parallel_chunks, standard_memory, Check, Scale, Workload};
use crate::builder::{Ctx, Kernel, Val};
use crate::inputs::{self, Csr};

/// Layout of a CSR matrix in simulated memory.
struct CsrLayout {
    row_ptr: i64,
    col_idx: i64,
    values: i64,
}

fn alloc_csr(mem: &mut nupea_sim::SimMemory, m: &Csr) -> CsrLayout {
    CsrLayout {
        row_ptr: mem.alloc_init(&m.row_ptr),
        col_idx: mem.alloc_init(&m.col_idx),
        values: mem.alloc_init(&m.values),
    }
}

/// Sparse matrix × dense vector.
pub fn spmv(scale: Scale, par: usize) -> Workload {
    let (n, sparsity) = match scale {
        Scale::Test => (10usize, 0.6),
        Scale::Bench => (192, 0.9),
    };
    let a = inputs::sparse_csr(n, n, sparsity, 0x53A1);
    let v = inputs::dense_vector(n, 0x53A2);
    let mut mem = standard_memory();
    let al = alloc_csr(&mut mem, &a);
    let v_base = mem.alloc_init(&v);
    let d_base = mem.alloc(n);

    let kernel = Kernel::build("spmv", |c| {
        parallel_chunks(c, 0, n as i64, par, |c, lo, hi| {
            c.for_range(lo, hi, 1, &[], &[], |c, r, _, _| {
                let bp = c.add(r, al.row_ptr);
                let beg = c.load(bp);
                let ep = c.add(bp, 1);
                let end = c.load(ep);
                let zero = c.imm(0);
                let sums = c.for_range(beg, end, 1, &[zero], &[], |c, k, acc, _| {
                    let col = c.add(k, al.col_idx);
                    let col = c.load(col);
                    let av = c.add(k, al.values);
                    let av = c.load(av);
                    let vv = c.add(col, v_base);
                    let vv = c.load(vv); // indirect gather
                    let prod = c.mul(av, vv);
                    vec![c.add(acc[0], prod)]
                });
                let d = c.add(r, d_base);
                c.store(d, sums[0]);
                vec![]
            });
        });
    });

    let dense = a.to_dense();
    let expected: Vec<i64> = (0..n)
        .map(|r| (0..n).map(|j| dense[r * n + j] * v[j]).sum())
        .collect();
    Workload {
        name: "spmv",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "D",
            base: d_base,
            expected,
        }],
        par,
    }
}

/// Emit the stream-join intersection dot product of Fig. 5:
/// `sum = Σ a_val[iA] * b_val[iB]` over matching indices in
/// `a_idx[a_beg..a_end)` and `b_idx[b_beg..b_end)`.
///
/// Returns the exit value of the accumulator. This is the paper's ∩
/// operation; the two index loads are on loop-governing recurrences.
#[allow(clippy::too_many_arguments)]
fn stream_join_dot(
    c: &mut Ctx,
    a_beg: Val,
    a_end: Val,
    a_idx: i64,
    a_val: i64,
    b_beg: Val,
    b_end: Val,
    b_idx: i64,
    b_val: i64,
) -> Val {
    let zero = c.imm(0);
    let exits = c.while_loop(
        &[a_beg, b_beg, zero],
        &[a_end, b_end],
        |c, vars, invs| {
            let ca = c.lt(vars[0], invs[0]);
            let cb = c.lt(vars[1], invs[1]);
            c.and(ca, cb)
        },
        |c, vars, _| {
            let (ia, ib, sum) = (vars[0], vars[1], vars[2]);
            let ai_addr = c.add(ia, a_idx);
            let ai = c.load(ai_addr); // critical: governs the recurrence
            let bi_addr = c.add(ib, b_idx);
            let bi = c.load(bi_addr); // critical
            let eq = c.eq(ai, bi);
            let sum_next = c.if_else(
                eq,
                &[ia, ib, sum],
                |c, ins| {
                    let av = c.add(ins[0], a_val);
                    let av = c.load(av);
                    let bv = c.add(ins[1], b_val);
                    let bv = c.load(bv);
                    let prod = c.mul(av, bv);
                    vec![c.add(ins[2], prod)]
                },
                |_, ins| vec![ins[2]],
            );
            let a_le = c.le(ai, bi);
            let b_le = c.ge(ai, bi);
            let ia_next = c.add(ia, a_le);
            let ib_next = c.add(ib, b_le);
            vec![ia_next, ib_next, sum_next[0]]
        },
    );
    exits[2]
}

/// Sparse matrix × sparse vector (inner-product, Fig. 3 of the paper).
pub fn spmspv(scale: Scale, par: usize) -> Workload {
    let (n, sparsity) = match scale {
        Scale::Test => (12usize, 0.6),
        Scale::Bench => (192, 0.9),
    };
    spmspv_custom(n, sparsity, par)
}

/// `spmspv` at an explicit size (used by the fabric-scaling studies of
/// Figs. 16-17, which evaluate spmspv "on smaller inputs").
pub fn spmspv_custom(n: usize, sparsity: f64, par: usize) -> Workload {
    let a = inputs::sparse_csr(n, n, sparsity, 0x55B1);
    let v = inputs::sparse_vector(n, sparsity, 0x55B2);
    let mut mem = standard_memory();
    let al = alloc_csr(&mut mem, &a);
    let v_idx = mem.alloc_init(&v.nz_idx);
    let v_val = mem.alloc_init(&v.values);
    let d_base = mem.alloc(n);
    let v_nnz = v.nz_idx.len() as i64;

    let kernel = Kernel::build("spmspv", |c| {
        parallel_chunks(c, 0, n as i64, par, |c, lo, hi| {
            c.for_range(lo, hi, 1, &[], &[], |c, r, _, _| {
                let bp = c.add(r, al.row_ptr);
                let beg = c.load(bp);
                let ep = c.add(bp, 1);
                let end = c.load(ep);
                let zero = c.imm(0);
                let zero = c.as_stream(zero);
                let vn = c.imm(v_nnz);
                let vn = c.as_stream(vn);
                let sum =
                    stream_join_dot(c, beg, end, al.col_idx, al.values, zero, vn, v_idx, v_val);
                let d = c.add(r, d_base);
                c.store(d, sum);
                vec![]
            });
        });
    });

    let dense_a = a.to_dense();
    let dense_v = v.to_dense();
    let expected: Vec<i64> = (0..n)
        .map(|r| (0..n).map(|j| dense_a[r * n + j] * dense_v[j]).sum())
        .collect();
    Workload {
        name: "spmspv",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "D",
            base: d_base,
            expected,
        }],
        par,
    }
}

/// Sparse matrix × sparse matrix (inner-product over A-rows and
/// Bᵀ-rows; the paper's TACO formulation with an ∩ per output element).
pub fn spmspm(scale: Scale, par: usize) -> Workload {
    let (n, sparsity) = match scale {
        Scale::Test => (8usize, 0.55),
        Scale::Bench => (40, 0.9),
    };
    let a = inputs::sparse_csr(n, n, sparsity, 0x5A5A);
    let bt = inputs::sparse_csr(n, n, sparsity, 0x5A5B); // rows of Bᵀ = cols of B
    let mut mem = standard_memory();
    let al = alloc_csr(&mut mem, &a);
    let bl = alloc_csr(&mut mem, &bt);
    let c_base = mem.alloc(n * n);

    let kernel = Kernel::build("spmspm", |c| {
        parallel_chunks(c, 0, n as i64, par, |c, lo, hi| {
            c.for_range(lo, hi, 1, &[], &[], |c, i, _, _| {
                let ap = c.add(i, al.row_ptr);
                let a_beg = c.load(ap);
                let ap1 = c.add(ap, 1);
                let a_end = c.load(ap1);
                let crow = c.mul(i, n as i64);
                c.for_range(
                    0,
                    n as i64,
                    1,
                    &[],
                    &[a_beg, a_end, crow],
                    |c, j, _, invs| {
                        let (a_beg, a_end, crow) = (invs[0], invs[1], invs[2]);
                        let bp = c.add(j, bl.row_ptr);
                        let b_beg = c.load(bp);
                        let bp1 = c.add(bp, 1);
                        let b_end = c.load(bp1);
                        let sum = stream_join_dot(
                            c, a_beg, a_end, al.col_idx, al.values, b_beg, b_end, bl.col_idx,
                            bl.values,
                        );
                        let addr = c.add(crow, j);
                        let addr = c.add(addr, c_base);
                        c.store(addr, sum);
                        vec![]
                    },
                );
                vec![]
            });
        });
    });

    let da = a.to_dense();
    let db = bt.to_dense();
    let mut expected = vec![0i64; n * n];
    for i in 0..n {
        for j in 0..n {
            expected[i * n + j] = (0..n).map(|k| da[i * n + k] * db[j * n + k]).sum();
        }
    }
    Workload {
        name: "spmspm",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "C",
            base: c_base,
            expected,
        }],
        par,
    }
}

/// Sparse matrix addition `C = A + B` via union stream-merge per row,
/// writing into a dense output.
pub fn spadd(scale: Scale, par: usize) -> Workload {
    let (n, sparsity) = match scale {
        Scale::Test => (8usize, 0.5),
        Scale::Bench => (48, 0.5),
    };
    let a = inputs::sparse_csr(n, n, sparsity, 0xADD1);
    let b = inputs::sparse_csr(n, n, sparsity, 0xADD2);
    let mut mem = standard_memory();
    let al = alloc_csr(&mut mem, &a);
    let bl = alloc_csr(&mut mem, &b);
    let c_base = mem.alloc(n * n);

    let kernel = Kernel::build("spadd", |c| {
        parallel_chunks(c, 0, n as i64, par, |c, lo, hi| {
            c.for_range(lo, hi, 1, &[], &[], |c, r, _, _| {
                let ap = c.add(r, al.row_ptr);
                let a_beg = c.load(ap);
                let ap1 = c.add(ap, 1);
                let a_end = c.load(ap1);
                let bp = c.add(r, bl.row_ptr);
                let b_beg = c.load(bp);
                let bp1 = c.add(bp, 1);
                let b_end = c.load(bp1);
                let crow = c.mul(r, n as i64);
                let crow = c.add(crow, c_base);

                // Main union merge while both streams have elements.
                let exits = c.while_loop(
                    &[a_beg, b_beg],
                    &[a_end, b_end, crow],
                    |c, vars, invs| {
                        let ca = c.lt(vars[0], invs[0]);
                        let cb = c.lt(vars[1], invs[1]);
                        c.and(ca, cb)
                    },
                    |c, vars, invs| {
                        let (ia, ib) = (vars[0], vars[1]);
                        let crow = invs[2];
                        let ca = c.add(ia, al.col_idx);
                        let ca = c.load(ca); // critical merge index
                        let cb = c.add(ib, bl.col_idx);
                        let cb = c.load(cb); // critical merge index
                        let a_le = c.le(ca, cb);
                        let b_le = c.ge(ca, cb);
                        let av = c.if_else(
                            a_le,
                            &[ia],
                            |c, ins| {
                                let p = c.add(ins[0], al.values);
                                vec![c.load(p)]
                            },
                            |c, ins| vec![c.and(ins[0], 0)],
                        )[0];
                        let bv = c.if_else(
                            b_le,
                            &[ib],
                            |c, ins| {
                                let p = c.add(ins[0], bl.values);
                                vec![c.load(p)]
                            },
                            |c, ins| vec![c.and(ins[0], 0)],
                        )[0];
                        let col = c.min(ca, cb);
                        let sum = c.add(av, bv);
                        let addr = c.add(crow, col);
                        c.store(addr, sum);
                        let ia_next = c.add(ia, a_le);
                        let ib_next = c.add(ib, b_le);
                        vec![ia_next, ib_next]
                    },
                );
                // Drain tails.
                drain_tail(c, exits[0], a_end, al.col_idx, al.values, crow);
                drain_tail(c, exits[1], b_end, bl.col_idx, bl.values, crow);
                vec![]
            });
        });
    });

    let da = a.to_dense();
    let db = b.to_dense();
    let expected: Vec<i64> = da.iter().zip(&db).map(|(x, y)| x + y).collect();
    Workload {
        name: "spadd",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "C",
            base: c_base,
            expected,
        }],
        par,
    }
}

/// Copy the remaining `[i, end)` tail of one CSR row into the dense output.
fn drain_tail(c: &mut Ctx, i: Val, end: Val, col_idx: i64, values: i64, crow: Val) {
    c.while_loop(
        &[i],
        &[end, crow],
        |c, vars, invs| c.lt(vars[0], invs[0]),
        |c, vars, invs| {
            let k = vars[0];
            let crow = invs[1];
            let col = c.add(k, col_idx);
            let col = c.load(col);
            let v = c.add(k, values);
            let v = c.load(v);
            let addr = c.add(crow, col);
            c.store(addr, v);
            vec![c.add(k, 1)]
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::harness::check_workload;
    use nupea_ir::graph::Criticality;

    #[test]
    fn spmv_matches_reference() {
        check_workload(&spmv(Scale::Test, 1));
        check_workload(&spmv(Scale::Test, 3));
    }

    #[test]
    fn spmspv_matches_reference() {
        check_workload(&spmspv(Scale::Test, 1));
        check_workload(&spmspv(Scale::Test, 2));
    }

    #[test]
    fn spmspm_matches_reference() {
        check_workload(&spmspm(Scale::Test, 1));
        check_workload(&spmspm(Scale::Test, 2));
    }

    #[test]
    fn spadd_matches_reference() {
        check_workload(&spadd(Scale::Test, 1));
        check_workload(&spadd(Scale::Test, 2));
    }

    #[test]
    fn spmspv_has_critical_index_loads() {
        let w = spmspv(Scale::Test, 1);
        let classes: Vec<_> = w
            .kernel
            .dfg()
            .iter()
            .filter(|(_, n)| n.op.is_memory())
            .map(|(_, n)| n.meta.criticality.unwrap())
            .collect();
        let crit = classes
            .iter()
            .filter(|&&c| c == Criticality::Critical)
            .count();
        assert!(
            crit >= 2,
            "the two stream-join index loads must be critical: {classes:?}"
        );
        assert!(
            classes.iter().any(|&c| c != Criticality::Critical),
            "row_ptr/value loads must not all be critical"
        );
    }

    #[test]
    fn spadd_handles_empty_rows() {
        // Tiny high-sparsity instance: some rows empty in one operand.
        let w = spadd(Scale::Test, 1);
        check_workload(&w);
    }
}

//! The workload registry: the 13 evaluation workloads of Table 1 plus
//! the eDSL-authored wave-2 set ([`wave2`]).
//!
//! Each workload bundles: seeded input generation into a fresh
//! [`SimMemory`], a [`Kernel`] built at a given scale and spatial
//! parallelism degree, and validation checks backed by plain-Rust reference
//! implementations. Input sizes are scaled down from the paper so the full
//! suite simulates in minutes (see EXPERIMENTS.md for the mapping); the
//! memory-access *structure* of every kernel matches the paper's
//! description.

use crate::builder::{Ctx, Kernel, Val};
use nupea_sim::{MemParams, SimMemory};

pub mod dense;
pub mod dsp;
pub mod graph;
pub mod nn;
pub mod sort;
pub mod sparse;
pub mod staged;
pub mod wave2;

/// Input scale: tiny for unit tests, larger for the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Small inputs for fast unit tests.
    Test,
    /// Experiment-harness inputs (scaled from Table 1; see EXPERIMENTS.md).
    Bench,
}

/// A validation check against post-run state.
#[derive(Debug, Clone)]
pub enum Check {
    /// A memory region must equal the reference result.
    Mem {
        /// Human-readable label.
        label: &'static str,
        /// Base word address.
        base: i64,
        /// Expected contents.
        expected: Vec<i64>,
    },
    /// A sink must have collected exactly these values.
    Sink {
        /// Human-readable label.
        label: &'static str,
        /// Sink index (`SinkId` order).
        index: usize,
        /// Expected values in order.
        expected: Vec<i64>,
    },
}

/// Where a failed validation check looked.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckTarget {
    /// A memory-region check rooted at this base word address.
    Mem {
        /// Base word address of the checked region.
        base: i64,
    },
    /// A sink-contents check against this sink index.
    Sink {
        /// Sink index (`SinkId` order).
        index: usize,
    },
}

/// A post-run validation failure: which check failed, where, and the first
/// mismatching value.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ValidationError {
    /// Workload name (Table 1).
    pub workload: &'static str,
    /// Label of the failing check.
    pub check: &'static str,
    /// What the check inspected.
    pub target: CheckTarget,
    /// Offset of the first mismatch within the checked region/sink.
    pub offset: usize,
    /// Value observed at the mismatch (`None` if the output was truncated).
    pub got: Option<i64>,
    /// Value the reference implementation expected.
    pub expected: Option<i64>,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match &self.target {
            CheckTarget::Mem { base } => format!("memory check at base {base}"),
            CheckTarget::Sink { index } => format!("sink check (sink {index})"),
        };
        write!(
            f,
            "{}: {what} '{}' mismatch at offset {}: got {} expected {}",
            self.workload,
            self.check,
            self.offset,
            self.got
                .map_or_else(|| "<missing>".into(), |v| v.to_string()),
            self.expected
                .map_or_else(|| "<missing>".into(), |v| v.to_string()),
        )
    }
}

impl std::error::Error for ValidationError {}

/// An instantiated workload, ready to compile and run.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Table 1 name (e.g. "spmspv").
    pub name: &'static str,
    /// The kernel.
    pub kernel: Kernel,
    /// Memory image with inputs loaded (clone per run).
    pub mem: SimMemory,
    /// Validation checks.
    pub checks: Vec<Check>,
    /// Parallelism degree the workload was built with.
    pub par: usize,
}

impl Workload {
    /// A fresh memory image for one run.
    pub fn fresh_mem(&self) -> SimMemory {
        self.mem.clone()
    }

    /// Validate post-run memory and sink contents.
    ///
    /// # Errors
    ///
    /// Returns the first failing check as a typed [`ValidationError`].
    pub fn validate(&self, mem: &SimMemory, sinks: &[Vec<i64>]) -> Result<(), ValidationError> {
        for check in &self.checks {
            match check {
                Check::Mem {
                    label,
                    base,
                    expected,
                } => {
                    let got = mem.slice(*base, expected.len());
                    if got != &expected[..] {
                        let offset = got
                            .iter()
                            .zip(expected)
                            .position(|(g, e)| g != e)
                            .unwrap_or(0);
                        return Err(ValidationError {
                            workload: self.name,
                            check: label,
                            target: CheckTarget::Mem { base: *base },
                            offset,
                            got: got.get(offset).copied(),
                            expected: expected.get(offset).copied(),
                        });
                    }
                }
                Check::Sink {
                    label,
                    index,
                    expected,
                } => {
                    let got = sinks.get(*index).map(Vec::as_slice).unwrap_or(&[]);
                    if got != &expected[..] {
                        let offset = got
                            .iter()
                            .zip(expected)
                            .position(|(g, e)| g != e)
                            .unwrap_or_else(|| got.len().min(expected.len()));
                        return Err(ValidationError {
                            workload: self.name,
                            check: label,
                            target: CheckTarget::Sink { index: *index },
                            offset,
                            got: got.get(offset).copied(),
                            expected: expected.get(offset).copied(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// A workload constructor entry in the registry.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Table 1 name.
    pub name: &'static str,
    /// Constructor.
    pub build: fn(Scale, usize) -> Workload,
    /// Default parallelism degree at bench scale (hand-optimized, as the
    /// paper does for most workloads).
    pub default_par: usize,
}

impl WorkloadSpec {
    /// Build at the default parallelism for the scale.
    pub fn build_default(&self, scale: Scale) -> Workload {
        let par = match scale {
            Scale::Test => 1,
            Scale::Bench => self.default_par,
        };
        (self.build)(scale, par)
    }
}

/// All registered workloads: the 13 of Table 1 in the paper's order,
/// followed by the second-wave eDSL workloads of [`wave2`].
pub fn all_workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "dmv",
            build: dense::dmv,
            default_par: 6,
        },
        WorkloadSpec {
            name: "jacobi2d",
            build: dense::jacobi2d,
            default_par: 2,
        },
        WorkloadSpec {
            name: "heat3d",
            build: dense::heat3d,
            default_par: 2,
        },
        WorkloadSpec {
            name: "spmv",
            build: sparse::spmv,
            default_par: 6,
        },
        WorkloadSpec {
            name: "spmspm",
            build: sparse::spmspm,
            default_par: 2,
        },
        WorkloadSpec {
            name: "spmspv",
            build: sparse::spmspv,
            default_par: 4,
        },
        WorkloadSpec {
            name: "spadd",
            build: sparse::spadd,
            default_par: 2,
        },
        WorkloadSpec {
            name: "tc",
            build: graph::tc,
            default_par: 2,
        },
        WorkloadSpec {
            name: "mergsort",
            build: sort::mergesort,
            default_par: 1,
        },
        WorkloadSpec {
            name: "fft",
            build: dsp::fft,
            default_par: 2,
        },
        WorkloadSpec {
            name: "ad",
            build: nn::ad,
            default_par: 1,
        },
        WorkloadSpec {
            name: "ic",
            build: nn::ic,
            default_par: 1,
        },
        WorkloadSpec {
            name: "vww",
            build: nn::vww,
            default_par: 1,
        },
        WorkloadSpec {
            name: "bfs",
            build: wave2::bfs,
            default_par: 1,
        },
        WorkloadSpec {
            name: "stencil2d",
            build: wave2::stencil2d,
            default_par: 2,
        },
        WorkloadSpec {
            name: "hashjoin",
            build: wave2::hashjoin,
            default_par: 1,
        },
        WorkloadSpec {
            name: "histogram",
            build: wave2::histogram,
            default_par: 1,
        },
        WorkloadSpec {
            name: "spmvell",
            build: wave2::spmvell,
            default_par: 2,
        },
    ]
}

/// Look up a workload spec by name.
pub fn workload_by_name(name: &str) -> Option<WorkloadSpec> {
    all_workloads().into_iter().find(|w| w.name == name)
}

/// The 13 hand-written Table 1 workloads (the paper's evaluation set).
pub fn table1_workloads() -> Vec<WorkloadSpec> {
    all_workloads().into_iter().take(13).collect()
}

/// The second-wave eDSL-authored workloads.
pub fn wave2_workloads() -> Vec<WorkloadSpec> {
    all_workloads().into_iter().skip(13).collect()
}

/// Canonical named subsets of the registry, so per-subsystem tooling
/// (bench presets, DSE campaigns, the serve API) selects workloads from
/// one place instead of hardcoding name lists.
pub fn workload_preset(name: &str) -> Option<Vec<WorkloadSpec>> {
    let names: &[&str] = match name {
        "all" => return Some(all_workloads()),
        "table1" => return Some(table1_workloads()),
        "wave2" => return Some(wave2_workloads()),
        // Ablation cores: a cheap critical-heavy / dense / FFT mix used
        // by the buffering and DSE sweeps.
        "ablation-core" => &["spmspv", "dmv", "fft"],
        // Wider domain coverage for the per-domain ablations.
        "ablation-domains" => &["spmspv", "spmspm", "dmv", "fft", "tc"],
        // Energy ablation: one sparse, one dense, one graph workload.
        "ablation-energy" => &["spmspv", "dmv", "tc"],
        _ => return None,
    };
    Some(
        names
            .iter()
            .map(|n| workload_by_name(n).expect("preset names are registered"))
            .collect(),
    )
}

/// Names of all presets accepted by [`workload_preset`].
pub const PRESET_NAMES: &[&str] = &[
    "all",
    "table1",
    "wave2",
    "ablation-core",
    "ablation-domains",
    "ablation-energy",
];

/// Fresh simulated memory with the evaluation geometry.
pub(crate) fn standard_memory() -> SimMemory {
    SimMemory::new(&MemParams::default())
}

/// Split `[lo, hi)` into `par` nearly equal chunks and invoke `f` once per
/// chunk at the current region (spatial parallelization, §5: replicated
/// loop bodies). Returns the per-chunk results.
pub(crate) fn parallel_chunks<R>(
    c: &mut Ctx,
    lo: i64,
    hi: i64,
    par: usize,
    mut f: impl FnMut(&mut Ctx, i64, i64) -> R,
) -> Vec<R> {
    let par = par.max(1) as i64;
    let total = (hi - lo).max(0);
    let chunk = ((total + par - 1) / par).max(1);
    let mut out = Vec::new();
    let mut start = lo;
    while start < hi {
        let end = (start + chunk).min(hi);
        out.push(f(c, start, end));
        start = end;
    }
    out
}

/// Sum a list of per-chunk scalar values with an adder tree.
pub(crate) fn reduce_sum(c: &mut Ctx, parts: &[Val]) -> Val {
    assert!(!parts.is_empty());
    let mut level = parts.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(c.add(pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn registry_is_table1_then_wave2_with_unique_names() {
        let all = all_workloads();
        assert_eq!(all.len(), 18);
        assert_eq!(table1_workloads().len(), 13);
        let wave2: Vec<&str> = wave2_workloads().iter().map(|w| w.name).collect();
        assert_eq!(
            wave2,
            ["bfs", "stencil2d", "hashjoin", "histogram", "spmvell"]
        );
        let mut names: Vec<&str> = all.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate workload name");
    }

    #[test]
    fn every_preset_resolves_and_is_nonempty() {
        for name in PRESET_NAMES {
            let set = workload_preset(name).unwrap_or_else(|| panic!("preset {name} missing"));
            assert!(!set.is_empty(), "preset {name} empty");
        }
        assert!(workload_preset("no-such-preset").is_none());
    }
}

#[cfg(test)]
pub(crate) mod harness {
    //! Shared test harness: run a workload under the untimed interpreter
    //! and validate.
    use super::*;
    use crate::interp_kernel;

    pub fn check_workload(w: &Workload) {
        let mut mem = w.fresh_mem();
        let r = interp_kernel(&w.kernel, mem.words_mut(), &[])
            .unwrap_or_else(|e| panic!("{}: interp failed: {e}", w.name));
        assert!(
            r.is_balanced(),
            "{}: unbalanced (residual {:?}, unsettled {:?})",
            w.name,
            &r.residual[..r.residual.len().min(8)],
            &r.unsettled[..r.unsettled.len().min(8)]
        );
        w.validate(&mem, &r.sinks)
            .unwrap_or_else(|e| panic!("validation failed: {e}"));
    }
}

//! Multi-region (staged) programs.
//!
//! effcc "splits programs into regions that fit on Monaco's fabric" (§5):
//! a program larger than the fabric becomes a sequence of bitstreams,
//! executed one at a time with a reconfiguration step between them. Stages
//! communicate through memory; swapping bitstreams is a full barrier, so
//! stage kernels need no cross-stage ordering tokens.
//!
//! The natural clients are the neural networks: one region per layer lets
//! a network of arbitrary depth run on a fixed fabric. `ad_staged` builds
//! the same autoencoder as [`super::nn::ad`] with one kernel per layer;
//! results are bit-identical to the monolithic version.

use super::{standard_memory, Check, Scale, Workload};
use crate::builder::{Ctx, Kernel};
use crate::inputs;
use nupea_sim::SimMemory;

/// A program split into fabric-sized regions executed sequentially over
/// shared memory.
#[derive(Debug, Clone)]
pub struct StagedWorkload {
    /// Program name.
    pub name: &'static str,
    /// One kernel per region, in execution order.
    pub stages: Vec<Kernel>,
    /// Shared memory image with inputs loaded.
    pub mem: SimMemory,
    /// Validation checks against post-run memory.
    pub checks: Vec<Check>,
    /// Parallelism degree each stage was built with.
    pub par: usize,
}

impl StagedWorkload {
    /// A fresh memory image for one run.
    pub fn fresh_mem(&self) -> SimMemory {
        self.mem.clone()
    }

    /// Validate post-run memory (staged programs have no sinks).
    ///
    /// # Errors
    ///
    /// Returns the first failing check as a typed [`ValidationError`].
    pub fn validate(&self, mem: &SimMemory) -> Result<(), super::ValidationError> {
        // Reuse Workload's checker on a shim.
        let shim = Workload {
            name: self.name,
            kernel: self.stages[0].clone(),
            mem: self.mem.clone(),
            checks: self.checks.clone(),
            par: self.par,
        };
        shim.validate(mem, &[])
    }
}

/// One fully-connected layer as a standalone region. No gate tokens: the
/// bitstream swap is the barrier.
#[allow(clippy::too_many_arguments)]
fn fc_stage(
    c: &mut Ctx,
    in_base: i64,
    out_base: i64,
    in_n: i64,
    out_n: i64,
    w_base: i64,
    b_base: i64,
    relu: bool,
) {
    c.for_range(0, out_n, 1, &[], &[], |c, o, _, _| {
        let zero = c.imm(0);
        let wrow = c.mul(o, in_n);
        let wrow = c.add(wrow, w_base);
        let sums = c.for_range(0, in_n, 1, &[zero], &[wrow], |c, i, acc, invs| {
            let ia = c.add(i, in_base);
            let iv = c.load(ia);
            let wa = c.add(invs[0], i);
            let wv = c.load(wa);
            let prod = c.mul(iv, wv);
            vec![c.add(acc[0], prod)]
        });
        let ba = c.add(o, b_base);
        let bv = c.load(ba);
        let s = c.add(sums[0], bv);
        let s = c.shr(s, super::nn::SHIFT);
        let s = if relu { c.max(s, 0) } else { s };
        let oa = c.add(o, out_base);
        c.store(oa, s);
        vec![]
    });
}

/// The anomaly-detection autoencoder split one-region-per-layer. Same
/// inputs, weights, and reference results as [`super::nn::ad`].
pub fn ad_staged(scale: Scale, par: usize) -> StagedWorkload {
    let in_n: i64 = match scale {
        Scale::Test => 8,
        Scale::Bench => 24,
    };
    let dims = [in_n, in_n / 2, in_n / 4, in_n / 2, in_n];
    let mut mem = standard_memory();
    let input = inputs::dense_vector(in_n as usize, 0xAD01);
    let in_base = mem.alloc_init(&input);
    let mut weights = Vec::new();
    let mut acts = vec![in_base];
    for l in 0..dims.len() - 1 {
        let (ni, no) = (dims[l] as usize, dims[l + 1] as usize);
        let w = inputs::dense_matrix(no, ni, 0xAD10 + l as u64);
        let b = inputs::dense_vector(no, 0xAD20 + l as u64);
        let wb = mem.alloc_init(&w);
        let bb = mem.alloc_init(&b);
        let ob = mem.alloc(no);
        weights.push((w, b, wb, bb));
        acts.push(ob);
    }

    let mut stages = Vec::new();
    for l in 0..dims.len() - 1 {
        let relu = l != dims.len() - 2;
        let (in_b, out_b) = (acts[l], acts[l + 1]);
        let (in_d, out_d) = (dims[l], dims[l + 1]);
        let (wb, bb) = (weights[l].2, weights[l].3);
        stages.push(Kernel::build(&format!("ad-layer{l}"), |c| {
            fc_stage(c, in_b, out_b, in_d, out_d, wb, bb, relu);
        }));
    }

    // Reference forward pass (same arithmetic as nn::ad).
    let mut act = input;
    for l in 0..dims.len() - 1 {
        let relu = l != dims.len() - 2;
        act = super::nn::fc_reference(
            &act,
            &weights[l].0,
            &weights[l].1,
            dims[l] as usize,
            dims[l + 1] as usize,
            relu,
        );
    }
    StagedWorkload {
        name: "ad-staged",
        stages,
        mem,
        checks: vec![Check::Mem {
            label: "reconstruction",
            base: *acts.last().expect("layers exist"),
            expected: act,
        }],
        par,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp_kernel;

    #[test]
    fn staged_ad_matches_monolithic_reference() {
        let sw = ad_staged(Scale::Test, 1);
        assert_eq!(sw.stages.len(), 4, "one region per layer");
        let mut mem = sw.fresh_mem();
        for stage in &sw.stages {
            let r = interp_kernel(stage, mem.words_mut(), &[]).expect("stage runs");
            assert!(r.is_balanced(), "stage {} unbalanced", stage.name());
        }
        sw.validate(&mem).expect("staged result matches reference");
    }

    #[test]
    fn stages_are_individually_small() {
        let sw = ad_staged(Scale::Bench, 1);
        let mono = super::super::nn::ad(Scale::Bench, 1);
        for s in &sw.stages {
            assert!(
                s.dfg().len() * 2 < mono.kernel.dfg().len() * 3,
                "each region must be much smaller than the monolith"
            );
        }
    }
}

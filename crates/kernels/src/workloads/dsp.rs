//! DSP workload: fixed-point (Q15) radix-2 FFT, modelled on CMSIS-DSP's
//! `arm_rfft_q31` usage in Table 1.
//!
//! The stage loop is a dataflow loop (the stage machinery exists once on
//! the fabric); the butterfly is in-place with two ordering disciplines the
//! paper calls out for fft (§7.1): per-butterfly loads must complete before
//! the butterfly's stores (RAW on the same addresses), and every load of
//! stage `s` is gated on a token joining all stores of stage `s-1`.

use super::{standard_memory, Check, Scale, Workload};
use crate::builder::{Ctx, Kernel, Val};
use crate::inputs;

/// Q15 twiddle table: `(re, im)` of `exp(-2πik/n)` for `k in 0..n/2`,
/// interleaved.
fn twiddles(n: usize) -> Vec<i64> {
    let mut t = Vec::with_capacity(n);
    for k in 0..n / 2 {
        let ang = -2.0 * std::f64::consts::PI * (k as f64) / (n as f64);
        t.push((ang.cos() * 32768.0).round() as i64);
        t.push((ang.sin() * 32768.0).round() as i64);
    }
    t
}

/// Bit-reversal permutation table for `n = 2^bits`.
fn bit_reverse_table(n: usize) -> Vec<i64> {
    let bits = n.trailing_zeros();
    (0..n)
        .map(|i| (i.reverse_bits() >> (usize::BITS - bits)) as i64)
        .collect()
}

/// Reference integer FFT with arithmetic identical to the kernel.
fn reference_fft(signal: &[i64], n: usize) -> Vec<i64> {
    let rev = bit_reverse_table(n);
    let tw = twiddles(n);
    let mut buf = vec![0i64; 2 * n];
    for i in 0..n {
        buf[2 * rev[i] as usize] = signal[i];
        buf[2 * rev[i] as usize + 1] = 0;
    }
    let mut len = 2usize;
    while len <= n {
        let half = len / 2;
        let step = n / len;
        let mut i = 0;
        while i < n {
            for j in 0..half {
                let i1 = i + j;
                let i2 = i1 + half;
                let (ur, ui) = (buf[2 * i1], buf[2 * i1 + 1]);
                let (vr, vi) = (buf[2 * i2], buf[2 * i2 + 1]);
                let k = j * step;
                let (wr, wi) = (tw[2 * k], tw[2 * k + 1]);
                let tr = (vr * wr - vi * wi) >> 15;
                let ti = (vr * wi + vi * wr) >> 15;
                buf[2 * i1] = ur + tr;
                buf[2 * i1 + 1] = ui + ti;
                buf[2 * i2] = ur - tr;
                buf[2 * i2 + 1] = ui - ti;
            }
            i += len;
        }
        len *= 2;
    }
    buf
}

/// Emit one butterfly j-range `[j_lo, j_hi)` for the block at `i`.
/// Returns the accumulated store token.
#[allow(clippy::too_many_arguments)]
fn butterflies(
    c: &mut Ctx,
    work: i64,
    tw_base: i64,
    i: Val,
    half: Val,
    step: Val,
    gate: Val,
    j_lo: Val,
    j_hi: Val,
    acc0: Val,
) -> Val {
    let exits = c.while_loop(
        &[j_lo, acc0],
        &[i, half, step, gate, j_hi],
        |c, vars, invs| c.lt(vars[0], invs[4]),
        |c, vars, invs| {
            let (j, acc) = (vars[0], vars[1]);
            let (i, half, step, gate, _) = (invs[0], invs[1], invs[2], invs[3], invs[4]);
            let i1 = c.add(i, j);
            let i2 = c.add(i1, half);
            let a1 = c.shl(i1, 1);
            let a1 = c.add(a1, work);
            let a2 = c.shl(i2, 1);
            let a2 = c.add(a2, work);
            let a1i = c.add(a1, 1);
            let a2i = c.add(a2, 1);
            let (ur, t1) = c.load_ordered(a1, gate);
            let (ui, t2) = c.load_ordered(a1i, gate);
            let (vr, t3) = c.load_ordered(a2, gate);
            let (vi, t4) = c.load_ordered(a2i, gate);
            // Twiddle (never written: ungated loads).
            let k = c.mul(j, step);
            let ka = c.shl(k, 1);
            let ka = c.add(ka, tw_base);
            let wr = c.load(ka);
            let kai = c.add(ka, 1);
            let wi = c.load(kai);
            // t = v * w (Q15).
            let p1 = c.mul(vr, wr);
            let p2 = c.mul(vi, wi);
            let tr = c.sub(p1, p2);
            let tr = c.shr(tr, 15);
            let p3 = c.mul(vr, wi);
            let p4 = c.mul(vi, wr);
            let ti = c.add(p3, p4);
            let ti = c.shr(ti, 15);
            // In-place RAW: stores wait for this butterfly's loads.
            let lg = c.join_order(&[t1, t2, t3, t4]);
            let o1 = c.add(ur, tr);
            let s1 = c.store_ordered(a1, o1, lg);
            let o2 = c.add(ui, ti);
            let s2 = c.store_ordered(a1i, o2, lg);
            let o3 = c.sub(ur, tr);
            let s3 = c.store_ordered(a2, o3, lg);
            let o4 = c.sub(ui, ti);
            let s4 = c.store_ordered(a2i, o4, lg);
            let st = c.join_order(&[s1, s2, s3, s4]);
            vec![c.add(j, 1), c.or(acc, st)]
        },
    );
    exits[1]
}

/// Radix-2 decimation-in-time FFT over Q15 complex data.
pub fn fft(scale: Scale, par: usize) -> Workload {
    let n: usize = match scale {
        Scale::Test => 8,
        Scale::Bench => 64,
    };
    let signal = inputs::random_signal(n, 0xFF7);
    let rev = bit_reverse_table(n);
    let tw = twiddles(n);
    let mut mem = standard_memory();
    let in_base = mem.alloc_init(&signal);
    let rev_base = mem.alloc_init(&rev);
    let tw_base = mem.alloc_init(&tw);
    let work = mem.alloc(2 * n);
    let split_j = par >= 2;

    let kernel = Kernel::build("fft", |c| {
        // 1. Bit-reversal copy into the (zeroed) work buffer.
        let zero_tok = c.stream_const(0);
        let copy_toks = c.for_range(0, n as i64, 1, &[zero_tok], &[], |c, i, acc, _| {
            let ra = c.add(i, rev_base);
            let r = c.load(ra);
            let sa = c.add(i, in_base);
            let v = c.load(sa);
            let da = c.shl(r, 1);
            let da = c.add(da, work);
            let st = c.store(da, v);
            // imaginary parts are already zero in fresh memory
            vec![c.or(acc[0], st)]
        });
        let tok0 = copy_toks[0];

        // 2. Dataflow stage loop: len = 2, 4, …, n.
        let len0 = c.stream_const(2);
        c.while_loop(
            &[len0, tok0],
            &[],
            |c, vars, _| c.le(vars[0], n as i64),
            |c, vars, _| {
                let (len, tok) = (vars[0], vars[1]);
                let half = c.shr(len, 1);
                let step = c.div(n as i64, len);
                let i0 = c.stream_const(0);
                let acc0 = c.stream_const(0);
                let blocks = c.while_loop(
                    &[i0, acc0],
                    &[len, half, step, tok],
                    |c, vars, _| c.lt(vars[0], n as i64),
                    |c, vars, invs| {
                        let (i, acc) = (vars[0], vars[1]);
                        let (len, half, step, gate) = (invs[0], invs[1], invs[2], invs[3]);
                        let acc_next = if split_j {
                            let h2 = c.shr(half, 1);
                            let zero = c.stream_const(0);
                            let a1 =
                                butterflies(c, work, tw_base, i, half, step, gate, zero, h2, zero);
                            let a2 =
                                butterflies(c, work, tw_base, i, half, step, gate, h2, half, zero);
                            let both = c.or(a1, a2);
                            c.or(acc, both)
                        } else {
                            let zero = c.stream_const(0);
                            butterflies(c, work, tw_base, i, half, step, gate, zero, half, acc)
                        };
                        vec![c.add(i, len), acc_next]
                    },
                );
                vec![c.shl(len, 1), blocks[1]]
            },
        );
    });

    let expected = reference_fft(&signal, n);
    Workload {
        name: "fft",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "spectrum",
            base: work,
            expected,
        }],
        par,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::harness::check_workload;

    #[test]
    fn fft_matches_reference() {
        check_workload(&fft(Scale::Test, 1));
    }

    #[test]
    fn fft_split_butterflies_match_reference() {
        check_workload(&fft(Scale::Test, 2));
    }

    #[test]
    fn reference_fft_dc_signal() {
        // A constant signal concentrates energy in bin 0.
        let n = 8;
        let sig = vec![1000i64; n];
        let out = reference_fft(&sig, n);
        assert_eq!(out[0], 8000, "DC bin is the sum");
        for k in 1..n {
            assert!(
                out[2 * k].abs() <= 8 && out[2 * k + 1].abs() <= 8,
                "bin {k} should be ~0, got ({}, {})",
                out[2 * k],
                out[2 * k + 1]
            );
        }
    }

    #[test]
    fn fft_has_ordering_recurrence() {
        let w = fft(Scale::Test, 1);
        let crit = w
            .kernel
            .dfg()
            .iter()
            .filter(|(_, n)| {
                n.op.is_memory()
                    && n.meta.criticality == Some(nupea_ir::graph::Criticality::Critical)
            })
            .count();
        assert!(
            crit > 0,
            "fft memory ops sit on the stage-ordering recurrence"
        );
    }
}

//! Neural-network workloads modelled on MLPerfTiny (Table 1): anomaly
//! detection (`ad`, a fully-connected autoencoder), image classification
//! (`ic`, a small CNN), and visual wake words (`vww`, a depthwise-separable
//! CNN). Quantized integer arithmetic with a power-of-two requantization
//! shift; layers chain through memory-ordering tokens (activations of layer
//! `k+1` load only after layer `k`'s stores complete). Weight loads are
//! ungated — weights are never written.

use super::{parallel_chunks, standard_memory, Check, Scale, Workload};
use crate::builder::{Ctx, Kernel, Val};
use crate::inputs;

/// Requantization shift after every MAC reduction.
pub(crate) const SHIFT: i64 = 4;

fn requant(x: i64, relu: bool) -> i64 {
    let v = x >> SHIFT;
    if relu {
        v.max(0)
    } else {
        v
    }
}

/// Emit a fully-connected layer `out[o] = act((Σ_i in[i]·w[o·in_n+i]) + b[o])`.
/// Activation loads are gated on `gate`; returns the join of all store
/// tokens. Output rows are chunked `par` ways.
#[allow(clippy::too_many_arguments)]
fn fc_layer(
    c: &mut Ctx,
    in_base: i64,
    out_base: i64,
    in_n: i64,
    out_n: i64,
    w_base: i64,
    b_base: i64,
    relu: bool,
    gate: Val,
    par: usize,
) -> Val {
    let toks = parallel_chunks(c, 0, out_n, par, |c, lo, hi| {
        let acc0 = c.stream_const(0);
        let outs = c.for_range(lo, hi, 1, &[acc0], &[gate], |c, o, carried, invs| {
            let gate = invs[0];
            let zero = c.imm(0);
            let wrow = c.mul(o, in_n);
            let wrow = c.add(wrow, w_base);
            let sums = c.for_range(0, in_n, 1, &[zero], &[wrow, gate], |c, i, acc, invs| {
                let (wrow, gate) = (invs[0], invs[1]);
                let ia = c.add(i, in_base);
                let (iv, _) = c.load_ordered(ia, gate);
                let wa = c.add(wrow, i);
                let wv = c.load(wa);
                let prod = c.mul(iv, wv);
                vec![c.add(acc[0], prod)]
            });
            let ba = c.add(o, b_base);
            let bv = c.load(ba);
            let s = c.add(sums[0], bv);
            let s = c.shr(s, SHIFT);
            let s = if relu { c.max(s, 0) } else { s };
            let oa = c.add(o, out_base);
            let st = c.store(oa, s);
            vec![c.or(carried[0], st)]
        });
        outs[0]
    });
    c.join_order(&toks)
}

/// Accumulate the nine 3×3 taps at output position `(y, x)` as two nested
/// dataflow loops: `Σ_{ky,kx} in[(y+ky)·img_n + x+kx] · w[wf + ky·3+kx]`,
/// starting from `bias`. Input loads are gated; weight loads are not.
#[allow(clippy::too_many_arguments)]
fn conv_taps(
    c: &mut Ctx,
    in_base: Val,
    img_n: i64,
    gate: Val,
    wf: Val,
    bias: Val,
    y: Val,
    x: Val,
) -> Val {
    let in_base = c.as_stream(in_base);
    let rows = c.for_range(
        0,
        3,
        1,
        &[bias],
        &[gate, wf, y, x, in_base],
        |c, ky, acc, invs| {
            let (gate, wf, y, x, in_base) = (invs[0], invs[1], invs[2], invs[3], invs[4]);
            let cols = c.for_range(
                0,
                3,
                1,
                &[acc[0]],
                &[gate, wf, y, x, ky, in_base],
                |c, kx, acc2, invs| {
                    let (gate, wf, y, x, ky, in_base) =
                        (invs[0], invs[1], invs[2], invs[3], invs[4], invs[5]);
                    let iy = c.add(y, ky);
                    let row = c.mul(iy, img_n);
                    let ix = c.add(x, kx);
                    let ia = c.add(row, ix);
                    let ia = c.add(ia, in_base);
                    let (iv, _) = c.load_ordered(ia, gate);
                    let wk = c.mul(ky, 3);
                    let wk = c.add(wk, kx);
                    let wa = c.add(wf, wk);
                    let wv = c.load(wa);
                    let prod = c.mul(iv, wv);
                    vec![c.add(acc2[0], prod)]
                },
            );
            vec![cols[0]]
        },
    );
    rows[0]
}

pub(crate) fn fc_reference(
    input: &[i64],
    w: &[i64],
    b: &[i64],
    in_n: usize,
    out_n: usize,
    relu: bool,
) -> Vec<i64> {
    (0..out_n)
        .map(|o| {
            let s: i64 = (0..in_n).map(|i| input[i] * w[o * in_n + i]).sum();
            requant(s + b[o], relu)
        })
        .collect()
}

/// Anomaly detection: a fully-connected autoencoder
/// `IN → IN/2 → IN/4 → IN/2 → IN`.
pub fn ad(scale: Scale, par: usize) -> Workload {
    let in_n: i64 = match scale {
        Scale::Test => 8,
        Scale::Bench => 24,
    };
    let dims = [in_n, in_n / 2, in_n / 4, in_n / 2, in_n];
    let mut mem = standard_memory();
    let input = inputs::dense_vector(in_n as usize, 0xAD01);
    let in_base = mem.alloc_init(&input);
    // Allocate per-layer weights/biases/buffers.
    let mut weights = Vec::new();
    let mut acts = vec![in_base];
    for l in 0..dims.len() - 1 {
        let (ni, no) = (dims[l] as usize, dims[l + 1] as usize);
        let w = inputs::dense_matrix(no, ni, 0xAD10 + l as u64);
        let b = inputs::dense_vector(no, 0xAD20 + l as u64);
        let wb = mem.alloc_init(&w);
        let bb = mem.alloc_init(&b);
        let ob = mem.alloc(no);
        weights.push((w, b, wb, bb));
        acts.push(ob);
    }

    let kernel = Kernel::build("ad", |c| {
        let mut gate = c.stream_const(0);
        for l in 0..dims.len() - 1 {
            let relu = l != dims.len() - 2;
            gate = fc_layer(
                c,
                acts[l],
                acts[l + 1],
                dims[l],
                dims[l + 1],
                weights[l].2,
                weights[l].3,
                relu,
                gate,
                par,
            );
        }
    });

    // Reference forward pass.
    let mut act = input;
    let mut expected = Vec::new();
    for l in 0..dims.len() - 1 {
        let relu = l != dims.len() - 2;
        act = fc_reference(
            &act,
            &weights[l].0,
            &weights[l].1,
            dims[l] as usize,
            dims[l + 1] as usize,
            relu,
        );
        expected = act.clone();
    }
    Workload {
        name: "ad",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "reconstruction",
            base: *acts.last().expect("autoencoder has layers"),
            expected,
        }],
        par,
    }
}

/// Emit a valid-padding 3×3 convolution over a single-channel `img_n²`
/// input producing `filters` output maps of `(img_n-2)²`, with ReLU.
/// Output filters are chunked `par` ways. Returns the store-token join.
#[allow(clippy::too_many_arguments)]
fn conv3x3_layer(
    c: &mut Ctx,
    in_base: i64,
    out_base: i64,
    img_n: i64,
    filters: i64,
    w_base: i64,
    b_base: i64,
    gate: Val,
    par: usize,
) -> Val {
    let out_n = img_n - 2;
    let toks = parallel_chunks(c, 0, filters, par, |c, lo, hi| {
        let acc0 = c.stream_const(0);
        let f_toks = c.for_range(lo, hi, 1, &[acc0], &[gate], |c, f, fc, invs| {
            let gate = invs[0];
            let wf = c.mul(f, 9);
            let wf = c.add(wf, w_base);
            let ba = c.add(f, b_base);
            let bv = c.load(ba);
            let of = c.mul(f, out_n * out_n);
            let of = c.add(of, out_base);
            let rows = c.for_range(
                0,
                out_n,
                1,
                &[fc[0]],
                &[gate, wf, bv, of],
                |c, y, yc, invs| {
                    let (gate, wf, bv, of) = (invs[0], invs[1], invs[2], invs[3]);
                    let cols = c.for_range(
                        0,
                        out_n,
                        1,
                        &[yc[0]],
                        &[gate, wf, bv, of, y],
                        |c, x, xc, invs| {
                            let (gate, wf, bv, of, y) =
                                (invs[0], invs[1], invs[2], invs[3], invs[4]);
                            // 3×3 taps as dataflow loops (keeps the kernel small
                            // enough to replicate on the fabric).
                            let base = c.imm(in_base);
                            let acc = conv_taps(c, base, img_n, gate, wf, bv, y, x);
                            let v = c.shr(acc, SHIFT);
                            let v = c.max(v, 0);
                            let orow = c.mul(y, out_n);
                            let oa = c.add(orow, x);
                            let oa = c.add(oa, of);
                            let st = c.store(oa, v);
                            vec![c.or(xc[0], st)]
                        },
                    );
                    vec![cols[0]]
                },
            );
            vec![rows[0]]
        });
        f_toks[0]
    });
    c.join_order(&toks)
}

/// Image classification: 3×3 conv (+ReLU) → 2×2 maxpool → FC logits.
pub fn ic(scale: Scale, par: usize) -> Workload {
    let (img_n, filters, classes): (i64, i64, i64) = match scale {
        Scale::Test => (6, 2, 4),
        Scale::Bench => (12, 4, 10),
    };
    let conv_n = img_n - 2;
    let pool_n = conv_n / 2;
    let feat = filters * pool_n * pool_n;

    let img = inputs::dense_matrix(img_n as usize, img_n as usize, 0x1C01);
    let wconv = inputs::dense_matrix(filters as usize, 9, 0x1C02);
    let bconv = inputs::dense_vector(filters as usize, 0x1C03);
    let wfc = inputs::dense_matrix(classes as usize, feat as usize, 0x1C04);
    let bfc = inputs::dense_vector(classes as usize, 0x1C05);

    let mut mem = standard_memory();
    let img_base = mem.alloc_init(&img);
    let wconv_base = mem.alloc_init(&wconv);
    let bconv_base = mem.alloc_init(&bconv);
    let conv_base = mem.alloc((filters * conv_n * conv_n) as usize);
    let pool_base = mem.alloc(feat as usize);
    let wfc_base = mem.alloc_init(&wfc);
    let bfc_base = mem.alloc_init(&bfc);
    let out_base = mem.alloc(classes as usize);

    let kernel = Kernel::build("ic", |c| {
        let gate0 = c.stream_const(0);
        let conv_tok = conv3x3_layer(
            c, img_base, conv_base, img_n, filters, wconv_base, bconv_base, gate0, par,
        );
        // 2×2 maxpool per filter.
        let pool_toks = parallel_chunks(c, 0, filters, par, |c, lo, hi| {
            let acc0 = c.stream_const(0);
            let f_toks = c.for_range(lo, hi, 1, &[acc0], &[conv_tok], |c, f, fc_, invs| {
                let gate = invs[0];
                let cf = c.mul(f, conv_n * conv_n);
                let cf = c.add(cf, conv_base);
                let pf = c.mul(f, pool_n * pool_n);
                let pf = c.add(pf, pool_base);
                let rows = c.for_range(
                    0,
                    pool_n,
                    1,
                    &[fc_[0]],
                    &[gate, cf, pf],
                    |c, py, yc, invs| {
                        let (gate, cf, pf) = (invs[0], invs[1], invs[2]);
                        let cols = c.for_range(
                            0,
                            pool_n,
                            1,
                            &[yc[0]],
                            &[gate, cf, pf, py],
                            |c, px, xc, invs| {
                                let (gate, cf, pf, py) = (invs[0], invs[1], invs[2], invs[3]);
                                let y0 = c.shl(py, 1);
                                let x0 = c.shl(px, 1);
                                let mut m: Option<Val> = None;
                                for dy in 0..2i64 {
                                    for dx in 0..2i64 {
                                        let yy = c.add(y0, dy);
                                        let row = c.mul(yy, conv_n);
                                        let xx = c.add(x0, dx);
                                        let a = c.add(row, xx);
                                        let a = c.add(a, cf);
                                        let (v, _) = c.load_ordered(a, gate);
                                        m = Some(match m {
                                            None => v,
                                            Some(prev) => c.max(prev, v),
                                        });
                                    }
                                }
                                let orow = c.mul(py, pool_n);
                                let oa = c.add(orow, px);
                                let oa = c.add(oa, pf);
                                let st = c.store(oa, m.expect("pool window nonempty"));
                                vec![c.or(xc[0], st)]
                            },
                        );
                        vec![cols[0]]
                    },
                );
                vec![rows[0]]
            });
            f_toks[0]
        });
        let pool_tok = c.join_order(&pool_toks);
        fc_layer(
            c, pool_base, out_base, feat, classes, wfc_base, bfc_base, false, pool_tok, par,
        );
    });

    // Reference.
    let mut conv = vec![0i64; (filters * conv_n * conv_n) as usize];
    for f in 0..filters as usize {
        for y in 0..conv_n as usize {
            for x in 0..conv_n as usize {
                let mut acc = bconv[f];
                for ky in 0..3 {
                    for kx in 0..3 {
                        acc += img[(y + ky) * img_n as usize + x + kx] * wconv[f * 9 + ky * 3 + kx];
                    }
                }
                conv[f * (conv_n * conv_n) as usize + y * conv_n as usize + x] = requant(acc, true);
            }
        }
    }
    let mut pool = vec![0i64; feat as usize];
    for f in 0..filters as usize {
        for py in 0..pool_n as usize {
            for px in 0..pool_n as usize {
                let mut m = i64::MIN;
                for dy in 0..2 {
                    for dx in 0..2 {
                        m = m.max(
                            conv[f * (conv_n * conv_n) as usize
                                + (2 * py + dy) * conv_n as usize
                                + 2 * px
                                + dx],
                        );
                    }
                }
                pool[f * (pool_n * pool_n) as usize + py * pool_n as usize + px] = m;
            }
        }
    }
    let expected = fc_reference(&pool, &wfc, &bfc, feat as usize, classes as usize, false);
    Workload {
        name: "ic",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "logits",
            base: out_base,
            expected,
        }],
        par,
    }
}

/// Visual wake words: depthwise 3×3 conv (+ReLU) per channel → pointwise
/// 1×1 conv (+ReLU) → global average pool → FC to 2 logits.
pub fn vww(scale: Scale, par: usize) -> Workload {
    let (img_n, ch, ch2): (i64, i64, i64) = match scale {
        Scale::Test => (5, 2, 3),
        Scale::Bench => (10, 4, 8),
    };
    let conv_n = img_n - 2;
    let classes = 2i64;

    let img = inputs::dense_matrix((ch * img_n) as usize, img_n as usize, 0x7711);
    let wdw = inputs::dense_matrix(ch as usize, 9, 0x7712);
    let bdw = inputs::dense_vector(ch as usize, 0x7713);
    let wpw = inputs::dense_matrix(ch2 as usize, ch as usize, 0x7714);
    let bpw = inputs::dense_vector(ch2 as usize, 0x7715);
    let wfc = inputs::dense_matrix(classes as usize, ch2 as usize, 0x7716);
    let bfc = inputs::dense_vector(classes as usize, 0x7717);

    let mut mem = standard_memory();
    let img_base = mem.alloc_init(&img);
    let wdw_base = mem.alloc_init(&wdw);
    let bdw_base = mem.alloc_init(&bdw);
    let dw_base = mem.alloc((ch * conv_n * conv_n) as usize);
    let wpw_base = mem.alloc_init(&wpw);
    let bpw_base = mem.alloc_init(&bpw);
    let pw_base = mem.alloc((ch2 * conv_n * conv_n) as usize);
    let gap_base = mem.alloc(ch2 as usize);
    let wfc_base = mem.alloc_init(&wfc);
    let bfc_base = mem.alloc_init(&bfc);
    let out_base = mem.alloc(classes as usize);

    let kernel = Kernel::build("vww", |c| {
        let gate0 = c.stream_const(0);
        // Depthwise: each channel convolved with its own 3×3 kernel.
        let dw_toks = parallel_chunks(c, 0, ch, par, |c, lo, hi| {
            let acc0 = c.stream_const(0);
            let t = c.for_range(lo, hi, 1, &[acc0], &[gate0], |c, f, fc_, invs| {
                let gate = invs[0];
                let in_ch = c.mul(f, img_n * img_n);
                let in_ch = c.add(in_ch, img_base);
                let wf = c.mul(f, 9);
                let wf = c.add(wf, wdw_base);
                let ba = c.add(f, bdw_base);
                let bv = c.load(ba);
                let of = c.mul(f, conv_n * conv_n);
                let of = c.add(of, dw_base);
                let rows = c.for_range(
                    0,
                    conv_n,
                    1,
                    &[fc_[0]],
                    &[gate, in_ch, wf, bv, of],
                    |c, y, yc, invs| {
                        let (gate, in_ch, wf, bv, of) =
                            (invs[0], invs[1], invs[2], invs[3], invs[4]);
                        let cols = c.for_range(
                            0,
                            conv_n,
                            1,
                            &[yc[0]],
                            &[gate, in_ch, wf, bv, of, y],
                            |c, x, xc, invs| {
                                let (gate, in_ch, wf, bv, of, y) =
                                    (invs[0], invs[1], invs[2], invs[3], invs[4], invs[5]);
                                let acc = conv_taps(c, in_ch, img_n, gate, wf, bv, y, x);
                                let v = c.shr(acc, SHIFT);
                                let v = c.max(v, 0);
                                let orow = c.mul(y, conv_n);
                                let oa = c.add(orow, x);
                                let oa = c.add(oa, of);
                                let st = c.store(oa, v);
                                vec![c.or(xc[0], st)]
                            },
                        );
                        vec![cols[0]]
                    },
                );
                vec![rows[0]]
            });
            t[0]
        });
        let dw_tok = c.join_order(&dw_toks);

        // Pointwise 1×1: out[o][p] = relu(Σ_c dw[c][p]·w[o][c] + b[o]).
        let pw_toks = parallel_chunks(c, 0, ch2, par, |c, lo, hi| {
            let acc0 = c.stream_const(0);
            let t = c.for_range(lo, hi, 1, &[acc0], &[dw_tok], |c, o, oc, invs| {
                let gate = invs[0];
                let wrow = c.mul(o, ch);
                let wrow = c.add(wrow, wpw_base);
                let ba = c.add(o, bpw_base);
                let bv = c.load(ba);
                let of = c.mul(o, conv_n * conv_n);
                let of = c.add(of, pw_base);
                let pix = c.for_range(
                    0,
                    conv_n * conv_n,
                    1,
                    &[oc[0]],
                    &[gate, wrow, bv, of],
                    |c, p, pc, invs| {
                        let (gate, wrow, bv, of) = (invs[0], invs[1], invs[2], invs[3]);
                        let sums =
                            c.for_range(0, ch, 1, &[bv], &[gate, p, wrow], |c, cc, acc, invs| {
                                let (gate, p, wrow) = (invs[0], invs[1], invs[2]);
                                let a = c.mul(cc, conv_n * conv_n);
                                let a = c.add(a, p);
                                let a = c.add(a, dw_base);
                                let (v, _) = c.load_ordered(a, gate);
                                let wa = c.add(wrow, cc);
                                let wv = c.load(wa);
                                let prod = c.mul(v, wv);
                                vec![c.add(acc[0], prod)]
                            });
                        let v = c.shr(sums[0], SHIFT);
                        let v = c.max(v, 0);
                        let oa = c.add(of, p);
                        let st = c.store(oa, v);
                        vec![c.or(pc[0], st)]
                    },
                );
                vec![pix[0]]
            });
            t[0]
        });
        let pw_tok = c.join_order(&pw_toks);

        // Global average pool per output channel.
        let gap_toks = parallel_chunks(c, 0, ch2, par, |c, lo, hi| {
            let acc0 = c.stream_const(0);
            let t = c.for_range(lo, hi, 1, &[acc0], &[pw_tok], |c, o, oc, invs| {
                let gate = invs[0];
                let of = c.mul(o, conv_n * conv_n);
                let of = c.add(of, pw_base);
                let zero = c.imm(0);
                let sums = c.for_range(
                    0,
                    conv_n * conv_n,
                    1,
                    &[zero],
                    &[gate, of],
                    |c, p, acc, invs| {
                        let (gate, of) = (invs[0], invs[1]);
                        let a = c.add(of, p);
                        let (v, _) = c.load_ordered(a, gate);
                        vec![c.add(acc[0], v)]
                    },
                );
                let avg = c.div(sums[0], conv_n * conv_n);
                let oa = c.add(o, gap_base);
                let st = c.store(oa, avg);
                vec![c.or(oc[0], st)]
            });
            t[0]
        });
        let gap_tok = c.join_order(&gap_toks);

        // Final classifier.
        fc_layer(
            c, gap_base, out_base, ch2, classes, wfc_base, bfc_base, false, gap_tok, par,
        );
    });

    // Reference.
    let conv2 = (conv_n * conv_n) as usize;
    let mut dw = vec![0i64; (ch as usize) * conv2];
    for f in 0..ch as usize {
        for y in 0..conv_n as usize {
            for x in 0..conv_n as usize {
                let mut acc = bdw[f];
                for ky in 0..3 {
                    for kx in 0..3 {
                        acc += img[(f * img_n as usize + y + ky) * img_n as usize + x + kx]
                            * wdw[f * 9 + ky * 3 + kx];
                    }
                }
                dw[f * conv2 + y * conv_n as usize + x] = requant(acc, true);
            }
        }
    }
    let mut pw = vec![0i64; (ch2 as usize) * conv2];
    for o in 0..ch2 as usize {
        for p in 0..conv2 {
            let mut acc = bpw[o];
            for cc in 0..ch as usize {
                acc += dw[cc * conv2 + p] * wpw[o * ch as usize + cc];
            }
            pw[o * conv2 + p] = requant(acc, true);
        }
    }
    let gap: Vec<i64> = (0..ch2 as usize)
        .map(|o| pw[o * conv2..(o + 1) * conv2].iter().sum::<i64>() / conv2 as i64)
        .collect();
    let expected = fc_reference(&gap, &wfc, &bfc, ch2 as usize, classes as usize, false);
    Workload {
        name: "vww",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "logits",
            base: out_base,
            expected,
        }],
        par,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::harness::check_workload;

    #[test]
    fn ad_matches_reference() {
        check_workload(&ad(Scale::Test, 1));
        check_workload(&ad(Scale::Test, 2));
    }

    #[test]
    fn ic_matches_reference() {
        check_workload(&ic(Scale::Test, 1));
        check_workload(&ic(Scale::Test, 2));
    }

    #[test]
    fn vww_matches_reference() {
        check_workload(&vww(Scale::Test, 1));
        check_workload(&vww(Scale::Test, 2));
    }

    #[test]
    fn nn_loads_are_mostly_inner_loop_class() {
        // Dense NN workloads have streaming inner-loop loads, few or no
        // critical ones beyond the layer-ordering chain (§7.1: dense apps
        // gain mostly from domain awareness, not criticality).
        let w = ad(Scale::Test, 1);
        let (mut inner, mut total) = (0usize, 0usize);
        for (_, n) in w.kernel.dfg().iter() {
            if n.op.is_memory() {
                total += 1;
                if n.meta.criticality == Some(nupea_ir::graph::Criticality::InnerLoop) {
                    inner += 1;
                }
            }
        }
        assert!(
            inner * 2 >= total,
            "most ad memory ops should be inner-loop class ({inner}/{total})"
        );
    }
}

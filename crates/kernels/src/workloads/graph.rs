//! Graph workload: triangle counting (`tc`, derived from GAPBS).
//!
//! Node-iterator algorithm with sorted adjacency lists: for every edge
//! `(u, v)` with `v > u`, count the common neighbors `w > v` via a
//! stream-join intersection — the same data-dependent ∩ structure as
//! `spmspv`, on graph data.

use super::{parallel_chunks, reduce_sum, standard_memory, Check, Scale, Workload};
use crate::builder::Kernel;
use crate::inputs;

/// Triangle counting over a random undirected graph.
pub fn tc(scale: Scale, par: usize) -> Workload {
    let (nodes, prob) = match scale {
        Scale::Test => (14usize, 0.3),
        Scale::Bench => (48, 0.12),
    };
    let g = inputs::random_graph(nodes, prob, 0x7C7C);
    let mut mem = standard_memory();
    let row_ptr = mem.alloc_init(&g.row_ptr);
    let col_idx = mem.alloc_init(&g.col_idx);
    let total_base = mem.alloc(1);

    let kernel = Kernel::build("tc", |c| {
        let parts = parallel_chunks(c, 0, nodes as i64, par, |c, lo, hi| {
            let zero = c.imm(0);
            let totals = c.for_range(lo, hi, 1, &[zero], &[], |c, u, carried, _| {
                let up = c.add(u, row_ptr);
                let u_beg = c.load(up);
                let up1 = c.add(up, 1);
                let u_end = c.load(up1);
                let inner = c.for_range(
                    u_beg,
                    u_end,
                    1,
                    &[carried[0]],
                    &[u, u_beg, u_end],
                    |c, k, kc, invs| {
                        let (u, u_beg, u_end) = (invs[0], invs[1], invs[2]);
                        let v_addr = c.add(k, col_idx);
                        let v = c.load(v_addr);
                        let is_fwd = c.gt(v, u);
                        let next_total = c.if_else(
                            is_fwd,
                            &[v, u_beg, u_end, kc[0]],
                            |c, ins| {
                                let (v, u_beg, u_end, total) = (ins[0], ins[1], ins[2], ins[3]);
                                let vp = c.add(v, row_ptr);
                                let v_beg = c.load(vp);
                                let vp1 = c.add(vp, 1);
                                let v_end = c.load(vp1);
                                // ∩ of N(u) and N(v), counting w > v.
                                let exits = c.while_loop(
                                    &[u_beg, v_beg, total],
                                    &[u_end, v_end, v],
                                    |c, vars, invs| {
                                        let cu = c.lt(vars[0], invs[0]);
                                        let cv = c.lt(vars[1], invs[1]);
                                        c.and(cu, cv)
                                    },
                                    |c, vars, invs| {
                                        let (iu, iv, cnt) = (vars[0], vars[1], vars[2]);
                                        let v_node = invs[2];
                                        let wa = c.add(iu, col_idx);
                                        let wu = c.load(wa); // critical
                                        let wb = c.add(iv, col_idx);
                                        let wv = c.load(wb); // critical
                                        let eq = c.eq(wu, wv);
                                        let gt = c.gt(wu, v_node);
                                        let hit = c.and(eq, gt);
                                        let cnt_next = c.add(cnt, hit);
                                        let a_le = c.le(wu, wv);
                                        let b_le = c.ge(wu, wv);
                                        let iu_next = c.add(iu, a_le);
                                        let iv_next = c.add(iv, b_le);
                                        vec![iu_next, iv_next, cnt_next]
                                    },
                                );
                                vec![exits[2]]
                            },
                            |c, ins| {
                                // consume gated copies, keep the total
                                let _ = (c.and(ins[0], 0), c.and(ins[1], 0), c.and(ins[2], 0));
                                vec![ins[3]]
                            },
                        );
                        vec![next_total[0]]
                    },
                );
                vec![inner[0]]
            });
            totals[0]
        });
        let total = reduce_sum(c, &parts);
        let addr = c.stream_const(total_base);
        c.store(addr, total);
        c.sink(total, "triangles");
    });

    // Reference: count ordered triples over the dense adjacency.
    let dense = g.to_dense();
    let mut expected = 0i64;
    for u in 0..nodes {
        for v in (u + 1)..nodes {
            if dense[u * nodes + v] == 0 {
                continue;
            }
            for w in (v + 1)..nodes {
                if dense[u * nodes + w] != 0 && dense[v * nodes + w] != 0 {
                    expected += 1;
                }
            }
        }
    }
    Workload {
        name: "tc",
        kernel,
        mem,
        checks: vec![
            Check::Mem {
                label: "total",
                base: total_base,
                expected: vec![expected],
            },
            Check::Sink {
                label: "triangles",
                index: 0,
                expected: vec![expected],
            },
        ],
        par,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::harness::check_workload;

    #[test]
    fn tc_matches_reference() {
        check_workload(&tc(Scale::Test, 1));
    }

    #[test]
    fn tc_parallel_matches_reference() {
        check_workload(&tc(Scale::Test, 2));
        check_workload(&tc(Scale::Test, 3));
    }

    #[test]
    fn tc_has_critical_intersection_loads() {
        let w = tc(Scale::Test, 1);
        let crit = w
            .kernel
            .dfg()
            .iter()
            .filter(|(_, n)| {
                n.op.is_memory()
                    && n.meta.criticality == Some(nupea_ir::graph::Criticality::Critical)
            })
            .count();
        assert!(crit >= 2, "intersection index loads must be critical");
    }
}

//! Second-wave workloads, authored in the `nupea-lang` eDSL.
//!
//! These five kernels are written as [`nupea_lang::kernel!`] programs and
//! lowered through [`nupea_lang::Program::lower`] onto the same builder
//! IR as the hand-written Table 1 workloads, so every downstream
//! subsystem (PnR, engine, trace, perturb, fault, DSE, shard, serve)
//! consumes them unchanged. Each program carries explicit criticality
//! annotations (`ld_crit`) on its loop-governing loads, checked against
//! the classifier at lowering time.
//!
//! * [`bfs`] — queue-based frontier expansion; the queue and
//!   distance loads sit on the ordered traversal recurrence.
//! * [`stencil2d`] — 9-point weighted sweep, separate in/out images;
//!   purely inner-loop loads, parallelizable over rows.
//! * [`hashjoin`] — streaming build + probe of an open-addressing hash
//!   table; the probe-key load governs the linear-probe recurrence.
//! * [`histogram`] — data-dependent scatter with read-modify-write bins
//!   on the memory-ordering recurrence (§7.1's ordering-cycle case).
//! * [`spmvell`] — ELLPACK SpMV; indirect gathers that are *not* on a
//!   recurrence (a deliberate critical/non-critical contrast with
//!   `spmspv`).
//!
//! The module also hosts [`spmspv_lang`], an eDSL port of the
//! hand-written `spmspv` used by the identity tests to prove the
//! lowering is node-for-node faithful.

use super::{standard_memory, Check, Scale, Workload};
use crate::inputs;
use nupea_lang::kernel;

/// Breadth-first search from node 0 over a random undirected graph.
///
/// Queue-based frontier expansion in one ordered loop: pop `u`, scan its
/// adjacency list, push unvisited neighbors. Distances land in memory;
/// the visited count is stored at `cnt`.
pub fn bfs(scale: Scale, par: usize) -> Workload {
    let (nodes, edge_prob) = match scale {
        Scale::Test => (16usize, 0.25),
        Scale::Bench => (96, 0.08),
    };
    let g = inputs::random_graph(nodes, edge_prob, 0x9F51);
    let mut mem = standard_memory();
    let rp = mem.alloc_init(&g.row_ptr);
    let ci = mem.alloc_init(&if g.col_idx.is_empty() {
        vec![0] // keep the base valid for an edgeless graph
    } else {
        g.col_idx.clone()
    });
    let mut dist0 = vec![-1i64; nodes];
    dist0[0] = 0;
    let dist = mem.alloc_init(&dist0);
    let mut queue0 = vec![0i64; nodes];
    queue0[0] = 0;
    let q = mem.alloc_init(&queue0);
    let cnt = mem.alloc(1);

    let program = kernel! {
        name: "bfs";
        let mut head = stream(0);
        let mut tail = stream(1);
        while (head.lt(tail)) seq {
            let u = ld_crit(q + head);
            let du = ld(dist + u);
            let beg = ld(rp + u);
            let end = ld(rp + u + 1);
            for k in range(beg, end) {
                let v = ld(ci + k);
                let dv = ld_crit(dist + v);
                if (dv.lt(0)) {
                    st(dist + v, du + 1);
                    st(q + tail, v);
                    tail = tail + 1;
                }
            }
            head = head + 1;
        }
        st(cnt, head);
    }
    .expect("bfs program is valid");
    let kernel = program.lower().expect("bfs lowers with hints satisfied");

    // Reference BFS (level order — identical distances for any queue
    // discipline, and this one mirrors the kernel's exactly).
    let mut expected_dist = vec![-1i64; nodes];
    expected_dist[0] = 0;
    let mut queue = vec![0usize];
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let (b, e) = (g.row_ptr[u] as usize, g.row_ptr[u + 1] as usize);
        for &v in &g.col_idx[b..e] {
            let v = v as usize;
            if expected_dist[v] < 0 {
                expected_dist[v] = expected_dist[u] + 1;
                queue.push(v);
            }
        }
    }
    let visited = queue.len() as i64;

    Workload {
        name: "bfs",
        kernel,
        mem,
        checks: vec![
            Check::Mem {
                label: "dist",
                base: dist,
                expected: expected_dist,
            },
            Check::Mem {
                label: "visited",
                base: cnt,
                expected: vec![visited],
            },
        ],
        par,
    }
}

/// 9-point weighted stencil sweep over an `n × n` image (separate
/// input/output planes, so rows parallelize without ordering).
pub fn stencil2d(scale: Scale, par: usize) -> Workload {
    let n = match scale {
        Scale::Test => 8usize,
        Scale::Bench => 48,
    };
    let img = inputs::dense_matrix(n, n, 0x57E2);
    let mut mem = standard_memory();
    let inp = mem.alloc_init(&img);
    let out = mem.alloc(n * n);
    let nn = n as i64;
    let hi = nn - 1;

    let program = kernel! {
        name: "stencil2d";
        for i in range(1, hi) par(par) {
            for j in range(1, hi) {
                let center = ld(inp + i * nn + j);
                let edges = ld(inp + (i - 1) * nn + j)
                    + ld(inp + (i + 1) * nn + j)
                    + ld(inp + i * nn + j - 1)
                    + ld(inp + i * nn + j + 1);
                let corners = ld(inp + (i - 1) * nn + j - 1)
                    + ld(inp + (i - 1) * nn + j + 1)
                    + ld(inp + (i + 1) * nn + j - 1)
                    + ld(inp + (i + 1) * nn + j + 1);
                st(out + i * nn + j, center * 4 + edges * 2 + corners);
            }
        }
    }
    .expect("stencil2d program is valid");
    let kernel = program.lower().expect("stencil2d lowers");

    let at = |r: i64, c: i64| img[(r * nn + c) as usize];
    let mut expected = vec![0i64; n * n];
    for i in 1..nn - 1 {
        for j in 1..nn - 1 {
            let edges = at(i - 1, j) + at(i + 1, j) + at(i, j - 1) + at(i, j + 1);
            let corners = at(i - 1, j - 1) + at(i - 1, j + 1) + at(i + 1, j - 1) + at(i + 1, j + 1);
            expected[(i * nn + j) as usize] = at(i, j) * 4 + edges * 2 + corners;
        }
    }

    Workload {
        name: "stencil2d",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "out",
            base: out,
            expected,
        }],
        par,
    }
}

/// Streaming hash join: build an open-addressing table from one key
/// column, probe it with another, and accumulate the matched payloads.
/// Both phases are ordered; the probe chains after the build through the
/// cross-loop order token.
pub fn hashjoin(scale: Scale, par: usize) -> Workload {
    let (nb, np, buckets) = match scale {
        Scale::Test => (12usize, 16usize, 32usize),
        Scale::Bench => (96, 256, 256),
    };
    // Distinct build keys (linear probing terminates below full load).
    let mut rng = nupea_rng::Xoshiro256::seed_from_u64(0x4A01);
    let mut pool: Vec<i64> = (0..4 * buckets as i64).collect();
    rng.shuffle(&mut pool);
    let build_keys: Vec<i64> = pool[..nb].to_vec();
    let payloads: Vec<i64> = (0..nb).map(|_| rng.range_i64(1, 100)).collect();
    // Probe keys: a mix of hits (drawn from build keys) and misses.
    let probe_keys: Vec<i64> = (0..np)
        .map(|_| {
            if rng.chance(0.6) {
                build_keys[rng.index(nb)]
            } else {
                pool[nb + rng.index(pool.len() - nb)]
            }
        })
        .collect();

    let mut mem = standard_memory();
    let k1 = mem.alloc_init(&build_keys);
    let v1 = mem.alloc_init(&payloads);
    let k2 = mem.alloc_init(&probe_keys);
    let tk = mem.alloc_init(&vec![-1i64; buckets]);
    let tv = mem.alloc(buckets);
    let outp = mem.alloc(1);
    let nb_i = nb as i64;
    let np_i = np as i64;
    let b_i = buckets as i64;

    let program = kernel! {
        name: "hashjoin";
        for i in range(0, nb_i) seq {
            let key = ld(k1 + i);
            let mut h = key % b_i;
            let mut inserting = stream(1);
            while (inserting.ne(0)) {
                let slot = ld_crit(tk + h);
                if (slot.lt(0)) {
                    st(tk + h, key);
                    st(tv + h, ld(v1 + i));
                    inserting = 0;
                } else {
                    h = (h + 1) % b_i;
                }
            }
        }
        let mut acc = stream(0);
        for j in range(0, np_i) seq {
            let key = ld(k2 + j);
            let mut h = key % b_i;
            let mut probing = stream(1);
            while (probing.ne(0)) {
                let slot = ld_crit(tk + h);
                if (slot.eq(key)) {
                    acc = acc + ld(tv + h);
                    probing = 0;
                } else {
                    if (slot.lt(0)) {
                        probing = 0;
                    } else {
                        h = (h + 1) % b_i;
                    }
                }
            }
        }
        st(outp, acc);
    }
    .expect("hashjoin program is valid");
    let kernel = program.lower().expect("hashjoin lowers");

    // Reference: identical open-addressing build + probe.
    let mut ref_tk = vec![-1i64; buckets];
    let mut ref_tv = vec![0i64; buckets];
    for (key, pay) in build_keys.iter().zip(&payloads) {
        let mut h = (key % b_i) as usize;
        while ref_tk[h] >= 0 {
            h = (h + 1) % buckets;
        }
        ref_tk[h] = *key;
        ref_tv[h] = *pay;
    }
    let mut acc = 0i64;
    for key in &probe_keys {
        let mut h = (key % b_i) as usize;
        loop {
            if ref_tk[h] == *key {
                acc += ref_tv[h];
                break;
            }
            if ref_tk[h] < 0 {
                break;
            }
            h = (h + 1) % buckets;
        }
    }

    Workload {
        name: "hashjoin",
        kernel,
        mem,
        checks: vec![
            Check::Mem {
                label: "table-keys",
                base: tk,
                expected: ref_tk,
            },
            Check::Mem {
                label: "joined",
                base: outp,
                expected: vec![acc],
            },
        ],
        par,
    }
}

/// Histogram build: data-dependent scatter with an RMW bin update. The
/// bin load rides the memory-ordering recurrence (§7.1), so it is
/// Critical even though its address is a plain gather.
pub fn histogram(scale: Scale, par: usize) -> Workload {
    let (n, bins) = match scale {
        Scale::Test => (48usize, 8usize),
        Scale::Bench => (768, 32),
    };
    let data: Vec<i64> = inputs::random_list(n, 0x417A)
        .iter()
        .map(|v| v.rem_euclid(bins as i64))
        .collect();
    let mut mem = standard_memory();
    let d = mem.alloc_init(&data);
    let b = mem.alloc(bins);
    let n_i = n as i64;
    let bins_i = bins as i64;

    let program = kernel! {
        name: "histogram";
        for i in range(0, n_i) seq {
            let bin = ld(d + i) + b;
            st(bin, ld_crit(bin) + 1);
        }
        let mut total = stream(0);
        for k in range(0, bins_i) seq {
            total = total + ld(b + k);
        }
        sink "total" = total;
    }
    .expect("histogram program is valid");
    let kernel = program.lower().expect("histogram lowers");

    let mut expected = vec![0i64; bins];
    for v in &data {
        expected[*v as usize] += 1;
    }

    Workload {
        name: "histogram",
        kernel,
        mem,
        checks: vec![
            Check::Mem {
                label: "bins",
                base: b,
                expected,
            },
            Check::Sink {
                label: "total",
                index: 0,
                expected: vec![n as i64],
            },
        ],
        par,
    }
}

/// ELLPACK SpMV: fixed-width padded rows, so every row does `width`
/// multiply-accumulates with an indirect gather of `x[col]`. None of the
/// loads govern a recurrence — the contrast case to `spmspv`.
pub fn spmvell(scale: Scale, par: usize) -> Workload {
    let (n, sparsity) = match scale {
        Scale::Test => (10usize, 0.6),
        Scale::Bench => (160, 0.92),
    };
    let a = inputs::sparse_csr(n, n, sparsity, 0xE11A);
    let x = inputs::dense_vector(n, 0xE11B);
    // Pack CSR into ELL with the max row degree as the pad width.
    let width = (0..n)
        .map(|r| (a.row_ptr[r + 1] - a.row_ptr[r]) as usize)
        .max()
        .unwrap_or(0)
        .max(1);
    let mut col_ell = vec![0i64; n * width];
    let mut val_ell = vec![0i64; n * width];
    for r in 0..n {
        let (beg, end) = (a.row_ptr[r] as usize, a.row_ptr[r + 1] as usize);
        for (k, idx) in (beg..end).enumerate() {
            col_ell[r * width + k] = a.col_idx[idx];
            val_ell[r * width + k] = a.values[idx];
        }
    }
    let mut mem = standard_memory();
    let cb = mem.alloc_init(&col_ell);
    let vb = mem.alloc_init(&val_ell);
    let xb = mem.alloc_init(&x);
    let yb = mem.alloc(n);
    let n_i = n as i64;
    let w_i = width as i64;

    let program = kernel! {
        name: "spmvell";
        for r in range(0, n_i) par(par) {
            let mut sum = stream(0);
            for k in range(0, w_i) {
                let col = ld(cb + r * w_i + k);
                let av = ld(vb + r * w_i + k);
                sum = sum + av * ld(xb + col);
            }
            st(yb + r, sum);
        }
    }
    .expect("spmvell program is valid");
    let kernel = program.lower().expect("spmvell lowers");

    let dense = a.to_dense();
    let expected: Vec<i64> = (0..n)
        .map(|r| (0..n).map(|j| dense[r * n + j] * x[j]).sum())
        .collect();

    Workload {
        name: "spmvell",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "y",
            base: yb,
            expected,
        }],
        par,
    }
}

/// eDSL port of the hand-written [`super::sparse::spmspv`] workload,
/// lowering to a node-for-node identical dataflow graph (proved by the
/// `lang_identity` test). Not registered — the hand-written entry stays
/// canonical; this exists to pin the lowering's fidelity.
pub fn spmspv_lang(scale: Scale, par: usize) -> Workload {
    let (n, sparsity) = match scale {
        Scale::Test => (12usize, 0.6),
        Scale::Bench => (192, 0.9),
    };
    // Identical inputs and allocation order to `sparse::spmspv_custom`.
    let a = inputs::sparse_csr(n, n, sparsity, 0x55B1);
    let v = inputs::sparse_vector(n, sparsity, 0x55B2);
    let mut mem = standard_memory();
    let rp = mem.alloc_init(&a.row_ptr);
    let ci = mem.alloc_init(&a.col_idx);
    let va = mem.alloc_init(&a.values);
    let vi = mem.alloc_init(&v.nz_idx);
    let vv = mem.alloc_init(&v.values);
    let d_base = mem.alloc(n);
    let v_nnz = v.nz_idx.len() as i64;
    let n_i = n as i64;

    let program = kernel! {
        name: "spmspv";
        for r in range(0, n_i) par(par) {
            let bp = r + rp;
            let mut ia = ld(bp);
            let end = ld(bp + 1);
            let mut ib = stream(0);
            let vn = stream(v_nnz);
            let mut sum = stream(0);
            while (ia.lt(end) & ib.lt(vn)) {
                let ai = ld_crit(ia + ci);
                let bi = ld_crit(ib + vi);
                if (ai.eq(bi)) {
                    sum = sum + ld(ia + va) * ld(ib + vv);
                }
                let a_le = ai.le(bi);
                let b_le = ai.ge(bi);
                ia = ia + a_le;
                ib = ib + b_le;
            }
            st(r + d_base, sum);
        }
    }
    .expect("spmspv eDSL program is valid");
    let kernel = program
        .lower()
        .expect("spmspv lowers with critical hints satisfied");

    let dense_a = a.to_dense();
    let dense_v = v.to_dense();
    let expected: Vec<i64> = (0..n)
        .map(|r| (0..n).map(|j| dense_a[r * n + j] * dense_v[j]).sum())
        .collect();
    Workload {
        name: "spmspv",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "D",
            base: d_base,
            expected,
        }],
        par,
    }
}

#[cfg(test)]
mod tests {
    use super::super::harness::check_workload;
    use super::*;

    #[test]
    fn bfs_validates() {
        check_workload(&bfs(Scale::Test, 1));
    }

    #[test]
    fn stencil2d_validates() {
        check_workload(&stencil2d(Scale::Test, 1));
        check_workload(&stencil2d(Scale::Test, 2));
    }

    #[test]
    fn hashjoin_validates() {
        check_workload(&hashjoin(Scale::Test, 1));
    }

    #[test]
    fn histogram_validates() {
        check_workload(&histogram(Scale::Test, 1));
    }

    #[test]
    fn spmvell_validates() {
        check_workload(&spmvell(Scale::Test, 1));
        check_workload(&spmvell(Scale::Test, 2));
    }

    #[test]
    fn spmspv_lang_validates() {
        check_workload(&spmspv_lang(Scale::Test, 1));
        check_workload(&spmspv_lang(Scale::Test, 4));
    }

    #[test]
    fn wave2_critical_loads_are_present_where_expected() {
        assert!(!bfs(Scale::Test, 1).kernel.critical_loads().is_empty());
        assert!(!hashjoin(Scale::Test, 1).kernel.critical_loads().is_empty());
        assert!(!histogram(Scale::Test, 1).kernel.critical_loads().is_empty());
        // The ELL gather has no loop-governing loads at all.
        assert!(spmvell(Scale::Test, 1).kernel.critical_loads().is_empty());
    }
}

//! Dense workloads: dense matrix-vector product (`dmv`), 2-D Jacobi stencil
//! (`jacobi2d`), and the 3-D heat equation stencil (`heat3d`) — the
//! Polybench-derived entries of Table 1.
//!
//! The stencils use memory-ordering tokens between time steps: every load
//! of step `k+1` is gated on a token that joins all stores of step `k`,
//! reproducing the "memory ordering" behaviour the paper highlights for
//! jacobi2d (§7.1).

use super::{parallel_chunks, standard_memory, Check, Scale, Workload};
use crate::builder::Kernel;
use crate::inputs;

/// Dense matrix-vector product `D = A · V`.
pub fn dmv(scale: Scale, par: usize) -> Workload {
    let (rows, cols) = match scale {
        Scale::Test => (6usize, 8usize),
        Scale::Bench => (64, 64),
    };
    dmv_custom(rows, cols, par)
}

/// `dmv` at an explicit size (used by scaling studies and diagnostics).
pub fn dmv_custom(rows: usize, cols: usize, par: usize) -> Workload {
    let a = inputs::dense_matrix(rows, cols, 0xD317);
    let v = inputs::dense_vector(cols, 0xD318);
    let mut mem = standard_memory();
    let a_base = mem.alloc_init(&a);
    let v_base = mem.alloc_init(&v);
    let d_base = mem.alloc(rows);

    let kernel = Kernel::build("dmv", |c| {
        parallel_chunks(c, 0, rows as i64, par, |c, lo, hi| {
            c.for_range(lo, hi, 1, &[], &[], |c, r, _, _| {
                let zero = c.imm(0);
                let row_off = c.mul(r, cols as i64);
                let row_base = c.add(row_off, a_base);
                let sums = c.for_range(
                    0,
                    cols as i64,
                    1,
                    &[zero],
                    &[row_base],
                    |c, j, acc, invs| {
                        let av = c.add(invs[0], j);
                        let av = c.load(av);
                        let vv = c.add(j, v_base);
                        let vv = c.load(vv);
                        let prod = c.mul(av, vv);
                        vec![c.add(acc[0], prod)]
                    },
                );
                let d_addr = c.add(r, d_base);
                c.store(d_addr, sums[0]);
                vec![]
            });
        });
    });

    let mut expected = vec![0i64; rows];
    for r in 0..rows {
        expected[r] = (0..cols).map(|j| a[r * cols + j] * v[j]).sum();
    }
    Workload {
        name: "dmv",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "D",
            base: d_base,
            expected,
        }],
        par,
    }
}

/// Reference step for jacobi2d on an `n × n` grid (interior only).
fn jacobi2d_step(src: &[i64], dst: &mut [i64], n: usize) {
    dst.copy_from_slice(src);
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            let s = src[i * n + j]
                + src[(i - 1) * n + j]
                + src[(i + 1) * n + j]
                + src[i * n + j - 1]
                + src[i * n + j + 1];
            dst[i * n + j] = s / 5;
        }
    }
}

/// 2-D Jacobi stencil with ping-pong buffers and inter-step memory
/// ordering.
pub fn jacobi2d(scale: Scale, par: usize) -> Workload {
    let (n, steps) = match scale {
        Scale::Test => (6usize, 2i64),
        Scale::Bench => (20, 4),
    };
    let init = inputs::dense_matrix(n, n, 0x1AC0);
    let mut mem = standard_memory();
    let a_base = mem.alloc_init(&init);
    let b_base = mem.alloc_init(&init); // boundaries must match in both buffers

    let kernel = Kernel::build("jacobi2d", |c| {
        let tok0 = c.stream_const(0);
        c.for_range(0, steps, 1, &[tok0], &[], |c, step, carried, _| {
            // `tok` proves all of the previous step's stores completed;
            // every load this step is gated on a copy of it. Iterations
            // within a step stay independent (double buffering), and store
            // tokens fold into the next step's gate.
            let tok = carried[0];
            let parity = c.and(step, 1);
            let src = c.select(parity, c.imm(b_base), c.imm(a_base));
            let dst = c.select(parity, c.imm(a_base), c.imm(b_base));
            let chunk_toks = parallel_chunks(c, 1, (n - 1) as i64, par, |c, lo, hi| {
                let acc0 = c.stream_const(0);
                let rows = c.for_range(lo, hi, 1, &[acc0], &[src, dst, tok], |c, i, rc, invs| {
                    let (src, dst, tok) = (invs[0], invs[1], invs[2]);
                    let irow = c.mul(i, n as i64);
                    let srow = c.add(src, irow);
                    let drow = c.add(dst, irow);
                    let cols = c.for_range(
                        1,
                        (n - 1) as i64,
                        1,
                        &[rc[0]],
                        &[srow, drow, tok],
                        |c, j, jc, invs| {
                            let (srow, drow, gate) = (invs[0], invs[1], invs[2]);
                            let center = c.add(srow, j);
                            let (v0, _) = c.load_ordered(center, gate);
                            let up = c.sub(center, n as i64);
                            let (v1, _) = c.load_ordered(up, gate);
                            let down = c.add(center, n as i64);
                            let (v2, _) = c.load_ordered(down, gate);
                            let left = c.sub(center, 1);
                            let (v3, _) = c.load_ordered(left, gate);
                            let right = c.add(center, 1);
                            let (v4, _) = c.load_ordered(right, gate);
                            let s = c.add(v0, v1);
                            let s = c.add(s, v2);
                            let s = c.add(s, v3);
                            let s = c.add(s, v4);
                            let avg = c.div(s, 5);
                            let daddr = c.add(drow, j);
                            let st = c.store(daddr, avg);
                            vec![c.or(jc[0], st)]
                        },
                    );
                    vec![cols[0]]
                });
                rows[0]
            });
            vec![c.join_order(&chunk_toks)]
        });
    });

    // Reference: ping-pong steps.
    let mut bufs = [init.clone(), init.clone()];
    for s in 0..steps as usize {
        let (src_i, dst_i) = (s % 2, (s + 1) % 2);
        let (lo, hi) = bufs.split_at_mut(1);
        let (src, dst) = if src_i == 0 {
            (&lo[0], &mut hi[0])
        } else {
            (&hi[0], &mut lo[0])
        };
        jacobi2d_step(src, dst, n);
        let _ = dst_i;
    }
    let final_buf = bufs[(steps % 2) as usize].clone();
    let final_base = if steps % 2 == 0 { a_base } else { b_base };
    Workload {
        name: "jacobi2d",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "grid",
            base: final_base,
            expected: final_buf,
        }],
        par,
    }
}

/// Reference step for heat3d on an `n³` grid.
fn heat3d_step(src: &[i64], dst: &mut [i64], n: usize) {
    dst.copy_from_slice(src);
    let idx = |i: usize, j: usize, k: usize| (i * n + j) * n + k;
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            for k in 1..n - 1 {
                let c = src[idx(i, j, k)];
                let s = src[idx(i - 1, j, k)]
                    + src[idx(i + 1, j, k)]
                    + src[idx(i, j - 1, k)]
                    + src[idx(i, j + 1, k)]
                    + src[idx(i, j, k - 1)]
                    + src[idx(i, j, k + 1)]
                    - 6 * c;
                dst[idx(i, j, k)] = c + (s >> 3);
            }
        }
    }
}

/// 3-D heat-equation stencil (7-point) with inter-step memory ordering.
pub fn heat3d(scale: Scale, par: usize) -> Workload {
    let (n, steps) = match scale {
        Scale::Test => (4usize, 1i64),
        Scale::Bench => (8, 2),
    };
    let init = inputs::dense_matrix(n * n, n, 0x43A7);
    let mut mem = standard_memory();
    let a_base = mem.alloc_init(&init);
    let b_base = mem.alloc_init(&init);

    let kernel = Kernel::build("heat3d", |c| {
        let tok0 = c.stream_const(0);
        c.for_range(0, steps, 1, &[tok0], &[], |c, step, carried, _| {
            let tok = carried[0];
            let parity = c.and(step, 1);
            let src = c.select(parity, c.imm(b_base), c.imm(a_base));
            let dst = c.select(parity, c.imm(a_base), c.imm(b_base));
            let chunk_toks = parallel_chunks(c, 1, (n - 1) as i64, par, |c, lo, hi| {
                let acc0 = c.stream_const(0);
                let planes = c.for_range(lo, hi, 1, &[acc0], &[src, dst, tok], |c, i, ic, invs| {
                    let (src, dst, tok) = (invs[0], invs[1], invs[2]);
                    let rows = c.for_range(
                        1,
                        (n - 1) as i64,
                        1,
                        &[ic[0]],
                        &[src, dst, i, tok],
                        |c, j, jc, invs| {
                            let (src, dst, i, tok) = (invs[0], invs[1], invs[2], invs[3]);
                            let plane = c.mul(i, (n * n) as i64);
                            let row = c.mul(j, n as i64);
                            let off = c.add(plane, row);
                            let soff = c.add(src, off);
                            let doff = c.add(dst, off);
                            let cols = c.for_range(
                                1,
                                (n - 1) as i64,
                                1,
                                &[jc[0]],
                                &[soff, doff, tok],
                                |c, k, kc, invs| {
                                    let (soff, doff, gate) = (invs[0], invs[1], invs[2]);
                                    let center = c.add(soff, k);
                                    let (v, _) = c.load_ordered(center, gate);
                                    let mut acc = c.mul(v, -6);
                                    for delta in [
                                        -((n * n) as i64),
                                        (n * n) as i64,
                                        -(n as i64),
                                        n as i64,
                                        -1,
                                        1,
                                    ] {
                                        let a = c.add(center, delta);
                                        let (nv, _) = c.load_ordered(a, gate);
                                        acc = c.add(acc, nv);
                                    }
                                    let upd = c.shr(acc, 3);
                                    let out = c.add(v, upd);
                                    let daddr = c.add(doff, k);
                                    let st = c.store(daddr, out);
                                    vec![c.or(kc[0], st)]
                                },
                            );
                            vec![cols[0]]
                        },
                    );
                    vec![rows[0]]
                });
                planes[0]
            });
            vec![c.join_order(&chunk_toks)]
        });
    });

    let mut bufs = [init.clone(), init.clone()];
    for s in 0..steps as usize {
        let (lo, hi) = bufs.split_at_mut(1);
        let (src, dst) = if s % 2 == 0 {
            (&lo[0], &mut hi[0])
        } else {
            (&hi[0], &mut lo[0])
        };
        heat3d_step(src, dst, n);
    }
    let final_buf = bufs[(steps % 2) as usize].clone();
    let final_base = if steps % 2 == 0 { a_base } else { b_base };
    Workload {
        name: "heat3d",
        kernel,
        mem,
        checks: vec![Check::Mem {
            label: "grid",
            base: final_base,
            expected: final_buf,
        }],
        par,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::harness::check_workload;

    #[test]
    fn dmv_matches_reference() {
        check_workload(&dmv(Scale::Test, 1));
    }

    #[test]
    fn dmv_parallel_matches_reference() {
        check_workload(&dmv(Scale::Test, 3));
    }

    #[test]
    fn jacobi2d_matches_reference() {
        check_workload(&jacobi2d(Scale::Test, 1));
    }

    #[test]
    fn jacobi2d_parallel_matches_reference() {
        check_workload(&jacobi2d(Scale::Test, 2));
    }

    #[test]
    fn heat3d_matches_reference() {
        check_workload(&heat3d(Scale::Test, 1));
    }

    #[test]
    fn heat3d_parallel_matches_reference() {
        check_workload(&heat3d(Scale::Test, 2));
    }

    #[test]
    fn stencils_have_critical_ordering_recurrences() {
        // The ordering token is carried through the step loop: stores feed
        // the next step's gate, so stencil memory ops sit on a recurrence.
        let w = jacobi2d(Scale::Test, 1);
        let crit = w
            .kernel
            .dfg()
            .iter()
            .filter(|(_, n)| {
                n.op.is_memory()
                    && n.meta.criticality == Some(nupea_ir::graph::Criticality::Critical)
            })
            .count();
        assert!(crit > 0, "jacobi2d must have critical memory ops");
    }
}

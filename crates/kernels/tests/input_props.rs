//! Property tests for the `inputs` generators: every workload's memory
//! image is derived from these, so they must be (1) deterministic per
//! seed, (2) within their documented size/shape bounds, and (3) free of
//! values that would turn into negative or out-of-range addresses when
//! used as indices.
//!
//! Seeds are drawn from a seeded RNG, so each property is exercised over
//! many generator instances while staying reproducible.

use nupea_kernels::inputs;
use nupea_rng::Xoshiro256;

const TRIALS: usize = 32;

fn seeds(salt: u64) -> Vec<u64> {
    let mut rng = Xoshiro256::seed_from_u64(0xD1CE ^ salt);
    (0..TRIALS).map(|_| rng.next_u64()).collect()
}

#[test]
fn dense_generators_are_seed_deterministic() {
    for seed in seeds(1) {
        assert_eq!(
            inputs::dense_matrix(7, 5, seed),
            inputs::dense_matrix(7, 5, seed)
        );
        assert_eq!(
            inputs::dense_vector(11, seed),
            inputs::dense_vector(11, seed)
        );
        assert_eq!(inputs::random_list(9, seed), inputs::random_list(9, seed));
        assert_eq!(
            inputs::random_signal(16, seed),
            inputs::random_signal(16, seed)
        );
    }
    // Distinct seeds must not collapse to one stream.
    assert_ne!(inputs::dense_vector(64, 1), inputs::dense_vector(64, 2));
}

#[test]
fn dense_generators_respect_size_and_value_bounds() {
    for seed in seeds(2) {
        let m = inputs::dense_matrix(6, 9, seed);
        assert_eq!(m.len(), 54);
        assert!(m.iter().all(|v| (-8..=8).contains(v)), "matrix range");
        let s = inputs::random_signal(32, seed);
        assert_eq!(s.len(), 32);
        // Q15: one fixed-point integer per sample, |v| < 2^15.
        assert!(s.iter().all(|v| v.abs() < 1 << 15), "signal Q15 range");
    }
}

#[test]
fn sparse_csr_is_well_formed() {
    for seed in seeds(3) {
        let a = inputs::sparse_csr(13, 17, 0.7, seed);
        let b = inputs::sparse_csr(13, 17, 0.7, seed);
        assert_eq!(a.row_ptr, b.row_ptr, "csr determinism");
        assert_eq!(a.col_idx, b.col_idx, "csr determinism");
        assert_eq!(a.values, b.values, "csr determinism");

        assert_eq!(a.rows, 13);
        assert_eq!(a.cols, 17);
        assert_eq!(a.row_ptr.len(), a.rows + 1);
        assert_eq!(a.row_ptr[0], 0);
        assert_eq!(a.row_ptr[a.rows] as usize, a.col_idx.len());
        assert_eq!(a.col_idx.len(), a.values.len());
        assert_eq!(a.nnz(), a.col_idx.len());
        // row_ptr monotone: every row slice is a valid [beg, end) range.
        assert!(a.row_ptr.windows(2).all(|w| w[0] <= w[1]));
        // Column indices are in-bounds and non-negative — they feed
        // gather addresses directly.
        assert!(a.col_idx.iter().all(|&c| c >= 0 && (c as usize) < a.cols));
        // Within each row, columns are sorted strictly (no duplicates),
        // as the two-pointer join kernels require.
        for r in 0..a.rows {
            let (beg, end) = (a.row_ptr[r] as usize, a.row_ptr[r + 1] as usize);
            assert!(a.col_idx[beg..end].windows(2).all(|w| w[0] < w[1]));
        }
    }
}

#[test]
fn sparse_vector_is_well_formed() {
    for seed in seeds(4) {
        let v = inputs::sparse_vector(23, 0.6, seed);
        let w = inputs::sparse_vector(23, 0.6, seed);
        assert_eq!(v.nz_idx, w.nz_idx, "vector determinism");
        assert_eq!(v.values, w.values, "vector determinism");

        assert_eq!(v.len, 23);
        assert_eq!(v.nz_idx.len(), v.values.len());
        assert!(v.nz_idx.len() <= v.len);
        assert!(v.nz_idx.iter().all(|&i| i >= 0 && (i as usize) < v.len));
        assert!(v.nz_idx.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        // to_dense must be the exact inverse view.
        let dense = v.to_dense();
        assert_eq!(dense.len(), v.len);
        for (i, val) in v.nz_idx.iter().zip(&v.values) {
            assert_eq!(dense[*i as usize], *val);
        }
    }
}

#[test]
fn random_graph_is_symmetric_and_loop_free() {
    for seed in seeds(5) {
        let g = inputs::random_graph(19, 0.3, seed);
        assert_eq!(g.rows, 19);
        assert_eq!(g.row_ptr.len(), 20);
        assert!(g.col_idx.iter().all(|&c| c >= 0 && (c as usize) < g.rows));
        let has_edge = |u: usize, v: usize| {
            let (b, e) = (g.row_ptr[u] as usize, g.row_ptr[u + 1] as usize);
            g.col_idx[b..e].contains(&(v as i64))
        };
        for u in 0..g.rows {
            let (b, e) = (g.row_ptr[u] as usize, g.row_ptr[u + 1] as usize);
            // Sorted adjacency, no self loops.
            assert!(g.col_idx[b..e].windows(2).all(|w| w[0] < w[1]));
            assert!(!has_edge(u, u), "self loop at {u}");
            // Undirected: every edge has its mirror.
            for &v in &g.col_idx[b..e] {
                assert!(has_edge(v as usize, u), "missing mirror {u}->{v}");
            }
        }
        // All weights are 1 (BFS/TC treat the graph as unweighted).
        assert!(g.values.iter().all(|&v| v == 1));
    }
}

#[test]
fn sparsity_extremes_are_safe() {
    // Fully sparse: no entries, but shapes stay valid.
    let empty = inputs::sparse_csr(8, 8, 1.0, 7);
    assert_eq!(empty.nnz(), 0);
    assert_eq!(empty.row_ptr, vec![0; 9]);
    // Fully dense: every slot filled, still sorted per row.
    let full = inputs::sparse_csr(8, 8, 0.0, 7);
    assert_eq!(full.nnz(), 64);
    let ev = inputs::sparse_vector(8, 1.0, 7);
    assert!(ev.nz_idx.is_empty());
    let fv = inputs::sparse_vector(8, 0.0, 7);
    assert_eq!(fv.nz_idx.len(), 8);
}

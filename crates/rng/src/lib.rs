//! A small, dependency-free, deterministic PRNG for the NUPEA workspace.
//!
//! Everything in this repository that consumes randomness — input
//! generation, placement annealing, NUMA domain assignment, randomized
//! tests — must be exactly reproducible from a `u64` seed so experiments
//! and failures replay bit-for-bit. The implementation is xoshiro256++
//! (public domain, Blackman & Vigna) seeded through SplitMix64, the same
//! construction `rand::rngs::SmallRng` uses on 64-bit targets, but owned
//! by the workspace so builds never touch an external registry.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// A seedable xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

/// SplitMix64 step: expands a seed into well-mixed state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    /// Create a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        (self.below(n as u64)) as usize
    }

    /// A uniform `u64` in `[0, n)` without modulo bias. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range must be non-empty");
        // Rejection sampling over the largest representable multiple of `n`
        // keeps every residue equally likely.
        let zone = (u64::MAX / n) * n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// A uniform `i64` in the inclusive range `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "range must be non-empty");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span > u64::MAX as u128 {
            // Full-width range: every u64 pattern is a valid i64.
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.below(span as u64) as i64)
    }

    /// A uniform `usize` in the inclusive range `[lo, hi]`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "range must be non-empty");
        lo + self.index(hi - lo + 1)
    }

    /// A uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle, deterministic for a given generator state.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.range_i64(-8, 8);
            assert!((-8..=8).contains(&v));
            let u = r.index(13);
            assert!(u < 13);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut r = Xoshiro256::seed_from_u64(1);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            match r.range_i64(0, 3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn full_width_range_does_not_loop_forever() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let _ = r.range_i64(i64::MIN, i64::MAX);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..64).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "64 elements should not shuffle to identity");
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.chance(0.1)).count();
        assert!((8_000..12_000).contains(&hits), "got {hits}");
    }
}

//! Regression tests for netlist-vs-fabric capacity: `place()` (and the
//! full `pnr()` pipeline) must return a typed [`PnrError::Unplaceable`]
//! naming the exhausted resource for any netlist larger than the fabric,
//! never panic or silently fold instructions onto shared PEs.

use nupea_fabric::Fabric;
use nupea_ir::graph::Dfg;
use nupea_ir::op::{BinOpKind, Op};
use nupea_pnr::{check_capacity, place::place, pnr, Netlist, PlaceConfig, PnrConfig, PnrError};

/// monaco(2, 4): 8 PEs total, one LS row of 4 PEs.
fn tiny_fabric() -> Fabric {
    Fabric::monaco(2, 4, 2).unwrap()
}

fn expect_unplaceable(r: Result<impl std::fmt::Debug, PnrError>, what: &str) {
    match r {
        Err(PnrError::Unplaceable(msg)) => assert!(
            msg.contains(what),
            "error must name the exhausted resource ({what}): {msg}"
        ),
        other => panic!("expected Unplaceable({what}), got {other:?}"),
    }
}

#[test]
fn too_many_endpoints_is_unplaceable() {
    let fabric = tiny_fabric();
    let mut g = Dfg::new("aux-overflow");
    for i in 0..20 {
        let _ = g.add_param(format!("p{i}"));
    }
    let nl = Netlist::from_dfg(&g);
    expect_unplaceable(check_capacity(&fabric, &nl), "endpoint");
    expect_unplaceable(place(&fabric, &nl, &PlaceConfig::default()), "endpoint");
}

#[test]
fn too_many_compute_ops_is_unplaceable() {
    let fabric = tiny_fabric();
    let mut g = Dfg::new("compute-overflow");
    let (p, _) = g.add_param("a");
    let mut prev = p;
    for _ in 0..20 {
        let n = g.add_node(Op::BinOp(BinOpKind::Add));
        g.connect(prev, 0, n, 0);
        g.set_imm(n, 1, 1);
        prev = n;
    }
    expect_unplaceable(pnr(&g, &fabric, &PnrConfig::default()), "compute");
}

#[test]
fn one_memory_op_past_ls_capacity_is_unplaceable() {
    // 4 LS PEs; 5 memory instructions is exactly one too many.
    let fabric = tiny_fabric();
    assert_eq!(fabric.num_ls_pes(), 4);
    let mut g = Dfg::new("mem-overflow");
    let (p, _) = g.add_param("a");
    for _ in 0..5 {
        let ld = g.add_node(Op::Load);
        g.connect(p, 0, ld, Op::LOAD_ADDR);
    }
    let nl = Netlist::from_dfg(&g);
    expect_unplaceable(check_capacity(&fabric, &nl), "memory");
    expect_unplaceable(pnr(&g, &fabric, &PnrConfig::default()), "memory");
}

#[test]
fn exact_ls_capacity_places() {
    // Exactly as many memory instructions as LS PEs must still place,
    // each on its own load-store PE.
    let fabric = tiny_fabric();
    let mut g = Dfg::new("mem-exact");
    let (p, _) = g.add_param("a");
    let mut loads = Vec::new();
    for _ in 0..fabric.num_ls_pes() {
        let ld = g.add_node(Op::Load);
        g.connect(p, 0, ld, Op::LOAD_ADDR);
        loads.push(ld);
    }
    let nl = Netlist::from_dfg(&g);
    check_capacity(&fabric, &nl).expect("exact fit passes the check");
    let placement = place(&fabric, &nl, &PlaceConfig::default()).expect("exact fit places");
    let mut ls_pes: Vec<_> = loads.iter().map(|ld| placement.pe_of[ld.index()]).collect();
    ls_pes.sort();
    ls_pes.dedup();
    assert_eq!(ls_pes.len(), loads.len(), "one LS PE per memory op");
}

#[test]
fn every_heuristic_reports_capacity_errors() {
    use nupea_pnr::Heuristic;
    let fabric = tiny_fabric();
    let mut g = Dfg::new("mem-overflow-all");
    let (p, _) = g.add_param("a");
    for _ in 0..9 {
        let ld = g.add_node(Op::Load);
        g.connect(p, 0, ld, Op::LOAD_ADDR);
    }
    let nl = Netlist::from_dfg(&g);
    for h in [
        Heuristic::DomainUnaware,
        Heuristic::OnlyDomainAware,
        Heuristic::CriticalityAware,
    ] {
        let cfg = PlaceConfig {
            heuristic: h,
            ..PlaceConfig::default()
        };
        expect_unplaceable(place(&fabric, &nl, &cfg), "memory");
    }
}

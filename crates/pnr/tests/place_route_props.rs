//! Property tests for place-and-route: on randomized dataflow graphs,
//! placement must respect slot exclusivity and LS constraints, routing must
//! stay within channel capacity, and the whole pipeline must be
//! deterministic for a seed. Randomized via the workspace PRNG.

use nupea_fabric::{Fabric, PeKind};
use nupea_ir::graph::Dfg;
use nupea_ir::op::{BinOpKind, Op, SteerPolarity};
use nupea_pnr::{pnr, Heuristic, Netlist, PnrConfig};
use nupea_rng::Xoshiro256;

/// Build a random-but-valid DFG: a layered DAG of arithmetic with sprinkled
/// loads, steers, and sinks. (Loop gates are exercised by the kernel-builder
/// tests; PnR only cares about the netlist shape.)
fn random_dag(layer_sizes: &[u8], load_every: u8, steer_every: u8) -> Dfg {
    let mut g = Dfg::new("rand");
    let (p, _) = g.add_param("seed");
    let mut prev: Vec<nupea_ir::NodeId> = vec![p];
    let mut counter = 0u32;
    for &width in layer_sizes {
        let mut layer = Vec::new();
        for k in 0..width.max(1) {
            counter += 1;
            let a = prev[(k as usize) % prev.len()];
            let node = if load_every > 0 && counter.is_multiple_of(u32::from(load_every)) {
                let ld = g.add_node(Op::Load);
                g.connect(a, 0, ld, Op::LOAD_ADDR);
                ld
            } else if steer_every > 0 && counter.is_multiple_of(u32::from(steer_every)) {
                let st = g.add_node(Op::Steer(SteerPolarity::OnTrue));
                g.set_imm(st, 0, 1);
                g.connect(a, 0, st, Op::STEER_VALUE);
                st
            } else {
                let add = g.add_node(Op::BinOp(BinOpKind::Add));
                g.connect(a, 0, add, 0);
                let b = prev[(k as usize + 1) % prev.len()];
                if b == a {
                    g.set_imm(add, 1, 1);
                } else {
                    g.connect(b, 0, add, 1);
                }
                add
            };
            layer.push(node);
        }
        prev = layer;
    }
    for (i, &n) in prev.iter().enumerate() {
        let (s, _) = g.add_sink(format!("out{i}"));
        g.connect(n, 0, s, 0);
    }
    g.validate().expect("random DAG is structurally valid");
    g
}

#[test]
fn placement_invariants_hold() {
    let mut rng = Xoshiro256::seed_from_u64(0x9A12);
    for _ in 0..24 {
        let nlayers = rng.range_usize(1, 5);
        let layers: Vec<u8> = (0..nlayers).map(|_| rng.range_i64(1, 7) as u8).collect();
        let load_every = rng.range_i64(0, 5) as u8;
        let steer_every = rng.range_i64(0, 4) as u8;
        let heuristic = match rng.index(3) {
            0 => Heuristic::DomainUnaware,
            1 => Heuristic::OnlyDomainAware,
            _ => Heuristic::CriticalityAware,
        };
        let seed = rng.below(1000);

        let g = {
            let mut g = random_dag(&layers, load_every, steer_every);
            nupea_ir::criticality::classify(&mut g);
            g
        };
        let fabric = Fabric::monaco(12, 12, 3).expect("fabric");
        let mut cfg = PnrConfig::with_heuristic(heuristic);
        cfg.place.seed = seed;
        cfg.place.effort = 40; // keep property runs fast
        let Ok(placed) = pnr(&g, &fabric, &cfg) else {
            // Capacity/congestion failures are legitimate outcomes.
            continue;
        };

        // 1. Every node is placed on a real PE.
        assert_eq!(placed.pe_of.len(), g.len());
        for pe in &placed.pe_of {
            assert!(pe.index() < fabric.num_pes());
        }
        // 2. Memory ops sit on LS PEs.
        for (id, n) in g.iter() {
            if n.op.is_memory() {
                assert_eq!(fabric.kind(placed.pe_of[id.index()]), PeKind::LoadStore);
            }
        }
        // 3. Slot exclusivity: one cell per (pe, slot kind).
        let nl = Netlist::from_dfg(&g);
        let mut seen = std::collections::HashSet::new();
        for (i, cell) in nl.cells.iter().enumerate() {
            assert!(
                seen.insert((placed.pe_of[i], cell.slot.index())),
                "two cells share a slot"
            );
        }
        // 4. Timing is consistent with routing.
        let hpc = fabric.hops_per_fabric_cycle;
        assert_eq!(
            placed.timing.divider,
            placed.timing.max_hops.div_ceil(hpc).max(1)
        );
        // 5. Determinism.
        let again = pnr(&g, &fabric, &cfg).expect("same inputs re-place");
        assert_eq!(again.pe_of, placed.pe_of);
        assert_eq!(again.timing, placed.timing);
    }
}
